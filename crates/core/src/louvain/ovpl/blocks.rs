//! The sliced-ELLPACK block layout (Figure 4).
//!
//! A block holds 16 mutually non-adjacent vertices. Its neighbor lists are
//! stored interleaved: entry `i * 16 + lane` is the `i`-th neighbor of the
//! block's `lane`-th vertex, padded with [`SENTINEL`] past each vertex's
//! degree. Weights mirror the layout. The format mirrors sliced ELLPACK
//! (Monakov et al.) as the paper notes, and gives the move phase aligned
//! full-width loads.

use gp_simd::vector::LANES;

/// Padding marker in the interleaved arrays (`-1` as i32, so a single
/// lane-wise compare builds the existence mask).
pub const SENTINEL: i32 = -1;

/// One 16-vertex block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// Start of this block's slice in [`OvplLayout::nbrs`] /
    /// [`OvplLayout::wts`] (always a multiple of 16).
    pub offset: usize,
    /// Maximum degree among the block's vertices — the slice holds
    /// `max_deg * 16` entries.
    pub max_deg: u32,
    /// Minimum degree among the block's *real* vertices; below this index no
    /// existence checks are needed (the paper's masked-instruction saving).
    pub min_deg: u32,
    /// The vertex of each lane, [`SENTINEL`] for padding lanes.
    pub vertices: [i32; LANES],
}

impl Block {
    /// Number of real (non-padding) vertices.
    pub fn len(&self) -> usize {
        self.vertices.iter().filter(|&&v| v != SENTINEL).count()
    }

    /// True if the block holds no real vertex.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterator over `(lane, vertex)` for real vertices.
    pub fn iter_real(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.vertices
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != SENTINEL)
            .map(|(lane, &v)| (lane, v as u32))
    }
}

/// The preprocessed OVPL graph representation.
#[derive(Debug, Clone, PartialEq)]
pub struct OvplLayout {
    /// All blocks, in processing order (color groups first, then the
    /// mixed-color tail blocks).
    pub blocks: Vec<Block>,
    /// Interleaved neighbor ids ([`SENTINEL`]-padded).
    pub nbrs: Vec<i32>,
    /// Interleaved edge weights (0 at padding).
    pub wts: Vec<f32>,
    /// Colors the preprocessing coloring used.
    pub colors_used: u32,
    /// Total padded (wasted) lane-slots across all blocks — the work
    /// overhead Figure 14 charges OVPL's energy with.
    pub padded_slots: u64,
    /// Block index of each vertex (every vertex sits in exactly one block;
    /// lets the active-set move phase lift a vertex frontier to the blocks
    /// that contain it).
    pub vertex_block: Vec<u32>,
    /// CSR degree of each vertex, carried into the layout so the move phase
    /// can price the active frontier without the original graph at hand.
    pub degrees: Vec<u32>,
}

impl OvplLayout {
    /// Approximate extra heap bytes of the layout (the paper's "consumes a
    /// lot more memory" discussion): interleaved arrays + block table.
    pub fn memory_bytes(&self) -> usize {
        self.nbrs.len() * 4
            + self.wts.len() * 4
            + self.blocks.len() * std::mem::size_of::<Block>()
            + self.vertex_block.len() * 4
            + self.degrees.len() * 4
    }

    /// Fraction of lane-slots that do useful work (1.0 = no padding).
    pub fn lane_utilization(&self) -> f64 {
        if self.nbrs.is_empty() {
            return 1.0;
        }
        1.0 - self.padded_slots as f64 / self.nbrs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_len_counts_real_vertices() {
        let mut vertices = [SENTINEL; LANES];
        vertices[0] = 5;
        vertices[3] = 7;
        let b = Block {
            offset: 0,
            max_deg: 2,
            min_deg: 1,
            vertices,
        };
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        let real: Vec<(usize, u32)> = b.iter_real().collect();
        assert_eq!(real, vec![(0, 5), (3, 7)]);
    }

    #[test]
    fn empty_block() {
        let b = Block {
            offset: 0,
            max_deg: 0,
            min_deg: 0,
            vertices: [SENTINEL; LANES],
        };
        assert!(b.is_empty());
    }

    #[test]
    fn utilization_of_empty_layout() {
        let layout = OvplLayout {
            blocks: vec![],
            nbrs: vec![],
            wts: vec![],
            colors_used: 0,
            padded_slots: 0,
            vertex_block: vec![],
            degrees: vec![],
        };
        assert_eq!(layout.lane_utilization(), 1.0);
        assert_eq!(layout.memory_bytes(), 0);
    }
}
