/root/repo/target/debug/deps/gp_bench-d53c414c05915c61.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/microbench.rs crates/bench/src/rmat_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libgp_bench-d53c414c05915c61.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/microbench.rs crates/bench/src/rmat_sweep.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/microbench.rs:
crates/bench/src/rmat_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
