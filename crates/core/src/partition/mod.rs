//! Multilevel k-way edge-cut partitioning.
//!
//! The paper's opening classification of "graph partitioning problems"
//! includes "partitioning to minimize edge cuts [Karypis–Kumar]" alongside
//! coloring and community detection. This module implements that member of
//! the class in the classic multilevel shape — coarsen by heavy-edge
//! matching, partition the coarsest graph by greedy growing, project back
//! and refine — with the *refinement* step in both a scalar and an
//! ONPL-vectorized form.
//!
//! Refinement is where the paper's pattern reappears: for each boundary
//! vertex the kernel needs its total edge weight toward every adjacent
//! partition — the same gather/reduce-scatter aggregation as the Louvain
//! affinity and the label-propagation weights, executed here through the
//! shared [`crate::vector_affinity`] kernel (the future-work thesis: one
//! vectorized primitive serves the whole problem class).

pub mod initial;
pub mod matching;
pub mod metrics;
pub mod refine;

pub use metrics::{edge_cut, partition_balance, verify_partition};

use crate::coloring::onpl::as_i32;
use gp_graph::builder::{DedupPolicy, GraphBuilder};
use gp_graph::csr::Csr;
use gp_graph::Edge;
use gp_metrics::telemetry::{RunInfo, RunTimer};
use gp_simd::backend::Simd;
use gp_simd::engine::Engine;

/// Configuration for [`partition_graph`].
#[derive(Debug, Clone)]
pub struct PartitionConfig {
    /// Number of parts (≥ 2).
    pub k: usize,
    /// Allowed imbalance: every part's weight must stay below
    /// `(1 + epsilon) * total / k`.
    pub epsilon: f32,
    /// Stop coarsening when the graph has at most `coarsen_until * k`
    /// vertices.
    pub coarsen_until: usize,
    /// Refinement sweeps per level.
    pub refine_passes: usize,
    /// Use the ONPL-vectorized gain kernel (scalar otherwise).
    pub vectorized: bool,
    /// Seed for the matching/growing orders.
    pub seed: u64,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            k: 2,
            epsilon: 0.05,
            coarsen_until: 10,
            refine_passes: 6,
            vectorized: true,
            seed: 0x9a27,
        }
    }
}

impl PartitionConfig {
    /// `k`-way with defaults.
    pub fn kway(k: usize) -> Self {
        PartitionConfig {
            k,
            ..Default::default()
        }
    }
}

/// Result of a partitioning run.
#[derive(Debug, Clone)]
pub struct PartitionResult {
    /// Part of each vertex, in `0..k`.
    pub parts: Vec<u32>,
    /// Total weight of cut edges.
    pub edge_cut: f64,
    /// Max part weight / ideal part weight (1.0 = perfect).
    pub balance: f64,
    /// Coarsening levels used.
    pub levels: usize,
    /// Uniform run envelope (backend, levels, completion, wall time).
    pub info: RunInfo,
}

/// `S::NAME` of a backend value (helps `match backends::engine()` name its arm).
fn name_of<S: Simd>(_: &S) -> &'static str {
    S::NAME
}

/// Backend name the refinement kernel will actually run on.
fn refine_backend(config: &PartitionConfig) -> &'static str {
    if config.vectorized {
        match crate::backends::engine() {
            Engine::Native(s) => name_of(&s),
            Engine::Emulated(s) => name_of(&s),
        }
    } else {
        "scalar"
    }
}

/// One level of the multilevel hierarchy.
pub(crate) struct Level {
    pub graph: Csr,
    /// Weight of each (super-)vertex — number of original vertices inside.
    pub vertex_weight: Vec<f32>,
    /// Map from this level's vertices to the coarser level's.
    pub coarse_map: Vec<u32>,
}

/// Partitions `g` into `config.k` parts minimizing edge cut under the
/// balance constraint.
///
/// ```
/// use gp_core::partition::{partition_graph, verify_partition, PartitionConfig};
/// use gp_graph::generators::grid2d;
///
/// let g = grid2d(8, 8);
/// let r = partition_graph(&g, &PartitionConfig::kway(2));
/// verify_partition(&g, &r.parts, 2).unwrap();
/// assert!(r.edge_cut <= 16.0); // a straight frontier cuts 8
/// ```
pub fn partition_graph(g: &Csr, config: &PartitionConfig) -> PartitionResult {
    assert!(config.k >= 2, "need at least 2 parts");
    assert!(config.epsilon >= 0.0);
    let timer = RunTimer::start();
    let n = g.num_vertices();
    if n == 0 {
        return PartitionResult {
            parts: Vec::new(),
            edge_cut: 0.0,
            balance: 1.0,
            levels: 0,
            info: RunInfo::new(refine_backend(config), 0, true, timer.elapsed_secs()),
        };
    }

    // --- Coarsening phase ------------------------------------------------
    let mut levels: Vec<Level> = Vec::new();
    let mut current = g.clone();
    let mut weights = vec![1.0f32; n];
    while current.num_vertices() > config.coarsen_until * config.k {
        let matching = matching::heavy_edge_matching(&current, config.seed ^ levels.len() as u64);
        let (coarse, coarse_weights, coarse_map) =
            contract(&current, &weights, &matching);
        // Matching failed to shrink (e.g. star graphs run out of pairs).
        if coarse.num_vertices() >= current.num_vertices() {
            break;
        }
        levels.push(Level {
            graph: current,
            vertex_weight: weights,
            coarse_map,
        });
        current = coarse;
        weights = coarse_weights;
    }

    // --- Initial partition on the coarsest graph -------------------------
    let mut parts = initial::greedy_growing(&current, &weights, config);
    refine_level(&current, &weights, &mut parts, config);

    // --- Uncoarsening + refinement ---------------------------------------
    let mut level_count = 1;
    while let Some(level) = levels.pop() {
        level_count += 1;
        let mut fine_parts = vec![0u32; level.graph.num_vertices()];
        for (v, &c) in level.coarse_map.iter().enumerate() {
            fine_parts[v] = parts[c as usize];
        }
        parts = fine_parts;
        refine_level(&level.graph, &level.vertex_weight, &mut parts, config);
    }

    let cut = edge_cut(g, &parts);
    let balance = partition_balance(g, &parts, config.k);
    PartitionResult {
        parts,
        edge_cut: cut,
        balance,
        levels: level_count,
        info: RunInfo::new(
            refine_backend(config),
            level_count,
            true,
            timer.elapsed_secs(),
        ),
    }
}

fn refine_level(g: &Csr, weights: &[f32], parts: &mut [u32], config: &PartitionConfig) {
    if config.vectorized {
        match crate::backends::engine() {
            Engine::Native(s) => refine::refine(&s, g, weights, parts, config),
            Engine::Emulated(s) => refine::refine(&s, g, weights, parts, config),
        }
    } else {
        refine::refine_scalar(g, weights, parts, config)
    }
}

/// Variant of [`partition_graph`] pinned to an explicit backend (bench use).
pub fn partition_graph_with<S: Simd + Sync>(
    s: &S,
    g: &Csr,
    config: &PartitionConfig,
) -> PartitionResult {
    let timer = RunTimer::start();
    let mut cfg = config.clone();
    cfg.vectorized = false; // avoid double dispatch; call refine directly
    let n = g.num_vertices();
    if n == 0 {
        return partition_graph(g, config);
    }
    let mut levels: Vec<Level> = Vec::new();
    let mut current = g.clone();
    let mut weights = vec![1.0f32; n];
    while current.num_vertices() > cfg.coarsen_until * cfg.k {
        let matching = matching::heavy_edge_matching(&current, cfg.seed ^ levels.len() as u64);
        let (coarse, coarse_weights, coarse_map) = contract(&current, &weights, &matching);
        if coarse.num_vertices() >= current.num_vertices() {
            break;
        }
        levels.push(Level {
            graph: current,
            vertex_weight: weights,
            coarse_map,
        });
        current = coarse;
        weights = coarse_weights;
    }
    let mut parts = initial::greedy_growing(&current, &weights, &cfg);
    refine::refine(s, &current, &weights, &mut parts, &cfg);
    let mut level_count = 1;
    while let Some(level) = levels.pop() {
        level_count += 1;
        let mut fine_parts = vec![0u32; level.graph.num_vertices()];
        for (v, &c) in level.coarse_map.iter().enumerate() {
            fine_parts[v] = parts[c as usize];
        }
        parts = fine_parts;
        refine::refine(s, &level.graph, &level.vertex_weight, &mut parts, &cfg);
    }
    let cut = edge_cut(g, &parts);
    let balance = partition_balance(g, &parts, cfg.k);
    PartitionResult {
        parts,
        edge_cut: cut,
        balance,
        levels: level_count,
        info: RunInfo::new(S::NAME, level_count, true, timer.elapsed_secs()),
    }
}

/// Contracts a matching: matched pairs merge into one coarse vertex.
/// Returns the coarse graph, coarse vertex weights, and fine→coarse map.
pub(crate) fn contract(
    g: &Csr,
    weights: &[f32],
    matching: &[u32],
) -> (Csr, Vec<f32>, Vec<u32>) {
    let n = g.num_vertices();
    let mut coarse_map = vec![u32::MAX; n];
    let mut coarse_weights: Vec<f32> = Vec::with_capacity(n / 2 + 1);
    let mut next = 0u32;
    for v in 0..n as u32 {
        if coarse_map[v as usize] != u32::MAX {
            continue;
        }
        let mate = matching[v as usize];
        coarse_map[v as usize] = next;
        let mut w = weights[v as usize];
        if mate != u32::MAX && mate != v && coarse_map[mate as usize] == u32::MAX {
            coarse_map[mate as usize] = next;
            w += weights[mate as usize];
        }
        coarse_weights.push(w);
        next += 1;
    }
    let mut builder = GraphBuilder::new(next as usize).dedup_policy(DedupPolicy::SumWeights);
    for u in g.vertices() {
        for (v, w) in g.edges_of(u) {
            let cu = coarse_map[u as usize];
            let cv = coarse_map[v as usize];
            // Skip intra-pair edges (they vanish into the super-vertex) and
            // keep each inter edge once.
            if cu < cv {
                builder.add_edge(Edge::new(cu, cv, w));
            }
        }
    }
    (builder.build(), coarse_weights, coarse_map)
}

/// Casts a partition array for vector gathers (same u32/i32 trick as the
/// other kernels; parts are tiny non-negative integers).
#[inline(always)]
pub(crate) fn parts_as_i32(parts: &[u32]) -> &[i32] {
    as_i32(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_graph::builder::from_pairs;
    use gp_graph::generators::{erdos_renyi, planted_partition, triangular_mesh};

    #[test]
    fn bisects_two_cliques_perfectly() {
        // Two 8-cliques joined by a single edge: the optimal bisection cuts
        // exactly that edge.
        let mut edges = Vec::new();
        for u in 0..8u32 {
            for v in 0..u {
                edges.push((u, v));
                edges.push((u + 8, v + 8));
            }
        }
        edges.push((0, 8));
        let g = from_pairs(16, edges);
        let r = partition_graph(&g, &PartitionConfig::kway(2));
        assert_eq!(r.edge_cut, 1.0, "parts: {:?}", r.parts);
        assert!(r.balance <= 1.01);
        verify_partition(&g, &r.parts, 2).unwrap();
    }

    #[test]
    fn mesh_bisection_cut_is_near_perimeter() {
        // A 32x32 triangulated mesh bisects with a cut of order ~side
        // (a straight frontier crosses ~2-3 edges per row).
        let g = triangular_mesh(32, 32, 3);
        let r = partition_graph(&g, &PartitionConfig::kway(2));
        verify_partition(&g, &r.parts, 2).unwrap();
        assert!(r.balance < 1.06, "balance {}", r.balance);
        assert!(
            r.edge_cut < 200.0,
            "cut {} far above a frontier-sized cut",
            r.edge_cut
        );
    }

    #[test]
    fn kway_partition_balances() {
        let g = triangular_mesh(24, 24, 9);
        for k in [2, 4, 8] {
            let r = partition_graph(&g, &PartitionConfig::kway(k));
            verify_partition(&g, &r.parts, k).unwrap();
            assert!(
                r.balance < 1.15,
                "k={k}: balance {} too loose",
                r.balance
            );
        }
    }

    #[test]
    fn all_parts_are_used() {
        let g = erdos_renyi(400, 1600, 5);
        let r = partition_graph(&g, &PartitionConfig::kway(6));
        let mut seen = vec![false; 6];
        for &p in &r.parts {
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "an empty part: {seen:?}");
    }

    #[test]
    fn scalar_and_vectorized_cuts_are_comparable() {
        let g = planted_partition(4, 32, 0.4, 0.02, 17);
        let mut cfg = PartitionConfig::kway(4);
        cfg.vectorized = false;
        let scalar = partition_graph(&g, &cfg);
        cfg.vectorized = true;
        let vector = partition_graph(&g, &cfg);
        verify_partition(&g, &scalar.parts, 4).unwrap();
        verify_partition(&g, &vector.parts, 4).unwrap();
        // Same algorithm either way; cuts must be in the same ballpark.
        assert!(
            vector.edge_cut <= 1.25 * scalar.edge_cut + 8.0,
            "vector cut {} vs scalar {}",
            vector.edge_cut,
            scalar.edge_cut
        );
    }

    #[test]
    fn planted_partition_recovers_low_cut() {
        // 4 planted clusters: the 4-way cut should be far below random.
        let g = planted_partition(4, 32, 0.4, 0.01, 3);
        let r = partition_graph(&g, &PartitionConfig::kway(4));
        let total = g.total_weight();
        assert!(
            r.edge_cut < 0.25 * total,
            "cut {} vs total weight {total}",
            r.edge_cut
        );
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let r = partition_graph(&Csr::empty(0), &PartitionConfig::kway(2));
        assert!(r.parts.is_empty());
        let g = from_pairs(3, [(0, 1), (1, 2)]);
        let r = partition_graph(&g, &PartitionConfig::kway(2));
        verify_partition(&g, &r.parts, 2).unwrap();
    }

    #[test]
    fn contract_preserves_total_weight_and_counts() {
        let g = triangular_mesh(10, 10, 1);
        let weights = vec![1.0f32; g.num_vertices()];
        let matching = matching::heavy_edge_matching(&g, 7);
        let (coarse, cw, map) = contract(&g, &weights, &matching);
        assert!(coarse.num_vertices() < g.num_vertices());
        let total: f32 = cw.iter().sum();
        assert_eq!(total as usize, g.num_vertices());
        assert!(map.iter().all(|&c| (c as usize) < coarse.num_vertices()));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_k_one() {
        partition_graph(&Csr::empty(3), &PartitionConfig::kway(1));
    }
}
