//! Minimal JSON value model for the wire protocol.
//!
//! The build environment has no crate registry (the `serde` in the
//! workspace is an offline API stub without a JSON backend), so the service
//! speaks JSON through this self-contained recursive-descent parser and
//! writer. It covers everything the protocol needs — objects, arrays,
//! strings with escapes, numbers, booleans, null — and rejects everything
//! else with a positioned error.

use std::fmt; // for Display on JsonError

/// A parsed JSON value. Objects preserve insertion order (handy for stable
/// golden tests and readable responses).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; the protocol's integers are all
    /// well inside the 2^53 exact range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key → value list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractions and
    /// negatives).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The object's fields, when the value is an object.
    pub fn fields(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

}

/// Serializes to compact JSON (no whitespace — one request/response per
/// line is the protocol's framing). `to_string()` comes with the impl.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(self, &mut out);
        f.write_str(&out)
    }
}

/// Convenience constructor for an object under construction.
#[derive(Debug, Default, Clone)]
pub struct ObjBuilder(Vec<(String, Json)>);

impl ObjBuilder {
    /// Empty object.
    pub fn new() -> Self {
        ObjBuilder(Vec::new())
    }

    /// Appends a field.
    pub fn field(mut self, key: &str, value: Json) -> Self {
        self.0.push((key.to_string(), value));
        self
    }

    /// Appends a string field.
    pub fn str(self, key: &str, value: &str) -> Self {
        self.field(key, Json::Str(value.to_string()))
    }

    /// Appends a numeric field.
    pub fn num(self, key: &str, value: f64) -> Self {
        self.field(key, Json::Num(value))
    }

    /// Appends a boolean field.
    pub fn bool(self, key: &str, value: bool) -> Self {
        self.field(key, Json::Bool(value))
    }

    /// Finishes the object.
    pub fn build(self) -> Json {
        Json::Obj(self.0)
    }
}

/// A parse failure with a byte offset into the input line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document, requiring it to span the whole input.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after JSON value"));
    }
    Ok(value)
}

fn err(at: usize, message: &str) -> JsonError {
    JsonError {
        at,
        message: message.to_string(),
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), JsonError> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected `{}`", ch as char)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(_) => Err(err(*pos, "unexpected character")),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected `{lit}`")))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-')) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| err(start, "bad number"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, "bad number"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex).map_err(|_| err(*pos, "bad \\u escape"))?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogates are replaced — the protocol never emits them.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe: find char at
                // this byte offset via str slicing).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| err(*pos, "invalid UTF-8"))?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected `,` or `]`")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(err(*pos, "expected `,` or `}`")),
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        out.push_str(&format!("{}", n as i64));
    } else if n.is_finite() {
        out.push_str(&format!("{n}"));
    } else {
        out.push_str("null"); // JSON has no NaN/Inf
    }
}

fn write_value(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => write_num(*n, out),
        Json::Str(s) => write_escaped(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_shape() {
        let v = parse(
            r#"{"kernel":"louvain","graph":{"rmat":{"scale":16,"edge_factor":8,"seed":42}},"deadline_ms":250}"#,
        )
        .unwrap();
        assert_eq!(v.get("kernel").and_then(Json::as_str), Some("louvain"));
        let rmat = v.get("graph").and_then(|g| g.get("rmat")).unwrap();
        assert_eq!(rmat.get("scale").and_then(Json::as_u64), Some(16));
        assert_eq!(v.get("deadline_ms").and_then(Json::as_u64), Some(250));
    }

    #[test]
    fn roundtrips_through_to_string() {
        let src = r#"{"a":[1,2.5,-3],"b":"x\"y","c":true,"d":null,"e":{}}"#;
        let v = parse(src).unwrap();
        let emitted = v.to_string();
        assert_eq!(parse(&emitted).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("123abc").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escapes_are_decoded_and_reencoded() {
        let v = parse(r#""line\nbreak A tab\t""#).unwrap();
        assert_eq!(v.as_str(), Some("line\nbreak A tab\t"));
        assert_eq!(v.to_string(), r#""line\nbreak A tab\t""#);
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("4.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn obj_builder_emits_in_order() {
        let v = ObjBuilder::new()
            .bool("ok", true)
            .str("kernel", "color")
            .num("rounds", 3.0)
            .build();
        assert_eq!(v.to_string(), r#"{"ok":true,"kernel":"color","rounds":3}"#);
    }

    #[test]
    fn integers_emit_without_decimal_point() {
        let mut out = String::new();
        write_num(1e15, &mut out);
        assert_eq!(out, "1000000000000000");
        let mut out = String::new();
        write_num(0.125, &mut out);
        assert_eq!(out, "0.125");
    }
}
