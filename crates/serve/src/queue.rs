//! Bounded MPMC job queue — the admission controller's backpressure
//! primitive.
//!
//! Producers (connection threads) *never block*: [`Bounded::try_push`]
//! either admits the job or reports the queue full so the caller can shed
//! load with an explicit `queue_full` response. Consumers (worker threads)
//! block on [`Bounded::pop`] until a job arrives or the queue is closed
//! *and drained* — closing stops admission but lets in-flight work finish,
//! which is exactly the graceful-shutdown contract.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — shed the job.
    Full,
    /// The queue is closed (shutting down) — reject the job.
    Closed,
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue (mutex + condvar; the
/// queue holds request envelopes, not hot-path data, so contention is
/// bounded by request rate, not kernel work).
#[derive(Debug)]
pub struct Bounded<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    available: Condvar,
}

impl<T> Bounded<T> {
    /// A queue admitting at most `capacity` outstanding jobs (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Bounded {
            capacity: capacity.max(1),
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently queued (racy snapshot, for stats).
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking admission: enqueues the job or returns it with the
    /// refusal reason.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut state = self.state.lock().unwrap();
        if state.closed {
            return Err((item, PushError::Closed));
        }
        if state.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        state.items.push_back(item);
        drop(state);
        // notify_all, not notify_one: consumers and the shard's builder
        // companion ([`Bounded::wait_head`]) share this condvar, and a
        // single wakeup routed to the peeker would strand the job.
        self.available.notify_all();
        Ok(())
    }

    /// Blocking peek: waits until `f` claims the queue head (returns
    /// `Some`) or the queue is closed **and** drained. The head is *not*
    /// removed — consumers still own removal — and `f` runs under the
    /// queue lock, so a claim and the head's continued presence are
    /// atomic: a consumer cannot pop the job before the claim lands.
    ///
    /// When `f` declines a head (returns `None`), the call keeps waiting;
    /// it is re-invoked whenever the head may have changed (push, pop).
    pub fn wait_head<R>(&self, mut f: impl FnMut(&T) -> Option<R>) -> Option<R> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(head) = state.items.front() {
                if let Some(r) = f(head) {
                    return Some(r);
                }
            } else if state.closed {
                return None;
            }
            state = self.available.wait(state).unwrap();
        }
    }

    /// Blocking consume: returns the next job, or `None` once the queue is
    /// closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(item) = state.items.pop_front() {
                // Wake any `wait_head` peeker: a new head may be exposed,
                // or (on the final drain of a closed queue) the peeker must
                // observe empty-and-closed to exit.
                self.available.notify_all();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).unwrap();
        }
    }

    /// Stops admission. Queued jobs remain poppable; blocked consumers wake
    /// and drain, then observe `None`.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.available.notify_all();
    }

    /// Whether [`Bounded::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_at_capacity() {
        let q = Bounded::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        match q.try_push(3) {
            Err((3, PushError::Full)) => {}
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok()); // capacity freed
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn capacity_is_at_least_one() {
        let q = Bounded::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.try_push(7).is_ok());
        assert!(matches!(q.try_push(8), Err((8, PushError::Full))));
    }

    #[test]
    fn close_rejects_new_but_drains_queued() {
        let q = Bounded::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert!(matches!(q.try_push("c"), Err(("c", PushError::Closed))));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None); // stays terminal
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(Bounded::<u32>::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the consumer a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn wait_head_peeks_without_removing() {
        let q = Bounded::new(2);
        q.try_push(7u32).unwrap();
        let seen = q.wait_head(|&v| Some(v));
        assert_eq!(seen, Some(7));
        assert_eq!(q.len(), 1, "peek must not dequeue");
        assert_eq!(q.pop(), Some(7));
    }

    #[test]
    fn wait_head_returns_none_once_closed_and_drained() {
        let q = Bounded::new(2);
        q.try_push(1u32).unwrap();
        q.close();
        assert_eq!(q.wait_head(|&v| Some(v)), Some(1), "drains before exiting");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.wait_head(|&v| Some(v)), None);
    }

    #[test]
    fn wait_head_observes_each_new_head_as_pops_expose_them() {
        let q = Arc::new(Bounded::new(4));
        q.try_push(1u32).unwrap();
        q.try_push(2).unwrap();
        q.try_push(3).unwrap();
        let peeker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut last = 0;
                let mut seen = Vec::new();
                // Decline already-seen heads; collect each distinct one.
                while let Some(v) = q.wait_head(|&v| (v > last).then_some(v)) {
                    last = v;
                    seen.push(v);
                }
                seen
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(2));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(3));
        q.close();
        let seen = peeker.join().unwrap();
        assert!(seen.contains(&1), "initial head observed: {seen:?}");
        // Heads 2 and 3 were exposed by pops; the peeker may race a pop and
        // miss one, but the final drain must terminate it regardless.
        assert!(seen.len() <= 3);
    }

    #[test]
    fn mpmc_delivers_every_item_exactly_once() {
        let q = Arc::new(Bounded::<u64>::new(8));
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let q = Arc::clone(&q);
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            }));
        }
        let mut producers = Vec::new();
        for p in 0..4u64 {
            let q = Arc::clone(&q);
            producers.push(std::thread::spawn(move || {
                let mut pushed = Vec::new();
                for i in 0..50 {
                    let v = p * 1000 + i;
                    // Spin on Full — producers outpace consumers briefly.
                    loop {
                        match q.try_push(v) {
                            Ok(()) => break,
                            Err((_, PushError::Full)) => std::thread::yield_now(),
                            Err((_, PushError::Closed)) => panic!("closed early"),
                        }
                    }
                    pushed.push(v);
                }
                pushed
            }));
        }
        let mut sent: Vec<u64> = producers.into_iter().flat_map(|p| p.join().unwrap()).collect();
        q.close();
        let mut received: Vec<u64> =
            consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        sent.sort_unstable();
        received.sort_unstable();
        assert_eq!(sent, received);
        assert_eq!(sent.len(), 200);
    }
}
