//! Summary statistics: mean and the bootstrap 95% confidence interval the
//! paper computes for every reported number ("We computed the 95% confidence
//! interval [Efron] for the results of all the experiments").

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

/// Mean with a bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Summary {
    pub mean: f64,
    /// Lower edge of the 95% CI.
    pub ci_low: f64,
    /// Upper edge of the 95% CI.
    pub ci_high: f64,
    /// Sample count.
    pub n: usize,
}

impl Summary {
    /// Half-width of the interval relative to the mean (0 = perfectly
    /// tight). The paper drops CI bars because these come out "very narrow".
    pub fn relative_halfwidth(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            ((self.ci_high - self.ci_low) / 2.0 / self.mean).abs()
        }
    }
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    }
}

/// Percentile-method bootstrap CI (Efron), deterministic per seed.
///
/// `resamples` of 1000 is plenty for the 25-run samples the harness uses.
pub fn bootstrap_ci(samples: &[f64], confidence: f64, resamples: usize, seed: u64) -> Summary {
    assert!((0.0..1.0).contains(&confidence) && confidence > 0.0);
    let n = samples.len();
    if n == 0 {
        return Summary {
            mean: 0.0,
            ci_low: 0.0,
            ci_high: 0.0,
            n: 0,
        };
    }
    let m = mean(samples);
    if n == 1 {
        return Summary {
            mean: m,
            ci_low: m,
            ci_high: m,
            n,
        };
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut means: Vec<f64> = (0..resamples)
        .map(|_| {
            let s: f64 = (0..n).map(|_| samples[rng.gen_range(0..n)]).sum();
            s / n as f64
        })
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let alpha = (1.0 - confidence) / 2.0;
    let lo_idx = ((alpha * resamples as f64) as usize).min(resamples - 1);
    let hi_idx = (((1.0 - alpha) * resamples as f64) as usize).min(resamples - 1);
    Summary {
        mean: m,
        ci_low: means[lo_idx],
        ci_high: means[hi_idx],
        n,
    }
}

/// Convenience: 95% CI with the harness defaults.
pub fn summarize(samples: &[f64]) -> Summary {
    bootstrap_ci(samples, 0.95, 1000, 0xc1)
}

/// Geometric mean of positive values (used for cross-graph speedup
/// aggregates).
pub fn geometric_mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    assert!(
        samples.iter().all(|&x| x > 0.0),
        "geometric mean requires positive samples"
    );
    (samples.iter().map(|x| x.ln()).sum::<f64>() / samples.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn ci_contains_mean() {
        let samples: Vec<f64> = (0..25).map(|i| 10.0 + (i % 5) as f64 * 0.1).collect();
        let s = summarize(&samples);
        assert!(s.ci_low <= s.mean && s.mean <= s.ci_high);
        assert_eq!(s.n, 25);
    }

    #[test]
    fn ci_narrow_for_constant_samples() {
        let s = summarize(&[5.0; 25]);
        assert_eq!(s.ci_low, 5.0);
        assert_eq!(s.ci_high, 5.0);
        assert_eq!(s.relative_halfwidth(), 0.0);
    }

    #[test]
    fn ci_widens_with_variance() {
        let tight: Vec<f64> = (0..25).map(|i| 10.0 + 0.01 * (i % 2) as f64).collect();
        let wide: Vec<f64> = (0..25).map(|i| 10.0 + 5.0 * (i % 2) as f64).collect();
        assert!(
            summarize(&tight).relative_halfwidth() < summarize(&wide).relative_halfwidth()
        );
    }

    #[test]
    fn ci_deterministic() {
        let samples = [1.0, 2.0, 4.0, 8.0];
        assert_eq!(
            bootstrap_ci(&samples, 0.95, 500, 7),
            bootstrap_ci(&samples, 0.95, 500, 7)
        );
    }

    #[test]
    fn single_sample_degenerate() {
        let s = summarize(&[3.5]);
        assert_eq!((s.ci_low, s.ci_high), (3.5, 3.5));
    }

    #[test]
    fn geometric_mean_of_speedups() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_nonpositive() {
        geometric_mean(&[1.0, 0.0]);
    }
}
