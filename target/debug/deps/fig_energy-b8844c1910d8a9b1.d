/root/repo/target/debug/deps/fig_energy-b8844c1910d8a9b1.d: crates/bench/src/bin/fig_energy.rs

/root/repo/target/debug/deps/fig_energy-b8844c1910d8a9b1: crates/bench/src/bin/fig_energy.rs

crates/bench/src/bin/fig_energy.rs:
