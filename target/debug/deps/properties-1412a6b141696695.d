/root/repo/target/debug/deps/properties-1412a6b141696695.d: tests/properties.rs

/root/repo/target/debug/deps/properties-1412a6b141696695: tests/properties.rs

tests/properties.rs:
