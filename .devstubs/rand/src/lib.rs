//! Offline stand-in for the `rand` crate (API subset used by this workspace).
//!
//! The build container has no crate registry, so the workspace pins this
//! single-file implementation via `[patch.crates-io]`. It reproduces the
//! `rand 0.8` trait shapes (`RngCore`, `SeedableRng`, `Rng`,
//! `seq::SliceRandom`) with deterministic, portable behaviour. Statistical
//! quality is sufficient for the synthetic graph generators and bootstrap
//! statistics in this repository; it is *not* a cryptographic RNG.

use std::ops::Range;

/// Core random-number source: 32/64-bit words and byte fill.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64, exactly once per
    /// 8-byte lane — deterministic across platforms.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let value = splitmix64(&mut state);
            let bytes = value.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 step — the standard seed-expansion mixer.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}
impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision (the rand convention).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the rand convention).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types usable with [`Rng::gen_range`] over half-open `lo..hi` ranges.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Widening-multiply rejection-free mapping (Lemire-style
                // without rejection is fine for a non-crypto stub).
                let x = rng.next_u64() as u128;
                let r = (x * span) >> 64;
                (lo as i128 + r as i128) as $ty
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + <f32 as Standard>::sample(rng) * (hi - lo)
    }
}
impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + <f64 as Standard>::sample(rng) * (hi - lo)
    }
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        /// Fisher–Yates, identical element visit order to rand 0.8's
        /// `shuffle` (descending index, `gen_range(0..=i)` equivalent).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Small-state xoshiro256++ generator used as the crate's default engine.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    pub(crate) fn from_state(s: [u64; 4]) -> Self {
        // All-zero state is a fixed point; nudge it.
        if s == [0; 4] {
            SmallRng { s: [0x9e3779b97f4a7c15, 1, 2, 3] }
        } else {
            SmallRng { s }
        }
    }
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(b);
        }
        SmallRng::from_state(s)
    }
}

/// Module alias so `rand::rngs::SmallRng` paths resolve.
pub mod rngs {
    pub use super::SmallRng;
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn seed_determinism() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut SmallRng::seed_from_u64(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }
}
