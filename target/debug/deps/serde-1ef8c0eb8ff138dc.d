/root/repo/target/debug/deps/serde-1ef8c0eb8ff138dc.d: .devstubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-1ef8c0eb8ff138dc.rmeta: .devstubs/serde/src/lib.rs

.devstubs/serde/src/lib.rs:
