/root/repo/target/release/deps/fig_ovpl_selected-046d3d10f9282cde.d: crates/bench/src/bin/fig_ovpl_selected.rs

/root/repo/target/release/deps/fig_ovpl_selected-046d3d10f9282cde: crates/bench/src/bin/fig_ovpl_selected.rs

crates/bench/src/bin/fig_ovpl_selected.rs:
