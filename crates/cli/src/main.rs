//! `gpart` — command-line front end for the graph-partitioning kernels.
//!
//! ```text
//! gpart stats     <graph>                     print Table-1-style statistics
//! gpart generate  <family> <out> [args…]      write a synthetic graph
//! gpart convert   <in> <out>                  convert between formats
//! gpart color     <graph> [--out f]           speculative greedy coloring
//! gpart louvain   <graph> [--variant v] [--out f]
//! gpart labelprop <graph> [--out f]
//! gpart partition <graph> [--k n] [--out f]
//! gpart slpa      <graph> [--threshold r] [--out f]
//! ```
//!
//! Formats are inferred from extensions: `.el`/`.txt` edge list,
//! `.graph`/`.metis` METIS, `.mtx` Matrix Market.
//!
//! A global `--threads n` flag (any position, or the `GP_THREADS`
//! environment variable) runs the whole command inside a scoped rayon pool
//! of `n` workers. Graph generation, CSR construction, and coarsening are
//! deterministic for any pool size, so the knob trades wall-clock only.

mod commands;
mod io;

use std::process::ExitCode;

/// Extracts the global `--threads n` flag (any position) and returns the
/// thread count plus the remaining arguments. Falls back to the
/// `GP_THREADS` environment variable; `0` (the default) means "use the
/// ambient rayon pool".
fn take_threads(args: Vec<String>) -> Result<(usize, Vec<String>), String> {
    let mut threads = None;
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--threads" {
            let v = it
                .next()
                .ok_or_else(|| "`--threads` needs a value".to_string())?;
            threads = Some(
                v.parse::<usize>()
                    .map_err(|e| format!("bad --threads value `{v}`: {e}"))?,
            );
        } else {
            rest.push(a);
        }
    }
    let threads = threads
        .or_else(gp_graph::par::threads_from_env)
        .unwrap_or(0);
    Ok((threads, rest))
}

fn dispatch(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("stats") => commands::stats(&args[1..]),
        Some("generate") => commands::generate(&args[1..]),
        Some("convert") => commands::convert(&args[1..]),
        Some("color") => commands::color(&args[1..]),
        Some("louvain") => commands::louvain(&args[1..]),
        Some("labelprop") => commands::labelprop(&args[1..]),
        Some("partition") => commands::partition(&args[1..]),
        Some("slpa") => commands::slpa(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{}", commands::USAGE)),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = take_threads(args)
        .and_then(|(threads, rest)| gp_graph::par::with_threads(threads, || dispatch(&rest)));
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("gpart: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::take_threads;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn take_threads_extracts_flag_anywhere() {
        let (t, rest) = take_threads(args(&["color", "--threads", "4", "g.mtx"])).unwrap();
        assert_eq!(t, 4);
        assert_eq!(rest, args(&["color", "g.mtx"]));
    }

    #[test]
    fn take_threads_defaults_to_ambient() {
        // GP_THREADS may be set by the harness; only assert pass-through.
        let (_, rest) = take_threads(args(&["stats", "g.mtx"])).unwrap();
        assert_eq!(rest, args(&["stats", "g.mtx"]));
    }

    #[test]
    fn take_threads_rejects_garbage() {
        assert!(take_threads(args(&["--threads", "lots"])).is_err());
        assert!(take_threads(args(&["--threads"])).is_err());
    }
}
