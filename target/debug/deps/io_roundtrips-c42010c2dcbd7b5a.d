/root/repo/target/debug/deps/io_roundtrips-c42010c2dcbd7b5a.d: tests/io_roundtrips.rs Cargo.toml

/root/repo/target/debug/deps/libio_roundtrips-c42010c2dcbd7b5a.rmeta: tests/io_roundtrips.rs Cargo.toml

tests/io_roundtrips.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
