//! Readiness polling for the event-loop server — std-only, via thin
//! `extern "C"` bindings to the host kernel's multiplexing syscall.
//!
//! On Linux this is **epoll** (level-triggered, one `epoll_wait` per loop
//! tick); on other Unixes it falls back to **poll(2)** with a registration
//! table rebuilt per wait. Both present the same tiny [`Poller`] API:
//! register a file descriptor under a `u64` token, wait, and get back
//! `(token, readable, writable, hangup)` tuples. The build environment has
//! no crate registry, so no `mio`/`libc` — the handful of constants and the
//! `epoll_event` layout (packed on x86-64!) are declared here directly.
//!
//! [`Waker`] lets worker threads interrupt a blocked wait from outside the
//! event loop. It is a connected loopback UDP socket pair rather than a
//! pipe: `std` can create, connect, and unblock it portably, and its read
//! end is just another pollable fd.

use std::io;
use std::net::UdpSocket;
use std::os::unix::io::{AsRawFd, RawFd};

#[cfg(not(unix))]
compile_error!("gp-serve's readiness event loop requires a Unix poller (epoll or poll)");

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd has bytes to read (or a pending accept).
    pub readable: bool,
    /// The fd can accept more bytes.
    pub writable: bool,
    /// The peer hung up or the fd errored; read to EOF and drop.
    pub hangup: bool,
}

/// What a registered fd should be watched for. Readability is always
/// watched; write interest is toggled as output queues drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Watch for readability.
    pub readable: bool,
    /// Watch for writability.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Read + write interest — a connection with queued output.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::os::unix::io::RawFd;

    const EPOLL_CLOEXEC: i32 = 0x80000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// Mirror of `struct epoll_event`. On x86-64 the kernel ABI packs this
    /// to 12 bytes — `repr(C)` alone would pad `data` to an 8-byte offset
    /// and corrupt every event.
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// Level-triggered epoll instance.
    pub struct Poller {
        epfd: RawFd,
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = EPOLLRDHUP;
        if interest.readable {
            bits |= EPOLLIN;
        }
        if interest.writable {
            bits |= EPOLLOUT;
        }
        bits
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: interest_bits(interest),
                data: token,
            };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::READ)
        }

        pub fn wait(&self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            events.clear();
            let mut raw = [EpollEvent { events: 0, data: 0 }; 64];
            let n = unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), raw.len() as i32, timeout_ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                // A signal mid-wait (SIGTERM during drain) is not an error;
                // the loop tick just comes back empty.
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for ev in raw.iter().take(n as usize) {
                let bits = ev.events;
                events.push(Event {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::{Event, Interest};
    use std::collections::HashMap;
    use std::io;
    use std::os::unix::io::RawFd;
    use std::sync::Mutex;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        // nfds_t is u32 on the BSD family this fallback targets.
        fn poll(fds: *mut PollFd, nfds: u32, timeout: i32) -> i32;
    }

    /// poll(2)-backed poller: a registration table rebuilt into a `pollfd`
    /// array on every wait. O(fds) per tick, which is fine at service
    /// connection counts.
    pub struct Poller {
        registered: Mutex<HashMap<RawFd, (u64, Interest)>>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: Mutex::new(HashMap::new()),
            })
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.registered.lock().unwrap().insert(fd, (token, interest));
            Ok(())
        }

        pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.register(fd, token, interest)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.registered.lock().unwrap().remove(&fd);
            Ok(())
        }

        pub fn wait(&self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            events.clear();
            let snapshot: Vec<(RawFd, u64, Interest)> = self
                .registered
                .lock()
                .unwrap()
                .iter()
                .map(|(&fd, &(token, interest))| (fd, token, interest))
                .collect();
            let mut fds: Vec<PollFd> = snapshot
                .iter()
                .map(|&(fd, _, interest)| PollFd {
                    fd,
                    events: if interest.writable { POLLIN | POLLOUT } else { POLLIN },
                    revents: 0,
                })
                .collect();
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u32, timeout_ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for (pfd, &(_, token, _)) in fds.iter().zip(&snapshot) {
                if pfd.revents == 0 {
                    continue;
                }
                events.push(Event {
                    token,
                    readable: pfd.revents & POLLIN != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    hangup: pfd.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

/// The platform poller: epoll on Linux, poll(2) elsewhere on Unix. See the
/// module docs for the shared contract.
pub struct Poller {
    inner: sys::Poller,
}

impl Poller {
    /// Creates a poller instance.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            inner: sys::Poller::new()?,
        })
    }

    /// Starts watching `fd` under `token`.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.register(fd, token, interest)
    }

    /// Changes the interest set of an already-registered fd.
    pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.reregister(fd, token, interest)
    }

    /// Stops watching `fd`.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.inner.deregister(fd)
    }

    /// Blocks up to `timeout_ms` for readiness, filling `events` (cleared
    /// first). A signal or timeout yields an empty batch, not an error.
    pub fn wait(&self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        self.inner.wait(events, timeout_ms)
    }
}

/// Cross-thread wakeup for a blocked [`Poller::wait`]: a connected loopback
/// UDP pair whose receive end is registered with the poller. Worker threads
/// call [`Waker::wake`] after queueing a response; the event loop drains
/// the datagrams and processes its outbox.
pub struct Waker {
    tx: UdpSocket,
    rx: UdpSocket,
}

impl Waker {
    /// Creates the socket pair (both ends nonblocking).
    pub fn new() -> io::Result<Waker> {
        let rx = UdpSocket::bind("127.0.0.1:0")?;
        let tx = UdpSocket::bind("127.0.0.1:0")?;
        tx.connect(rx.local_addr()?)?;
        rx.connect(tx.local_addr()?)?;
        rx.set_nonblocking(true)?;
        tx.set_nonblocking(true)?;
        Ok(Waker { tx, rx })
    }

    /// Interrupts the poller. Best-effort: a full socket buffer means a
    /// wakeup is already pending, which is all that matters.
    pub fn wake(&self) {
        let _ = self.tx.send(&[1]);
    }

    /// Consumes all pending wakeups (call when the waker fd polls ready).
    pub fn drain(&self) {
        let mut buf = [0u8; 16];
        while self.rx.recv(&mut buf).is_ok() {}
    }

    /// The pollable receive end.
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn waker_unblocks_a_wait() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.register(waker.fd(), 7, Interest::READ).unwrap();
        let mut events = Vec::new();
        // Nothing pending: the wait times out empty.
        poller.wait(&mut events, 10).unwrap();
        assert!(events.is_empty());
        waker.wake();
        poller.wait(&mut events, 1000).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        waker.drain();
        poller.wait(&mut events, 10).unwrap();
        assert!(events.is_empty(), "drain must clear the readiness");
    }

    #[test]
    fn socket_readability_and_write_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        use std::os::unix::io::AsRawFd;
        let fd = server_side.as_raw_fd();
        poller.register(fd, 42, Interest::READ).unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, 10).unwrap();
        assert!(events.is_empty(), "no data yet");

        client.write_all(b"hello\n").unwrap();
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.readable));

        // An idle socket with write interest reports writable immediately.
        poller.reregister(fd, 42, Interest::READ_WRITE).unwrap();
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.writable));

        // Peer hangup surfaces as hangup (and/or readable EOF).
        drop(client);
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 42 && (e.hangup || e.readable)));
        poller.deregister(fd).unwrap();
    }
}
