/root/repo/target/release/deps/table2_rmat_params-f4cc99b0faee734c.d: crates/bench/src/bin/table2_rmat_params.rs

/root/repo/target/release/deps/table2_rmat_params-f4cc99b0faee734c: crates/bench/src/bin/table2_rmat_params.rs

crates/bench/src/bin/table2_rmat_params.rs:
