/root/repo/target/debug/deps/fig_plm_vs_mplm-2170bbc327d560db.d: crates/bench/src/bin/fig_plm_vs_mplm.rs

/root/repo/target/debug/deps/fig_plm_vs_mplm-2170bbc327d560db: crates/bench/src/bin/fig_plm_vs_mplm.rs

crates/bench/src/bin/fig_plm_vs_mplm.rs:
