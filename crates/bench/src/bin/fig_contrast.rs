//! Supplementary experiment — the paper's BFS/SpMV contrast.
//!
//! The paper argues that classic kernels (BFS, SpMV) vectorize with gather
//! alone, while partitioning kernels need scatter: "good hardware support
//! for scatter instructions is necessary to fully leverage the vector
//! processing for graph partitioning problems". This experiment makes that
//! architectural claim measurable: the SpMV kernel's modeled cross-
//! architecture gap (Cascade Lake / SkylakeX) should be near 1, while the
//! scatter-bound OVPL Louvain kernel's gap is what separates the two
//! machines in Figures 6/12.

use gp_bench::harness::{counts_louvain_move, print_header, study_archs_for_paper, BenchContext};
use gp_core::contrast::{spmv_scalar, spmv_vector};
use gp_core::louvain::Variant;
use gp_metrics::report::{fmt_ratio, Table};
use gp_simd::backend::Emulated;
use gp_simd::counted::Counted;
use gp_simd::counters;
use gp_graph::suite::{build_standin, entry};

fn main() {
    let ctx = BenchContext::from_env();
    print_header("Supplementary: gather-only SpMV vs scatter-bound Louvain", &ctx);
    let mut table = Table::new(
        "Cross-architecture gap (CLX gain / SKX gain) per kernel",
        &["graph", "SpMV CLX", "SpMV SKX", "SpMV gap", "OVPL CLX", "OVPL SKX", "OVPL gap"],
    );
    for name in ["nlpkkt200", "in-2004", "M6"] {
        let e = entry(name).unwrap();
        let g = build_standin(e, ctx.scale);
        let archs = study_archs_for_paper(e, &g);
        let x: Vec<f32> = (0..g.num_vertices()).map(|i| (i % 17) as f32).collect();

        // SpMV op counts: scalar side analytic (2 stream + 1 random load, 1
        // mul-add per arc), vector side counted.
        let arcs = g.num_arcs() as u64;
        let scalar_spmv = {
            counters::reset();
            counters::record(counters::OpClass::ScalarLoad, 2 * arcs);
            counters::record(counters::OpClass::ScalarRandLoad, arcs);
            counters::record(counters::OpClass::ScalarAlu, 2 * arcs);
            counters::record(counters::OpClass::ScalarBranch, arcs);
            counters::snapshot()
        };
        let (_, vector_spmv) = counters::counted_run(|| {
            let s: Counted<Emulated> = Counted::new(Emulated);
            let mut y = vec![0f32; g.num_vertices()];
            spmv_vector(&s, &g, &x, &mut y);
        });
        // Sanity: the kernels agree.
        {
            let mut y1 = vec![0f32; g.num_vertices()];
            let mut y2 = vec![0f32; g.num_vertices()];
            spmv_scalar(&g, &x, &mut y1);
            spmv_vector(&Emulated, &g, &x, &mut y2);
            assert!(y1
                .iter()
                .zip(&y2)
                .all(|(a, b)| (a - b).abs() <= 1e-2 * a.abs().max(1.0)));
        }

        let scalar_lv = counts_louvain_move(&g, Variant::Mplm);
        let vector_lv = counts_louvain_move(&g, Variant::Ovpl);

        let spmv_clx = archs[0].speedup(&scalar_spmv, &vector_spmv);
        let spmv_skx = archs[1].speedup(&scalar_spmv, &vector_spmv);
        let lv_clx = archs[0].speedup(&scalar_lv, &vector_lv);
        let lv_skx = archs[1].speedup(&scalar_lv, &vector_lv);
        table.row(&[
            name.to_string(),
            fmt_ratio(spmv_clx),
            fmt_ratio(spmv_skx),
            fmt_ratio(spmv_clx / spmv_skx),
            fmt_ratio(lv_clx),
            fmt_ratio(lv_skx),
            fmt_ratio(lv_clx / lv_skx),
        ]);
    }
    ctx.emit(&table);
    if !ctx.csv {
        println!("\nexpected: the SpMV gap stays closer to 1 than the OVPL gap — the");
        println!("scatter-bound kernel is the one that tells the architectures apart.");
    }
}
