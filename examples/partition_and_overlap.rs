//! The rest of the paper's problem class: multilevel edge-cut partitioning
//! and overlapping community detection — both built on the same vectorized
//! reduce-scatter kernel as the headline algorithms.
//!
//! ```sh
//! cargo run --release --example partition_and_overlap
//! ```

use graph_partition_avx512::core::overlap::{slpa, SlpaConfig};
use graph_partition_avx512::core::partition::{partition_graph, verify_partition, PartitionConfig};
use graph_partition_avx512::graph::builder::from_pairs;
use graph_partition_avx512::graph::generators::triangular_mesh;

fn main() {
    // --- k-way edge-cut partitioning on a mesh ---------------------------
    let mesh = triangular_mesh(48, 48, 7);
    println!(
        "mesh: {} vertices, {} edges",
        mesh.num_vertices(),
        mesh.num_edges()
    );
    for k in [2, 4, 8] {
        let r = partition_graph(&mesh, &PartitionConfig::kway(k));
        verify_partition(&mesh, &r.parts, k).expect("valid partition");
        println!(
            "  {k:>2}-way: edge cut {:>6.0}, balance {:.3}, {} levels",
            r.edge_cut, r.balance, r.levels
        );
    }

    // --- overlapping communities on two bridged cliques -------------------
    let mut edges = Vec::new();
    for u in 0..8u32 {
        for v in 0..u {
            edges.push((u, v)); // clique A: 0..8
            edges.push((u + 6, v + 6)); // clique B: 6..14 (6,7 shared)
        }
    }
    let bridged = from_pairs(14, edges);
    let r = slpa(
        &bridged,
        &SlpaConfig {
            threshold: 0.25,
            ..Default::default()
        },
    );
    println!(
        "\ntwo cliques sharing vertices 6,7: {} communities, {} overlapping vertices",
        r.num_communities,
        r.overlapping_vertices()
    );
    for v in [0usize, 6, 7, 13] {
        println!("  vertex {v:>2} belongs to {:?}", r.memberships[v]);
    }
}
