//! # gp-serve
//!
//! A production-style partition **service** wrapped around the kernel
//! library: many clients, one shared process, bounded resources. The
//! kernels themselves were made fast (vectorization) and observable
//! (telemetry) by earlier work; this crate supplies the layer that turns
//! "one fast run" into "heavy traffic":
//!
//! * **Protocol** ([`protocol`], [`json`]) — newline-delimited JSON over
//!   plain TCP. One request per line, one response per line; `nc` is a
//!   valid client. No external dependencies: the build environment has no
//!   crate registry, so the JSON codec is self-contained and the runtime is
//!   `std` threads — no tokio.
//! * **Admission** ([`queue`]) — a bounded MPMC queue between connection
//!   readers and the worker pool. At capacity the service *sheds* with an
//!   explicit `queue_full` (503) response instead of queueing unboundedly;
//!   latency under overload stays flat and honest.
//! * **Execution** ([`server`]) — a fixed worker pool running the coloring /
//!   Louvain / label-propagation kernels through their recorded entry
//!   points, with per-request deadlines enforced cooperatively at round
//!   boundaries via [`gp_metrics::telemetry::DeadlineRecorder`]: a
//!   timed-out request still returns a well-formed partial result marked
//!   `"timed_out":true`.
//! * **Caching** ([`cache`], [`spec`]) — an LRU graph cache keyed by
//!   canonical generator spec and a result cache keyed by
//!   `(graph, kernel, backend, seed)`. Both are sound because the substrate
//!   is deterministic: regeneration is byte-identical, so a hit is
//!   indistinguishable from recomputation.
//! * **Observability** ([`stats`]) — served/shed/timeout counters, cache
//!   hit rates, queue depth, and per-kernel latency histograms
//!   ([`gp_metrics::Histogram`]), served live via a `{"stats":true}` probe
//!   and dumped on graceful shutdown.
//!
//! See `docs/SERVICE.md` for the wire protocol, knobs, and an example
//! session; `gpart serve` hosts the server, `gp-loadgen` (in `gp-bench`)
//! drives it closed-loop.

#![warn(missing_docs)]

pub mod cache;
pub mod json;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod spec;
pub mod stats;

pub use json::Json;
pub use protocol::{Backend, Incoming, Kernel, Refusal, Request};
pub use server::{install_shutdown_signals, shutdown_requested, ServeConfig, Server};
pub use spec::GraphSpec;
pub use stats::ServiceStats;
