//! Portable bit-exact emulation of the AVX-512 subset.
//!
//! This backend defines the reference semantics: the property tests assert
//! the native backend matches it lane for lane. It also runs the kernels on
//! machines without AVX-512, and underlies the counted runs that feed the
//! cost model (op counts are backend-independent).

// Lane loops index multiple arrays in lockstep; the indexed style is the
// clearest mirror of the hardware semantics.
#![allow(clippy::needless_range_loop)]

use super::Simd;
use crate::vector::{Mask16, LANES};

/// The emulated backend token. Always constructible.
#[derive(Debug, Clone, Copy, Default)]
pub struct Emulated;

impl Emulated {
    /// Creates the emulated backend (always available).
    pub fn new() -> Self {
        Emulated
    }
}

impl Simd for Emulated {
    type I32 = [i32; LANES];
    type F32 = [f32; LANES];

    const NAME: &'static str = "emulated";
    const IS_VECTOR: bool = false;

    #[inline(always)]
    fn splat_i32(&self, x: i32) -> Self::I32 {
        [x; LANES]
    }

    #[inline(always)]
    fn splat_f32(&self, x: f32) -> Self::F32 {
        [x; LANES]
    }

    #[inline(always)]
    fn to_array_i32(&self, v: Self::I32) -> [i32; LANES] {
        v
    }

    #[inline(always)]
    fn to_array_f32(&self, v: Self::F32) -> [f32; LANES] {
        v
    }

    #[inline(always)]
    fn from_array_i32(&self, a: [i32; LANES]) -> Self::I32 {
        a
    }

    #[inline(always)]
    fn from_array_f32(&self, a: [f32; LANES]) -> Self::F32 {
        a
    }

    #[inline(always)]
    fn load_i32(&self, src: &[i32]) -> Self::I32 {
        src[..LANES].try_into().expect("load_i32 needs >= 16 lanes")
    }

    #[inline(always)]
    fn load_f32(&self, src: &[f32]) -> Self::F32 {
        src[..LANES].try_into().expect("load_f32 needs >= 16 lanes")
    }

    #[inline(always)]
    fn store_i32(&self, dst: &mut [i32], v: Self::I32) {
        dst[..LANES].copy_from_slice(&v);
    }

    #[inline(always)]
    fn store_f32(&self, dst: &mut [f32], v: Self::F32) {
        dst[..LANES].copy_from_slice(&v);
    }

    #[inline(always)]
    fn load_tail_i32(&self, src: &[i32]) -> (Self::I32, Mask16) {
        let n = src.len().min(LANES);
        let mut out = [0i32; LANES];
        out[..n].copy_from_slice(&src[..n]);
        (out, Mask16::first(n))
    }

    #[inline(always)]
    fn load_tail_f32(&self, src: &[f32]) -> (Self::F32, Mask16) {
        let n = src.len().min(LANES);
        let mut out = [0f32; LANES];
        out[..n].copy_from_slice(&src[..n]);
        (out, Mask16::first(n))
    }

    #[inline(always)]
    unsafe fn gather_i32(
        &self,
        base: &[i32],
        idx: Self::I32,
        mask: Mask16,
        src: Self::I32,
    ) -> Self::I32 {
        let mut out = src;
        for i in 0..LANES {
            if mask.bit(i) {
                debug_assert!(
                    (idx[i] as usize) < base.len(),
                    "gather index {} out of bounds {}",
                    idx[i],
                    base.len()
                );
                out[i] = unsafe { *base.get_unchecked(idx[i] as usize) };
            }
        }
        out
    }

    #[inline(always)]
    unsafe fn gather_f32(
        &self,
        base: &[f32],
        idx: Self::I32,
        mask: Mask16,
        src: Self::F32,
    ) -> Self::F32 {
        let mut out = src;
        for i in 0..LANES {
            if mask.bit(i) {
                debug_assert!((idx[i] as usize) < base.len());
                out[i] = unsafe { *base.get_unchecked(idx[i] as usize) };
            }
        }
        out
    }

    #[inline(always)]
    unsafe fn scatter_i32(&self, base: &mut [i32], idx: Self::I32, v: Self::I32, mask: Mask16) {
        // Ascending lane order gives the hardware's "highest lane wins"
        // semantics for duplicate indices.
        for i in 0..LANES {
            if mask.bit(i) {
                debug_assert!((idx[i] as usize) < base.len());
                unsafe {
                    *base.get_unchecked_mut(idx[i] as usize) = v[i];
                }
            }
        }
    }

    #[inline(always)]
    unsafe fn scatter_f32(&self, base: &mut [f32], idx: Self::I32, v: Self::F32, mask: Mask16) {
        for i in 0..LANES {
            if mask.bit(i) {
                debug_assert!((idx[i] as usize) < base.len());
                unsafe {
                    *base.get_unchecked_mut(idx[i] as usize) = v[i];
                }
            }
        }
    }

    #[inline(always)]
    fn conflict_i32(&self, v: Self::I32) -> Self::I32 {
        let mut out = [0i32; LANES];
        for i in 1..LANES {
            let mut bits = 0i32;
            for j in 0..i {
                if v[j] == v[i] {
                    bits |= 1 << j;
                }
            }
            out[i] = bits;
        }
        out
    }

    #[inline(always)]
    fn add_i32(&self, a: Self::I32, b: Self::I32) -> Self::I32 {
        std::array::from_fn(|i| a[i].wrapping_add(b[i]))
    }

    #[inline(always)]
    fn add_f32(&self, a: Self::F32, b: Self::F32) -> Self::F32 {
        std::array::from_fn(|i| a[i] + b[i])
    }

    #[inline(always)]
    fn mask_add_f32(&self, src: Self::F32, mask: Mask16, a: Self::F32, b: Self::F32) -> Self::F32 {
        std::array::from_fn(|i| if mask.bit(i) { a[i] + b[i] } else { src[i] })
    }

    #[inline(always)]
    fn sub_f32(&self, a: Self::F32, b: Self::F32) -> Self::F32 {
        std::array::from_fn(|i| a[i] - b[i])
    }

    #[inline(always)]
    fn mul_f32(&self, a: Self::F32, b: Self::F32) -> Self::F32 {
        std::array::from_fn(|i| a[i] * b[i])
    }

    #[inline(always)]
    fn shl_i32<const IMM: u32>(&self, a: Self::I32) -> Self::I32 {
        std::array::from_fn(|i| ((a[i] as u32) << IMM) as i32)
    }

    #[inline(always)]
    fn sllv_i32(&self, a: Self::I32, count: Self::I32) -> Self::I32 {
        std::array::from_fn(|i| {
            let c = count[i] as u32;
            if c >= 32 {
                0
            } else {
                ((a[i] as u32) << c) as i32
            }
        })
    }

    #[inline(always)]
    fn or_i32(&self, a: Self::I32, b: Self::I32) -> Self::I32 {
        std::array::from_fn(|i| a[i] | b[i])
    }

    #[inline(always)]
    fn and_i32(&self, a: Self::I32, b: Self::I32) -> Self::I32 {
        std::array::from_fn(|i| a[i] & b[i])
    }

    #[inline(always)]
    fn max_f32(&self, a: Self::F32, b: Self::F32) -> Self::F32 {
        // vmaxps semantics: if a[i] or b[i] is NaN, returns b[i].
        std::array::from_fn(|i| if a[i] > b[i] { a[i] } else { b[i] })
    }

    #[inline(always)]
    fn cmpeq_i32(&self, a: Self::I32, b: Self::I32) -> Mask16 {
        let mut m = 0u16;
        for i in 0..LANES {
            if a[i] == b[i] {
                m |= 1 << i;
            }
        }
        Mask16(m)
    }

    #[inline(always)]
    fn cmpeq_f32(&self, a: Self::F32, b: Self::F32) -> Mask16 {
        let mut m = 0u16;
        for i in 0..LANES {
            if a[i] == b[i] {
                m |= 1 << i;
            }
        }
        Mask16(m)
    }

    #[inline(always)]
    fn cmpgt_f32(&self, a: Self::F32, b: Self::F32) -> Mask16 {
        let mut m = 0u16;
        for i in 0..LANES {
            if a[i] > b[i] {
                m |= 1 << i;
            }
        }
        Mask16(m)
    }

    #[inline(always)]
    fn cmplt_i32(&self, a: Self::I32, b: Self::I32) -> Mask16 {
        let mut m = 0u16;
        for i in 0..LANES {
            if a[i] < b[i] {
                m |= 1 << i;
            }
        }
        Mask16(m)
    }

    #[inline(always)]
    fn reduce_add_f32(&self, v: Self::F32) -> f32 {
        // Pairwise tree sum, matching the hardware reduction order (the
        // intrinsic is defined as a shuffle/add tree, not a serial sum).
        tree_sum(&v)
    }

    #[inline(always)]
    fn mask_reduce_add_f32(&self, mask: Mask16, v: Self::F32) -> f32 {
        let masked: [f32; LANES] = std::array::from_fn(|i| if mask.bit(i) { v[i] } else { 0.0 });
        tree_sum(&masked)
    }

    #[inline(always)]
    fn reduce_max_f32(&self, v: Self::F32) -> f32 {
        v.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    #[inline(always)]
    fn compress_i32(&self, mask: Mask16, v: Self::I32) -> Self::I32 {
        let mut out = [0i32; LANES];
        let mut k = 0;
        for i in 0..LANES {
            if mask.bit(i) {
                out[k] = v[i];
                k += 1;
            }
        }
        out
    }

    #[inline(always)]
    fn compress_f32(&self, mask: Mask16, v: Self::F32) -> Self::F32 {
        let mut out = [0f32; LANES];
        let mut k = 0;
        for i in 0..LANES {
            if mask.bit(i) {
                out[k] = v[i];
                k += 1;
            }
        }
        out
    }

    #[inline(always)]
    fn blend_i32(&self, mask: Mask16, a: Self::I32, b: Self::I32) -> Self::I32 {
        std::array::from_fn(|i| if mask.bit(i) { b[i] } else { a[i] })
    }

    #[inline(always)]
    fn blend_f32(&self, mask: Mask16, a: Self::F32, b: Self::F32) -> Self::F32 {
        std::array::from_fn(|i| if mask.bit(i) { b[i] } else { a[i] })
    }
}

/// Tree reduction in the same pairing order as `_mm512_reduce_add_ps`,
/// keeping the emulated backend bit-compatible with hardware for the
/// rounding-sensitive affinity sums.
#[inline(always)]
fn tree_sum(v: &[f32; LANES]) -> f32 {
    let mut acc = *v;
    let mut width = LANES / 2;
    while width > 0 {
        for i in 0..width {
            acc[i] += acc[i + width];
        }
        width /= 2;
    }
    acc[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: Emulated = Emulated;

    fn iota() -> [i32; LANES] {
        std::array::from_fn(|i| i as i32)
    }

    #[test]
    fn splat_and_extract() {
        let v = S.splat_i32(42);
        assert_eq!(S.extract_i32(v, 0), 42);
        assert_eq!(S.extract_i32(v, 15), 42);
    }

    #[test]
    fn load_store_roundtrip() {
        let data: Vec<i32> = (0..20).collect();
        let v = S.load_i32(&data);
        let mut out = vec![0i32; 16];
        S.store_i32(&mut out, v);
        assert_eq!(out, &data[..16]);
    }

    #[test]
    fn load_tail_partial() {
        let data = [5i32, 6, 7];
        let (v, m) = S.load_tail_i32(&data);
        assert_eq!(m, Mask16::first(3));
        assert_eq!(v[0], 5);
        assert_eq!(v[2], 7);
        assert_eq!(v[3], 0);
    }

    #[test]
    fn load_tail_empty() {
        let (v, m) = S.load_tail_f32(&[]);
        assert_eq!(m, Mask16::NONE);
        assert_eq!(v, [0.0; LANES]);
    }

    #[test]
    fn gather_respects_mask() {
        let base: Vec<i32> = (100..120).collect();
        let idx = S.from_array_i32(iota());
        let fallback = S.splat_i32(-1);
        let out = unsafe { S.gather_i32(&base, idx, Mask16(0b101), fallback) };
        assert_eq!(out[0], 100);
        assert_eq!(out[1], -1);
        assert_eq!(out[2], 102);
        assert_eq!(out[3], -1);
    }

    #[test]
    fn scatter_highest_lane_wins() {
        let mut base = vec![0i32; 4];
        let idx = S.splat_i32(2); // every lane writes index 2
        let vals = S.from_array_i32(iota());
        unsafe { S.scatter_i32(&mut base, idx, vals, Mask16::ALL) };
        assert_eq!(base[2], 15);
    }

    #[test]
    fn scatter_respects_mask() {
        let mut base = vec![9f32; 16];
        let idx = S.from_array_i32(iota());
        let vals = S.splat_f32(1.0);
        unsafe { S.scatter_f32(&mut base, idx, vals, Mask16(0b11)) };
        assert_eq!(base[0], 1.0);
        assert_eq!(base[1], 1.0);
        assert_eq!(base[2], 9.0);
    }

    #[test]
    fn conflict_matches_intel_definition() {
        // Same vector we validated against real hardware output:
        // idx = [0,1,2,3,0,1,2,3,4,5,6,7,4,5,6,7]
        let mut a = [0i32; LANES];
        for (i, x) in [0, 1, 2, 3, 0, 1, 2, 3, 4, 5, 6, 7, 4, 5, 6, 7]
            .into_iter()
            .enumerate()
        {
            a[i] = x;
        }
        let out = S.conflict_i32(S.from_array_i32(a));
        assert_eq!(
            out,
            [0, 0, 0, 0, 1, 2, 4, 8, 0, 0, 0, 0, 256, 512, 1024, 2048]
        );
    }

    #[test]
    fn conflict_all_distinct_is_zero() {
        let out = S.conflict_i32(S.from_array_i32(iota()));
        assert_eq!(out, [0; LANES]);
    }

    #[test]
    fn mask_add_passthrough() {
        let src = S.splat_f32(9.0);
        let a = S.splat_f32(1.0);
        let b = S.splat_f32(2.0);
        let out = S.mask_add_f32(src, Mask16(0b10), a, b);
        assert_eq!(out[0], 9.0);
        assert_eq!(out[1], 3.0);
    }

    #[test]
    fn shl_shifts_each_lane() {
        let v = S.from_array_i32(iota());
        let out = S.shl_i32::<4>(v);
        for i in 0..LANES {
            assert_eq!(out[i], (i as i32) << 4);
        }
    }

    #[test]
    fn sllv_shifts_per_lane_and_saturates() {
        let ones = S.splat_i32(1);
        let counts = S.from_array_i32(std::array::from_fn(|i| (i * 3) as i32));
        let out = S.sllv_i32(ones, counts);
        for i in 0..LANES {
            let c = i * 3;
            let expect = if c >= 32 { 0 } else { 1i32 << c };
            assert_eq!(out[i], expect, "lane {i}");
        }
    }

    #[test]
    fn reduce_add_full_and_masked() {
        let v = S.from_array_f32(std::array::from_fn(|i| i as f32));
        assert_eq!(S.reduce_add_f32(v), 120.0);
        assert_eq!(S.mask_reduce_add_f32(Mask16(0b111), v), 3.0);
        assert_eq!(S.mask_reduce_add_f32(Mask16::NONE, v), 0.0);
    }

    #[test]
    fn reduce_max() {
        let mut a = [1.0f32; LANES];
        a[7] = 42.0;
        assert_eq!(S.reduce_max_f32(S.from_array_f32(a)), 42.0);
    }

    #[test]
    fn compress_packs_selected() {
        let v = S.from_array_i32(iota());
        let out = S.compress_i32(Mask16(0b1010_0001), v);
        assert_eq!(&out[..3], &[0, 5, 7]);
        assert_eq!(out[3], 0);
    }

    #[test]
    fn blend_selects() {
        let a = S.splat_i32(1);
        let b = S.splat_i32(2);
        let out = S.blend_i32(Mask16(0b1), a, b);
        assert_eq!(out[0], 2);
        assert_eq!(out[1], 1);
    }

    #[test]
    fn cmp_ops() {
        let a = S.from_array_i32(iota());
        let b = S.splat_i32(8);
        assert_eq!(S.cmplt_i32(a, b), Mask16::first(8));
        assert_eq!(S.cmpeq_i32(a, b), Mask16::single(8));
        let x = S.splat_f32(1.0);
        let y = S.splat_f32(2.0);
        assert_eq!(S.cmpgt_f32(y, x), Mask16::ALL);
        assert_eq!(S.cmpeq_f32(x, x), Mask16::ALL);
    }

    #[test]
    fn tree_sum_is_pairwise() {
        // Pairwise order: ((v0+v8)+(v4+v12)) + ... — verify against a case
        // where serial summation would differ in floating point.
        let v: [f32; LANES] = std::array::from_fn(|i| if i < 8 { 1e8 } else { 1.0 });
        let expected = {
            let mut acc = v;
            let mut w = 8;
            while w > 0 {
                for i in 0..w {
                    acc[i] += acc[i + w];
                }
                w /= 2;
            }
            acc[0]
        };
        assert_eq!(S.reduce_add_f32(S.from_array_f32(v)), expected);
    }
}
