/root/repo/target/debug/examples/coloring_ordering-a499210fd912d627.d: examples/coloring_ordering.rs

/root/repo/target/debug/examples/coloring_ordering-a499210fd912d627: examples/coloring_ordering.rs

examples/coloring_ordering.rs:
