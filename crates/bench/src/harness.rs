//! Shared measurement pipeline for the figure binaries.
//!
//! Every comparison in the paper is produced two ways:
//!
//! * **measured** — wall-clock of the real kernels on this host (native
//!   AVX-512 when available), 25 runs, mean + bootstrap CI;
//! * **modeled** — one counted run per kernel through the
//!   SkylakeX/Cascade-Lake cost model, the substitution for the paper's
//!   second machine (DESIGN.md §2).

use gp_core::api::{run_kernel, Backend, Blocking, Bucketing, Kernel, KernelOutput, KernelSpec};
use gp_core::coloring::{color_with, ColoringConfig, ColoringResult};
use gp_core::louvain::ovpl::{move_phase_ovpl, prepare};
use gp_core::louvain::{move_phase_with, LouvainConfig, MoveState, Variant};
use gp_metrics::telemetry::NoopRecorder;
use gp_graph::csr::Csr;
use gp_graph::suite::SuiteScale;
use gp_metrics::stats::Summary;
use gp_metrics::timer::{time_runs, TimingConfig};
use gp_simd::backend::{Emulated, Simd};
use gp_simd::counted::Counted;
use gp_simd::cost::{ArchProfile, CASCADE_LAKE, SKYLAKE_X};
use gp_simd::counters::{self, OpCounts};
use gp_simd::engine::Engine;

/// Shared experiment context parsed from the environment.
#[derive(Debug, Clone, Copy)]
pub struct BenchContext {
    pub timing: TimingConfig,
    pub scale: SuiteScale,
    /// Emit CSV instead of aligned text.
    pub csv: bool,
    /// Substrate worker threads (`GP_THREADS`; 0 = rayon's default pool).
    pub threads: usize,
}

impl BenchContext {
    /// Reads `GP_QUICK`, `GP_RUNS`, `GP_SCALE`, `GP_CSV`, `GP_THREADS`.
    ///
    /// When `GP_THREADS` is set, the global rayon pool is sized accordingly
    /// before any parallel work runs, so every substrate pass in the binary
    /// (generation, CSR builds, coarsening) uses that many workers. The
    /// substrate is deterministic for any pool size — the knob trades
    /// wall-clock only.
    pub fn from_env() -> Self {
        let threads = gp_graph::par::threads_from_env().unwrap_or(0);
        if threads != 0 {
            // First caller wins; a pre-initialized pool keeps its size.
            let _ = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build_global();
        }
        let quick = std::env::var("GP_QUICK").is_ok_and(|v| v == "1");
        let mut timing = if quick {
            TimingConfig::quick()
        } else {
            TimingConfig::default()
        };
        if let Ok(runs) = std::env::var("GP_RUNS") {
            if let Ok(runs) = runs.parse::<usize>() {
                timing.runs = runs.max(1);
            }
        }
        let scale = match std::env::var("GP_SCALE").as_deref() {
            Ok("test") => SuiteScale::Test,
            Ok("large") => SuiteScale::Large,
            Ok("bench") => SuiteScale::Bench,
            _ if quick => SuiteScale::Test,
            _ => SuiteScale::Bench,
        };
        BenchContext {
            timing,
            scale,
            csv: std::env::var("GP_CSV").is_ok_and(|v| v == "1"),
            threads,
        }
    }

    /// Runs `f` inside a scoped pool of `self.threads` workers (ambient
    /// pool when 0) — for sections that must re-assert the knob even after
    /// another component sized the global pool.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        gp_graph::par::with_threads(self.threads, f)
    }

    /// Prints a table per the `csv` flag.
    pub fn emit(&self, table: &gp_metrics::report::Table) {
        if self.csv {
            print!("{}", table.to_csv());
        } else {
            print!("{}", table.render());
        }
    }
}

/// Prints the standard experiment header (host backend, scale, runs).
pub fn print_header(name: &str, ctx: &BenchContext) {
    if ctx.csv {
        return;
    }
    let threads = if ctx.threads == 0 {
        "default".to_string()
    } else {
        ctx.threads.to_string()
    };
    println!(
        "== {name} | backend: {} | scale: {:?} | runs: {} | threads: {threads} ==\n",
        gp_core::backends::engine().name(),
        ctx.scale,
        ctx.timing.runs
    );
}

/// Effective *random* working set of a kernel run: total footprint weighted
/// by the graph's access locality. A mesh or road network numbered locally
/// keeps its random accesses (zeta/affinity lookups) within a sliding window
/// — only web-crawl-like graphs expose the full footprint to the memory
/// system. The normalized average edge span is the locality proxy.
fn effective_random_bytes(g: &Csr, total_bytes: usize) -> usize {
    let n = g.num_vertices().max(1) as f64;
    let span = gp_graph::ordering::average_edge_span(g);
    let locality = (3.0 * span / n).clamp(0.01, 1.0);
    (total_bytes as f64 * locality) as usize
}

/// The two study architectures with memory costs scaled to this graph's own
/// footprint (used by the R-MAT sweeps, whose reduced scale is part of the
/// reported axis).
pub fn study_archs_for(g: &Csr) -> [ArchProfile; 2] {
    let bytes = g.memory_bytes() + g.num_vertices() * 12; // zeta + volumes + vol(u)
    let eff = effective_random_bytes(g, bytes);
    [
        CASCADE_LAKE.for_working_set(eff),
        SKYLAKE_X.for_working_set(eff),
    ]
}

/// The two study architectures priced at the *paper's* graph size for this
/// suite entry: the op mix comes from the structure-matched stand-in, the
/// memory pressure from the real graph's dimensions — together they model
/// the paper's machines running the paper's workload (DESIGN.md §2).
///
/// Locality extrapolation: the stand-in's average edge span grows like
/// `n^α` with the family's intrinsic dimension (α ≈ ½ for meshes, ⅔ for 3-D
/// stencils, → 1 for random crawls). The effective random window at paper
/// scale is the paper-size span times the per-vertex footprint — tiny for
/// local graphs (mesh kernels stay cache-friendly even at 50M vertices),
/// the full footprint for web crawls.
pub fn study_archs_for_paper(entry: &gp_graph::suite::SuiteEntry, g: &Csr) -> [ArchProfile; 2] {
    let paper_bytes =
        (entry.paper_vertices + 1) * 4 + entry.paper_edges * 2 * 8 + entry.paper_vertices * 12;
    let n_standin = g.num_vertices().max(2) as f64;
    let span_standin = gp_graph::ordering::average_edge_span(g).max(1.0);
    let alpha = (span_standin.ln() / n_standin.ln()).clamp(0.0, 1.0);
    let n_paper = entry.paper_vertices.max(2) as f64;
    let span_paper = n_paper.powf(alpha);
    let per_vertex = paper_bytes as f64 / n_paper;
    let eff = ((3.0 * span_paper * per_vertex).min(paper_bytes as f64)) as usize;
    [
        CASCADE_LAKE.for_working_set(eff),
        SKYLAKE_X.for_working_set(eff),
    ]
}

// ---------------------------------------------------------------- Louvain

/// Wall-clock of one Louvain move phase (state construction excluded from
/// variant-specific cost the same for all variants; OVPL preprocessing is
/// done once outside the timed region, as the paper's move-phase timings
/// do).
pub fn time_louvain_move(g: &Csr, variant: Variant, ctx: &BenchContext) -> Summary {
    let config = LouvainConfig {
        variant,
        parallel: true,
        ..Default::default()
    };
    match variant {
        Variant::Ovpl => {
            let layout = prepare(g, &config);
            match gp_core::backends::engine() {
                Engine::Native(s) => time_runs(&ctx.timing, |_| {
                    let state = MoveState::singleton(g);
                    move_phase_ovpl(&s, &layout, &state, &config)
                }),
                Engine::Emulated(s) => time_runs(&ctx.timing, |_| {
                    let state = MoveState::singleton(g);
                    move_phase_ovpl(&s, &layout, &state, &config)
                }),
            }
        }
        _ => match gp_core::backends::engine() {
            Engine::Native(s) => time_runs(&ctx.timing, |_| {
                let state = MoveState::singleton(g);
                move_phase_with(&s, g, &state, &config, &mut NoopRecorder)
            }),
            Engine::Emulated(s) => time_runs(&ctx.timing, |_| {
                let state = MoveState::singleton(g);
                move_phase_with(&s, g, &state, &config, &mut NoopRecorder)
            }),
        },
    }
}

/// Op counts of one sequential Louvain move phase (modeled runs).
pub fn counts_louvain_move(g: &Csr, variant: Variant) -> OpCounts {
    let config = LouvainConfig {
        variant,
        parallel: false,
        count_ops: true,
        ..Default::default()
    };
    let s: Counted<Emulated> = Counted::new(Emulated);
    let ((), counts) = counters::counted_run(|| {
        let state = MoveState::singleton(g);
        move_phase_with(&s, g, &state, &config, &mut NoopRecorder);
    });
    counts
}

/// Modularity reached by one sequential move phase of a variant.
pub fn quality_louvain_move(g: &Csr, variant: Variant) -> f64 {
    let config = LouvainConfig::sequential(variant);
    let state = MoveState::singleton(g);
    move_phase_with(&Emulated, g, &state, &config, &mut NoopRecorder);
    gp_core::louvain::modularity(g, &state.communities())
}

/// Modularity of a full multilevel Louvain run — what Figure 11b compares
/// (coarsening erases most schedule-order differences between variants).
pub fn quality_louvain_full(g: &Csr, variant: Variant) -> f64 {
    let spec = KernelSpec::new(Kernel::Louvain(variant)).sequential();
    match run_kernel(g, &spec, &mut NoopRecorder) {
        KernelOutput::Louvain(r) => r.modularity,
        _ => unreachable!(),
    }
}

// ---------------------------------------------------------------- Coloring

/// Wall-clock of a full speculative coloring run.
pub fn time_coloring(g: &Csr, vectorized: bool, ctx: &BenchContext) -> Summary {
    if vectorized {
        let config = ColoringConfig::default();
        match gp_core::backends::engine() {
            Engine::Native(s) => {
                time_runs(&ctx.timing, |_| color_with(&s, g, &config, &mut NoopRecorder))
            }
            Engine::Emulated(s) => {
                time_runs(&ctx.timing, |_| color_with(&s, g, &config, &mut NoopRecorder))
            }
        }
    } else {
        let spec = KernelSpec::new(Kernel::Coloring).with_backend(Backend::Scalar);
        time_runs(&ctx.timing, |_| run_kernel(g, &spec, &mut NoopRecorder))
    }
}

/// Op counts of a sequential coloring run. Locality routing is pinned off:
/// the figure compares the paper's scalar and vector *kernels*, and degree
/// bucketing would swap low-degree vertices onto a different kernel shape
/// (the op mix would then measure the router, not the kernel).
pub fn counts_coloring(g: &Csr, vectorized: bool) -> (ColoringResult, OpCounts) {
    let backend = if vectorized { Backend::Emulated } else { Backend::Scalar };
    let spec = KernelSpec::new(Kernel::Coloring)
        .sequential()
        .counted()
        .with_block(Blocking::Off)
        .with_bucket(Bucketing::Off)
        .with_backend(backend);
    let (out, counts) = counters::counted_run(|| run_kernel(g, &spec, &mut NoopRecorder));
    match out {
        KernelOutput::Coloring(r) => (r, counts),
        _ => unreachable!(),
    }
}

// ----------------------------------------------------------- Label prop

/// Wall-clock of a full label-propagation run.
pub fn time_labelprop(g: &Csr, vectorized: bool, ctx: &BenchContext) -> Summary {
    let backend = if vectorized {
        Backend::best_vector()
    } else {
        Backend::Scalar
    };
    let spec = KernelSpec::new(Kernel::Labelprop).with_backend(backend);
    time_runs(&ctx.timing, |_| run_kernel(g, &spec, &mut NoopRecorder))
}

/// Op counts of a sequential label-propagation run.
pub fn counts_labelprop(g: &Csr, vectorized: bool) -> OpCounts {
    let backend = if vectorized { Backend::Emulated } else { Backend::Scalar };
    let spec = KernelSpec::new(Kernel::Labelprop)
        .sequential()
        .counted()
        .with_block(Blocking::Off)
        .with_bucket(Bucketing::Off)
        .with_backend(backend);
    counters::counted_run(|| run_kernel(g, &spec, &mut NoopRecorder)).1
}

// ------------------------------------------- Measurement hygiene (checks)

/// Outcome of the three-run variance gate.
pub enum VarianceVerdict {
    /// σ/mean over three runs, below the 2% bar.
    Steady(f64),
    /// σ/mean over three runs, at or above the bar — the host is too noisy
    /// for ratio-based `--check` gates to mean anything.
    Noisy(f64),
    /// Gate self-skipped: a ≤ 1-CPU host co-schedules the measurement with
    /// everything else, so run-to-run spread reflects the scheduler, not
    /// the kernel.
    SkippedLowCpu,
}

/// Three-run σ < 2% variance gate for the `--check` paths: measures `f`
/// three times and reports whether the relative standard deviation stays
/// under 2%. Callers fail their check on [`VarianceVerdict::Noisy`] —
/// a comparison taken on a host that can't repeat a measurement within 2%
/// is not evidence either way.
pub fn variance_gate(mut f: impl FnMut()) -> VarianceVerdict {
    if std::thread::available_parallelism().map_or(1, |n| n.get()) <= 1 {
        return VarianceVerdict::SkippedLowCpu;
    }
    let mut samples = [0.0f64; 3];
    for s in &mut samples {
        let started = std::time::Instant::now();
        f();
        *s = started.elapsed().as_secs_f64();
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
        / samples.len() as f64;
    let rel_sigma = var.sqrt() / mean.max(1e-12);
    if rel_sigma < 0.02 {
        VarianceVerdict::Steady(rel_sigma)
    } else {
        VarianceVerdict::Noisy(rel_sigma)
    }
}

// ------------------------------------------------------------- Tracing

/// Directory named by `GP_TRACE`, created on demand. `None` when the
/// variable is unset (the default: no per-round recording anywhere in the
/// timed paths).
pub fn trace_dir() -> Option<std::path::PathBuf> {
    let dir = std::path::PathBuf::from(std::env::var("GP_TRACE").ok()?);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("GP_TRACE: cannot create {}: {e}", dir.display());
        return None;
    }
    Some(dir)
}

/// When `GP_TRACE=<dir>` is set, re-runs the counted sequential kernels with
/// a [`TraceRecorder`] attached and drops one JSON trace per kernel into the
/// directory (`<prefix>-<kernel>.json`). Runs *outside* the timed loops so
/// the figures' wall-clock numbers stay untouched; the counted `Emulated`
/// backend makes the per-round op-class deltas non-zero.
pub fn emit_traces(prefix: &str, g: &Csr) {
    use gp_metrics::telemetry::TraceRecorder;
    use gp_metrics::write_trace;
    let Some(dir) = trace_dir() else { return };
    let s: Counted<Emulated> = Counted::new(Emulated);
    let emit = |kernel: &str, rec: TraceRecorder| {
        let path = dir.join(format!("{prefix}-{kernel}.json"));
        match write_trace(path.to_str().unwrap_or_default(), &rec.into_trace()) {
            Ok(()) => eprintln!("trace: {}", path.display()),
            Err(e) => eprintln!("trace: cannot write {}: {e}", path.display()),
        }
    };

    let mut rec = TraceRecorder::new("coloring-scalar");
    let spec = KernelSpec::new(Kernel::Coloring)
        .sequential()
        .counted()
        .with_backend(Backend::Scalar);
    counters::counted_run(|| run_kernel(g, &spec, &mut rec));
    emit("coloring-scalar", rec);
    let mut rec = TraceRecorder::new("coloring-onpl");
    let spec = spec.with_backend(Backend::Emulated);
    counters::counted_run(|| run_kernel(g, &spec, &mut rec));
    emit("coloring-onpl", rec);

    for variant in [
        Variant::Mplm,
        Variant::Onpl(gp_core::reduce_scatter::Strategy::Adaptive),
    ] {
        let config = LouvainConfig {
            count_ops: true,
            ..LouvainConfig::sequential(variant)
        };
        let kernel = format!("louvain-{}", variant.name());
        let mut rec = TraceRecorder::new(kernel.clone());
        counters::counted_run(|| {
            let state = MoveState::singleton(g);
            move_phase_with(&s, g, &state, &config, &mut rec);
        });
        emit(&kernel, rec);
    }

    let mut rec = TraceRecorder::new("labelprop-onlp");
    let spec = KernelSpec::new(Kernel::Labelprop)
        .sequential()
        .counted()
        .with_backend(Backend::Emulated);
    counters::counted_run(|| run_kernel(g, &spec, &mut rec));
    emit("labelprop-onlp", rec);
}

/// Runs a kernel under the counting decorator regardless of backend — for
/// ad-hoc modeled sections in the binaries.
pub fn counted<R>(f: impl FnOnce(&Counted<Emulated>) -> R) -> (R, OpCounts) {
    let s = Counted::new(Emulated);
    counters::counted_run(|| f(&s))
}

/// Generic monomorphized runner: lets binaries run one closure body on
/// whichever backend the host offers.
pub fn with_best_engine<R>(f: impl Fn(&dyn BackendRunner) -> R) -> R {
    match gp_core::backends::engine() {
        Engine::Native(s) => f(&s),
        Engine::Emulated(s) => f(&s),
    }
}

/// Object-safe subset for [`with_best_engine`] users that only need to know
/// the backend exists (kernels themselves stay generic).
pub trait BackendRunner {
    /// Backend display name.
    fn name(&self) -> &'static str;
}

impl<S: Simd> BackendRunner for S {
    fn name(&self) -> &'static str {
        S::NAME
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_graph::generators::planted_partition;

    fn quick_ctx() -> BenchContext {
        BenchContext {
            timing: TimingConfig { runs: 2, warmup: 0 },
            scale: SuiteScale::Test,
            csv: false,
            threads: 0,
        }
    }

    #[test]
    fn louvain_pipeline_measures() {
        let g = planted_partition(3, 12, 0.7, 0.03, 1);
        let ctx = quick_ctx();
        for variant in [
            Variant::Mplm,
            Variant::Onpl(gp_core::reduce_scatter::Strategy::ConflictDetect),
            Variant::Ovpl,
        ] {
            let t = time_louvain_move(&g, variant, &ctx);
            assert!(t.mean > 0.0, "{variant:?}");
            let c = counts_louvain_move(&g, variant);
            assert!(c.total() > 0, "{variant:?} counted nothing");
        }
    }

    #[test]
    fn scalar_louvain_counts_are_scalar_only() {
        let g = planted_partition(3, 8, 0.7, 0.05, 2);
        let c = counts_louvain_move(&g, Variant::Mplm);
        assert_eq!(c.total_vector(), 0);
        assert!(c.total_scalar() > 0);
    }

    #[test]
    fn vector_louvain_counts_use_gathers() {
        let g = planted_partition(3, 8, 0.7, 0.05, 2);
        let c = counts_louvain_move(
            &g,
            Variant::Onpl(gp_core::reduce_scatter::Strategy::ConflictDetect),
        );
        assert!(c.get(gp_simd::counters::OpClass::Gather) > 0);
        assert!(c.get(gp_simd::counters::OpClass::Scatter) > 0);
    }

    #[test]
    fn coloring_pipeline_measures() {
        let g = planted_partition(2, 16, 0.5, 0.1, 3);
        let ctx = quick_ctx();
        assert!(time_coloring(&g, false, &ctx).mean > 0.0);
        assert!(time_coloring(&g, true, &ctx).mean > 0.0);
        let (r_s, c_s) = counts_coloring(&g, false);
        let (r_v, c_v) = counts_coloring(&g, true);
        assert_eq!(r_s.num_colors, r_v.num_colors);
        assert!(c_s.total_scalar() > 0);
        assert!(c_v.get(gp_simd::counters::OpClass::Scatter) > 0);
    }

    #[test]
    fn labelprop_pipeline_measures() {
        let g = planted_partition(3, 10, 0.7, 0.02, 5);
        let ctx = quick_ctx();
        assert!(time_labelprop(&g, false, &ctx).mean > 0.0);
        assert!(time_labelprop(&g, true, &ctx).mean > 0.0);
        assert!(counts_labelprop(&g, false).total_scalar() > 0);
        assert!(counts_labelprop(&g, true).get(gp_simd::counters::OpClass::Gather) > 0);
    }

    #[test]
    fn quality_helper_returns_positive_modularity() {
        let g = planted_partition(4, 12, 0.8, 0.02, 7);
        assert!(quality_louvain_move(&g, Variant::Mplm) > 0.3);
    }

    #[test]
    fn context_from_env_defaults() {
        // Whatever the env holds, the context must be constructible.
        let ctx = BenchContext::from_env();
        assert!(ctx.timing.runs >= 1);
    }
}
