/root/repo/target/debug/deps/fig_coloring-c898ef6eb13da6e6.d: crates/bench/src/bin/fig_coloring.rs

/root/repo/target/debug/deps/fig_coloring-c898ef6eb13da6e6: crates/bench/src/bin/fig_coloring.rs

crates/bench/src/bin/fig_coloring.rs:
