/root/repo/target/debug/examples/custom_kernel-c160a3cb24e466d2.d: examples/custom_kernel.rs

/root/repo/target/debug/examples/custom_kernel-c160a3cb24e466d2: examples/custom_kernel.rs

examples/custom_kernel.rs:
