//! # gp-core
//!
//! The paper's contribution: AVX-512-vectorized graph partitioning kernels
//! and the scalar baselines they are evaluated against.
//!
//! * [`coloring`] — speculative parallel greedy graph coloring
//!   (Algorithms 1–3), scalar and ONPL-vectorized `AssignColors`;
//! * [`reduce_scatter`] — the reduce-scatter primitive at the heart of the
//!   ONPL kernels, in both of the paper's formulations (conflict detection
//!   via `vpconflictd`, and in-vector reduction via masked reduce-add);
//! * [`louvain`] — the Louvain method move phase in four variants: PLM
//!   (NetworKit-style, with its per-vertex allocation behavior), MPLM (the
//!   memory-fixed scalar baseline), ONPL (one neighbor per lane), OVPL (one
//!   vertex per lane, with coloring-based preprocessing and sliced-ELLPACK
//!   block layout), plus coarsening and the full multilevel driver;
//! * [`labelprop`] — label propagation (Algorithm 5) as scalar MPLP and
//!   vectorized ONLP.
//!
//! All vector kernels are generic over [`gp_simd::backend::Simd`], so they
//! run on native AVX-512, on the portable emulation, or under the counting
//! decorator that feeds the cost/energy models.

pub mod api;
pub mod backends;
pub mod coloring;
pub mod contrast;
pub mod diff;
pub mod error;
pub mod frontier;
pub mod incremental;
pub mod labelprop;
pub mod locality;
pub mod louvain;
pub mod neighborhood;
pub mod overlap;
pub mod partition;
pub mod pipeline;
pub mod quality;
pub mod reduce_scatter;
pub(crate) mod vector_affinity;

/// Community/label assignment: `zeta[u]` is the community of vertex `u`.
pub type Communities = Vec<u32>;
