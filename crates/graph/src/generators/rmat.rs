//! R-MAT recursive-matrix graph generator (Chakrabarti et al., SDM 2004).
//!
//! This is the generator behind Table 2 and the Figure 7–10 sweeps. An edge
//! is placed by recursively descending into one of the four quadrants of the
//! adjacency matrix with probabilities `(a, b, c, d)`; `scale` fixes
//! `n = 2^scale` vertices and `edge_factor` requests `n · edge_factor`
//! edge samples (the paper counts `|E| = 2^scale × (2 × edge_factor)`
//! *directed* arcs, i.e. `edge_factor · n` undirected samples symmetrized).
//!
//! ## Parallel sampling with fixed RNG streams
//!
//! Samples are drawn in fixed blocks of [`SAMPLE_CHUNK`] edges, one
//! independent `ChaCha8Rng` stream per block (`set_stream(block_index)`).
//! The block decomposition depends only on the requested sample count —
//! never on the thread count — so the generated graph is a pure function of
//! the config: blocks can be sampled on any number of threads (or serially)
//! and concatenate to the identical edge list.
//!
//! Blocks are fanned out to workers as contiguous *ranges* balanced by
//! sample quota (`chunk_ranges_weighted`), not by block count: the final
//! block carries only `target % SAMPLE_CHUNK` samples, and an even block
//! split would park one worker on that near-empty tail while another
//! carries full blocks. Ranges are processed left-to-right and their edge
//! vectors concatenated in range order, so the edge sequence — and the
//! built graph — is byte-identical to the serial block sweep.

use crate::builder::{DedupPolicy, GraphBuilder};
use crate::csr::Csr;
use crate::par::{chunk_count, chunk_ranges_weighted};
use crate::Edge;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Samples per RNG stream. Fixed (not thread-count-derived) so the sampled
/// edge multiset is identical for any parallelism.
pub(crate) const SAMPLE_CHUNK: usize = 1 << 16;

/// The three probability distributions of Table 2.
pub const TABLE2_DISTRIBUTIONS: [(f64, f64, f64, f64); 3] = [
    (0.33, 0.33, 0.33, 0.01),
    (0.40, 0.30, 0.20, 0.10),
    (0.57, 0.19, 0.19, 0.05),
];

/// Parameters for [`rmat`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatConfig {
    /// `n = 2^scale` vertices.
    pub scale: u32,
    /// Requested edges per vertex (undirected samples = `edge_factor * n`).
    pub edge_factor: u32,
    /// Quadrant probabilities; must be non-negative and sum to ~1.
    pub a: f64,
    pub b: f64,
    pub c: f64,
    pub d: f64,
    /// RNG seed; the generator is fully deterministic given the config.
    pub seed: u64,
    /// Add per-lane noise to the probabilities at each recursion level, as in
    /// the Graph500 reference generator, to avoid grid artifacts.
    pub noise: f64,
}

impl RmatConfig {
    /// The Graph500-style defaults (a=57%, b=19%, c=19%, d=5%).
    pub fn new(scale: u32, edge_factor: u32) -> Self {
        RmatConfig {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
            seed: 0x5eed,
            noise: 0.0,
        }
    }

    /// Overrides the quadrant probabilities.
    pub fn with_probabilities(mut self, a: f64, b: f64, c: f64, d: f64) -> Self {
        self.a = a;
        self.b = b;
        self.c = c;
        self.d = d;
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables probability noise (0.0..0.5 is sensible).
    pub fn with_noise(mut self, noise: f64) -> Self {
        self.noise = noise;
        self
    }

    fn validate(&self) {
        assert!(self.scale >= 1 && self.scale <= 30, "scale out of range");
        assert!(self.edge_factor >= 1, "edge_factor must be >= 1");
        let s = self.a + self.b + self.c + self.d;
        assert!(
            (s - 1.0).abs() < 1e-6,
            "quadrant probabilities must sum to 1 (got {s})"
        );
        assert!(
            self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d >= 0.0,
            "probabilities must be non-negative"
        );
    }
}

/// Samples one edge endpoint pair.
fn sample_edge(cfg: &RmatConfig, rng: &mut impl Rng) -> (u32, u32) {
    let mut u = 0u32;
    let mut v = 0u32;
    for level in 0..cfg.scale {
        let (mut a, mut b, mut c) = (cfg.a, cfg.b, cfg.c);
        if cfg.noise > 0.0 {
            // Multiplicative noise per level, renormalized.
            let na = a * (1.0 - cfg.noise + 2.0 * cfg.noise * rng.gen::<f64>());
            let nb = b * (1.0 - cfg.noise + 2.0 * cfg.noise * rng.gen::<f64>());
            let nc = c * (1.0 - cfg.noise + 2.0 * cfg.noise * rng.gen::<f64>());
            let nd = cfg.d * (1.0 - cfg.noise + 2.0 * cfg.noise * rng.gen::<f64>());
            let s = na + nb + nc + nd;
            a = na / s;
            b = nb / s;
            c = nc / s;
        }
        let r: f64 = rng.gen();
        let bit = 1u32 << (cfg.scale - 1 - level);
        if r < a {
            // top-left: no bits set
        } else if r < a + b {
            v |= bit;
        } else if r < a + b + c {
            u |= bit;
        } else {
            u |= bit;
            v |= bit;
        }
    }
    (u, v)
}

/// Generates an undirected R-MAT graph.
///
/// ```
/// use gp_graph::generators::rmat::{rmat, RmatConfig};
///
/// let g = rmat(RmatConfig::new(8, 4).with_seed(1));
/// assert_eq!(g.num_vertices(), 256);
/// assert!(g.num_edges() > 500);
/// ```
///
/// `edge_factor · n` endpoint pairs are sampled; self-loops are discarded
/// (without replacement draws, as in the Graph500 reference) and duplicate
/// edges are merged (weight 1 kept, NetworKit-style unweighted semantics),
/// so the final `num_edges()` is slightly below `edge_factor · n`.
///
/// Sampling is parallel over fixed-size blocks with one RNG stream each; the
/// output is byte-identical for any thread count.
pub fn rmat(cfg: RmatConfig) -> Csr {
    cfg.validate();
    let n = 1usize << cfg.scale;
    let target = n * cfg.edge_factor as usize;
    let blocks = sample_block_count(&cfg);
    let quota = |block: usize| SAMPLE_CHUNK.min(target - block * SAMPLE_CHUNK);

    // One task per worker, each owning a contiguous block range balanced by
    // sample quota — the tail block can be nearly empty, so splitting by
    // block count would strand a worker on it (see module docs).
    let ranges = chunk_ranges_weighted(blocks, chunk_count(blocks, 1), |b| quota(b) as u64);
    let sampled: Vec<Vec<Edge>> = ranges
        .par_iter()
        .map(|range| {
            let samples: usize = range.clone().map(quota).sum();
            let mut out = Vec::with_capacity(samples);
            for block in range.clone() {
                let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
                rng.set_stream(block as u64);
                for _ in 0..quota(block) {
                    let (u, v) = sample_edge(&cfg, &mut rng);
                    if u != v {
                        out.push(Edge::unweighted(u, v));
                    }
                }
            }
            out
        })
        .collect();

    let mut builder = GraphBuilder::new(n).dedup_policy(DedupPolicy::KeepMax);
    for chunk in sampled {
        builder = builder.add_edges(chunk);
    }
    builder.build()
}

/// Number of fixed-size RNG sample blocks [`rmat`] draws for this config —
/// the upper bound on usable parallelism during edge generation (each block
/// is one independent `ChaCha8Rng` stream and cannot be subdivided without
/// changing the output).
pub fn sample_block_count(cfg: &RmatConfig) -> usize {
    let target = (1usize << cfg.scale) * cfg.edge_factor as usize;
    target.div_ceil(SAMPLE_CHUNK).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::with_threads;

    #[test]
    fn deterministic_for_seed() {
        let g1 = rmat(RmatConfig::new(8, 4).with_seed(7));
        let g2 = rmat(RmatConfig::new(8, 4).with_seed(7));
        assert_eq!(g1, g2);
    }

    #[test]
    fn different_seed_changes_graph() {
        let g1 = rmat(RmatConfig::new(8, 4).with_seed(7));
        let g2 = rmat(RmatConfig::new(8, 4).with_seed(8));
        assert_ne!(g1, g2);
    }

    #[test]
    fn thread_count_does_not_change_graph() {
        // Spans multiple sample blocks (2^14 * 8 = 2 blocks).
        let cfg = RmatConfig::new(14, 8).with_seed(11);
        let reference = with_threads(1, || rmat(cfg));
        for t in [2usize, 8] {
            let g = with_threads(t, || rmat(cfg));
            assert_eq!(g, reference, "graph changed at {t} threads");
        }
    }

    #[test]
    fn partial_tail_block_is_thread_invariant() {
        // 2^13 * 9 = 73728 samples = one full block + a 8192-sample tail:
        // exercises the quota-weighted range split around an uneven block.
        let cfg = RmatConfig::new(13, 9).with_seed(5);
        assert_eq!(sample_block_count(&cfg), 2);
        let reference = with_threads(1, || rmat(cfg));
        for t in [2usize, 4, 8] {
            let g = with_threads(t, || rmat(cfg));
            assert_eq!(g, reference, "graph changed at {t} threads");
        }
    }

    #[test]
    fn sample_block_count_matches_target() {
        assert_eq!(sample_block_count(&RmatConfig::new(8, 4)), 1); // 2^10 samples
        assert_eq!(sample_block_count(&RmatConfig::new(14, 8)), 2); // 2^17 / 2^16
        assert_eq!(sample_block_count(&RmatConfig::new(18, 8)), 32); // 2^21 / 2^16
    }

    #[test]
    fn vertex_count_is_power_of_scale() {
        let g = rmat(RmatConfig::new(10, 2));
        assert_eq!(g.num_vertices(), 1024);
    }

    #[test]
    fn edge_count_near_target() {
        let g = rmat(RmatConfig::new(10, 8));
        let target = 1024 * 8;
        // Self-loop drops and dedup remove some, but the bulk should be there.
        assert!(g.num_edges() > target / 2, "too few edges: {}", g.num_edges());
        assert!(g.num_edges() <= target);
    }

    #[test]
    fn no_self_loops() {
        let g = rmat(RmatConfig::new(9, 4));
        assert_eq!(g.num_self_loops(), 0);
    }

    #[test]
    fn symmetric_output() {
        let g = rmat(RmatConfig::new(7, 4));
        assert!(g.is_symmetric());
    }

    #[test]
    fn skewed_distribution_creates_hubs() {
        // With a = 57%, low-id vertices should accumulate much higher degree
        // than the average — the power-law the paper relies on.
        let g = rmat(RmatConfig::new(12, 8).with_probabilities(0.57, 0.19, 0.19, 0.05));
        let avg = g.avg_degree();
        assert!(
            g.max_degree() as f64 > 4.0 * avg,
            "expected hub vertices: max {} vs avg {avg}",
            g.max_degree()
        );
    }

    #[test]
    fn uniform_distribution_is_balanced() {
        let g = rmat(RmatConfig::new(10, 8).with_probabilities(0.25, 0.25, 0.25, 0.25));
        // Erdős–Rényi-like: max degree within a small factor of the average.
        assert!((g.max_degree() as f64) < 5.0 * g.avg_degree());
    }

    #[test]
    fn noise_still_deterministic() {
        let g1 = rmat(RmatConfig::new(8, 4).with_noise(0.1));
        let g2 = rmat(RmatConfig::new(8, 4).with_noise(0.1));
        assert_eq!(g1, g2);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_probabilities() {
        rmat(RmatConfig::new(8, 4).with_probabilities(0.5, 0.5, 0.5, 0.5));
    }

    #[test]
    fn table2_distributions_sum_to_one() {
        for (a, b, c, d) in TABLE2_DISTRIBUTIONS {
            assert!((a + b + c + d - 1.0).abs() < 1e-9);
        }
    }
}
