/root/repo/target/debug/deps/gpart-6b421d7244d8691e.d: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/io.rs

/root/repo/target/debug/deps/gpart-6b421d7244d8691e: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/io.rs

crates/cli/src/main.rs:
crates/cli/src/commands.rs:
crates/cli/src/io.rs:
