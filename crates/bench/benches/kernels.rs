//! Criterion bench: the Figure-5 microbenchmark kernel (scalar vs vector
//! load/gather/add/scatter over a diagonal 4096-neighbor vertex).

use criterion::{criterion_group, criterion_main, Criterion};
use gp_bench::microbench::{affinity_scalar, affinity_vector, MicrobenchData};
use gp_simd::engine::Engine;

fn bench_microkernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("microbench_4096");
    group.bench_function("scalar", |b| {
        let mut data = MicrobenchData::new(4096);
        b.iter(|| affinity_scalar(&mut data));
    });
    group.bench_function("vector", |b| {
        let mut data = MicrobenchData::new(4096);
        match gp_core::backends::engine() {
            Engine::Native(s) => b.iter(|| affinity_vector(&s, &mut data)),
            Engine::Emulated(s) => b.iter(|| affinity_vector(&s, &mut data)),
        }
    });
    group.finish();
}

criterion_group!(benches, bench_microkernel);
criterion_main!(benches);
