/root/repo/target/debug/deps/fig_ovpl_selected-31f8f17cda6d46bd.d: crates/bench/src/bin/fig_ovpl_selected.rs Cargo.toml

/root/repo/target/debug/deps/libfig_ovpl_selected-31f8f17cda6d46bd.rmeta: crates/bench/src/bin/fig_ovpl_selected.rs Cargo.toml

crates/bench/src/bin/fig_ovpl_selected.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
