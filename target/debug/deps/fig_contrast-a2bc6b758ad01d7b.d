/root/repo/target/debug/deps/fig_contrast-a2bc6b758ad01d7b.d: crates/bench/src/bin/fig_contrast.rs

/root/repo/target/debug/deps/fig_contrast-a2bc6b758ad01d7b: crates/bench/src/bin/fig_contrast.rs

crates/bench/src/bin/fig_contrast.rs:
