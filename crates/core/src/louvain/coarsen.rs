//! The coarsening phase: collapse each community into one vertex.
//!
//! The paper leaves coarsening unchanged ("We do not describe the Coarsening
//! Phase since we will not make any changes to it"), but the full multilevel
//! driver needs it, so this is a faithful NetworKit-style implementation:
//! intra-community weight becomes a self-loop on the coarse vertex,
//! inter-community weight aggregates into one coarse edge.

use gp_graph::builder::{DedupPolicy, GraphBuilder};
use gp_graph::csr::Csr;
use gp_graph::Edge;

/// Result of coarsening: the community graph and the dense relabeling
/// (`fine_to_coarse[community_id] = coarse vertex`, `u32::MAX` for ids that
/// name no community).
#[derive(Debug)]
pub struct Coarsened {
    /// The coarse graph (one vertex per non-empty community).
    pub graph: Csr,
    /// Maps fine community ids to coarse vertex ids.
    pub fine_to_coarse: Vec<u32>,
}

/// Coarsens `g` under the assignment `zeta`.
pub fn coarsen(g: &Csr, zeta: &[u32]) -> Coarsened {
    let n = g.num_vertices();
    assert_eq!(zeta.len(), n, "community array length mismatch");

    // Dense relabeling of the occupied community ids.
    let mut fine_to_coarse = vec![u32::MAX; n];
    let mut next = 0u32;
    for &c in zeta {
        let slot = &mut fine_to_coarse[c as usize];
        if *slot == u32::MAX {
            *slot = next;
            next += 1;
        }
    }

    // Each undirected fine edge contributes once: visit arcs with u <= v.
    // GraphBuilder's weight-summing dedup does the aggregation.
    let mut builder = GraphBuilder::new(next as usize).dedup_policy(DedupPolicy::SumWeights);
    for u in g.vertices() {
        for (v, w) in g.edges_of(u) {
            if u <= v {
                let cu = fine_to_coarse[zeta[u as usize] as usize];
                let cv = fine_to_coarse[zeta[v as usize] as usize];
                builder.add_edge(Edge::new(cu, cv, w));
            }
        }
    }
    Coarsened {
        graph: builder.build(),
        fine_to_coarse,
    }
}

/// Projects a coarse-level assignment back to the fine level:
/// `result[u] = coarse_zeta[fine_to_coarse[zeta[u]]]`.
pub fn project(zeta: &[u32], fine_to_coarse: &[u32], coarse_zeta: &[u32]) -> Vec<u32> {
    zeta.iter()
        .map(|&c| coarse_zeta[fine_to_coarse[c as usize] as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::super::modularity::modularity;
    use super::*;
    use gp_graph::builder::from_pairs;
    use gp_graph::generators::planted_partition;

    #[test]
    fn coarsen_two_triangles() {
        let g = from_pairs(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        let zeta = vec![0, 0, 0, 5, 5, 5];
        let c = coarsen(&g, &zeta);
        assert_eq!(c.graph.num_vertices(), 2);
        // Each triangle (3 edges of weight 1) becomes a self-loop of 3; the
        // bridge becomes one edge of weight 1.
        assert_eq!(c.graph.edge_weight(0, 0), Some(3.0));
        assert_eq!(c.graph.edge_weight(1, 1), Some(3.0));
        assert_eq!(c.graph.edge_weight(0, 1), Some(1.0));
    }

    #[test]
    fn total_weight_is_preserved() {
        let g = planted_partition(3, 10, 0.6, 0.1, 7);
        let zeta: Vec<u32> = (0..30).map(|u| u % 3).collect();
        let c = coarsen(&g, &zeta);
        assert!((c.graph.total_weight() - g.total_weight()).abs() < 1e-6);
    }

    #[test]
    fn modularity_invariant_under_coarsening() {
        // Modularity of a partition equals modularity of the collapsed
        // partition on the coarse graph — the property multilevel Louvain
        // relies on.
        let g = planted_partition(4, 8, 0.7, 0.05, 13);
        let zeta: Vec<u32> = (0..32).map(|u| u / 8).collect();
        let q_fine = modularity(&g, &zeta);
        let c = coarsen(&g, &zeta);
        let coarse_ids: Vec<u32> = (0..c.graph.num_vertices() as u32).collect();
        let q_coarse = modularity(&c.graph, &coarse_ids);
        assert!(
            (q_fine - q_coarse).abs() < 1e-9,
            "Q changed under coarsening: {q_fine} vs {q_coarse}"
        );
    }

    #[test]
    fn project_roundtrip() {
        let zeta = vec![4u32, 4, 2, 2, 0];
        let mut fine_to_coarse = vec![u32::MAX; 5];
        fine_to_coarse[4] = 0;
        fine_to_coarse[2] = 1;
        fine_to_coarse[0] = 2;
        let coarse_zeta = vec![7u32, 7, 9];
        assert_eq!(project(&zeta, &fine_to_coarse, &coarse_zeta), vec![7, 7, 7, 7, 9]);
    }

    #[test]
    fn coarsen_singletons_is_isomorphic() {
        let g = from_pairs(4, [(0, 1), (1, 2), (2, 3)]);
        let zeta: Vec<u32> = (0..4).collect();
        let c = coarsen(&g, &zeta);
        assert_eq!(c.graph.num_vertices(), 4);
        assert_eq!(c.graph.num_edges(), 3);
    }
}
