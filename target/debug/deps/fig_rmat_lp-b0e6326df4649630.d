/root/repo/target/debug/deps/fig_rmat_lp-b0e6326df4649630.d: crates/bench/src/bin/fig_rmat_lp.rs

/root/repo/target/debug/deps/fig_rmat_lp-b0e6326df4649630: crates/bench/src/bin/fig_rmat_lp.rs

crates/bench/src/bin/fig_rmat_lp.rs:
