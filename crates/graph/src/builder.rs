//! Edge-list → CSR construction.
//!
//! The builder symmetrizes, optionally deduplicates (summing weights of
//! parallel edges, the NetworKit convention), and counting-sorts edges into
//! CSR in O(|V| + |E|).
//!
//! Every pass is rayon-parallel and **thread-count invariant**: canonicalize
//! and validate run as a parallel map, dedup uses a parallel sort with a
//! total key order (`(u, v, w.to_bits())`, so equal-position duplicates are
//! bitwise interchangeable) followed by run-aligned chunked merging, and the
//! counting sort is the classic two-pass scheme — per-chunk degree
//! histograms, an exclusive prefix across chunks, then a disjoint parallel
//! scatter. The scatter positions reproduce the serial edge order exactly,
//! so the CSR bytes never depend on how many threads ran the build.

use crate::csr::Csr;
use crate::par::{chunk_count, chunk_ranges, SharedWriter};
use crate::{Edge, VertexId, Weight};
use rayon::prelude::*;

/// Below this many staged edges the build runs the cheap serial path (the
/// parallel path produces identical bytes; this only avoids rayon overhead
/// on the thousands of tiny graphs the test suite builds).
const PARALLEL_THRESHOLD: usize = 1 << 14;

/// Chunks smaller than this are not worth a degree histogram of their own.
const MIN_CHUNK: usize = 1 << 13;

/// How parallel (duplicate) edges are handled by [`GraphBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DedupPolicy {
    /// Sum the weights of parallel edges into one edge (default; what
    /// NetworKit's graph builder does and what the community kernels expect).
    #[default]
    SumWeights,
    /// Keep the maximum-weight copy.
    KeepMax,
    /// Keep parallel edges as distinct adjacency entries.
    KeepAll,
}

/// Incremental builder for undirected weighted [`Csr`] graphs.
///
/// ```
/// use gp_graph::builder::GraphBuilder;
/// use gp_graph::Edge;
///
/// let g = GraphBuilder::new(3)
///     .add_edges([Edge::new(0, 1, 2.0), Edge::new(1, 2, 0.5)])
///     .build();
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.edge_weight(1, 0), Some(2.0)); // symmetrized
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<Edge>,
    dedup: DedupPolicy,
}

impl GraphBuilder {
    /// A builder for a graph over `n` vertices (ids `0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            dedup: DedupPolicy::default(),
        }
    }

    /// Sets the duplicate-edge policy.
    pub fn dedup_policy(mut self, policy: DedupPolicy) -> Self {
        self.dedup = policy;
        self
    }

    /// Adds one undirected edge. Endpoints must be `< n`.
    pub fn add_edge(&mut self, e: Edge) -> &mut Self {
        debug_assert!((e.u as usize) < self.n && (e.v as usize) < self.n);
        self.edges.push(e);
        self
    }

    /// Adds a batch of edges (builder-style, consumes and returns `self`).
    pub fn add_edges(mut self, edges: impl IntoIterator<Item = Edge>) -> Self {
        self.edges.extend(edges);
        self
    }

    /// Number of raw (pre-dedup) edges currently staged.
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Builds the CSR: symmetrize, dedup per policy, counting-sort.
    ///
    /// Deterministic: the output bytes depend only on the staged edges and
    /// the dedup policy, never on the rayon pool size (see the module docs
    /// for how each parallel pass preserves the serial edge order).
    pub fn build(self) -> Csr {
        let n = self.n;
        let mut edges = self.edges;
        let parallel = edges.len() >= PARALLEL_THRESHOLD;

        // Canonicalize + validate (duplicates (u,v)/(v,u) must collide).
        let canonicalize = |e: &mut Edge| {
            assert!(
                (e.u as usize) < n && (e.v as usize) < n,
                "edge ({}, {}) out of range for n = {n}",
                e.u,
                e.v
            );
            assert!(e.w.is_finite() && e.w >= 0.0, "edge weights must be finite and non-negative");
            if e.u > e.v {
                std::mem::swap(&mut e.u, &mut e.v);
            }
        };
        if parallel {
            edges.par_iter_mut().with_min_len(MIN_CHUNK).for_each(canonicalize);
        } else {
            edges.iter_mut().for_each(canonicalize);
        }

        if self.dedup != DedupPolicy::KeepAll {
            // Total sort key: endpoint pair, then weight bits. Weights are
            // validated non-negative, so `to_bits` orders like `<=` and ties
            // are bitwise-identical edges — any sort (serial pdqsort or
            // parallel merge) yields the same byte sequence, and weight
            // aggregation folds duplicates in one fixed order.
            let sort_key = |e: &Edge| (((e.u as u64) << 32) | e.v as u64, e.w.to_bits());
            if parallel {
                edges.par_sort_unstable_by_key(sort_key);
            } else {
                edges.sort_unstable_by_key(sort_key);
            }
            edges = dedup_sorted(edges, self.dedup, parallel);
        }

        let (xadj, adj, weights) = counting_sort_csr(n, &edges, parallel);
        let mut g = Csr::from_raw(xadj, adj, weights);
        g.sort_adjacency();
        g
    }
}

/// Merges runs of equal `(u, v)` in a sorted edge list according to
/// `policy`. The parallel path splits the list into run-aligned chunks (a
/// chunk never starts mid-run), merges each chunk independently, and
/// concatenates in chunk order — byte-identical to the serial scan.
fn dedup_sorted(edges: Vec<Edge>, policy: DedupPolicy, parallel: bool) -> Vec<Edge> {
    let merge_run = |out: &mut Vec<Edge>, e: &Edge| match out.last_mut() {
        Some(last) if last.u == e.u && last.v == e.v => match policy {
            DedupPolicy::SumWeights => last.w += e.w,
            DedupPolicy::KeepMax => last.w = last.w.max(e.w),
            DedupPolicy::KeepAll => unreachable!(),
        },
        _ => out.push(*e),
    };
    if !parallel {
        let mut out: Vec<Edge> = Vec::with_capacity(edges.len());
        edges.iter().for_each(|e| merge_run(&mut out, e));
        return out;
    }

    // Align chunk starts to run boundaries so every (u, v) run is owned by
    // exactly one chunk.
    let same_pair = |a: &Edge, b: &Edge| a.u == b.u && a.v == b.v;
    let mut starts: Vec<usize> = Vec::new();
    for r in chunk_ranges(edges.len(), chunk_count(edges.len(), MIN_CHUNK)) {
        let mut s = r.start;
        while s < edges.len() && s > 0 && same_pair(&edges[s - 1], &edges[s]) {
            s += 1;
        }
        if starts.last() != Some(&s) && s < edges.len() {
            starts.push(s);
        }
    }
    let mut bounds = starts.clone();
    bounds.push(edges.len());
    let merged: Vec<Vec<Edge>> = bounds
        .windows(2)
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|w| {
            let mut out = Vec::with_capacity(w[1] - w[0]);
            edges[w[0]..w[1]].iter().for_each(|e| merge_run(&mut out, e));
            out
        })
        .collect();
    let mut out = Vec::with_capacity(merged.iter().map(Vec::len).sum());
    for part in merged {
        out.extend_from_slice(&part);
    }
    out
}

/// Two-pass parallel counting sort of canonical edges into CSR arrays.
/// Self-loops are stored once, other edges in both directions. The scatter
/// reproduces the serial edge order exactly: chunk `c`'s slots for vertex
/// `v` start at `xadj[v]` plus the degree contributions of chunks `< c`.
fn counting_sort_csr(
    n: usize,
    edges: &[Edge],
    parallel: bool,
) -> (Vec<u32>, Vec<VertexId>, Vec<Weight>) {
    let chunks = if parallel {
        chunk_count(edges.len(), MIN_CHUNK)
    } else {
        1
    };
    let ranges = chunk_ranges(edges.len(), chunks);

    // Pass 1: per-chunk degree histograms.
    let mut hists: Vec<Vec<u32>> = ranges
        .par_iter()
        .map(|r| {
            let mut degree = vec![0u32; n];
            for e in &edges[r.clone()] {
                degree[e.u as usize] += 1;
                if e.u != e.v {
                    degree[e.v as usize] += 1;
                }
            }
            degree
        })
        .collect();

    // Prefix sums: global offsets, then per-chunk start cursors (in-place:
    // hists[c][v] becomes the first slot chunk c writes for vertex v).
    let mut xadj = vec![0u32; n + 1];
    for v in 0..n {
        let total: u32 = hists.iter().map(|h| h[v]).sum();
        xadj[v + 1] = xadj[v] + total;
        let mut run = xadj[v];
        for h in hists.iter_mut() {
            let t = h[v];
            h[v] = run;
            run += t;
        }
    }

    let m = xadj[n] as usize;
    let mut adj = vec![0 as VertexId; m];
    let mut weights = vec![0.0 as Weight; m];
    {
        let adj_w = SharedWriter::new(&mut adj);
        let wgt_w = SharedWriter::new(&mut weights);
        ranges
            .into_par_iter()
            .zip(hists.par_iter_mut())
            .for_each(|(r, cursor)| {
                for e in &edges[r] {
                    let c = &mut cursor[e.u as usize];
                    // SAFETY: cursor ranges are disjoint across chunks and
                    // vertices by construction of the prefix sums.
                    unsafe {
                        adj_w.write(*c as usize, e.v);
                        wgt_w.write(*c as usize, e.w);
                    }
                    *c += 1;
                    if e.u != e.v {
                        let c = &mut cursor[e.v as usize];
                        unsafe {
                            adj_w.write(*c as usize, e.u);
                            wgt_w.write(*c as usize, e.w);
                        }
                        *c += 1;
                    }
                }
            });
    }
    (xadj, adj, weights)
}

/// Convenience: build an unweighted graph from `(u, v)` pairs.
///
/// ```
/// let g = gp_graph::builder::from_pairs(3, [(0, 1), (1, 2)]);
/// assert_eq!(g.degree(1), 2);
/// ```
pub fn from_pairs(n: usize, pairs: impl IntoIterator<Item = (VertexId, VertexId)>) -> Csr {
    GraphBuilder::new(n)
        .add_edges(pairs.into_iter().map(|(u, v)| Edge::unweighted(u, v)))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_sums_weights() {
        let g = GraphBuilder::new(2)
            .add_edges([Edge::new(0, 1, 1.0), Edge::new(1, 0, 2.5)])
            .build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(3.5));
        assert_eq!(g.edge_weight(1, 0), Some(3.5));
    }

    #[test]
    fn dedup_keep_max() {
        let g = GraphBuilder::new(2)
            .dedup_policy(DedupPolicy::KeepMax)
            .add_edges([Edge::new(0, 1, 1.0), Edge::new(1, 0, 2.5)])
            .build();
        assert_eq!(g.edge_weight(0, 1), Some(2.5));
    }

    #[test]
    fn keep_all_preserves_parallel_edges() {
        let g = GraphBuilder::new(2)
            .dedup_policy(DedupPolicy::KeepAll)
            .add_edges([Edge::new(0, 1, 1.0), Edge::new(0, 1, 1.0)])
            .build();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn self_loop_stored_once() {
        let g = GraphBuilder::new(1).add_edges([Edge::new(0, 0, 2.0)]).build();
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.neighbors(0), &[0]);
        assert_eq!(g.num_self_loops(), 1);
    }

    #[test]
    fn duplicate_self_loops_sum() {
        let g = GraphBuilder::new(1)
            .add_edges([Edge::new(0, 0, 2.0), Edge::new(0, 0, 3.0)])
            .build();
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.edge_weight(0, 0), Some(5.0));
    }

    #[test]
    fn from_pairs_builds_symmetric_graph() {
        let g = from_pairs(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(g.num_edges(), 4);
        assert!(g.is_symmetric());
        for u in g.vertices() {
            assert_eq!(g.degree(u), 2);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn build_panics_on_out_of_range() {
        GraphBuilder::new(2).add_edges([Edge::unweighted(0, 2)]).build();
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn build_panics_on_nan_weight() {
        GraphBuilder::new(2)
            .add_edges([Edge::new(0, 1, f32::NAN)])
            .build();
    }

    #[test]
    fn adjacency_is_sorted_after_build() {
        let g = from_pairs(5, [(0, 4), (0, 2), (0, 1), (0, 3)]);
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }
}
