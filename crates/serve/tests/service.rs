//! End-to-end queue-semantics tests: admission shedding, deadline
//! enforcement with partial results, and graceful drain on shutdown.
//!
//! All timing uses the diagnostic `sleep` kernel with generous margins
//! (tens of milliseconds between steps, job lengths in the hundreds), so
//! the assertions hold on slow CI machines.

use gp_serve::{Json, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A tiny blocking NDJSON client for one connection.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream.set_nodelay(true).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).unwrap();
        self.stream.write_all(b"\n").unwrap();
        self.stream.flush().unwrap();
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        assert!(!line.is_empty(), "connection closed before response");
        gp_serve::json::parse(line.trim()).expect("valid response JSON")
    }

    fn roundtrip(&mut self, line: &str) -> Json {
        self.send(line);
        self.recv()
    }
}

fn server(cfg: ServeConfig) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..cfg
    })
    .expect("bind loopback")
}

fn get_bool(v: &Json, key: &str) -> Option<bool> {
    v.get(key).and_then(Json::as_bool)
}

fn get_str<'a>(v: &'a Json, key: &str) -> Option<&'a str> {
    v.get(key).and_then(Json::as_str)
}

fn get_u64(v: &Json, key: &str) -> Option<u64> {
    v.get(key).and_then(Json::as_u64)
}

#[test]
fn queue_sheds_at_capacity_with_queue_full() {
    // One worker, queue depth 1: a running job plus a queued job fill the
    // service; the third concurrent job must shed.
    let server = server(ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..Default::default()
    });
    let mut running = Client::connect(&server);
    let mut queued = Client::connect(&server);
    let mut shed = Client::connect(&server);

    running.send(r#"{"kernel":"sleep","ms":400,"id":"running"}"#);
    std::thread::sleep(Duration::from_millis(60)); // worker picked it up
    queued.send(r#"{"kernel":"sleep","ms":400,"id":"queued"}"#);
    std::thread::sleep(Duration::from_millis(60)); // sits in the queue

    let refusal = shed.roundtrip(r#"{"kernel":"sleep","ms":1,"id":"third"}"#);
    assert_eq!(get_bool(&refusal, "ok"), Some(false));
    assert_eq!(get_str(&refusal, "error"), Some("queue_full"));
    assert_eq!(get_u64(&refusal, "code"), Some(503));
    assert_eq!(get_str(&refusal, "id"), Some("third"));

    // The admitted jobs still complete in order.
    let first = running.recv();
    assert_eq!(get_bool(&first, "ok"), Some(true));
    assert_eq!(get_str(&first, "id"), Some("running"));
    let second = queued.recv();
    assert_eq!(get_bool(&second, "ok"), Some(true));
    assert_eq!(get_str(&second, "id"), Some("queued"));

    let stats = server.shutdown();
    assert_eq!(get_u64(&stats, "served"), Some(2));
    assert_eq!(get_u64(&stats, "shed"), Some(1));
}

#[test]
fn expired_deadline_returns_partial_result_marked_timed_out() {
    let server = server(ServeConfig {
        workers: 1,
        ..Default::default()
    });
    let mut c = Client::connect(&server);

    // The sleep kernel checks its deadline every 1 ms slice: 500 ms of work
    // under a 30 ms budget must come back early and partial.
    let v = c.roundtrip(r#"{"kernel":"sleep","ms":500,"deadline_ms":30,"id":"dl"}"#);
    assert_eq!(get_bool(&v, "ok"), Some(true), "{v}");
    assert_eq!(get_bool(&v, "timed_out"), Some(true), "{v}");
    assert_eq!(get_bool(&v, "converged"), Some(false), "{v}");
    let slept = get_u64(&v, "rounds").unwrap();
    assert!(slept < 500, "partial progress expected, slept {slept}");

    // A real kernel under an impossible 1 ms deadline: the cooperative
    // cancellation hook stops it at a round boundary, and the truncated
    // response still carries the full envelope.
    let v = c.roundtrip(
        r#"{"kernel":"louvain","graph":{"rmat":{"scale":12,"seed":3}},"deadline_ms":1,"id":"lv"}"#,
    );
    assert_eq!(get_bool(&v, "ok"), Some(true), "{v}");
    assert_eq!(get_bool(&v, "timed_out"), Some(true), "{v}");
    assert_eq!(get_bool(&v, "converged"), Some(false), "{v}");
    assert!(get_u64(&v, "communities").is_some(), "{v}");

    let stats = server.shutdown();
    assert_eq!(get_u64(&stats, "served"), Some(2));
    assert_eq!(get_u64(&stats, "timed_out"), Some(2));
}

#[test]
fn generous_deadline_leaves_results_untouched() {
    let server = server(ServeConfig {
        workers: 1,
        ..Default::default()
    });
    let mut c = Client::connect(&server);
    let free = c.roundtrip(r#"{"kernel":"color","graph":"mesh:w=16,seed=1"}"#);
    let bounded =
        c.roundtrip(r#"{"kernel":"color","graph":"mesh:w=16,seed=1","seed":1,"deadline_ms":60000}"#);
    assert_eq!(get_bool(&bounded, "timed_out"), Some(false));
    assert_eq!(get_u64(&bounded, "num_colors"), get_u64(&free, "num_colors"));
    assert_eq!(get_u64(&bounded, "rounds"), get_u64(&free, "rounds"));
    server.shutdown();
}

#[test]
fn shutdown_drains_in_flight_jobs_and_rejects_new_ones() {
    let server = server(ServeConfig {
        workers: 1,
        queue_depth: 4,
        ..Default::default()
    });
    let mut busy = Client::connect(&server);
    let mut late = Client::connect(&server);

    busy.send(r#"{"kernel":"sleep","ms":250,"id":"inflight"}"#);
    std::thread::sleep(Duration::from_millis(60)); // job reached the worker

    // Run shutdown on another thread: it blocks until the worker drains.
    let drain = std::thread::spawn(move || server.shutdown());
    std::thread::sleep(Duration::from_millis(60)); // draining flag is up

    // A request arriving mid-drain is refused as retryable shutting_down.
    let refusal = late.roundtrip(r#"{"kernel":"sleep","ms":1,"id":"late"}"#);
    assert_eq!(get_str(&refusal, "error"), Some("shutting_down"), "{refusal}");
    assert_eq!(get_u64(&refusal, "code"), Some(503));

    // The in-flight job's response is written before shutdown returns.
    let v = busy.recv();
    assert_eq!(get_bool(&v, "ok"), Some(true), "{v}");
    assert_eq!(get_str(&v, "id"), Some("inflight"));
    assert_eq!(get_bool(&v, "timed_out"), Some(false), "{v}");

    let stats = drain.join().unwrap();
    assert_eq!(get_u64(&stats, "served"), Some(1), "{stats}");
    assert_eq!(get_u64(&stats, "rejected"), Some(1), "{stats}");
}

#[test]
fn stats_probe_reports_counters_and_latency() {
    let server = server(ServeConfig {
        workers: 2,
        ..Default::default()
    });
    let mut c = Client::connect(&server);
    for _ in 0..3 {
        let v = c.roundtrip(r#"{"kernel":"labelprop","graph":"mesh:w=12,seed=2"}"#);
        assert_eq!(get_bool(&v, "ok"), Some(true));
    }
    let probe = c.roundtrip(r#"{"stats":true}"#);
    assert_eq!(get_bool(&probe, "ok"), Some(true));
    let stats = probe.get("stats").expect("stats body");
    assert_eq!(get_u64(stats, "received"), Some(3));
    assert_eq!(get_u64(stats, "served"), Some(3));
    assert_eq!(get_u64(stats, "stats_probes"), Some(1));
    // Identical requests: 2 of 3 are result-cache hits.
    let rc = stats.get("result_cache").unwrap();
    assert_eq!(get_u64(rc, "hits"), Some(2), "{probe}");
    assert_eq!(get_u64(rc, "misses"), Some(1), "{probe}");
    let latency = stats.get("latency").and_then(|l| l.get("labelprop")).unwrap();
    assert_eq!(get_u64(latency, "count"), Some(3), "{probe}");
    server.shutdown();
}

#[test]
fn draining_connections_see_clean_eof_after_shutdown() {
    let server = server(ServeConfig {
        workers: 1,
        ..Default::default()
    });
    let mut idle = Client::connect(&server);
    let v = idle.roundtrip(r#"{"kernel":"sleep","ms":1}"#);
    assert_eq!(get_bool(&v, "ok"), Some(true));
    server.shutdown();
    // The socket is shut down server-side; the next read is EOF, not a hang.
    let mut line = String::new();
    let n = idle.reader.read_line(&mut line).unwrap_or(0);
    assert_eq!(n, 0, "expected EOF after shutdown, got {line:?}");
}
