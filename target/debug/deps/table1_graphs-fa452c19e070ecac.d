/root/repo/target/debug/deps/table1_graphs-fa452c19e070ecac.d: crates/bench/src/bin/table1_graphs.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_graphs-fa452c19e070ecac.rmeta: crates/bench/src/bin/table1_graphs.rs Cargo.toml

crates/bench/src/bin/table1_graphs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
