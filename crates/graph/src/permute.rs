//! Vertex reordering.
//!
//! OVPL preprocessing reorders the graph so color groups are contiguous; the
//! kernels then need the permuted CSR, and results must be mapped back to
//! original ids. A permutation `perm` maps *old* id → *new* id.

use crate::csr::Csr;
use crate::VertexId;

/// Validates that `perm` is a permutation of `0..n`.
pub fn is_permutation(perm: &[u32]) -> bool {
    let n = perm.len();
    let mut seen = vec![false; n];
    for &p in perm {
        if p as usize >= n || seen[p as usize] {
            return false;
        }
        seen[p as usize] = true;
    }
    true
}

/// Inverts a permutation: `inv[perm[i]] = i`.
pub fn invert(perm: &[u32]) -> Vec<u32> {
    debug_assert!(is_permutation(perm));
    let mut inv = vec![0u32; perm.len()];
    for (old, &new) in perm.iter().enumerate() {
        inv[new as usize] = old as u32;
    }
    inv
}

/// Applies `perm` (old → new) to the graph, producing the relabeled CSR with
/// sorted adjacency.
pub fn apply_permutation(g: &Csr, perm: &[u32]) -> Csr {
    assert_eq!(perm.len(), g.num_vertices(), "permutation size mismatch");
    debug_assert!(is_permutation(perm));
    let n = g.num_vertices();
    let inv = invert(perm);

    let mut xadj = vec![0u32; n + 1];
    for new in 0..n {
        let old = inv[new] as VertexId;
        xadj[new + 1] = xadj[new] + g.degree(old) as u32;
    }
    let m = xadj[n] as usize;
    let mut adj = vec![0 as VertexId; m];
    let mut weights = vec![0.0f32; m];
    for new in 0..n {
        let old = inv[new] as VertexId;
        let base = xadj[new] as usize;
        for (i, (v, w)) in g.edges_of(old).enumerate() {
            adj[base + i] = perm[v as usize];
            weights[base + i] = w;
        }
    }
    let mut out = Csr::from_raw(xadj, adj, weights);
    out.sort_adjacency();
    out
}

/// Maps per-vertex values (e.g. community assignments) on the *permuted*
/// graph back to original vertex order.
pub fn unpermute_values<T: Copy + Default>(values: &[T], perm: &[u32]) -> Vec<T> {
    assert_eq!(values.len(), perm.len());
    let mut out = vec![T::default(); values.len()];
    for (old, &new) in perm.iter().enumerate() {
        out[old] = values[new as usize];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_pairs;

    #[test]
    fn identity_permutation() {
        let g = from_pairs(4, [(0, 1), (1, 2), (2, 3)]);
        let perm: Vec<u32> = (0..4).collect();
        assert_eq!(apply_permutation(&g, &perm), g);
    }

    #[test]
    fn reversal_preserves_structure() {
        let g = from_pairs(4, [(0, 1), (1, 2), (2, 3)]);
        let perm = vec![3, 2, 1, 0];
        let h = apply_permutation(&g, &perm);
        assert_eq!(h.num_edges(), g.num_edges());
        // old edge (0,1) is new edge (3,2)
        assert!(h.has_edge(3, 2));
        assert!(h.has_edge(1, 0));
        assert!(h.is_symmetric());
    }

    #[test]
    fn weights_travel_with_edges() {
        let g = crate::builder::GraphBuilder::new(3)
            .add_edges([crate::Edge::new(0, 1, 5.0), crate::Edge::new(1, 2, 7.0)])
            .build();
        let perm = vec![2, 0, 1];
        let h = apply_permutation(&g, &perm);
        assert_eq!(h.edge_weight(2, 0), Some(5.0));
        assert_eq!(h.edge_weight(0, 1), Some(7.0));
    }

    #[test]
    fn invert_roundtrip() {
        let perm = vec![2, 0, 3, 1];
        let inv = invert(&perm);
        for i in 0..perm.len() {
            assert_eq!(inv[perm[i] as usize], i as u32);
        }
    }

    #[test]
    fn unpermute_restores_original_order() {
        let perm = vec![2u32, 0, 1];
        // values indexed by NEW ids
        let values = vec![10i32, 20, 30];
        // old 0 -> new 2 (30), old 1 -> new 0 (10), old 2 -> new 1 (20)
        assert_eq!(unpermute_values(&values, &perm), vec![30, 10, 20]);
    }

    #[test]
    fn is_permutation_detects_duplicates() {
        assert!(is_permutation(&[0, 1, 2]));
        assert!(!is_permutation(&[0, 0, 2]));
        assert!(!is_permutation(&[0, 1, 3]));
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_size_panics() {
        let g = from_pairs(3, [(0, 1)]);
        apply_permutation(&g, &[0, 1]);
    }
}
