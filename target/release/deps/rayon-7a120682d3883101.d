/root/repo/target/release/deps/rayon-7a120682d3883101.d: .devstubs/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-7a120682d3883101.rlib: .devstubs/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-7a120682d3883101.rmeta: .devstubs/rayon/src/lib.rs

.devstubs/rayon/src/lib.rs:
