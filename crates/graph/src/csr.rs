//! Weighted compressed-sparse-row graph representation.
//!
//! The CSR arrays are the exact layout the vectorized kernels index with
//! AVX-512 gathers: `adj` holds 32-bit neighbor ids contiguously per vertex
//! (so 16 neighbors load with one `vmovdqu32`), and `weights` mirrors `adj`
//! one-to-one (so the corresponding edge weights load with one `vmovups`).

use crate::{VertexId, Weight};
use rayon::prelude::*;

/// Arrays below this length are validated/sorted serially (identical
/// results; avoids rayon overhead on the tiny graphs tests build).
const PARALLEL_THRESHOLD: usize = 1 << 15;

/// An undirected weighted graph in CSR form.
///
/// Each undirected edge `{u, v}` with `u != v` is stored twice (once in each
/// endpoint's adjacency list); a self-loop `{u, u}` is stored once. This is
/// the NetworKit convention the paper's community-detection codes assume.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    /// Offsets into `adj`/`weights`; length `n + 1`.
    xadj: Vec<u32>,
    /// Concatenated adjacency lists; length `xadj[n]`.
    adj: Vec<VertexId>,
    /// Edge weights aligned with `adj`.
    weights: Vec<Weight>,
}

impl Csr {
    /// Builds a CSR directly from raw arrays.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent: `xadj` must be non-empty and
    /// non-decreasing, its last entry must equal `adj.len()`, `weights` must
    /// be as long as `adj`, and every neighbor id must be `< n`.
    pub fn from_raw(xadj: Vec<u32>, adj: Vec<VertexId>, weights: Vec<Weight>) -> Self {
        assert!(!xadj.is_empty(), "xadj must have at least one entry");
        assert_eq!(
            *xadj.last().unwrap() as usize,
            adj.len(),
            "xadj must terminate at adj.len()"
        );
        assert_eq!(adj.len(), weights.len(), "weights must mirror adj");
        let n = (xadj.len() - 1) as u32;
        if adj.len() >= PARALLEL_THRESHOLD {
            assert!(
                xadj.par_windows(2).all(|w| w[0] <= w[1]),
                "xadj must be non-decreasing"
            );
            assert!(
                adj.par_iter().all(|&v| v < n),
                "neighbor ids must be < num_vertices"
            );
        } else {
            assert!(
                xadj.windows(2).all(|w| w[0] <= w[1]),
                "xadj must be non-decreasing"
            );
            assert!(
                adj.iter().all(|&v| v < n),
                "neighbor ids must be < num_vertices"
            );
        }
        Csr { xadj, adj, weights }
    }

    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        Csr {
            xadj: vec![0; n + 1],
            adj: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Number of *undirected* edges. Self-loops count once; every other edge
    /// is stored twice, so this is `(stored - loops) / 2 + loops`.
    pub fn num_edges(&self) -> usize {
        let loops = self.num_self_loops();
        (self.adj.len() - loops) / 2 + loops
    }

    /// Number of stored (directed) adjacency entries, i.e. `xadj[n]`.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.adj.len()
    }

    /// Mutable access to the adjacency and weight arrays, for the in-place
    /// slot rewrites of [`crate::delta::DeltaCsr`]. `xadj` stays immutable —
    /// row extents are fixed between compactions — so offsets can never go
    /// inconsistent; the caller must keep every adjacency entry a valid
    /// vertex id (`delta` only ever writes ids it validated on ingest).
    pub(crate) fn arrays_mut(&mut self) -> (&mut [VertexId], &mut [Weight]) {
        (&mut self.adj, &mut self.weights)
    }

    /// Number of self-loop entries.
    pub fn num_self_loops(&self) -> usize {
        (0..self.num_vertices() as u32)
            .map(|u| self.neighbors(u).iter().filter(|&&v| v == u).count())
            .sum()
    }

    /// Degree of `u` (number of stored adjacency entries, self-loop counted
    /// once).
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        (self.xadj[u as usize + 1] - self.xadj[u as usize]) as usize
    }

    /// The neighbor slice of `u`. This is the pointer handed to vector loads.
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> &[VertexId] {
        &self.adj[self.xadj[u as usize] as usize..self.xadj[u as usize + 1] as usize]
    }

    /// The edge-weight slice of `u`, aligned with [`Csr::neighbors`].
    #[inline]
    pub fn weights_of(&self, u: VertexId) -> &[Weight] {
        &self.weights[self.xadj[u as usize] as usize..self.xadj[u as usize + 1] as usize]
    }

    /// Iterator over `(neighbor, weight)` pairs of `u`.
    #[inline]
    pub fn edges_of(&self, u: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.neighbors(u)
            .iter()
            .copied()
            .zip(self.weights_of(u).iter().copied())
    }

    /// Iterator over all vertex ids.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices() as VertexId
    }

    /// Raw offset array (length `n + 1`).
    #[inline]
    pub fn xadj(&self) -> &[u32] {
        &self.xadj
    }

    /// Raw adjacency array.
    #[inline]
    pub fn adj(&self) -> &[VertexId] {
        &self.adj
    }

    /// Raw weight array.
    #[inline]
    pub fn weights(&self) -> &[Weight] {
        &self.weights
    }

    /// Total edge weight ω(E): each undirected edge counted once, self-loops
    /// counted once.
    pub fn total_weight(&self) -> f64 {
        let mut twice: f64 = 0.0;
        let mut loops: f64 = 0.0;
        for u in self.vertices() {
            for (v, w) in self.edges_of(u) {
                if v == u {
                    loops += w as f64;
                } else {
                    twice += w as f64;
                }
            }
        }
        twice / 2.0 + loops
    }

    /// Weighted degree of a vertex as the paper defines *volume*:
    /// `vol(u) = Σ_{v∈N(u)} ω(u,v) + 2·ω(u,u)`
    /// (the self-loop weight is counted twice).
    pub fn volume(&self, u: VertexId) -> f64 {
        let mut vol = 0.0f64;
        for (v, w) in self.edges_of(u) {
            vol += w as f64;
            if v == u {
                vol += w as f64;
            }
        }
        vol
    }

    /// Sum of all vertex volumes; equals `2 · ω(E)` on any graph.
    pub fn total_volume(&self) -> f64 {
        self.vertices().map(|u| self.volume(u)).sum()
    }

    /// Maximum degree Δ.
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// Average degree δ = stored arcs / n, rounded the way Table 1 reports it.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.adj.len() as f64 / self.num_vertices() as f64
        }
    }

    /// True if `v` appears in the adjacency list of `u`. O(deg(u)).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).contains(&v)
    }

    /// Weight of edge `(u, v)` if present (first occurrence).
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        self.edges_of(u).find(|&(x, _)| x == v).map(|(_, w)| w)
    }

    /// Checks the structural invariant that the graph is symmetric: `(u,v)`
    /// stored iff `(v,u)` stored with the same weight. Cost O(Σ deg²) worst
    /// case; intended for tests and debug assertions.
    pub fn is_symmetric(&self) -> bool {
        for u in self.vertices() {
            for (v, w) in self.edges_of(u) {
                if v == u {
                    continue;
                }
                match self.edge_weight(v, u) {
                    Some(w2) if (w2 - w).abs() <= 1e-6 * w.abs().max(1.0) => {}
                    _ => return false,
                }
            }
        }
        true
    }

    /// Sorts every adjacency list by neighbor id (stable for weights).
    /// Deterministic layouts make runs reproducible; per-vertex lists are
    /// independent, so large graphs sort all lists in parallel (the result
    /// is identical for any thread count).
    pub fn sort_adjacency(&mut self) {
        let n = self.xadj.len() - 1;
        let sort_list = |adj: &mut [VertexId], weights: &mut [Weight]| {
            if adj.len() > 1 && !adj.windows(2).all(|p| p[0] <= p[1]) {
                let mut pairs: Vec<(VertexId, Weight)> = adj
                    .iter()
                    .copied()
                    .zip(weights.iter().copied())
                    .collect();
                pairs.sort_by_key(|&(v, _)| v);
                for (i, (v, w)) in pairs.into_iter().enumerate() {
                    adj[i] = v;
                    weights[i] = w;
                }
            }
        };
        if self.adj.len() >= PARALLEL_THRESHOLD {
            // Split the flat arrays into disjoint per-vertex slices.
            let mut slices: Vec<(&mut [VertexId], &mut [Weight])> = Vec::with_capacity(n);
            let mut adj_rest: &mut [VertexId] = &mut self.adj;
            let mut w_rest: &mut [Weight] = &mut self.weights;
            for u in 0..n {
                let len = (self.xadj[u + 1] - self.xadj[u]) as usize;
                let (a, ar) = adj_rest.split_at_mut(len);
                let (w, wr) = w_rest.split_at_mut(len);
                adj_rest = ar;
                w_rest = wr;
                slices.push((a, w));
            }
            slices
                .into_par_iter()
                .with_min_len(256)
                .for_each(|(a, w)| sort_list(a, w));
        } else {
            for u in 0..n {
                let lo = self.xadj[u] as usize;
                let hi = self.xadj[u + 1] as usize;
                let (a, w) = (&mut self.adj[lo..hi], &mut self.weights[lo..hi]);
                // Split borrows: `sort_list` cannot take two overlapping
                // `&mut self` ranges, so reborrow per vertex.
                sort_list(a, w);
            }
        }
    }

    /// Approximate heap footprint in bytes, used by the OVPL memory reports.
    pub fn memory_bytes(&self) -> usize {
        self.xadj.len() * 4 + self.adj.len() * 4 + self.weights.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::Edge;

    fn triangle() -> Csr {
        GraphBuilder::new(3)
            .add_edges([
                Edge::unweighted(0, 1),
                Edge::unweighted(1, 2),
                Edge::unweighted(0, 2),
            ])
            .build()
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.total_weight(), 0.0);
    }

    #[test]
    fn zero_vertex_graph() {
        let g = Csr::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    fn triangle_basic_stats() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.max_degree(), 2);
        assert!((g.avg_degree() - 2.0).abs() < 1e-9);
        assert!(g.is_symmetric());
    }

    #[test]
    fn triangle_volumes() {
        let g = triangle();
        for u in g.vertices() {
            assert_eq!(g.volume(u), 2.0);
        }
        assert_eq!(g.total_weight(), 3.0);
        assert_eq!(g.total_volume(), 6.0);
    }

    #[test]
    fn self_loop_volume_counted_twice() {
        let g = GraphBuilder::new(2)
            .add_edges([Edge::unweighted(0, 1), Edge::new(0, 0, 3.0)])
            .build();
        // vol(0) = ω(0,1) + 2·ω(0,0) = 1 + 6 = 7
        assert_eq!(g.volume(0), 7.0);
        assert_eq!(g.volume(1), 1.0);
        // ω(E) = 1 + 3 = 4; total volume = 2ω(E) = 8.
        assert_eq!(g.total_weight(), 4.0);
        assert_eq!(g.total_volume(), 8.0);
        assert_eq!(g.num_self_loops(), 1);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn neighbors_and_weights_align() {
        let g = GraphBuilder::new(3)
            .add_edges([Edge::new(0, 1, 2.5), Edge::new(0, 2, 0.5)])
            .build();
        let ns = g.neighbors(0);
        let ws = g.weights_of(0);
        assert_eq!(ns.len(), 2);
        assert_eq!(ws.len(), 2);
        for (v, w) in g.edges_of(0) {
            assert_eq!(g.edge_weight(0, v), Some(w));
        }
    }

    #[test]
    fn edge_weight_missing() {
        let g = triangle();
        assert_eq!(g.edge_weight(0, 0), None);
    }

    #[test]
    fn sort_adjacency_orders_and_keeps_weights() {
        let mut g = GraphBuilder::new(4)
            .add_edges([
                Edge::new(0, 3, 3.0),
                Edge::new(0, 1, 1.0),
                Edge::new(0, 2, 2.0),
            ])
            .build();
        g.sort_adjacency();
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert_eq!(g.weights_of(0), &[1.0, 2.0, 3.0]);
        assert!(g.is_symmetric());
    }

    #[test]
    #[should_panic(expected = "xadj must terminate")]
    fn from_raw_rejects_bad_terminator() {
        Csr::from_raw(vec![0, 2], vec![0], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "neighbor ids")]
    fn from_raw_rejects_out_of_range_neighbor() {
        Csr::from_raw(vec![0, 1], vec![5], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn from_raw_rejects_decreasing_offsets() {
        Csr::from_raw(vec![0, 2, 1, 3], vec![0, 1, 2], vec![1.0; 3]);
    }

    #[test]
    fn memory_bytes_counts_all_arrays() {
        let g = triangle();
        assert_eq!(g.memory_bytes(), 4 * 4 + 6 * 4 + 6 * 4);
    }
}
