/root/repo/target/debug/deps/fig_rmat_louvain-ea295c4347a8b72e.d: crates/bench/src/bin/fig_rmat_louvain.rs Cargo.toml

/root/repo/target/debug/deps/libfig_rmat_louvain-ea295c4347a8b72e.rmeta: crates/bench/src/bin/fig_rmat_louvain.rs Cargo.toml

crates/bench/src/bin/fig_rmat_louvain.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
