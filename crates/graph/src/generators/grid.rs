//! Lattice and road-network-like generators.
//!
//! Road networks (asia, belgium, europe, germany, luxembourg, netherlands,
//! roadNet-PA in Table 1) have average degree ≈ 2, tiny maximum degree, and
//! strong locality. We model them as 2-D lattices with random edge
//! *thinning* (dropping lattice edges until the target average degree is
//! reached) plus a small number of random "highway" shortcuts, which
//! reproduces the degree profile and the locality the paper's cache
//! observations depend on.

use crate::builder::{from_pairs, GraphBuilder};
use crate::csr::Csr;
use crate::Edge;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A full `rows × cols` 4-neighbor lattice.
pub fn grid2d(rows: usize, cols: usize) -> Csr {
    assert!(rows >= 1 && cols >= 1);
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    let mut pairs = Vec::with_capacity(2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                pairs.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                pairs.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    from_pairs(rows * cols, pairs)
}

/// A 3-D 27-point-stencil lattice: each vertex joins every vertex within
/// Chebyshev distance 1 (interior degree 26). This is the structure of the
/// nlpkkt-class optimization matrices (3-D PDE-constrained KKT systems):
/// near-regular degrees *and* strong spatial locality, which is what makes
/// them the best case for OVPL in the paper's Figure 13.
pub fn stencil3d(side: usize) -> Csr {
    assert!(side >= 2);
    let id = |x: usize, y: usize, z: usize| (x * side * side + y * side + z) as u32;
    let n = side * side * side;
    let mut pairs = Vec::with_capacity(n * 13);
    for x in 0..side {
        for y in 0..side {
            for z in 0..side {
                let u = id(x, y, z);
                for dx in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dz in -1i64..=1 {
                            // Emit each undirected edge once: only the
                            // lexicographically-positive half of the 26
                            // offsets.
                            if (dx, dy, dz) <= (0, 0, 0) {
                                continue;
                            }
                            let nx = x as i64 + dx;
                            let ny = y as i64 + dy;
                            let nz = z as i64 + dz;
                            let range = 0..side as i64;
                            if range.contains(&nx) && range.contains(&ny) && range.contains(&nz) {
                                pairs.push((u, id(nx as usize, ny as usize, nz as usize)));
                            }
                        }
                    }
                }
            }
        }
    }
    from_pairs(side * side * side, pairs)
}

/// A road-network-like graph: thinned lattice + sparse shortcuts.
///
/// `avg_degree_target` is the stored-arc average degree (Table 1's δ); road
/// networks use ≈ 2. Determinstic per `seed`.
pub fn road_network(rows: usize, cols: usize, avg_degree_target: f64, seed: u64) -> Csr {
    assert!(rows >= 2 && cols >= 2);
    assert!(avg_degree_target > 0.0 && avg_degree_target <= 4.0);
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // Keep each lattice edge with probability p chosen so the expected
    // stored-arc degree matches the target: full lattice has ~2 edges per
    // vertex => stored degree ~4.
    let full_edges = (rows * (cols - 1) + (rows - 1) * cols) as f64;
    let target_edges = avg_degree_target * n as f64 / 2.0;
    let keep = (target_edges / full_edges).min(1.0);

    let mut builder = GraphBuilder::new(n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols && rng.gen::<f64>() < keep {
                builder.add_edge(Edge::unweighted(id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows && rng.gen::<f64>() < keep {
                builder.add_edge(Edge::unweighted(id(r, c), id(r + 1, c)));
            }
        }
    }
    // ~0.1% shortcut "highways" linking random locations.
    let shortcuts = (n / 1000).max(1);
    for _ in 0..shortcuts {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            builder.add_edge(Edge::unweighted(u, v));
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_symmetric_and_right_size() {
        let g = grid2d(4, 5);
        assert_eq!(g.num_vertices(), 20);
        assert_eq!(g.num_edges(), 4 * 4 + 3 * 5);
        assert!(g.is_symmetric());
    }

    #[test]
    fn grid_corner_degree() {
        let g = grid2d(3, 3);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(4), 4); // center
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn grid_1xn_is_a_path() {
        let g = grid2d(1, 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn stencil3d_interior_degree_is_26() {
        let g = stencil3d(5);
        assert_eq!(g.num_vertices(), 125);
        // Center vertex has the full 27-point stencil minus itself.
        let center = (2 * 25 + 2 * 5 + 2) as u32;
        assert_eq!(g.degree(center), 26);
        // Corner vertex sees only the 2x2x2 cube minus itself.
        assert_eq!(g.degree(0), 7);
        assert!(g.is_symmetric());
    }

    #[test]
    fn stencil3d_near_regular_at_scale() {
        let g = stencil3d(10);
        let avg = g.avg_degree();
        assert!(avg > 20.0, "avg {avg}");
        assert_eq!(g.max_degree(), 26);
    }

    #[test]
    fn road_network_hits_degree_target() {
        let g = road_network(100, 100, 2.2, 11);
        let avg = g.avg_degree();
        assert!(
            (avg - 2.2).abs() < 0.3,
            "average degree {avg} too far from target 2.2"
        );
        assert!(g.max_degree() <= 10);
    }

    #[test]
    fn road_network_deterministic() {
        assert_eq!(road_network(30, 30, 2.0, 5), road_network(30, 30, 2.0, 5));
        assert_ne!(road_network(30, 30, 2.0, 5), road_network(30, 30, 2.0, 6));
    }
}
