/root/repo/target/debug/deps/backend_equivalence-c6b0b6aa42061484.d: crates/simd/tests/backend_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libbackend_equivalence-c6b0b6aa42061484.rmeta: crates/simd/tests/backend_equivalence.rs Cargo.toml

crates/simd/tests/backend_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
