//! `gpart` — command-line front end for the graph-partitioning kernels.
//!
//! ```text
//! gpart stats     <graph>                     print Table-1-style statistics
//! gpart generate  <family> <out> [args…]      write a synthetic graph
//! gpart convert   <in> <out>                  convert between formats
//! gpart color     <graph> [--out f]           speculative greedy coloring
//! gpart louvain   <graph> [--variant v] [--out f]
//! gpart labelprop <graph> [--out f]
//! gpart update    <graph> [--kernel k] [--edits f | --steps n --churn r]
//! gpart partition <graph> [--k n] [--out f]
//! gpart slpa      <graph> [--threshold r] [--out f]
//! gpart serve     [--addr a] [--queue-depth n] [--deadline-ms n] …
//! ```
//!
//! Formats are inferred from extensions: `.el`/`.txt` edge list,
//! `.graph`/`.metis` METIS, `.mtx` Matrix Market.
//!
//! A global `--threads n` flag (any position, or the `GP_THREADS`
//! environment variable) runs the whole command inside a scoped rayon pool
//! of `n` workers. Graph generation, CSR construction, and coarsening are
//! deterministic for any pool size, so the knob trades wall-clock only.

mod commands;
mod io;

use std::process::ExitCode;

/// Parses a thread-count value: a positive integer. `0` and garbage are
/// rejected with an explicit error (silently ignoring them hid typos like
/// `GP_THREADS=four`); omit the knob entirely to use the ambient pool.
fn parse_thread_count(source: &str, v: &str) -> Result<usize, String> {
    match v.trim().parse::<usize>() {
        Ok(0) => Err(format!(
            "bad {source} value `{v}`: thread count must be ≥ 1 (omit it to use the ambient pool)"
        )),
        Ok(t) => Ok(t),
        Err(e) => Err(format!("bad {source} value `{v}`: {e}")),
    }
}

/// Extracts the global `--threads n` flag (any position) and returns the
/// thread count plus the remaining arguments. Falls back to the
/// `GP_THREADS` environment variable; with neither set, 0 is returned,
/// meaning "use the ambient rayon pool".
fn take_threads(args: Vec<String>) -> Result<(usize, Vec<String>), String> {
    let mut threads = None;
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--threads" {
            let v = it
                .next()
                .ok_or_else(|| "`--threads` needs a value".to_string())?;
            threads = Some(parse_thread_count("--threads", &v)?);
        } else {
            rest.push(a);
        }
    }
    let threads = match threads {
        Some(t) => t,
        None => match std::env::var("GP_THREADS") {
            Ok(v) if !v.trim().is_empty() => parse_thread_count("GP_THREADS", &v)?,
            _ => 0,
        },
    };
    Ok((threads, rest))
}

fn dispatch(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("stats") => commands::stats(&args[1..]),
        Some("generate") => commands::generate(&args[1..]),
        Some("convert") => commands::convert(&args[1..]),
        Some("color") => commands::color(&args[1..]),
        Some("louvain") => commands::louvain(&args[1..]),
        Some("labelprop") => commands::labelprop(&args[1..]),
        Some("update") => commands::update(&args[1..]),
        Some("batch") => commands::batch(&args[1..]),
        Some("partition") => commands::partition(&args[1..]),
        Some("slpa") => commands::slpa(&args[1..]),
        Some("serve") => commands::serve(&args[1..]),
        Some("--version") | Some("-V") => {
            println!("gpart {}", env!("CARGO_PKG_VERSION"));
            let isa = gp_core::backends::isa();
            println!(
                "isa: avx512f={} avx512cd={}",
                isa.avx512f as u8, isa.avx512cd as u8
            );
            for row in gp_core::api::Backend::available() {
                let avail = if row.available { "yes" } else { "no " };
                let via = match row.env_override {
                    Some(tag) => format!(" (via {tag})"),
                    None => String::new(),
                };
                println!(
                    "backend {:<8} available={avail} resolves-to={}{via}",
                    row.backend.name(),
                    row.resolves_to()
                );
            }
            Ok(())
        }
        Some("--help") | Some("-h") | None => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{}", commands::USAGE)),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = take_threads(args)
        .and_then(|(threads, rest)| gp_graph::par::with_threads(threads, || dispatch(&rest)));
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("gpart: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::take_threads;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn take_threads_extracts_flag_anywhere() {
        let (t, rest) = take_threads(args(&["color", "--threads", "4", "g.mtx"])).unwrap();
        assert_eq!(t, 4);
        assert_eq!(rest, args(&["color", "g.mtx"]));
    }

    #[test]
    fn take_threads_defaults_to_ambient() {
        // GP_THREADS may be set by the harness; only assert pass-through.
        let (_, rest) = take_threads(args(&["stats", "g.mtx"])).unwrap();
        assert_eq!(rest, args(&["stats", "g.mtx"]));
    }

    #[test]
    fn take_threads_rejects_garbage() {
        assert!(take_threads(args(&["--threads", "lots"])).is_err());
        assert!(take_threads(args(&["--threads"])).is_err());
    }

    #[test]
    fn take_threads_rejects_zero_with_guidance() {
        let err = take_threads(args(&["--threads", "0", "stats"])).unwrap_err();
        assert!(err.contains("must be ≥ 1"), "{err}");
        assert!(err.contains("--threads"), "{err}");
    }

    #[test]
    fn parse_thread_count_covers_env_source() {
        assert_eq!(super::parse_thread_count("GP_THREADS", " 8 "), Ok(8));
        let err = super::parse_thread_count("GP_THREADS", "four").unwrap_err();
        assert!(err.contains("GP_THREADS"), "{err}");
        assert!(super::parse_thread_count("GP_THREADS", "0").is_err());
    }
}
