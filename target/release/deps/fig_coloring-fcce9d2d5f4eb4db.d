/root/repo/target/release/deps/fig_coloring-fcce9d2d5f4eb4db.d: crates/bench/src/bin/fig_coloring.rs

/root/repo/target/release/deps/fig_coloring-fcce9d2d5f4eb4db: crates/bench/src/bin/fig_coloring.rs

crates/bench/src/bin/fig_coloring.rs:
