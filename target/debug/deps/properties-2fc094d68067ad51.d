/root/repo/target/debug/deps/properties-2fc094d68067ad51.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-2fc094d68067ad51.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
