/root/repo/target/debug/deps/gpart-b7b9e201ff534f6b.d: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/io.rs

/root/repo/target/debug/deps/gpart-b7b9e201ff534f6b: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/io.rs

crates/cli/src/main.rs:
crates/cli/src/commands.rs:
crates/cli/src/io.rs:
