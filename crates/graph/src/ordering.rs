//! Vertex orderings.
//!
//! The memory behaviour of every kernel in this repository depends on the
//! vertex numbering: gathers of `zeta[neighbor]` hit nearby cache lines when
//! neighbors have nearby ids. These orderings feed the locality ablation
//! (`ablation_ordering`) and give users the standard tools for preparing
//! real-world inputs, whose crawl orderings are often adversarial.
//!
//! All functions return a permutation `perm[old] = new` suitable for
//! [`crate::permute::apply_permutation`].

use crate::csr::Csr;
use crate::permute::is_permutation;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Orders vertices by degree; ties keep original relative order (stable).
pub fn degree_order(g: &Csr, ascending: bool) -> Vec<u32> {
    let n = g.num_vertices();
    let mut by_degree: Vec<u32> = (0..n as u32).collect();
    if ascending {
        by_degree.sort_by_key(|&u| g.degree(u));
    } else {
        by_degree.sort_by_key(|&u| std::cmp::Reverse(g.degree(u)));
    }
    let mut perm = vec![0u32; n];
    for (new, &old) in by_degree.iter().enumerate() {
        perm[old as usize] = new as u32;
    }
    debug_assert!(is_permutation(&perm));
    perm
}

/// Breadth-first ordering from the minimum-degree vertex of each component
/// (the forward pass of Cuthill–McKee). Neighbors enqueue in degree order,
/// which tightens the bandwidth like the classic algorithm.
pub fn bfs_order(g: &Csr) -> Vec<u32> {
    cuthill_mckee(g, false)
}

/// Reverse Cuthill–McKee: the BFS ordering reversed — the standard
/// bandwidth-reducing numbering for near-mesh matrices.
///
/// ```
/// use gp_graph::generators::grid2d;
/// use gp_graph::ordering::{average_edge_span, rcm_order};
/// use gp_graph::permute::apply_permutation;
///
/// let g = grid2d(8, 8);
/// let tightened = apply_permutation(&g, &rcm_order(&g));
/// assert!(average_edge_span(&tightened) <= average_edge_span(&g) + 1.0);
/// ```
pub fn rcm_order(g: &Csr) -> Vec<u32> {
    cuthill_mckee(g, true)
}

fn cuthill_mckee(g: &Csr, reverse: bool) -> Vec<u32> {
    let n = g.num_vertices();
    let mut visited = vec![false; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();

    // Deterministic component seeds: minimum degree, lowest id breaking ties.
    let mut seeds: Vec<u32> = (0..n as u32).collect();
    seeds.sort_by_key(|&u| (g.degree(u), u));

    for &seed in &seeds {
        if visited[seed as usize] {
            continue;
        }
        visited[seed as usize] = true;
        queue.push_back(seed);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            let mut nbrs: Vec<u32> = g
                .neighbors(u)
                .iter()
                .copied()
                .filter(|&v| !visited[v as usize])
                .collect();
            nbrs.sort_by_key(|&v| (g.degree(v), v));
            for v in nbrs {
                if !visited[v as usize] {
                    visited[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    if reverse {
        order.reverse();
    }
    let mut perm = vec![0u32; n];
    for (new, &old) in order.iter().enumerate() {
        perm[old as usize] = new as u32;
    }
    debug_assert!(is_permutation(&perm));
    perm
}

/// Uniformly random ordering (deterministic per seed) — the adversarial
/// baseline for locality experiments.
pub fn random_order(g: &Csr, seed: u64) -> Vec<u32> {
    let n = g.num_vertices();
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.shuffle(&mut ChaCha8Rng::seed_from_u64(seed));
    perm
}

/// Average |id(u) − id(v)| over all edges: the locality measure the
/// orderings optimize (lower = neighbors closer in memory).
pub fn average_edge_span(g: &Csr) -> f64 {
    let mut total = 0.0f64;
    let mut count = 0u64;
    for u in g.vertices() {
        for &v in g.neighbors(u) {
            if v > u {
                total += (v - u) as f64;
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_pairs;
    use crate::generators::{erdos_renyi, star, triangular_mesh};
    use crate::permute::apply_permutation;

    #[test]
    fn degree_order_sorts_degrees() {
        let g = star(6); // hub 0 has degree 5
        let perm = degree_order(&g, false);
        assert_eq!(perm[0], 0, "hub must come first in descending order");
        let perm_asc = degree_order(&g, true);
        assert_eq!(perm_asc[0], 5, "hub must come last in ascending order");
    }

    #[test]
    fn orders_are_permutations() {
        let g = erdos_renyi(80, 200, 3);
        for perm in [
            degree_order(&g, true),
            bfs_order(&g),
            rcm_order(&g),
            random_order(&g, 1),
        ] {
            assert!(is_permutation(&perm));
        }
    }

    #[test]
    fn rcm_reduces_edge_span_on_shuffled_mesh() {
        let g = triangular_mesh(20, 20, 7);
        // Adversarial start: random shuffle.
        let shuffled = apply_permutation(&g, &random_order(&g, 9));
        let span_bad = average_edge_span(&shuffled);
        let recovered = apply_permutation(&shuffled, &rcm_order(&shuffled));
        let span_good = average_edge_span(&recovered);
        assert!(
            span_good < span_bad / 3.0,
            "RCM should tighten spans: {span_good} vs {span_bad}"
        );
    }

    #[test]
    fn bfs_order_visits_components_contiguously() {
        let g = from_pairs(6, [(0, 1), (1, 2), (3, 4), (4, 5)]);
        let perm = bfs_order(&g);
        // Each component's new ids must form a contiguous range.
        let comp1: Vec<u32> = vec![perm[0], perm[1], perm[2]];
        let comp2: Vec<u32> = vec![perm[3], perm[4], perm[5]];
        let span = |v: &Vec<u32>| v.iter().max().unwrap() - v.iter().min().unwrap();
        assert_eq!(span(&comp1), 2);
        assert_eq!(span(&comp2), 2);
    }

    #[test]
    fn random_order_deterministic_per_seed() {
        let g = erdos_renyi(50, 100, 5);
        assert_eq!(random_order(&g, 4), random_order(&g, 4));
        assert_ne!(random_order(&g, 4), random_order(&g, 5));
    }

    #[test]
    fn edge_span_of_path_is_one() {
        let g = crate::generators::path(10);
        assert_eq!(average_edge_span(&g), 1.0);
    }
}
