/root/repo/target/debug/deps/fig_rmat_louvain-541afabfb64ba97a.d: crates/bench/src/bin/fig_rmat_louvain.rs

/root/repo/target/debug/deps/fig_rmat_louvain-541afabfb64ba97a: crates/bench/src/bin/fig_rmat_louvain.rs

crates/bench/src/bin/fig_rmat_louvain.rs:
