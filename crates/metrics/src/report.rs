//! Plain-text and CSV table emission for the figure binaries.
//!
//! Every experiment binary prints one [`Table`] whose rows mirror the
//! series of the corresponding paper figure, so EXPERIMENTS.md can quote the
//! output directly.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header arity.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: appends a row of displayable values.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                let _ = write!(s, "{:width$}", cell, width = widths[i]);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders a GitHub-flavored Markdown table (for EXPERIMENTS.md-style
    /// documents).
    pub fn to_markdown(&self) -> String {
        let escape = |cell: &str| cell.replace('|', "\\|");
        let mut out = String::new();
        let _ = writeln!(out, "**{}**", self.title);
        let _ = writeln!(
            out,
            "| {} |",
            self.headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(" | ")
        );
        let _ = writeln!(out, "|{}|", vec!["---"; self.headers.len()].join("|"));
        for row in &self.rows {
            let _ = writeln!(
                out,
                "| {} |",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(" | ")
            );
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(|h| quote(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a ratio the way the paper's bar charts label them.
pub fn fmt_ratio(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats seconds with sensible units.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("Demo", &["graph", "speedup"]);
        t.row(&["belgium".into(), "1.52".into()]);
        t.row(&["uk-2002".into(), "0.91".into()]);
        let s = t.render();
        assert!(s.contains("# Demo"));
        assert!(s.contains("belgium"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["has,comma".into(), "has\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_wrong_arity() {
        Table::new("x", &["a", "b"]).row(&["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ratio(1.5), "1.50");
        assert_eq!(fmt_secs(2.0), "2.000 s");
        assert_eq!(fmt_secs(0.002), "2.000 ms");
        assert_eq!(fmt_secs(0.0000005), "0.5 µs");
    }

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("Md", &["a", "b"]);
        t.row(&["x|y".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("**Md**"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("x\\|y"), "{md}");
    }

    #[test]
    fn empty_table() {
        let t = Table::new("empty", &["a"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
