//! Offline stand-in for `serde_derive`: emits empty marker impls.
//!
//! Hand-parses the item name from the token stream (no `syn`/`quote` in the
//! offline container). Handles `struct`/`enum` items with attributes,
//! visibility, and optional generics; `#[serde(...)]` attributes are
//! accepted and ignored.

use proc_macro::{TokenStream, TokenTree};

/// Extracts `(name, generics)` of the derived item.
///
/// Scans for the `struct` / `enum` keyword, takes the following identifier,
/// then (if a `<` follows) collects the generic parameter names so the impl
/// can repeat them. Lifetimes and defaulted/bounded parameters are reduced
/// to their bare names; const generics are not supported (unused in this
/// workspace).
fn item_name_and_generics(input: TokenStream) -> (String, Vec<String>) {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        let TokenTree::Ident(ident) = &tt else { continue };
        let kw = ident.to_string();
        if kw != "struct" && kw != "enum" {
            continue;
        }
        let Some(TokenTree::Ident(name)) = tokens.next() else {
            panic!("derive(Serialize): expected item name after `{kw}`");
        };
        let name = name.to_string();
        // Optional generics: collect top-level parameter names until `>`.
        let mut params: Vec<String> = Vec::new();
        if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
            tokens.next();
            let mut depth = 1usize;
            let mut expect_param = true;
            let mut pending_lifetime = false;
            for tt in tokens.by_ref() {
                match tt {
                    TokenTree::Punct(p) => match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        ',' if depth == 1 => expect_param = true,
                        '\'' if depth == 1 && expect_param => pending_lifetime = true,
                        ':' if depth == 1 => expect_param = false,
                        _ => {}
                    },
                    TokenTree::Ident(id) if depth == 1 && expect_param => {
                        let id = id.to_string();
                        if pending_lifetime {
                            params.push(format!("'{id}"));
                            pending_lifetime = false;
                        } else {
                            params.push(id);
                        }
                        expect_param = false;
                    }
                    _ => {}
                }
            }
        }
        return (name, params);
    }
    panic!("derive(Serialize): no struct or enum found in input");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, params) = item_name_and_generics(input);
    let code = if params.is_empty() {
        format!("impl serde::Serialize for {name} {{}}")
    } else {
        let list = params.join(", ");
        format!("impl<{list}> serde::Serialize for {name}<{list}> {{}}")
    };
    code.parse().expect("derive(Serialize): generated impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, params) = item_name_and_generics(input);
    let code = if params.is_empty() {
        format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
    } else {
        let list = params.join(", ");
        format!("impl<'de, {list}> serde::Deserialize<'de> for {name}<{list}> {{}}")
    };
    code.parse().expect("derive(Deserialize): generated impl failed to parse")
}
