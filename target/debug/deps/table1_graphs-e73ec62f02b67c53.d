/root/repo/target/debug/deps/table1_graphs-e73ec62f02b67c53.d: crates/bench/src/bin/table1_graphs.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_graphs-e73ec62f02b67c53.rmeta: crates/bench/src/bin/table1_graphs.rs Cargo.toml

crates/bench/src/bin/table1_graphs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
