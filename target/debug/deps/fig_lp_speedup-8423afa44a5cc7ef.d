/root/repo/target/debug/deps/fig_lp_speedup-8423afa44a5cc7ef.d: crates/bench/src/bin/fig_lp_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libfig_lp_speedup-8423afa44a5cc7ef.rmeta: crates/bench/src/bin/fig_lp_speedup.rs Cargo.toml

crates/bench/src/bin/fig_lp_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
