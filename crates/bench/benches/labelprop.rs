//! Criterion bench: MPLP vs ONLP label propagation (Figure 15's kernel).

#![allow(deprecated)] // exercises pinned-backend/legacy entrypoints run_kernel doesn't expose

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gp_core::labelprop::{label_propagation_mplp, label_propagation_onlp, LabelPropConfig};
use gp_graph::suite::{build_standin, entry, SuiteScale};
use gp_simd::engine::Engine;

fn bench_labelprop(c: &mut Criterion) {
    let mut group = c.benchmark_group("label_propagation");
    group.sample_size(10);
    let config = LabelPropConfig::default();
    for name in ["belgium", "in-2004", "nlpkkt200"] {
        let g = build_standin(entry(name).unwrap(), SuiteScale::Test);
        group.bench_with_input(BenchmarkId::new("mplp", name), &g, |b, g| {
            b.iter(|| label_propagation_mplp(g, &config))
        });
        group.bench_with_input(BenchmarkId::new("onlp", name), &g, |b, g| {
            match Engine::best() {
                Engine::Native(s) => b.iter(|| label_propagation_onlp(&s, g, &config)),
                Engine::Emulated(s) => b.iter(|| label_propagation_onlp(&s, g, &config)),
            }
        });
    }
    group.finish();
}

criterion_group!(benches, bench_labelprop);
criterion_main!(benches);
