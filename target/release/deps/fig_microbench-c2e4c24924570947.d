/root/repo/target/release/deps/fig_microbench-c2e4c24924570947.d: crates/bench/src/bin/fig_microbench.rs

/root/repo/target/release/deps/fig_microbench-c2e4c24924570947: crates/bench/src/bin/fig_microbench.rs

crates/bench/src/bin/fig_microbench.rs:
