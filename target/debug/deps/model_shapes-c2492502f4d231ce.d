/root/repo/target/debug/deps/model_shapes-c2492502f4d231ce.d: tests/model_shapes.rs

/root/repo/target/debug/deps/model_shapes-c2492502f4d231ce: tests/model_shapes.rs

tests/model_shapes.rs:
