//! Per-round kernel telemetry: zero-overhead-by-default observability for
//! the iterative kernels (speculative coloring, Louvain move phases, label
//! propagation).
//!
//! The paper's evaluation is fundamentally *per-round* — coloring converges
//! via AssignColors/DetectConflicts rounds (Algorithms 1–3), Louvain and
//! label propagation via move-phase sweeps — yet final results alone cannot
//! explain why a vectorized variant wins on one graph and loses on another.
//! This module adds the missing layer:
//!
//! * [`Recorder`] — a statically-dispatched sink for [`RoundStats`] events.
//!   Kernels take `&mut R: Recorder`; with the default [`NoopRecorder`]
//!   (`ENABLED = false`) every probe compiles away, so uninstrumented runs
//!   pay nothing.
//! * [`TraceRecorder`] — accumulates every round into a [`Trace`] for JSON/
//!   CSV export (see [`crate::report::trace_json`]).
//! * [`RoundProbe`] — a guard taken at the top of a round; on `finish` it
//!   fills in wall time and the op-counter delta snapshotted from
//!   [`gp_simd::counters`].
//! * [`RunInfo`] — the uniform result envelope every kernel result embeds:
//!   backend name, rounds executed, convergence flag, elapsed seconds, and
//!   an optional attached trace.
//!
//! ```
//! use gp_metrics::telemetry::{Recorder, RoundProbe, RoundStats, TraceRecorder};
//!
//! fn kernel<R: Recorder>(rec: &mut R) -> u32 {
//!     let mut x = 0u32;
//!     for round in 0..3 {
//!         let probe = RoundProbe::begin::<R>();
//!         x += round; // the round's work
//!         probe.finish(rec, RoundStats::new(round as usize).moves(u64::from(round)));
//!     }
//!     x
//! }
//!
//! let mut rec = TraceRecorder::new("demo");
//! kernel(&mut rec);
//! let trace = rec.into_trace();
//! assert_eq!(trace.rounds.len(), 3);
//! assert_eq!(trace.rounds[2].moves, 2);
//! ```

use gp_simd::counters::{self, OpCounts};
use std::time::Instant;

/// One round (coloring iteration / Louvain sweep / label-propagation sweep)
/// of kernel work.
///
/// `moves`, `conflicts`, and `active` are kernel-defined: coloring reports
/// recolored vertices / detected conflicts / conflict-set size, Louvain
/// reports vertex moves, label propagation reports label updates. Fields
/// that do not apply stay zero.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RoundStats {
    /// Round index within the run (coloring round, move-phase sweep, ...).
    pub round: usize,
    /// Coarsening level for multilevel drivers (0 = finest graph).
    pub level: usize,
    /// Wall time of the round in seconds (filled by [`RoundProbe::finish`]).
    pub secs: f64,
    /// Vertices moved / recolored / relabeled this round.
    pub moves: u64,
    /// Conflicts detected this round (speculative coloring).
    pub conflicts: u64,
    /// Active vertices entering the round (conflict-set or frontier size).
    pub active: u64,
    /// Edges incident to the active set — the work the round actually
    /// touches. Under full-sweep execution this stays near `2m` every round;
    /// under active-set execution it decays with the frontier.
    pub active_edges: u64,
    /// Quality delta for this round (modularity gain for community kernels;
    /// zero where no quality functional applies). Only computed when the
    /// recorder is enabled — it costs an O(m) pass.
    pub quality_delta: f64,
    /// Op-counter delta over the round, snapshotted from
    /// [`gp_simd::counters`]. All zero unless the kernel ran on a
    /// [`gp_simd::counted::Counted`] backend.
    pub ops: OpCounts,
    /// Cache blocks the round's sweep was partitioned into (locality
    /// layer); zero when blocking is off or the kernel bypasses it.
    pub blocks: u64,
    /// Eligible vertices routed to the ≤16-degree one-vertex-per-lane bin.
    pub bin_low: u64,
    /// Eligible vertices routed to the mid-degree per-vertex bin.
    pub bin_mid: u64,
    /// Eligible vertices at or above the hub threshold (scheduled as
    /// singleton parallel units).
    pub bin_hub: u64,
}

impl RoundStats {
    /// Starts a stats record for the given round index.
    pub fn new(round: usize) -> Self {
        RoundStats {
            round,
            ..Default::default()
        }
    }

    /// Sets the moved/recolored/relabeled count.
    pub fn moves(mut self, n: u64) -> Self {
        self.moves = n;
        self
    }

    /// Sets the detected-conflict count.
    pub fn conflicts(mut self, n: u64) -> Self {
        self.conflicts = n;
        self
    }

    /// Sets the active-vertex count entering the round.
    pub fn active(mut self, n: u64) -> Self {
        self.active = n;
        self
    }

    /// Sets the active-edge count (edges incident to the active set).
    pub fn active_edges(mut self, n: u64) -> Self {
        self.active_edges = n;
        self
    }

    /// Sets the per-round quality delta.
    pub fn quality_delta(mut self, d: f64) -> Self {
        self.quality_delta = d;
        self
    }

    /// Sets the locality-layer census: block count and per-bin vertex
    /// counts (low / mid / hub).
    pub fn bins(mut self, blocks: u64, low: u64, mid: u64, hub: u64) -> Self {
        self.blocks = blocks;
        self.bin_low = low;
        self.bin_mid = mid;
        self.bin_hub = hub;
        self
    }
}

/// One timed substrate phase (graph generation, CSR build, coarsening,
/// projection) surrounding the per-round kernel work.
///
/// Rounds answer "why does this variant converge the way it does"; phases
/// answer "where does the wall-clock go *between* rounds" — the multilevel
/// drivers spend a large share of their time in coarsening, which the
/// per-round stream is blind to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseStats {
    /// Phase label (`"generate"`, `"build"`, `"coarsen"`, `"project"`, ...).
    pub name: &'static str,
    /// Coarsening level the phase ran at (stamped by the recorder).
    pub level: usize,
    /// Wall time of the phase in seconds.
    pub secs: f64,
}

/// Statically-dispatched sink for per-round telemetry.
///
/// Kernels are generic over `R: Recorder`, mirroring how they are generic
/// over the SIMD backend: the monomorphized body for [`NoopRecorder`]
/// contains no probe code at all (`ENABLED` is a `const`, so every
/// `if R::ENABLED` branch folds away), while the body for
/// [`TraceRecorder`] snapshots timers and counters per round.
pub trait Recorder {
    /// Whether probes should collect at all. `false` compiles them out.
    const ENABLED: bool;

    /// Whether [`Recorder::should_stop`] can ever return `true`. Kernels use
    /// this to decide whether to poll the deadline *between chunks of a
    /// round* (see the `gp-core` chunked sweep helpers): under a plain
    /// [`NoopRecorder`] / [`TraceRecorder`] the mid-round checks fold away
    /// entirely, while a [`DeadlineRecorder`] opts in so a single huge round
    /// cannot overshoot its deadline unbounded.
    const CHECKS_DEADLINE: bool = false;

    /// Receives one completed round.
    fn record(&mut self, stats: RoundStats);

    /// Receives one completed substrate phase (coarsen / project / build).
    /// `stats.level` is overwritten with the recorder's current level.
    fn record_phase(&mut self, _stats: PhaseStats) {}

    /// Informs the recorder of the current coarsening level (multilevel
    /// Louvain / partitioning drivers). Subsequent rounds are stamped with
    /// this level.
    fn set_level(&mut self, _level: usize) {}

    /// Cooperative-cancellation hook, polled by every kernel at round
    /// boundaries. Returning `true` makes the kernel stop after the current
    /// round with whatever partial result it has (`converged: false` in its
    /// [`RunInfo`]). The default never cancels, so existing recorders and
    /// the [`NoopRecorder`] keep the exact pre-cancellation control flow
    /// (the check folds to a constant `false`).
    ///
    /// Unlike [`Recorder::record`], this hook is *not* gated on
    /// [`Recorder::ENABLED`]: a [`DeadlineRecorder`] wrapping a
    /// [`NoopRecorder`] enforces deadlines without paying for telemetry.
    #[inline(always)]
    fn should_stop(&self) -> bool {
        false
    }
}

/// The default recorder: does nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _stats: RoundStats) {}
}

/// Accumulates every round into a [`Trace`].
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    kernel: String,
    level: usize,
    rounds: Vec<RoundStats>,
    phases: Vec<PhaseStats>,
}

impl TraceRecorder {
    /// New recorder labeled with the kernel name (e.g. `"coloring-onpl"`).
    pub fn new(kernel: impl Into<String>) -> Self {
        TraceRecorder {
            kernel: kernel.into(),
            level: 0,
            rounds: Vec::new(),
            phases: Vec::new(),
        }
    }

    /// Rounds recorded so far.
    pub fn rounds(&self) -> &[RoundStats] {
        &self.rounds
    }

    /// Substrate phases recorded so far.
    pub fn phases(&self) -> &[PhaseStats] {
        &self.phases
    }

    /// Consumes the recorder into its trace.
    pub fn into_trace(self) -> Trace {
        Trace {
            kernel: self.kernel,
            rounds: self.rounds,
            phases: self.phases,
            degree_hist: None,
        }
    }
}

impl Recorder for TraceRecorder {
    const ENABLED: bool = true;

    fn record(&mut self, mut stats: RoundStats) {
        stats.level = self.level;
        self.rounds.push(stats);
    }

    fn record_phase(&mut self, mut stats: PhaseStats) {
        stats.level = self.level;
        self.phases.push(stats);
    }

    fn set_level(&mut self, level: usize) {
        self.level = level;
    }
}

/// Wraps any [`Recorder`] with a wall-clock deadline: once the deadline
/// passes, [`Recorder::should_stop`] reports `true` and the kernel winds
/// down at the next round boundary, returning its partial result.
///
/// This is the cooperative-cancellation primitive behind `gp-serve`'s
/// per-request `deadline_ms`: the service wraps a [`NoopRecorder`] (or a
/// [`TraceRecorder`] for traced requests) and marks the response
/// `timed_out: true` whenever [`DeadlineRecorder::fired`] is set.
///
/// ```
/// use gp_metrics::telemetry::{DeadlineRecorder, NoopRecorder, Recorder};
/// use std::time::Duration;
///
/// let rec = DeadlineRecorder::after(NoopRecorder, Duration::from_secs(3600));
/// assert!(!rec.should_stop());
/// let rec = DeadlineRecorder::after(NoopRecorder, Duration::ZERO);
/// assert!(rec.should_stop());
/// assert!(rec.fired());
/// ```
#[derive(Debug)]
pub struct DeadlineRecorder<R> {
    inner: R,
    deadline: Instant,
    // `AtomicBool` (not `Cell`) so the recorder is `Sync`: parallel sweep
    // executors poll `should_stop` from the sweeping thread while worker
    // threads hold shared references to the same recorder.
    fired: std::sync::atomic::AtomicBool,
}

impl<R: Recorder> DeadlineRecorder<R> {
    /// Wraps `inner` with an absolute deadline.
    pub fn new(inner: R, deadline: Instant) -> Self {
        DeadlineRecorder {
            inner,
            deadline,
            fired: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Wraps `inner` with a deadline `budget` from now.
    pub fn after(inner: R, budget: std::time::Duration) -> Self {
        Self::new(inner, Instant::now() + budget)
    }

    /// Whether the deadline was observed expired at any round boundary
    /// (i.e. the kernel was actually asked to stop early).
    pub fn fired(&self) -> bool {
        self.fired.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Unwraps the inner recorder (e.g. to extract a trace).
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Recorder> Recorder for DeadlineRecorder<R> {
    const ENABLED: bool = R::ENABLED;
    const CHECKS_DEADLINE: bool = true;

    #[inline]
    fn record(&mut self, stats: RoundStats) {
        self.inner.record(stats);
    }

    #[inline]
    fn record_phase(&mut self, stats: PhaseStats) {
        self.inner.record_phase(stats);
    }

    #[inline]
    fn set_level(&mut self, level: usize) {
        self.inner.set_level(level);
    }

    #[inline]
    fn should_stop(&self) -> bool {
        use std::sync::atomic::Ordering;
        if self.fired.load(Ordering::Relaxed) {
            return true;
        }
        let expired = Instant::now() >= self.deadline;
        if expired {
            self.fired.store(true, Ordering::Relaxed);
        }
        expired
    }
}

/// A completed per-round trace of one kernel run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Kernel label (e.g. `"louvain-mplm"`).
    pub kernel: String,
    /// One entry per round, in execution order.
    pub rounds: Vec<RoundStats>,
    /// Substrate phases (coarsen / project / build) interleaved with the
    /// rounds, in execution order.
    pub phases: Vec<PhaseStats>,
    /// Graph-level degree summary, when the caller attached one. Makes the
    /// locality layer's bin boundaries reproducible from the trace artifact
    /// alone (the histogram is the sole input to the bucket thresholds).
    pub degree_hist: Option<DegreeSummary>,
}

/// Degree-distribution summary attached to a [`Trace`] by callers that hold
/// the graph (`gp-metrics` itself is graph-agnostic; the CLI and figure
/// binaries fill this from `gp_graph::stats::DegreeHistogram`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegreeSummary {
    /// `low[d]` = exact number of vertices of degree `d`, for `d ≤ 16`.
    pub low: Vec<u64>,
    /// `log2[b]` = number of vertices with `floor(log2(degree)) == b`.
    pub log2: Vec<u64>,
    /// The graph's maximum degree.
    pub max_degree: u64,
    /// The locality layer's hub cut, when the graph has a hub tail.
    pub hub_threshold: Option<u32>,
}

impl Trace {
    /// Sum of the per-round op deltas (should equal a whole-run
    /// [`gp_simd::counters::counted_run`] total when rounds cover the run).
    pub fn total_ops(&self) -> OpCounts {
        self.rounds
            .iter()
            .fold(OpCounts::default(), |acc, r| acc.add(&r.ops))
    }

    /// Sum of per-round wall times (excludes phases).
    pub fn total_secs(&self) -> f64 {
        self.rounds.iter().map(|r| r.secs).sum()
    }

    /// Sum of substrate-phase wall times (coarsen / project / build).
    pub fn phase_secs(&self) -> f64 {
        self.phases.iter().map(|p| p.secs).sum()
    }
}

/// Guard capturing the wall-clock and op-counter state entering a round.
///
/// With a disabled recorder, [`RoundProbe::begin`] and
/// [`RoundProbe::finish`] are empty inlineable functions — no `Instant`, no
/// counter snapshot, no branch left in the hot loop.
#[derive(Debug)]
pub struct RoundProbe {
    start: Option<Instant>,
    ops_before: OpCounts,
}

impl RoundProbe {
    /// Captures the round-entry state (only when `R::ENABLED`).
    #[inline(always)]
    pub fn begin<R: Recorder>() -> RoundProbe {
        if R::ENABLED {
            RoundProbe {
                ops_before: counters::snapshot(),
                start: Some(Instant::now()),
            }
        } else {
            RoundProbe {
                start: None,
                ops_before: OpCounts::default(),
            }
        }
    }

    /// Completes the round: fills wall time and the op-counter delta into
    /// `stats` and hands it to the recorder. A no-op when `R::ENABLED` is
    /// false.
    #[inline(always)]
    pub fn finish<R: Recorder>(self, rec: &mut R, mut stats: RoundStats) {
        if R::ENABLED {
            stats.secs = self.start.map_or(0.0, |s| s.elapsed().as_secs_f64());
            stats.ops = counters::snapshot().saturating_sub(&self.ops_before);
            rec.record(stats);
        }
    }
}

/// Guard timing one substrate phase (coarsen / project / build).
///
/// Like [`RoundProbe`], compiles to nothing under a disabled recorder: the
/// multilevel drivers wrap their coarsening and projection calls in one of
/// these, and the [`NoopRecorder`] monomorphization keeps the calls free.
#[derive(Debug)]
pub struct PhaseProbe {
    start: Option<Instant>,
}

impl PhaseProbe {
    /// Captures the phase-entry time (only when `R::ENABLED`).
    #[inline(always)]
    pub fn begin<R: Recorder>() -> PhaseProbe {
        PhaseProbe {
            start: if R::ENABLED { Some(Instant::now()) } else { None },
        }
    }

    /// Completes the phase, stamping its wall time. The level field is
    /// filled by the recorder from its current [`Recorder::set_level`]
    /// state. A no-op when `R::ENABLED` is false.
    #[inline(always)]
    pub fn finish<R: Recorder>(self, rec: &mut R, name: &'static str) {
        if R::ENABLED {
            rec.record_phase(PhaseStats {
                name,
                level: 0,
                secs: self.start.map_or(0.0, |s| s.elapsed().as_secs_f64()),
            });
        }
    }
}

/// Uniform result envelope embedded in every kernel result struct
/// (`ColoringResult`, `LouvainResult`, `LabelPropResult`, `PartitionResult`,
/// `OverlapResult`, `BfsResult`).
///
/// Excluded from the results' `PartialEq`: two runs are "equal" when their
/// algorithmic outputs agree, regardless of how long they took.
#[derive(Debug, Clone, Default)]
pub struct RunInfo {
    /// SIMD backend the kernel ran on (`"avx512"`, `"emulated"`,
    /// `"counted"`, `"scalar"`).
    pub backend: &'static str,
    /// Rounds / sweeps / levels executed (kernel-defined, matches the
    /// result's own round counter where one exists).
    pub rounds: usize,
    /// Whether the kernel reached its convergence criterion (as opposed to
    /// an iteration cap).
    pub converged: bool,
    /// Whole-run wall time in seconds.
    pub elapsed_secs: f64,
    /// Per-round telemetry, when the caller ran with a [`TraceRecorder`]
    /// and attached the trace via [`RunInfo::with_trace`].
    pub trace: Option<Trace>,
}

impl RunInfo {
    /// Builds the envelope from the universally-available facts.
    pub fn new(backend: &'static str, rounds: usize, converged: bool, elapsed_secs: f64) -> Self {
        RunInfo {
            backend,
            rounds,
            converged,
            elapsed_secs,
            trace: None,
        }
    }

    /// Attaches a trace produced by [`TraceRecorder::into_trace`].
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = Some(trace);
        self
    }
}

/// Stopwatch for the whole-run `elapsed_secs` field — always on (one
/// `Instant` per kernel invocation is noise even for microsecond kernels).
#[derive(Debug)]
pub struct RunTimer(Instant);

impl RunTimer {
    /// Starts timing.
    #[allow(clippy::new_without_default)]
    pub fn start() -> Self {
        RunTimer(Instant::now())
    }

    /// Elapsed seconds since start.
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_simd::counters::OpClass;

    fn fake_kernel<R: Recorder>(rec: &mut R, rounds: usize) -> u64 {
        let mut acc = 0;
        for round in 0..rounds {
            let probe = RoundProbe::begin::<R>();
            acc += round as u64;
            probe.finish(
                rec,
                RoundStats::new(round)
                    .moves(round as u64)
                    .conflicts(1)
                    .active(10 - round as u64),
            );
        }
        acc
    }

    #[test]
    fn noop_recorder_records_nothing_and_changes_nothing() {
        let mut noop = NoopRecorder;
        let mut trace = TraceRecorder::new("fake");
        assert_eq!(fake_kernel(&mut noop, 4), fake_kernel(&mut trace, 4));
        assert_eq!(trace.rounds().len(), 4);
    }

    #[test]
    fn trace_recorder_captures_rounds_in_order() {
        let mut rec = TraceRecorder::new("fake");
        fake_kernel(&mut rec, 3);
        let trace = rec.into_trace();
        assert_eq!(trace.kernel, "fake");
        let rounds: Vec<usize> = trace.rounds.iter().map(|r| r.round).collect();
        assert_eq!(rounds, vec![0, 1, 2]);
        assert_eq!(trace.rounds[1].moves, 1);
        assert_eq!(trace.rounds[1].active, 9);
        assert!(trace.rounds.iter().all(|r| r.secs >= 0.0));
    }

    #[test]
    fn set_level_stamps_subsequent_rounds() {
        let mut rec = TraceRecorder::new("multilevel");
        fake_kernel(&mut rec, 1);
        rec.set_level(1);
        fake_kernel(&mut rec, 2);
        let trace = rec.into_trace();
        let levels: Vec<usize> = trace.rounds.iter().map(|r| r.level).collect();
        assert_eq!(levels, vec![0, 1, 1]);
    }

    #[test]
    fn probe_captures_op_deltas() {
        // Serial within one test: the counters are global.
        counters::reset();
        let mut rec = TraceRecorder::new("delta");
        let probe = RoundProbe::begin::<TraceRecorder>();
        counters::record(OpClass::Gather, 5);
        probe.finish(&mut rec, RoundStats::new(0));
        let probe = RoundProbe::begin::<TraceRecorder>();
        counters::record(OpClass::Gather, 2);
        counters::record(OpClass::Conflict, 1);
        probe.finish(&mut rec, RoundStats::new(1));
        let trace = rec.into_trace();
        assert_eq!(trace.rounds[0].ops.get(OpClass::Gather), 5);
        assert_eq!(trace.rounds[1].ops.get(OpClass::Gather), 2);
        assert_eq!(trace.rounds[1].ops.get(OpClass::Conflict), 1);
        assert_eq!(trace.total_ops().get(OpClass::Gather), 7);
    }

    #[test]
    fn run_info_envelope() {
        let info = RunInfo::new("emulated", 7, true, 0.25);
        assert_eq!(info.backend, "emulated");
        assert_eq!(info.rounds, 7);
        assert!(info.converged);
        assert!(info.trace.is_none());
        let info = info.with_trace(Trace {
            kernel: "k".into(),
            rounds: vec![RoundStats::new(0)],
            phases: Vec::new(),
            degree_hist: None,
        });
        assert_eq!(info.trace.as_ref().unwrap().rounds.len(), 1);
    }

    #[test]
    fn phase_probe_records_with_level() {
        let mut rec = TraceRecorder::new("phases");
        let p = PhaseProbe::begin::<TraceRecorder>();
        p.finish(&mut rec, "coarsen");
        rec.set_level(2);
        let p = PhaseProbe::begin::<TraceRecorder>();
        p.finish(&mut rec, "project");
        let trace = rec.into_trace();
        assert_eq!(trace.phases.len(), 2);
        assert_eq!(trace.phases[0].name, "coarsen");
        assert_eq!(trace.phases[0].level, 0);
        assert_eq!(trace.phases[1].name, "project");
        assert_eq!(trace.phases[1].level, 2);
        assert!(trace.phase_secs() >= 0.0);
    }

    #[test]
    fn phase_probe_is_noop_when_disabled() {
        let mut noop = NoopRecorder;
        let p = PhaseProbe::begin::<NoopRecorder>();
        assert!(p.start.is_none());
        p.finish(&mut noop, "coarsen");
    }

    #[test]
    fn noop_recorder_never_stops() {
        assert!(!NoopRecorder.should_stop());
    }

    #[test]
    fn checks_deadline_const_propagates() {
        // Compile-time checks: the wrapper opts in, the plain recorders
        // stay out (so mid-round polling folds away for them).
        const {
            assert!(!NoopRecorder::CHECKS_DEADLINE);
            assert!(!TraceRecorder::CHECKS_DEADLINE);
            assert!(<DeadlineRecorder<NoopRecorder>>::CHECKS_DEADLINE);
            assert!(<DeadlineRecorder<TraceRecorder>>::CHECKS_DEADLINE);
        }
    }

    #[test]
    fn deadline_recorder_forwards_and_fires() {
        let mut rec = DeadlineRecorder::after(TraceRecorder::new("dl"), std::time::Duration::ZERO);
        fake_kernel(&mut rec, 2);
        assert!(rec.should_stop());
        assert!(rec.fired());
        let trace = rec.into_inner().into_trace();
        assert_eq!(trace.rounds.len(), 2);
    }

    #[test]
    fn deadline_recorder_respects_future_deadline() {
        let rec = DeadlineRecorder::after(NoopRecorder, std::time::Duration::from_secs(3600));
        assert!(!rec.should_stop());
        assert!(!rec.fired());
    }

    #[test]
    fn deadline_recorder_latches_once_fired() {
        let rec = DeadlineRecorder::new(
            NoopRecorder,
            Instant::now() - std::time::Duration::from_millis(1),
        );
        assert!(rec.should_stop());
        // Stays fired even if polled again.
        assert!(rec.should_stop());
        assert!(rec.fired());
    }

    #[test]
    fn run_timer_is_monotonic() {
        let t = RunTimer::start();
        std::hint::black_box((0..1000).sum::<u64>());
        assert!(t.elapsed_secs() >= 0.0);
    }
}
