//! Failure-injection tests for the graph parsers: arbitrary byte soup and
//! structurally-corrupted inputs must return `Err`, never panic, never loop.

use gp_graph::io::{read_edgelist, read_matrix_market, read_metis};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary ASCII text never panics any parser.
    #[test]
    fn parsers_never_panic_on_text(input in "[ -~\n\t]{0,400}") {
        let _ = read_edgelist(input.as_bytes());
        let _ = read_metis(input.as_bytes());
        let _ = read_matrix_market(input.as_bytes());
    }

    /// Arbitrary bytes (including invalid UTF-8) never panic.
    #[test]
    fn parsers_never_panic_on_bytes(input in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = read_edgelist(input.as_slice());
        let _ = read_metis(input.as_slice());
        let _ = read_matrix_market(input.as_slice());
    }

    /// Near-valid edge lists: random token mutations still parse or fail
    /// cleanly, and successful parses produce structurally valid graphs.
    #[test]
    fn mutated_edgelist_is_clean(
        edges in prop::collection::vec((0u32..50, 0u32..50), 1..40),
        junk in "[a-z0-9 .#-]{0,30}",
        junk_line in 0usize..40,
    ) {
        let mut text = String::new();
        for (i, (u, v)) in edges.iter().enumerate() {
            if i == junk_line {
                text.push_str(&junk);
                text.push('\n');
            }
            text.push_str(&format!("{u} {v}\n"));
        }
        if let Ok(g) = read_edgelist(text.as_bytes()) {
            prop_assert!(g.is_symmetric());
            prop_assert!(g.num_vertices() <= 100);
        }
    }

    /// Corrupted METIS headers (wrong counts) fail without panicking, and
    /// valid-shaped ones round out.
    #[test]
    fn metis_header_corruption_is_clean(n in 0usize..20, lines in 0usize..25) {
        let mut text = format!("{n} 0\n");
        for _ in 0..lines {
            text.push('\n');
        }
        let r = read_metis(text.as_bytes());
        if lines == n {
            prop_assert!(r.is_ok());
        } else if let Ok(g) = r {
            prop_assert_eq!(g.num_vertices(), n);
        }
    }

    /// Matrix Market with a lying nnz count always errors.
    #[test]
    fn matrix_market_nnz_mismatch_errors(real in 1usize..10, declared in 11usize..20) {
        let mut text = format!(
            "%%MatrixMarket matrix coordinate real symmetric\n30 30 {declared}\n"
        );
        for i in 0..real {
            text.push_str(&format!("{} {} 1.0\n", i + 2, i + 1));
        }
        prop_assert!(read_matrix_market(text.as_bytes()).is_err());
    }
}
