//! Table-1 stand-in suite.
//!
//! The paper evaluates on 19 SNAP/DIMACS graphs. Those datasets cannot be
//! downloaded here, so each is replaced by a synthetic graph from the same
//! structural family — road network, triangulated mesh, social/web power law,
//! or near-regular matrix — sized down to run on one VM core (the paper's
//! graphs reach 260M edges; stand-ins keep the *degree profile* while
//! shrinking vertex counts, see DESIGN.md §2). Every experiment binary pulls
//! its workload from here so all figures share one suite.

use crate::csr::Csr;
use crate::generators::{
    preferential_attachment, rmat, road_network, stencil3d, triangular_mesh, RmatConfig,
};
use serde::Serialize;

/// Structural family of a Table-1 graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum GraphClass {
    /// Low-degree, high-locality (asia, belgium, europe, …, roadNet-PA).
    Road,
    /// Balanced-degree triangulations (333SP, AS365, M6, NACA0015, NLR,
    /// delaunay_n24).
    Mesh,
    /// Heavy-tailed social/AS networks (Oregon-2, loc-Gowalla).
    Social,
    /// Web crawls with extreme hubs (in-2004, uk-2002).
    Web,
    /// Near-regular optimization matrices (kkt_power, nlpkkt200).
    Matrix,
}

/// How large to build the stand-ins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteScale {
    /// Tiny instances for unit/integration tests (~1–4k vertices).
    Test,
    /// The benchmark size used by the figure binaries (~10–60k vertices).
    Bench,
    /// Larger instances for soak runs (~100–300k vertices).
    Large,
}

impl SuiteScale {
    /// Multiplier applied to the baseline (Test) dimensions.
    fn factor(self) -> usize {
        match self {
            SuiteScale::Test => 1,
            SuiteScale::Bench => 4,
            SuiteScale::Large => 10,
        }
    }
}

/// One named entry of the suite.
#[derive(Debug, Clone, Copy)]
pub struct SuiteEntry {
    /// The paper's graph name.
    pub name: &'static str,
    pub class: GraphClass,
    /// Paper-reported stats, for the EXPERIMENTS.md comparison.
    pub paper_vertices: usize,
    pub paper_edges: usize,
    pub paper_max_degree: usize,
    pub paper_avg_degree: usize,
}

/// The 19 graphs of Table 1 in paper order.
pub const SUITE: [SuiteEntry; 19] = [
    SuiteEntry { name: "333SP", class: GraphClass::Mesh, paper_vertices: 3_712_815, paper_edges: 11_108_633, paper_max_degree: 28, paper_avg_degree: 5 },
    SuiteEntry { name: "AS365", class: GraphClass::Mesh, paper_vertices: 3_799_275, paper_edges: 11_368_076, paper_max_degree: 14, paper_avg_degree: 5 },
    SuiteEntry { name: "M6", class: GraphClass::Mesh, paper_vertices: 3_501_776, paper_edges: 10_501_936, paper_max_degree: 10, paper_avg_degree: 5 },
    SuiteEntry { name: "NACA0015", class: GraphClass::Mesh, paper_vertices: 1_039_183, paper_edges: 3_114_818, paper_max_degree: 10, paper_avg_degree: 5 },
    SuiteEntry { name: "NLR", class: GraphClass::Mesh, paper_vertices: 4_163_763, paper_edges: 12_487_976, paper_max_degree: 20, paper_avg_degree: 5 },
    SuiteEntry { name: "Oregon-2", class: GraphClass::Social, paper_vertices: 11_806, paper_edges: 32_730, paper_max_degree: 2_432, paper_avg_degree: 5 },
    SuiteEntry { name: "asia", class: GraphClass::Road, paper_vertices: 11_950_757, paper_edges: 12_711_603, paper_max_degree: 9, paper_avg_degree: 2 },
    SuiteEntry { name: "belgium", class: GraphClass::Road, paper_vertices: 1_441_295, paper_edges: 1_549_970, paper_max_degree: 10, paper_avg_degree: 2 },
    SuiteEntry { name: "delaunay_n24", class: GraphClass::Mesh, paper_vertices: 16_777_216, paper_edges: 50_331_601, paper_max_degree: 26, paper_avg_degree: 5 },
    SuiteEntry { name: "europe", class: GraphClass::Road, paper_vertices: 50_912_018, paper_edges: 54_054_660, paper_max_degree: 13, paper_avg_degree: 2 },
    SuiteEntry { name: "germany", class: GraphClass::Road, paper_vertices: 11_548_845, paper_edges: 12_369_181, paper_max_degree: 13, paper_avg_degree: 2 },
    SuiteEntry { name: "in-2004", class: GraphClass::Web, paper_vertices: 1_382_908, paper_edges: 13_591_473, paper_max_degree: 21_869, paper_avg_degree: 19 },
    SuiteEntry { name: "kkt_power", class: GraphClass::Matrix, paper_vertices: 2_063_494, paper_edges: 6_482_320, paper_max_degree: 95, paper_avg_degree: 6 },
    SuiteEntry { name: "loc-Gowalla", class: GraphClass::Social, paper_vertices: 196_591, paper_edges: 950_327, paper_max_degree: 14_730, paper_avg_degree: 9 },
    SuiteEntry { name: "luxembourg", class: GraphClass::Road, paper_vertices: 114_599, paper_edges: 119_666, paper_max_degree: 6, paper_avg_degree: 2 },
    SuiteEntry { name: "netherlands", class: GraphClass::Road, paper_vertices: 2_216_688, paper_edges: 2_441_238, paper_max_degree: 7, paper_avg_degree: 2 },
    SuiteEntry { name: "nlpkkt200", class: GraphClass::Matrix, paper_vertices: 16_240_000, paper_edges: 215_992_816, paper_max_degree: 27, paper_avg_degree: 26 },
    SuiteEntry { name: "roadNet-PA", class: GraphClass::Road, paper_vertices: 1_088_092, paper_edges: 1_541_898, paper_max_degree: 9, paper_avg_degree: 2 },
    SuiteEntry { name: "uk-2002", class: GraphClass::Web, paper_vertices: 18_520_486, paper_edges: 261_787_258, paper_max_degree: 194_955, paper_avg_degree: 28 },
];

/// Deterministic seed per graph name so stand-ins are stable run to run.
fn seed_of(name: &str) -> u64 {
    // FNV-1a, good enough for seeding.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Builds the stand-in for one suite entry at the requested scale.
///
/// Each family keeps the paper graph's degree profile:
/// * roads: δ ≈ 2, Δ ≤ ~10, strong locality;
/// * meshes: δ ≈ 5–6, Δ ≤ 8, balanced;
/// * social: power-law with pronounced hubs;
/// * web: heavier tails and higher average degree (R-MAT, a = 57%);
/// * matrix: near-regular with δ matching the paper (ring lattice / mild
///   R-MAT).
pub fn build_standin(entry: &SuiteEntry, scale: SuiteScale) -> Csr {
    let f = scale.factor();
    let seed = seed_of(entry.name);
    // Name-dependent size jitter so same-class stand-ins differ, echoing the
    // paper suite's spread of sizes within each family.
    let jitter = (seed % 7) as usize;
    match entry.class {
        GraphClass::Road => {
            // side ~ sqrt(n); baseline side 40 (1.6k vertices)
            let side = (40 + jitter) * f;
            road_network(side, side, 2.1, seed)
        }
        GraphClass::Mesh => {
            let side = (34 + jitter) * f;
            triangular_mesh(side, side, seed)
        }
        GraphClass::Social => {
            let n = 1_500 * f;
            let m = (entry.paper_avg_degree / 2).max(2);
            preferential_attachment(n, m, seed)
        }
        GraphClass::Web => {
            // scale chosen so 2^scale ≈ 1.5k * f; heavy skew for hub tails.
            let log_f = (f as f64).log2().round() as u32;
            let cfg = RmatConfig::new(11 + log_f, (entry.paper_avg_degree as u32) / 2)
                .with_probabilities(0.57, 0.19, 0.19, 0.05)
                .with_seed(seed);
            rmat(cfg)
        }
        GraphClass::Matrix => {
            let n = 1_500 * f;
            let _ = n;
            if entry.paper_max_degree <= 2 * entry.paper_avg_degree {
                // nlpkkt-style: a 3-D 27-point stencil (the structure of
                // PDE-constrained KKT matrices) — near-regular degrees with
                // spatial locality.
                let side = (12.0 * (f as f64).cbrt()).round() as usize;
                stencil3d(side)
            } else {
                // kkt_power-style mildly skewed
                let log_f = (f as f64).log2().round() as u32;
                let cfg = RmatConfig::new(11 + log_f, (entry.paper_avg_degree as u32).max(2) / 2)
                    .with_probabilities(0.45, 0.22, 0.22, 0.11)
                    .with_seed(seed);
                rmat(cfg)
            }
        }
    }
}

/// Finds a suite entry by paper name.
pub fn entry(name: &str) -> Option<&'static SuiteEntry> {
    SUITE.iter().find(|e| e.name == name)
}

/// Builds the whole suite at a scale: `(entry, graph)` pairs in Table-1
/// order.
pub fn build_suite(scale: SuiteScale) -> Vec<(&'static SuiteEntry, Csr)> {
    SUITE.iter().map(|e| (e, build_standin(e, scale))).collect()
}

/// The Figure-13 subset: graphs "where many vertices have degrees close to
/// the average" (the delaunay / nlpkkt class the paper selects for OVPL).
pub fn balanced_degree_subset() -> Vec<&'static SuiteEntry> {
    SUITE
        .iter()
        .filter(|e| matches!(e.name, "delaunay_n24" | "nlpkkt200" | "M6" | "NACA0015" | "AS365"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::graph_stats;

    #[test]
    fn suite_has_19_entries() {
        assert_eq!(SUITE.len(), 19);
    }

    #[test]
    fn entry_lookup() {
        assert!(entry("uk-2002").is_some());
        assert!(entry("nonexistent").is_none());
    }

    #[test]
    fn road_standins_have_road_profile() {
        for e in SUITE.iter().filter(|e| e.class == GraphClass::Road) {
            let g = build_standin(e, SuiteScale::Test);
            let s = graph_stats(&g);
            assert!(
                s.avg_degree > 1.4 && s.avg_degree < 3.0,
                "{}: avg degree {}",
                e.name,
                s.avg_degree
            );
            assert!(s.max_degree <= 12, "{}: max degree {}", e.name, s.max_degree);
        }
    }

    #[test]
    fn mesh_standins_are_balanced() {
        for e in SUITE.iter().filter(|e| e.class == GraphClass::Mesh) {
            let g = build_standin(e, SuiteScale::Test);
            let s = graph_stats(&g);
            assert!(
                s.avg_degree > 4.5 && s.avg_degree < 6.5,
                "{}: avg degree {}",
                e.name,
                s.avg_degree
            );
            assert!(s.degree_cv < 0.35, "{}: cv {}", e.name, s.degree_cv);
        }
    }

    #[test]
    fn social_and_web_standins_have_hubs() {
        for e in SUITE
            .iter()
            .filter(|e| matches!(e.class, GraphClass::Social | GraphClass::Web))
        {
            let g = build_standin(e, SuiteScale::Test);
            let s = graph_stats(&g);
            assert!(
                s.max_degree as f64 > 4.0 * s.avg_degree,
                "{}: max {} vs avg {}",
                e.name,
                s.max_degree,
                s.avg_degree
            );
        }
    }

    #[test]
    fn nlpkkt_standin_is_near_regular() {
        let e = entry("nlpkkt200").unwrap();
        let g = build_standin(e, SuiteScale::Test);
        let s = graph_stats(&g);
        assert_eq!(s.max_degree, 26);
        assert!(s.avg_degree > 18.0, "δ = {}", s.avg_degree);
        assert!(s.degree_cv < 0.25, "cv = {}", s.degree_cv);
    }

    #[test]
    fn standins_deterministic() {
        let e = entry("belgium").unwrap();
        assert_eq!(
            build_standin(e, SuiteScale::Test),
            build_standin(e, SuiteScale::Test)
        );
    }

    #[test]
    fn bench_scale_is_bigger() {
        let e = entry("M6").unwrap();
        let small = build_standin(e, SuiteScale::Test);
        let big = build_standin(e, SuiteScale::Bench);
        assert!(big.num_vertices() > 8 * small.num_vertices());
    }

    #[test]
    fn balanced_subset_members() {
        let names: Vec<&str> = balanced_degree_subset().iter().map(|e| e.name).collect();
        assert!(names.contains(&"delaunay_n24"));
        assert!(names.contains(&"nlpkkt200"));
    }
}
