/root/repo/target/debug/deps/fig_coloring-ac1eca79ef8d9cb7.d: crates/bench/src/bin/fig_coloring.rs Cargo.toml

/root/repo/target/debug/deps/libfig_coloring-ac1eca79ef8d9cb7.rmeta: crates/bench/src/bin/fig_coloring.rs Cargo.toml

crates/bench/src/bin/fig_coloring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
