//! Building a *new* partitioning-style kernel with the high-level
//! neighborhood API — the paper's future-work scenario ("deploy these
//! techniques on more graph partitioning kernels without requiring low-level
//! programming expert[ise]").
//!
//! The kernel: a community **boundary detector**. After Louvain, classify
//! each vertex by how much of its edge weight leaves its community — the
//! kind of post-processing a practitioner writes constantly, here getting
//! the AVX-512 gather/reduce-scatter machinery for free through
//! `NeighborhoodAggregator` (no intrinsics, no unsafe).
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```

use graph_partition_avx512::core::api::{run_kernel, Kernel, KernelSpec, Variant};
use graph_partition_avx512::core::neighborhood::NeighborhoodAggregator;
use graph_partition_avx512::graph::generators::planted_partition;
use graph_partition_avx512::metrics::telemetry::NoopRecorder;
use graph_partition_avx512::simd::backend::{Avx512, Emulated, Simd};

fn boundary_scores<S: Simd>(
    s: &S,
    g: &graph_partition_avx512::graph::csr::Csr,
    communities: &[u32],
) -> Vec<f32> {
    let mut agg = NeighborhoodAggregator::new(g.num_vertices());
    g.vertices()
        .map(|u| {
            let mine = communities[u as usize];
            let mut inside = 0.0f32;
            let mut total = 0.0f32;
            for (community, weight) in agg.aggregate(s, g, u, communities) {
                total += weight;
                if community == mine {
                    inside += weight;
                }
            }
            if total == 0.0 {
                0.0
            } else {
                1.0 - inside / total // fraction of weight crossing the border
            }
        })
        .collect()
}

fn main() {
    let graph = planted_partition(8, 48, 0.3, 0.01, 3);
    let spec = KernelSpec::new(Kernel::Louvain(Variant::default()));
    let out = run_kernel(&graph, &spec, &mut NoopRecorder);
    let result = out.as_louvain().unwrap();
    println!(
        "{} vertices, Q = {:.3}",
        graph.num_vertices(),
        result.modularity
    );

    // Run the custom kernel on whichever backend exists.
    let scores = match Avx512::new() {
        Some(s) => boundary_scores(&s, &graph, &result.communities),
        None => boundary_scores(&Emulated, &graph, &result.communities),
    };

    let interior = scores.iter().filter(|&&x| x < 0.25).count();
    let frontier = scores.iter().filter(|&&x| x >= 0.25).count();
    let max = scores.iter().cloned().fold(0.0f32, f32::max);
    println!("interior vertices (boundary score < 0.25): {interior}");
    println!("frontier vertices (boundary score ≥ 0.25): {frontier}");
    println!("most exposed vertex crosses {:.0}% of its weight", max * 100.0);

    // Planted partitions are dense inside: the vast majority must be interior.
    assert!(interior > frontier, "planted communities should be cohesive");
    println!("\ncustom kernel ran on the vectorized aggregation path — no intrinsics written.");
}
