/root/repo/target/release/deps/graph_partition_avx512-4be5cc58317b90b5.d: src/lib.rs

/root/repo/target/release/deps/libgraph_partition_avx512-4be5cc58317b90b5.rlib: src/lib.rs

/root/repo/target/release/deps/libgraph_partition_avx512-4be5cc58317b90b5.rmeta: src/lib.rs

src/lib.rs:
