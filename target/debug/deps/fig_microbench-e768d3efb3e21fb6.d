/root/repo/target/debug/deps/fig_microbench-e768d3efb3e21fb6.d: crates/bench/src/bin/fig_microbench.rs Cargo.toml

/root/repo/target/debug/deps/libfig_microbench-e768d3efb3e21fb6.rmeta: crates/bench/src/bin/fig_microbench.rs Cargo.toml

crates/bench/src/bin/fig_microbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
