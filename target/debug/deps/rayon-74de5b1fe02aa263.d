/root/repo/target/debug/deps/rayon-74de5b1fe02aa263.d: .devstubs/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-74de5b1fe02aa263.rmeta: .devstubs/rayon/src/lib.rs

.devstubs/rayon/src/lib.rs:
