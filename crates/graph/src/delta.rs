//! Mutable CSR for streaming graphs: [`DeltaCsr`].
//!
//! The kernels all execute over an immutable [`Csr`], so a graph that
//! changes between requests needs a representation that can absorb edge
//! churn without a full rebuild, yet still *look like* a CSR to every
//! sweep. `DeltaCsr` does this with per-row slack:
//!
//! * Each vertex's adjacency row is laid out with spare capacity
//!   (`max(min_slack, degree >> slack_shift)` slots, the compaction-policy
//!   knob), so inserts are O(1) appends into the row.
//! * Deletions are **tombstones**: the slot is rewritten to a weight-0
//!   self-loop `(v, v, 0.0)`, which every kernel family treats as a no-op
//!   (coloring and label propagation skip self-loops outright; Louvain
//!   volumes and modularity add `0.0`). Unused slack slots carry the same
//!   encoding, so the padded arrays are a *valid, semantically equivalent*
//!   CSR at all times — [`DeltaCsr::as_csr`] is a free borrow, and the
//!   SIMD sweeps run on it unchanged.
//! * When a row overflows, or tombstones exceed the policy fraction of
//!   stored slots, the structure **compacts**: live entries are rebuilt
//!   into a dense layout with fresh slack (amortized O(arcs), counted in
//!   [`DeltaStats::compactions`]).
//!
//! Zero-weight additions are rejected (the tombstone encoding reserves
//! weight 0.0 on self-loops), and zero-weight self-loops present in a
//! source graph are dropped on ingest for the same reason.
//!
//! Every mutation is sequential and deterministic: the same batch sequence
//! produces byte-identical arrays regardless of thread count, matching the
//! substrate determinism contract (`docs/PARALLELISM.md`).

use crate::csr::Csr;
use crate::{Edge, VertexId, Weight};

/// Why a mutation batch was rejected. The whole batch is refused before
/// anything is applied (see [`DeltaCsr::apply_edges`]), so carrying the
/// offending edge is enough to pinpoint the failure. `Display` renders the
/// exact wire messages the serve tier has always returned for rejected
/// `update` frames — the conformance golden tests pin them byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ApplyError {
    /// An addition references a vertex ≥ `n`.
    EdgeOutOfRange {
        /// Source endpoint of the offending addition.
        u: VertexId,
        /// Destination endpoint of the offending addition.
        v: VertexId,
        /// The graph's vertex count at rejection time.
        n: u32,
    },
    /// An addition carries weight ≤ 0 or NaN (0.0 is the tombstone
    /// encoding, so it can never be a live weight).
    NonPositiveWeight {
        /// Source endpoint of the offending addition.
        u: VertexId,
        /// Destination endpoint of the offending addition.
        v: VertexId,
        /// The rejected weight.
        w: Weight,
    },
    /// A deletion references a vertex ≥ `n`.
    DeletionOutOfRange {
        /// Source endpoint of the offending deletion.
        u: VertexId,
        /// Destination endpoint of the offending deletion.
        v: VertexId,
        /// The graph's vertex count at rejection time.
        n: u32,
    },
}

impl std::fmt::Display for ApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ApplyError::EdgeOutOfRange { u, v, n } => {
                write!(f, "edge ({u}, {v}) out of range (n = {n})")
            }
            ApplyError::NonPositiveWeight { u, v, w } => {
                write!(f, "edge ({u}, {v}) weight {w} must be > 0")
            }
            ApplyError::DeletionOutOfRange { u, v, n } => {
                write!(f, "deletion ({u}, {v}) out of range (n = {n})")
            }
        }
    }
}

impl std::error::Error for ApplyError {}

impl From<ApplyError> for String {
    fn from(e: ApplyError) -> String {
        e.to_string()
    }
}

/// When and how generously [`DeltaCsr`] re-lays rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionPolicy {
    /// Minimum spare slots per row at (re)build time (clamped to ≥ 1 so an
    /// overflow-triggered compaction always makes room).
    pub min_slack: u32,
    /// Additional slack as a fraction of the live degree:
    /// `degree >> slack_shift` slots.
    pub slack_shift: u32,
    /// Compact when tombstones exceed this fraction of stored slots.
    pub max_tombstone_frac: f64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            min_slack: 4,
            slack_shift: 3,
            max_tombstone_frac: 0.25,
        }
    }
}

impl CompactionPolicy {
    /// Slack slots granted to a row of `live` entries at rebuild.
    fn slack_for(&self, live: usize) -> usize {
        (self.min_slack.max(1) as usize).max(live >> self.slack_shift)
    }
}

/// The set of vertices affected by one [`DeltaCsr::apply_edges`] batch:
/// every endpoint of an edge that was actually inserted or deleted, sorted
/// ascending and deduplicated. This is the seed the incremental kernels
/// re-converge from.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TouchedSet {
    verts: Vec<VertexId>,
}

impl TouchedSet {
    /// Builds a touched set from an arbitrary vertex list (sorts + dedups).
    pub fn from_vertices(mut verts: Vec<VertexId>) -> Self {
        verts.sort_unstable();
        verts.dedup();
        TouchedSet { verts }
    }

    /// The sorted, deduplicated vertex list.
    pub fn as_slice(&self) -> &[VertexId] {
        &self.verts
    }

    /// Number of touched vertices.
    pub fn len(&self) -> usize {
        self.verts.len()
    }

    /// True when the batch changed nothing.
    pub fn is_empty(&self) -> bool {
        self.verts.is_empty()
    }

    /// Folds another touched set in (batch accumulation across steps).
    pub fn merge(&mut self, other: &TouchedSet) {
        self.verts.extend_from_slice(&other.verts);
        self.verts.sort_unstable();
        self.verts.dedup();
    }

    /// The one-hop closure: touched vertices plus all their neighbors in
    /// `g`, sorted and deduplicated — the frontier seed for the community
    /// kernels (a changed edge can flip the best label/community of either
    /// endpoint *and* of anything adjacent to them).
    pub fn expand(&self, g: &Csr) -> Vec<VertexId> {
        let mut out = self.verts.clone();
        for &v in &self.verts {
            out.extend(g.neighbors(v).iter().copied().filter(|&u| u != v));
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Occupancy and mutation counters for telemetry (`gpart stats`, serve
/// traces, the streaming docs' figures).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Live adjacency slots (real arcs).
    pub live_arcs: usize,
    /// Tombstoned slots awaiting compaction.
    pub tombstones: usize,
    /// Never-used slack slots.
    pub slack_slots: usize,
    /// Total padded slots (`live + tombstones + slack`).
    pub padded_arcs: usize,
    /// Mutation epoch: incremented once per batch that changed the graph.
    pub epoch: u64,
    /// Compactions performed (overflow- or policy-triggered).
    pub compactions: u64,
    /// Edge insertions applied across all batches.
    pub applied_additions: u64,
    /// Edge deletions applied across all batches.
    pub applied_deletions: u64,
}

/// A CSR with per-row edge slack, tombstone deletions, and periodic
/// compaction — the mutable substrate of the streaming subsystem. See the
/// module docs for the encoding.
#[derive(Debug, Clone)]
pub struct DeltaCsr {
    /// The padded view: always a valid [`Csr`] whose tombstone/slack slots
    /// are weight-0 self-loops.
    csr: Csr,
    /// Per-vertex count of initialized slots (live + tombstones), measured
    /// from the row start; slots past the tail are untouched slack.
    tail: Vec<u32>,
    /// Per-vertex tombstone count within the tail.
    tombs: Vec<u32>,
    live_arcs: usize,
    tomb_arcs: usize,
    policy: CompactionPolicy,
    epoch: u64,
    compactions: u64,
    applied_additions: u64,
    applied_deletions: u64,
}

impl DeltaCsr {
    /// Builds the slacked layout from a dense graph with the default
    /// [`CompactionPolicy`].
    pub fn from_csr(g: &Csr) -> Self {
        Self::with_policy(g, CompactionPolicy::default())
    }

    /// Builds the slacked layout with an explicit policy.
    pub fn with_policy(g: &Csr, policy: CompactionPolicy) -> Self {
        let n = g.num_vertices();
        let mut d = DeltaCsr {
            csr: Csr::empty(0),
            tail: vec![0; n],
            tombs: vec![0; n],
            live_arcs: 0,
            tomb_arcs: 0,
            policy,
            epoch: 0,
            compactions: 0,
            applied_additions: 0,
            applied_deletions: 0,
        };
        d.rebuild_from(g);
        d
    }

    /// Lays `source`'s live entries into fresh padded arrays. Zero-weight
    /// self-loops are dropped (they are the tombstone encoding and carry no
    /// semantics for any kernel).
    fn rebuild_from(&mut self, source: &Csr) {
        let n = source.num_vertices();
        let mut xadj: Vec<u32> = Vec::with_capacity(n + 1);
        let mut adj: Vec<VertexId> = Vec::new();
        let mut weights: Vec<Weight> = Vec::new();
        xadj.push(0);
        self.live_arcs = 0;
        for u in 0..n as u32 {
            let row_start = adj.len();
            for (v, w) in source.edges_of(u) {
                if v == u && w == 0.0 {
                    continue;
                }
                adj.push(v);
                weights.push(w);
            }
            let live = adj.len() - row_start;
            self.tail[u as usize] = live as u32;
            self.tombs[u as usize] = 0;
            self.live_arcs += live;
            for _ in 0..self.policy.slack_for(live) {
                adj.push(u);
                weights.push(0.0);
            }
            xadj.push(adj.len() as u32);
        }
        self.tomb_arcs = 0;
        self.csr = Csr::from_raw(xadj, adj, weights);
    }

    /// The padded view. Valid at all times: tombstones and slack are
    /// weight-0 self-loops, which every kernel treats as absent. Degrees
    /// and arc counts read from this view include the padding; use
    /// [`DeltaCsr::stats`] / [`DeltaCsr::num_live_arcs`] for exact numbers
    /// and [`DeltaCsr::snapshot`] for a dense graph.
    pub fn as_csr(&self) -> &Csr {
        &self.csr
    }

    /// Number of vertices (fixed for the lifetime of the structure).
    pub fn num_vertices(&self) -> usize {
        self.tail.len()
    }

    /// Live stored arcs (padding excluded).
    pub fn num_live_arcs(&self) -> usize {
        self.live_arcs
    }

    /// Live degree of `u` (padding excluded).
    pub fn live_degree(&self, u: VertexId) -> usize {
        (self.tail[u as usize] - self.tombs[u as usize]) as usize
    }

    /// Current mutation epoch: 0 at build, +1 per batch that changed the
    /// graph. Serve folds this into result-cache keys so cached results for
    /// earlier epochs can never be replayed against a mutated graph.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Occupancy and mutation counters.
    pub fn stats(&self) -> DeltaStats {
        let padded = self.csr.num_arcs();
        DeltaStats {
            live_arcs: self.live_arcs,
            tombstones: self.tomb_arcs,
            slack_slots: padded - self.live_arcs - self.tomb_arcs,
            padded_arcs: padded,
            epoch: self.epoch,
            compactions: self.compactions,
            applied_additions: self.applied_additions,
            applied_deletions: self.applied_deletions,
        }
    }

    /// A dense [`Csr`] of exactly the live entries (row order preserved) —
    /// what a from-scratch rebuild of the mutated graph would produce.
    pub fn snapshot(&self) -> Csr {
        let n = self.num_vertices();
        let mut xadj: Vec<u32> = Vec::with_capacity(n + 1);
        let mut adj: Vec<VertexId> = Vec::with_capacity(self.live_arcs);
        let mut weights: Vec<Weight> = Vec::with_capacity(self.live_arcs);
        xadj.push(0);
        for u in 0..n as u32 {
            for (v, w) in self.live_row(u) {
                adj.push(v);
                weights.push(w);
            }
            xadj.push(adj.len() as u32);
        }
        Csr::from_raw(xadj, adj, weights)
    }

    /// Iterates the live entries of row `u` in slot order.
    fn live_row(&self, u: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let start = self.csr.xadj()[u as usize] as usize;
        let tail = start + self.tail[u as usize] as usize;
        self.csr.adj()[start..tail]
            .iter()
            .zip(&self.csr.weights()[start..tail])
            .filter(move |&(&v, &w)| !(v == u && w == 0.0))
            .map(|(&v, &w)| (v, w))
    }

    /// True when a live `(u, v)` entry exists in `u`'s row.
    pub fn has_live_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.live_row(u).any(|(x, _)| x == v)
    }

    /// True when the policy says tombstone occupancy warrants a rebuild.
    pub fn should_compact(&self) -> bool {
        let stored = self.live_arcs + self.tomb_arcs;
        stored > 0 && self.tomb_arcs as f64 > self.policy.max_tombstone_frac * stored as f64
    }

    /// Rebuilds the padded layout from the current live entries (fresh
    /// slack, zero tombstones). O(arcs); bumps the compaction counter.
    pub fn compact(&mut self) {
        let dense = self.snapshot();
        self.rebuild_from(&dense);
        self.compactions += 1;
    }

    /// Applies one batch of mutations: deletions first, then additions, in
    /// the order given (so delete-then-re-add within a batch nets to a
    /// weight replacement). Returns the [`TouchedSet`] of endpoints whose
    /// adjacency actually changed.
    ///
    /// * Deleting an edge that is not present is a no-op.
    /// * Adding an edge that is already live is a no-op (the existing
    ///   weight is kept; use delete + add to change a weight).
    /// * Additions must carry weight > 0 (0.0 is the tombstone encoding).
    ///
    /// Errors (out-of-range endpoint, non-positive weight) reject the
    /// *whole* batch before anything is applied, so a failed update never
    /// leaves the graph half-mutated.
    pub fn apply_edges(
        &mut self,
        additions: &[Edge],
        deletions: &[(VertexId, VertexId)],
    ) -> Result<TouchedSet, ApplyError> {
        let n = self.num_vertices() as u32;
        for e in additions {
            if e.u >= n || e.v >= n {
                return Err(ApplyError::EdgeOutOfRange { u: e.u, v: e.v, n });
            }
            // Also rejects NaN, which compares false against everything.
            if e.w <= 0.0 || e.w.is_nan() {
                return Err(ApplyError::NonPositiveWeight {
                    u: e.u,
                    v: e.v,
                    w: e.w,
                });
            }
        }
        for &(u, v) in deletions {
            if u >= n || v >= n {
                return Err(ApplyError::DeletionOutOfRange { u, v, n });
            }
        }

        let mut touched: Vec<VertexId> = Vec::new();
        for &(u, v) in deletions {
            if self.delete_arc(u, v) {
                if v != u {
                    let other = self.delete_arc(v, u);
                    debug_assert!(other, "padded view lost symmetry at ({u}, {v})");
                }
                self.live_arcs -= if v == u { 1 } else { 2 };
                self.applied_deletions += 1;
                touched.push(u);
                touched.push(v);
            }
        }
        for e in additions {
            if self.has_live_edge(e.u, e.v) {
                continue;
            }
            self.insert_arc(e.u, e.v, e.w);
            if e.v != e.u {
                self.insert_arc(e.v, e.u, e.w);
            }
            self.live_arcs += if e.v == e.u { 1 } else { 2 };
            self.applied_additions += 1;
            touched.push(e.u);
            touched.push(e.v);
        }
        if touched.is_empty() {
            return Ok(TouchedSet::default());
        }
        self.epoch += 1;
        if self.should_compact() {
            self.compact();
        }
        Ok(TouchedSet::from_vertices(touched))
    }

    /// Tombstones the first live `(u, v)` slot in `u`'s row. Returns false
    /// when no such slot exists.
    fn delete_arc(&mut self, u: VertexId, v: VertexId) -> bool {
        let start = self.csr.xadj()[u as usize] as usize;
        let tail = start + self.tail[u as usize] as usize;
        let (adj, weights) = self.csr.arrays_mut();
        for p in start..tail {
            let live = !(adj[p] == u && weights[p] == 0.0);
            if adj[p] == v && live {
                adj[p] = u;
                weights[p] = 0.0;
                self.tombs[u as usize] += 1;
                self.tomb_arcs += 1;
                return true;
            }
        }
        false
    }

    /// Writes arc `(u, v, w)` into `u`'s row: reuses the first tombstone
    /// slot, else appends into slack, else compacts the whole structure and
    /// retries (guaranteed to fit — compaction grants every row ≥ 1 spare
    /// slot).
    fn insert_arc(&mut self, u: VertexId, v: VertexId, w: Weight) {
        if self.try_insert_arc(u, v, w) {
            return;
        }
        self.compact();
        let ok = self.try_insert_arc(u, v, w);
        debug_assert!(ok, "row {u} still full after compaction");
    }

    fn try_insert_arc(&mut self, u: VertexId, v: VertexId, w: Weight) -> bool {
        let ui = u as usize;
        let start = self.csr.xadj()[ui] as usize;
        let cap = self.csr.xadj()[ui + 1] as usize - start;
        let tail = self.tail[ui] as usize;
        if self.tombs[ui] > 0 {
            let (adj, weights) = self.csr.arrays_mut();
            for p in start..start + tail {
                if adj[p] == u && weights[p] == 0.0 {
                    adj[p] = v;
                    weights[p] = w;
                    self.tombs[ui] -= 1;
                    self.tomb_arcs -= 1;
                    return true;
                }
            }
            unreachable!("tombstone count positive but no tombstone slot in row {u}");
        }
        if tail < cap {
            let (adj, weights) = self.csr.arrays_mut();
            adj[start + tail] = v;
            weights[start + tail] = w;
            self.tail[ui] += 1;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_pairs;
    use crate::generators::{erdos_renyi, triangular_mesh};

    fn mesh() -> Csr {
        triangular_mesh(8, 8, 1)
    }

    #[test]
    fn padded_view_is_semantically_equal_to_source() {
        let g = mesh();
        let d = DeltaCsr::from_csr(&g);
        let view = d.as_csr();
        assert_eq!(view.num_vertices(), g.num_vertices());
        assert!(view.num_arcs() > g.num_arcs(), "padding must add slack");
        assert_eq!(view.total_weight(), g.total_weight());
        for u in 0..g.num_vertices() as u32 {
            assert_eq!(view.volume(u), g.volume(u));
        }
        // The dense snapshot reproduces the source exactly.
        let s = d.snapshot();
        assert_eq!(s.xadj(), g.xadj());
        assert_eq!(s.adj(), g.adj());
        assert_eq!(s.weights(), g.weights());
    }

    #[test]
    fn insert_and_delete_roundtrip() {
        let g = from_pairs(4, [(0, 1), (1, 2)]);
        let mut d = DeltaCsr::from_csr(&g);
        let t = d
            .apply_edges(&[Edge::new(2, 3, 2.0)], &[(0, 1)])
            .unwrap();
        assert_eq!(t.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(d.epoch(), 1);
        let s = d.snapshot();
        assert!(!s.has_edge(0, 1) && !s.has_edge(1, 0));
        assert_eq!(s.edge_weight(2, 3), Some(2.0));
        assert_eq!(s.edge_weight(3, 2), Some(2.0));
        assert!(s.is_symmetric());
        assert_eq!(d.num_live_arcs(), 4);
        assert_eq!(d.live_degree(0), 0);
    }

    #[test]
    fn duplicate_add_and_absent_delete_are_noops() {
        let g = from_pairs(3, [(0, 1)]);
        let mut d = DeltaCsr::from_csr(&g);
        let t = d
            .apply_edges(&[Edge::unweighted(0, 1)], &[(1, 2)])
            .unwrap();
        assert!(t.is_empty());
        assert_eq!(d.epoch(), 0, "no-op batches must not invalidate caches");
        assert_eq!(d.stats().applied_additions, 0);
    }

    #[test]
    fn delete_then_readd_in_one_batch_replaces_weight() {
        let g = from_pairs(3, [(0, 1)]);
        let mut d = DeltaCsr::from_csr(&g);
        let t = d
            .apply_edges(&[Edge::new(0, 1, 5.0)], &[(0, 1)])
            .unwrap();
        assert_eq!(t.as_slice(), &[0, 1]);
        assert_eq!(d.snapshot().edge_weight(0, 1), Some(5.0));
        assert_eq!(d.num_live_arcs(), 2);
    }

    #[test]
    fn self_loops_store_once_and_delete() {
        let g = Csr::empty(2);
        let mut d = DeltaCsr::from_csr(&g);
        d.apply_edges(&[Edge::new(1, 1, 3.0)], &[]).unwrap();
        assert_eq!(d.num_live_arcs(), 1);
        assert_eq!(d.snapshot().edge_weight(1, 1), Some(3.0));
        d.apply_edges(&[], &[(1, 1)]).unwrap();
        assert_eq!(d.num_live_arcs(), 0);
        assert_eq!(d.snapshot().num_edges(), 0);
    }

    #[test]
    fn rejects_bad_batches_atomically() {
        let g = from_pairs(3, [(0, 1)]);
        let mut d = DeltaCsr::from_csr(&g);
        assert!(d.apply_edges(&[Edge::new(0, 9, 1.0)], &[]).is_err());
        assert!(d.apply_edges(&[Edge::new(0, 2, 0.0)], &[]).is_err());
        assert!(d.apply_edges(&[], &[(5, 0)]).is_err());
        assert_eq!(d.epoch(), 0);
        assert_eq!(d.snapshot().num_edges(), 1);
    }

    #[test]
    fn overflow_triggers_compaction_and_keeps_growing() {
        let g = Csr::empty(40);
        let mut d = DeltaCsr::with_policy(
            &g,
            CompactionPolicy {
                min_slack: 1,
                slack_shift: 3,
                max_tombstone_frac: 0.25,
            },
        );
        // Grow vertex 0 into a hub far past any single slack grant.
        for v in 1..40u32 {
            d.apply_edges(&[Edge::unweighted(0, v)], &[]).unwrap();
        }
        assert!(d.stats().compactions > 0, "hub growth must compact");
        assert_eq!(d.live_degree(0), 39);
        let s = d.snapshot();
        assert_eq!(s.degree(0), 39);
        assert!(s.is_symmetric());
    }

    #[test]
    fn tombstone_pressure_triggers_policy_compaction() {
        let g = erdos_renyi(100, 400, 7);
        let mut d = DeltaCsr::from_csr(&g);
        // Delete more than the tombstone fraction allows in one batch.
        let dels: Vec<(u32, u32)> = (0..100u32)
            .flat_map(|u| g.neighbors(u).iter().map(move |&v| (u, v)))
            .filter(|&(u, v)| u < v)
            .take(300)
            .collect();
        d.apply_edges(&[], &dels).unwrap();
        let st = d.stats();
        assert!(st.compactions > 0, "{st:?}");
        assert_eq!(st.tombstones, 0, "compaction clears tombstones: {st:?}");
        assert_eq!(st.live_arcs, d.snapshot().num_arcs());
    }

    #[test]
    fn mutation_stream_matches_rebuilt_graph() {
        // Randomized churn against a from-scratch rebuild oracle.
        let g = erdos_renyi(60, 200, 11);
        let mut d = DeltaCsr::from_csr(&g);
        let mut edges: Vec<(u32, u32, f32)> = Vec::new();
        for u in 0..60u32 {
            for (v, w) in g.edges_of(u) {
                if u <= v {
                    edges.push((u, v, w));
                }
            }
        }
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut step = |m: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for _ in 0..200 {
            if !edges.is_empty() && step(2) == 0 {
                let i = step(edges.len() as u64) as usize;
                let (u, v, _) = edges.swap_remove(i);
                d.apply_edges(&[], &[(u, v)]).unwrap();
            } else {
                let u = step(60) as u32;
                let v = step(60) as u32;
                if edges.iter().any(|&(a, b, _)| (a, b) == (u.min(v), u.max(v))) {
                    continue;
                }
                let w = 1.0 + step(5) as f32;
                d.apply_edges(&[Edge::new(u, v, w)], &[]).unwrap();
                edges.push((u.min(v), u.max(v), w));
            }
        }
        // Oracle: rebuild from the surviving edge list.
        let mut b = crate::builder::GraphBuilder::new(60);
        for &(u, v, w) in &edges {
            b.add_edge(Edge::new(u, v, w));
        }
        let oracle = b.build();
        let s = d.snapshot();
        assert_eq!(s.num_edges(), oracle.num_edges());
        for u in 0..60u32 {
            let mut a: Vec<(u32, u32)> =
                s.edges_of(u).map(|(v, w)| (v, w.to_bits())).collect();
            let mut o: Vec<(u32, u32)> =
                oracle.edges_of(u).map(|(v, w)| (v, w.to_bits())).collect();
            a.sort_unstable();
            o.sort_unstable();
            assert_eq!(a, o, "row {u} diverged from oracle");
        }
    }

    #[test]
    fn touched_set_expand_covers_neighborhood() {
        let g = from_pairs(5, [(0, 1), (1, 2), (3, 4)]);
        let t = TouchedSet::from_vertices(vec![1]);
        assert_eq!(t.expand(&g), vec![0, 1, 2]);
        let mut a = TouchedSet::from_vertices(vec![3, 1]);
        a.merge(&t);
        assert_eq!(a.as_slice(), &[1, 3]);
    }
}
