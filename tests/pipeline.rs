//! Cross-crate integration: run the full coloring and community-detection
//! pipelines over the Table-1 stand-in suite and check every invariant that
//! the paper's experiments rely on.

#![allow(deprecated)] // exercises pinned-backend/legacy entrypoints run_kernel doesn't expose

use graph_partition_avx512::core::coloring::{color_graph, verify_coloring, ColoringConfig};
use graph_partition_avx512::core::labelprop::{label_propagation, LabelPropConfig};
use graph_partition_avx512::core::louvain::{louvain, modularity, LouvainConfig, Variant};
use graph_partition_avx512::core::reduce_scatter::Strategy;
use graph_partition_avx512::graph::suite::{build_suite, SuiteScale};

#[test]
fn coloring_is_valid_on_every_suite_graph() {
    for (entry, g) in build_suite(SuiteScale::Test) {
        let r = color_graph(&g, &ColoringConfig::default());
        verify_coloring(&g, &r.colors)
            .unwrap_or_else(|e| panic!("{}: invalid coloring: {e}", entry.name));
        assert!(
            r.num_colors as usize <= g.max_degree() + 1,
            "{}: {} colors exceeds greedy bound Δ+1 = {}",
            entry.name,
            r.num_colors,
            g.max_degree() + 1
        );
    }
}

#[test]
fn louvain_variants_agree_on_quality_across_suite() {
    // The Figure-11b property: multilevel modularity is nearly identical
    // across scalar and vector implementations.
    for (entry, g) in build_suite(SuiteScale::Test) {
        let q_mplm = louvain(&g, &LouvainConfig::sequential(Variant::Mplm)).modularity;
        let q_onpl = louvain(
            &g,
            &LouvainConfig::sequential(Variant::Onpl(Strategy::Adaptive)),
        )
        .modularity;
        assert!(
            (q_mplm - q_onpl).abs() < 0.02,
            "{}: MPLM {q_mplm} vs ONPL {q_onpl}",
            entry.name
        );
        assert!(q_mplm > 0.05, "{}: implausibly low Q {q_mplm}", entry.name);
    }
}

#[test]
fn ovpl_quality_tracks_mplm_on_suite() {
    for (entry, g) in build_suite(SuiteScale::Test) {
        let q_mplm = louvain(&g, &LouvainConfig::sequential(Variant::Mplm)).modularity;
        let q_ovpl = louvain(&g, &LouvainConfig::sequential(Variant::Ovpl)).modularity;
        // OVPL's block schedule may land on a different local optimum;
        // quality must stay within a tight band (and is sometimes better).
        assert!(
            q_ovpl > q_mplm - 0.03,
            "{}: OVPL {q_ovpl} trails MPLM {q_mplm}",
            entry.name
        );
    }
}

#[test]
fn label_propagation_converges_on_suite() {
    for (entry, g) in build_suite(SuiteScale::Test) {
        let r = label_propagation(&g, &LabelPropConfig::default());
        assert!(
            r.iterations < 100,
            "{}: no convergence in {} sweeps",
            entry.name,
            r.iterations
        );
        assert_eq!(r.labels.len(), g.num_vertices());
        // Labels must name actual vertices (they start as vertex ids).
        assert!(r.labels.iter().all(|&l| (l as usize) < g.num_vertices()));
    }
}

#[test]
fn communities_partition_the_vertex_set() {
    let (_, g) = &build_suite(SuiteScale::Test)[5]; // Oregon-2 stand-in
    let r = louvain(g, &LouvainConfig::default());
    assert_eq!(r.communities.len(), g.num_vertices());
    let q = modularity(g, &r.communities);
    assert!((r.modularity - q).abs() < 1e-12, "reported Q must match recomputed Q");
}

#[test]
fn parallel_and_sequential_louvain_reach_similar_quality() {
    let (_, g) = &build_suite(SuiteScale::Test)[1]; // AS365 mesh stand-in
    let q_seq = louvain(g, &LouvainConfig::sequential(Variant::Mplm)).modularity;
    let q_par = louvain(
        g,
        &LouvainConfig {
            variant: Variant::Mplm,
            parallel: true,
            ..Default::default()
        },
    )
    .modularity;
    assert!((q_seq - q_par).abs() < 0.05, "seq {q_seq} vs par {q_par}");
}
