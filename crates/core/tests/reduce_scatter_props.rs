//! Property tests for the reduce-scatter primitive: every strategy must
//! equal the scalar reference accumulation for any index/value/mask
//! combination — the invariant the whole ONPL family rests on.

use gp_core::reduce_scatter::{reduce_scatter, Strategy};
use gp_simd::backend::{Avx512, Emulated, Simd};
use gp_simd::vector::{Mask16, LANES};
use proptest::prelude::*;

fn reference(idx: &[i32; LANES], val: &[f32; LANES], mask: Mask16, len: usize) -> Vec<f32> {
    let mut acc = vec![0f32; len];
    for lane in mask.iter_set() {
        acc[idx[lane] as usize] += val[lane];
    }
    acc
}

fn run_strategy<S: Simd>(
    s: &S,
    strategy: Strategy,
    idx: &[i32; LANES],
    val: &[f32; LANES],
    mask: Mask16,
    len: usize,
) -> Vec<f32> {
    let mut acc = vec![0f32; len];
    unsafe {
        reduce_scatter(
            s,
            strategy,
            &mut acc,
            s.from_array_i32(*idx),
            s.from_array_f32(*val),
            mask,
        )
    };
    acc
}

fn close(a: &[f32], b: &[f32]) -> bool {
    a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Dense duplicates: indices drawn from a tiny range.
    #[test]
    fn strategies_match_reference_dense(
        idx in prop::array::uniform16(0i32..4),
        val in prop::array::uniform16(0.0f32..10.0),
        mask_bits in any::<u16>(),
    ) {
        let mask = Mask16(mask_bits);
        let expect = reference(&idx, &val, mask, 8);
        for strategy in Strategy::ALL {
            let got = run_strategy(&Emulated, strategy, &idx, &val, mask, 8);
            prop_assert!(close(&got, &expect), "{strategy:?}: {got:?} vs {expect:?}");
        }
    }

    /// Sparse duplicates: indices drawn from a wide range.
    #[test]
    fn strategies_match_reference_sparse(
        idx in prop::array::uniform16(0i32..512),
        val in prop::array::uniform16(-5.0f32..5.0),
        mask_bits in any::<u16>(),
    ) {
        let mask = Mask16(mask_bits);
        let expect = reference(&idx, &val, mask, 512);
        for strategy in Strategy::ALL {
            let got = run_strategy(&Emulated, strategy, &idx, &val, mask, 512);
            prop_assert!(close(&got, &expect), "{strategy:?}");
        }
    }

    /// The native backend agrees with the emulated one for every strategy.
    #[test]
    fn native_matches_emulated(
        idx in prop::array::uniform16(0i32..16),
        val in prop::array::uniform16(0.0f32..100.0),
        mask_bits in any::<u16>(),
    ) {
        let Some(native) = Avx512::new() else { return Ok(()) };
        let mask = Mask16(mask_bits);
        for strategy in Strategy::ALL {
            let a = run_strategy(&native, strategy, &idx, &val, mask, 16);
            let b = run_strategy(&Emulated, strategy, &idx, &val, mask, 16);
            prop_assert!(close(&a, &b), "{strategy:?}: backends diverged");
        }
    }

    /// Accumulation is additive: two reduce-scatters equal one with doubled
    /// values.
    #[test]
    fn double_application_is_double(
        idx in prop::array::uniform16(0i32..8),
        val in prop::array::uniform16(0.0f32..10.0),
    ) {
        let s = Emulated;
        let mut twice = vec![0f32; 8];
        for _ in 0..2 {
            unsafe {
                reduce_scatter(
                    &s,
                    Strategy::Adaptive,
                    &mut twice,
                    s.from_array_i32(idx),
                    s.from_array_f32(val),
                    Mask16::ALL,
                )
            };
        }
        let doubled: [f32; LANES] = std::array::from_fn(|i| 2.0 * val[i]);
        let once = run_strategy(&s, Strategy::Adaptive, &idx, &doubled, Mask16::ALL, 8);
        prop_assert!(close(&twice, &once));
    }
}
