//! F-MOD — regenerates Figure 11(b): modularity of MPLM, ONPL, and OVPL.
//!
//! The quality check: vectorization (and its altered race timing) must not
//! degrade the communities. All three bars per graph should be close.

use gp_bench::harness::{print_header, quality_louvain_full, BenchContext};
use gp_core::louvain::Variant;
use gp_core::reduce_scatter::Strategy;
use gp_graph::suite::build_suite;
use gp_metrics::report::Table;

fn main() {
    let ctx = BenchContext::from_env();
    print_header("Figure 11b: modularity of MPLM / ONPL / OVPL", &ctx);
    let mut table = Table::new(
        "Figure 11b — modularity of the full multilevel Louvain run",
        &["graph", "MPLM", "ONPL", "OVPL", "max spread"],
    );
    for (entry, g) in build_suite(ctx.scale) {
        let q_mplm = quality_louvain_full(&g, Variant::Mplm);
        let q_onpl = quality_louvain_full(&g, Variant::Onpl(Strategy::Adaptive));
        let q_ovpl = quality_louvain_full(&g, Variant::Ovpl);
        let spread = [q_mplm, q_onpl, q_ovpl]
            .iter()
            .fold(f64::MIN, |a, &b| a.max(b))
            - [q_mplm, q_onpl, q_ovpl]
                .iter()
                .fold(f64::MAX, |a, &b| a.min(b));
        table.row(&[
            entry.name.to_string(),
            format!("{q_mplm:.4}"),
            format!("{q_onpl:.4}"),
            format!("{q_ovpl:.4}"),
            format!("{spread:.4}"),
        ]);
    }
    ctx.emit(&table);
    if !ctx.csv {
        println!("\npaper reference: all methods achieve almost the same modularity");
    }
}
