/root/repo/target/debug/deps/rand-c701702706dc608f.d: .devstubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-c701702706dc608f.rmeta: .devstubs/rand/src/lib.rs

.devstubs/rand/src/lib.rs:
