//! Criterion bench: multilevel edge-cut partitioning (the problem-class
//! extension) — scalar vs ONPL-vectorized refinement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gp_core::partition::refine::{refine, refine_scalar};
use gp_core::partition::PartitionConfig;
use gp_graph::suite::{build_standin, entry, SuiteScale};
use gp_simd::engine::Engine;

fn bench_refinement(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_refine");
    group.sample_size(10);
    for name in ["M6", "nlpkkt200"] {
        let g = build_standin(entry(name).unwrap(), SuiteScale::Test);
        let weights = vec![1.0f32; g.num_vertices()];
        let cfg = PartitionConfig::kway(4);
        let stripes: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v % 4).collect();
        group.bench_with_input(BenchmarkId::new("scalar", name), &g, |b, g| {
            b.iter(|| {
                let mut parts = stripes.clone();
                refine_scalar(g, &weights, &mut parts, &cfg);
                parts
            })
        });
        group.bench_with_input(BenchmarkId::new("onpl", name), &g, |b, g| {
            match gp_core::backends::engine() {
                Engine::Native(s) => b.iter(|| {
                    let mut parts = stripes.clone();
                    refine(&s, g, &weights, &mut parts, &cfg);
                    parts
                }),
                Engine::Emulated(s) => b.iter(|| {
                    let mut parts = stripes.clone();
                    refine(&s, g, &weights, &mut parts, &cfg);
                    parts
                }),
            }
        });
    }
    group.finish();
}

criterion_group!(benches, bench_refinement);
criterion_main!(benches);
