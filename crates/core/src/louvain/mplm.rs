//! MPLM — the Modified Parallel Louvain Method (Section 7.3.1).
//!
//! The paper's scalar baseline: PLM with the memory management fixed.
//! Every worker thread owns one preallocated affinity accumulator (a dense
//! f32 array plus a touched-list for O(deg) reset) that is reused across all
//! vertices the thread processes — "preallocates memory per thread. And then
//! reuse the same buffer for the computation rather than deallocating and
//! reallocating memory over and over".

use super::modularity::modularity;
use super::{delta_mod, LouvainConfig, MovePhaseStats, MoveState};
use gp_graph::csr::Csr;
use gp_metrics::telemetry::{NoopRecorder, Recorder};
use gp_simd::counters;
use std::sync::atomic::{AtomicU64, Ordering};

/// Preallocated per-thread affinity accumulator.
///
/// `aff[c]` holds ω(u, c∖{u}) for the vertex currently being processed;
/// `touched` lists the communities with non-zero affinity so reset costs
/// O(deg) instead of O(n).
pub struct AffinityBuf {
    pub(crate) aff: Vec<f32>,
    pub(crate) touched: Vec<u32>,
}

impl AffinityBuf {
    /// Allocates an accumulator for community ids `< n`.
    pub fn new(n: usize) -> Self {
        AffinityBuf {
            aff: vec![0.0; n],
            touched: Vec::with_capacity(64),
        }
    }

    /// Resets only the touched entries.
    #[inline]
    pub fn reset(&mut self) {
        for &c in &self.touched {
            self.aff[c as usize] = 0.0;
        }
        self.touched.clear();
    }
}

/// Computes the best move for `u` using the scalar affinity kernel.
/// Returns `(from, to)` when a strictly-positive-gain move exists.
#[inline]
pub(crate) fn best_move_scalar(
    g: &Csr,
    state: &MoveState,
    u: u32,
    buf: &mut AffinityBuf,
    inv_m: f32,
    inv_2m2: f32,
    count_ops: bool,
) -> Option<(u32, u32)> {
    if g.degree(u) == 0 {
        return None;
    }
    // Affinity pass: ω(u, D∖{u}) for every neighboring community D.
    for (v, w) in g.edges_of(u) {
        if v == u {
            continue;
        }
        let d = state.community(v);
        if buf.aff[d as usize] == 0.0 {
            buf.touched.push(d);
        }
        buf.aff[d as usize] += w;
    }

    let c = state.community(u);
    let vol_u = state.vertex_volume[u as usize];
    let vol_c_without_u = state.volume[c as usize].load() - vol_u;
    let aff_c = buf.aff[c as usize];

    let mut best_delta = 0.0f32;
    let mut best = c;
    for &d in &buf.touched {
        if d == c {
            continue;
        }
        let delta = delta_mod(
            aff_c,
            buf.aff[d as usize],
            vol_c_without_u,
            state.volume[d as usize].load(),
            vol_u,
            inv_m,
            inv_2m2,
        );
        if delta > best_delta {
            best_delta = delta;
            best = d;
        }
    }
    if count_ops {
        // Selection scans the deduplicated touched list: random affinity +
        // volume loads plus the Δmod arithmetic per candidate.
        let k = buf.touched.len() as u64;
        counters::record(counters::OpClass::ScalarRandLoad, 2 * k);
        counters::record(counters::OpClass::ScalarAlu, 4 * k);
        counters::record(counters::OpClass::ScalarBranch, k);
    }
    buf.reset();
    (best != c && best_delta > 0.0).then_some((c, best))
}

/// One full move phase (Algorithm 4) with the MPLM kernel. Mutates `state`
/// and returns sweep statistics.
pub fn move_phase_mplm(g: &Csr, state: &MoveState, config: &LouvainConfig) -> MovePhaseStats {
    move_phase_mplm_recorded(g, state, config, &mut NoopRecorder)
}

/// [`move_phase_mplm`] with per-sweep telemetry delivered to `rec`.
pub fn move_phase_mplm_recorded<R: Recorder>(
    g: &Csr,
    state: &MoveState,
    config: &LouvainConfig,
    rec: &mut R,
) -> MovePhaseStats {
    let n = g.num_vertices();
    let inv_m = (1.0 / state.total_weight) as f32;
    let inv_2m2 = (1.0 / (2.0 * state.total_weight * state.total_weight)) as f32;
    let plan = crate::locality::Plan::for_graph(g, config.block, config.bucket);

    super::run_sweeps(
        config,
        n,
        |v| g.degree(v) as u64,
        rec,
        || modularity(g, &state.communities()),
        |fr| super::tally_sweep(g, &plan, config, fr),
        |fr, active_edges, rec| {
            let moved = AtomicU64::new(0);
            let bailed = super::sweep_vertices(
                g,
                &plan,
                fr,
                n,
                config,
                rec,
                || AffinityBuf::new(n),
                |buf, u| {
                    if let Some((c, d)) =
                        best_move_scalar(g, state, u, buf, inv_m, inv_2m2, config.count_ops)
                    {
                        state.apply_move(u, c, d);
                        moved.fetch_add(1, Ordering::Relaxed);
                        for &v in g.neighbors(u) {
                            fr.activate(v);
                        }
                    }
                },
                Some(|v: u32| {
                    for &nv in g.neighbors(v).iter().take(crate::locality::WARM_NEIGHBOR_CAP) {
                        crate::locality::prefetch(&state.zeta[nv as usize] as *const _);
                    }
                }),
            );
            if config.count_ops {
                // Affinity pass per visited arc: adj + weight stream loads,
                // random zeta and affinity loads, affinity store, first-touch
                // branch, add. `active_edges` counts exactly the arcs this
                // sweep visited. (Selection is counted per vertex in
                // `best_move_scalar`, on the deduplicated touched list.)
                let arcs = active_edges;
                counters::record(counters::OpClass::ScalarLoad, 2 * arcs);
                counters::record(counters::OpClass::ScalarRandLoad, 2 * arcs);
                counters::record(counters::OpClass::ScalarStore, arcs);
                counters::record(counters::OpClass::ScalarAlu, 2 * arcs);
                counters::record(counters::OpClass::ScalarBranch, 2 * arcs);
            }
            (moved.into_inner(), bailed)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::super::modularity::modularity;
    use super::super::Variant;
    use super::*;
    use gp_graph::builder::from_pairs;
    use gp_graph::generators::{clique, planted_partition, planted_partition_truth};

    fn run_seq(g: &Csr) -> (Vec<u32>, MovePhaseStats) {
        let state = MoveState::singleton(g);
        let cfg = LouvainConfig::sequential(Variant::Mplm);
        let stats = move_phase_mplm(g, &state, &cfg);
        (state.communities(), stats)
    }

    #[test]
    fn merges_a_clique() {
        let (zeta, stats) = run_seq(&clique(6));
        let first = zeta[0];
        assert!(zeta.iter().all(|&c| c == first), "{zeta:?}");
        assert!(stats.moves >= 5);
    }

    #[test]
    fn separates_two_cliques() {
        // Two 4-cliques bridged by one edge.
        let mut edges = Vec::new();
        for u in 0..4u32 {
            for v in 0..u {
                edges.push((u, v));
                edges.push((u + 4, v + 4));
            }
        }
        edges.push((3, 4));
        let g = from_pairs(8, edges);
        let (zeta, _) = run_seq(&g);
        assert_eq!(zeta[0], zeta[1]);
        assert_eq!(zeta[0], zeta[2]);
        assert_eq!(zeta[0], zeta[3]);
        assert_eq!(zeta[4], zeta[5]);
        assert_eq!(zeta[4], zeta[7]);
        assert_ne!(zeta[0], zeta[4]);
    }

    #[test]
    fn improves_modularity_over_singletons() {
        let g = planted_partition(4, 12, 0.7, 0.05, 11);
        let singletons: Vec<u32> = (0..48).collect();
        let (zeta, _) = run_seq(&g);
        assert!(modularity(&g, &zeta) > modularity(&g, &singletons));
    }

    #[test]
    fn recovers_planted_partition_quality() {
        let g = planted_partition(4, 16, 0.8, 0.02, 5);
        let truth = planted_partition_truth(4, 16);
        let (zeta, _) = run_seq(&g);
        let q = modularity(&g, &zeta);
        let q_truth = modularity(&g, &truth);
        assert!(
            q > 0.85 * q_truth,
            "move phase found Q = {q}, truth Q = {q_truth}"
        );
    }

    #[test]
    fn empty_and_isolated_graphs() {
        let (zeta, stats) = run_seq(&Csr::empty(4));
        assert_eq!(zeta, vec![0, 1, 2, 3]);
        assert_eq!(stats.moves, 0);
        assert_eq!(stats.iterations, 1);
    }

    #[test]
    fn parallel_mode_produces_valid_communities() {
        let g = planted_partition(3, 20, 0.6, 0.03, 9);
        let state = MoveState::singleton(&g);
        let cfg = LouvainConfig {
            variant: Variant::Mplm,
            ..Default::default()
        };
        move_phase_mplm(&g, &state, &cfg);
        let zeta = state.communities();
        let q = modularity(&g, &zeta);
        assert!(q > 0.2, "parallel move phase reached Q = {q}");
    }

    #[test]
    fn respects_iteration_cap() {
        let g = clique(8);
        let state = MoveState::singleton(&g);
        let cfg = LouvainConfig {
            max_move_iterations: 1,
            parallel: false,
            ..Default::default()
        };
        let stats = move_phase_mplm(&g, &state, &cfg);
        assert_eq!(stats.iterations, 1);
    }

    #[test]
    fn volumes_stay_consistent_after_moves() {
        let g = planted_partition(2, 10, 0.8, 0.1, 4);
        let state = MoveState::singleton(&g);
        let cfg = LouvainConfig::sequential(Variant::Mplm);
        move_phase_mplm(&g, &state, &cfg);
        // Sum of community volumes must equal total volume.
        let total: f64 = state.volume.iter().map(|v| v.load() as f64).sum();
        assert!((total - g.total_volume()).abs() < 1e-3 * g.total_volume());
        // Each community's volume equals the sum of member vertex volumes.
        let zeta = state.communities();
        let n = g.num_vertices();
        let mut expect = vec![0.0f64; n];
        for u in 0..n {
            expect[zeta[u] as usize] += state.vertex_volume[u] as f64;
        }
        for (c, e) in expect.iter().enumerate() {
            assert!(
                (state.volume[c].load() as f64 - e).abs() < 1e-2,
                "community {c}: {} vs {}",
                state.volume[c].load(),
                e
            );
        }
    }
}
