//! The newline-delimited JSON request/response protocol, versions 1 and 2.
//!
//! One JSON object per line in each direction. **v2** (canonical) wraps the
//! request body in a versioned envelope and is parsed *strictly* — unknown
//! fields are rejected with a structured `bad_request` so client typos fail
//! loudly:
//!
//! ```json
//! {"v":2,"req":{"kernel":"louvain-mplm","graph":"rmat:scale=14,ef=8,seed=1",
//!               "backend":"auto","sweep":"active","seed":7,
//!               "deadline_ms":250,"id":"req-1"}}
//! {"v":2,"req":{"kernel":"sleep","ms":50}}
//! {"v":2,"req":{"stats":true}}
//! ```
//!
//! The v2 request body mirrors [`gp_core::api::KernelSpec`] field-for-field
//! (kernel string including the Louvain variant, backend, sweep, seed) and
//! is serialized from it by [`to_v2_line`] — there is no hand-maintained
//! parallel field list. **v1** (legacy, no `"v"` key) is still accepted
//! through a translation shim: lenient parsing, a separate `"variant"`
//! field for Louvain, unknown fields ignored. Both versions produce the
//! same [`Request`]; responses echo the request's `"v"`.
//!
//! Responses always carry `"ok"`; successful runs add the
//! [`gp_metrics::RunInfo`] envelope fields (`backend`, `rounds`,
//! `converged`) plus `timed_out`, `cached`, and kernel-specific outputs.
//! Refusals use `{"ok":false,"error":"queue_full","code":503}` —
//! `queue_full` and `shutting_down` are backpressure (retryable),
//! `bad_request` is not.

use crate::json::{self, Json, ObjBuilder};
use crate::spec::GraphSpec;
pub use gp_core::api::{Backend, SweepMode};
use gp_core::api::{Blocking, Bucketing, Kernel as RunKernel, KernelSpec};
use gp_core::louvain::Variant;
use gp_core::reduce_scatter::Strategy;
use gp_graph::Edge;

/// One streaming mutation batch riding on a v2 request:
/// `{"update":{"add":[[u,v,w?],...],"del":[[u,v],...]}}`. The batch is
/// applied to the request's graph session (a [`gp_graph::DeltaCsr`] seeded
/// from the shard's cached graph) before the request's kernel runs
/// incrementally from the previous output. v2-only; v1 predates sessions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UpdateBatch {
    /// Edges to insert. A missing third element means unit weight.
    pub add: Vec<Edge>,
    /// Edges to tombstone, as `(u, v)` pairs.
    pub del: Vec<(u32, u32)>,
}

impl UpdateBatch {
    /// Parses the `"update"` object, strictly: exactly the `add`/`del`
    /// keys, each an array of `[u,v]` / `[u,v,w]` number arrays.
    fn from_json(v: &Json) -> Result<UpdateBatch, String> {
        let Json::Obj(fields) = v else {
            return Err("`update` must be an object with `add`/`del` arrays".to_string());
        };
        for (k, _) in fields {
            if k != "add" && k != "del" {
                return Err(format!("unknown `update` field `{k}` (allowed: `add`, `del`)"));
            }
        }
        let pair = |e: &Json, what: &str, max_len: usize| -> Result<(u32, u32, Option<f64>), String> {
            let Json::Arr(items) = e else {
                return Err(format!("`update.{what}` entries must be arrays"));
            };
            if items.len() < 2 || items.len() > max_len {
                return Err(format!(
                    "`update.{what}` entries need {} numbers, got {}",
                    if max_len == 3 { "[u,v] or [u,v,w]" } else { "[u,v]" },
                    items.len()
                ));
            }
            let vertex = |j: &Json| {
                j.as_u64()
                    .filter(|&x| x <= u32::MAX as u64)
                    .map(|x| x as u32)
                    .ok_or_else(|| format!("`update.{what}` vertex ids must be u32 integers"))
            };
            let w = match items.get(2) {
                None => None,
                Some(j) => Some(
                    j.as_f64()
                        .ok_or_else(|| format!("`update.{what}` weights must be numbers"))?,
                ),
            };
            Ok((vertex(&items[0])?, vertex(&items[1])?, w))
        };
        let mut batch = UpdateBatch::default();
        if let Some(Json::Arr(adds)) = fields_get(fields, "add") {
            for e in adds {
                let (u, vv, w) = pair(e, "add", 3)?;
                batch.add.push(Edge::new(u, vv, w.unwrap_or(1.0) as f32));
            }
        } else if fields_get(fields, "add").is_some() {
            return Err("`update.add` must be an array".to_string());
        }
        if let Some(Json::Arr(dels)) = fields_get(fields, "del") {
            for e in dels {
                let (u, vv, _) = pair(e, "del", 2)?;
                batch.del.push((u, vv));
            }
        } else if fields_get(fields, "del").is_some() {
            return Err("`update.del` must be an array".to_string());
        }
        Ok(batch)
    }

    /// Total mutations carried (additions + deletions).
    pub fn len(&self) -> usize {
        self.add.len() + self.del.len()
    }

    /// Whether the batch carries no mutations at all.
    pub fn is_empty(&self) -> bool {
        self.add.is_empty() && self.del.is_empty()
    }
}

/// Field lookup on a raw object body (insertion order preserved).
fn fields_get<'a>(fields: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Which kernel a request runs: one of the real kernels, carried as the
/// full [`KernelSpec`] it will execute with (backend, sweep, raw request
/// seed), or the serve-only diagnostic `sleep`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// A real kernel run, dispatched through [`gp_core::api::run_kernel`].
    /// The spec holds the *raw* request seed; [`Request::kernel_spec`]
    /// applies the library-default XOR before execution.
    Run(KernelSpec),
    /// Diagnostic kernel: hold a worker for `ms` milliseconds. Used by the
    /// load generator and CI to force `queue_full` / timeout conditions
    /// deterministically; never cached, never coalesced.
    Sleep {
        /// How long to occupy the worker.
        ms: u64,
    },
}

impl Kernel {
    /// Short label, also the latency-histogram key
    /// (see [`crate::stats::KERNEL_NAMES`]).
    pub fn label(&self) -> &'static str {
        match self {
            Kernel::Run(ks) => ks.kernel.label(),
            Kernel::Sleep { .. } => "sleep",
        }
    }

    /// Cache-key fragment: label plus variant where one exists.
    pub fn cache_label(&self) -> &'static str {
        match self {
            Kernel::Run(ks) => ks.kernel.cache_label(),
            Kernel::Sleep { .. } => "sleep",
        }
    }
}

/// The v2 wire name of a kernel: round-trips through the
/// [`gp_core::api::Kernel`] `FromStr` impl, including the fixed ONPL
/// reduce-scatter strategies that `cache_label` collapses.
pub fn kernel_wire_name(k: RunKernel) -> &'static str {
    match k {
        RunKernel::Coloring => "color",
        RunKernel::Labelprop => "labelprop",
        RunKernel::Louvain(v) => match v {
            Variant::Plm => "louvain-plm",
            Variant::Mplm => "louvain-mplm",
            Variant::Onpl(Strategy::ConflictDetect) => "louvain-onpl-cd",
            Variant::Onpl(Strategy::ConflictIterative) => "louvain-onpl-iter",
            Variant::Onpl(Strategy::InVectorReduce) => "louvain-onpl-ivr",
            // `Scalar` is a library-internal reference strategy with no wire
            // name of its own; `louvain-onpl` (adaptive) is the closest
            // addressable form and the only ONPL the protocol can admit.
            Variant::Onpl(Strategy::Adaptive | Strategy::Scalar) => "louvain-onpl",
            Variant::Ovpl => "louvain-ovpl",
        },
    }
}

/// A parsed run request (either protocol version).
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Kernel to execute, with its full execution spec.
    pub kernel: Kernel,
    /// Graph to run on (absent for `sleep`).
    pub spec: Option<GraphSpec>,
    /// Per-request deadline in milliseconds (`None` → server default).
    pub deadline_ms: Option<u64>,
    /// Streaming mutation batch to apply before running the kernel
    /// (v2-only). Update requests are never cached or coalesced.
    pub update: Option<UpdateBatch>,
    /// Opaque client correlation id, echoed in the response.
    pub id: Option<String>,
    /// Protocol version the request arrived in (1 or 2); responses echo it.
    pub version: u8,
}

impl Request {
    /// Result-cache key: `(graph spec, kernel+variant, backend, sweep,
    /// seed)` — exactly [`GraphSpec::canonical_key`] plus
    /// [`KernelSpec::cache_token`], so the service cache and the library's
    /// own cache labels can never drift. `sleep` requests are never cached.
    /// Sweep mode is part of the key even though outputs are bit-identical
    /// across modes: the cached body carries mode-dependent fields
    /// (`exec_ms`, round telemetry). Update requests mutate state and are
    /// never cached.
    pub fn cache_key(&self) -> Option<String> {
        if self.update.is_some() {
            return None;
        }
        match (&self.kernel, &self.spec) {
            (Kernel::Sleep { .. }, _) | (_, None) => None,
            (Kernel::Run(ks), Some(spec)) => {
                Some(format!("{}|{}", spec.canonical_key(), ks.cache_token()))
            }
        }
    }

    /// The [`KernelSpec`] this request executes; `None` for `sleep`.
    ///
    /// The label-propagation traversal seed is the request seed XORed with
    /// the kernel's default (`0x1abe1`), so `seed: 0` requests reproduce
    /// the library default shuffle. The cache key uses the raw seed.
    pub fn kernel_spec(&self) -> Option<KernelSpec> {
        match self.kernel {
            Kernel::Sleep { .. } => None,
            Kernel::Run(ks) => Some(KernelSpec {
                seed: ks.seed ^ 0x1abe1,
                ..ks
            }),
        }
    }
}

/// One decoded request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Incoming {
    /// A kernel run.
    Run(Request),
    /// A stats probe (`{"stats":true}` in v1, `{"v":2,"req":{"stats":true}}`
    /// in v2). The version tags the response.
    Stats {
        /// Protocol version of the probe.
        version: u8,
    },
}

/// A structured parse failure: what went wrong, and which protocol version
/// the line was speaking (so the refusal can echo the right `"v"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description, echoed as the refusal `detail`.
    pub detail: String,
    /// Protocol version attributed to the line (1 when no envelope).
    pub version: u8,
}

impl ParseError {
    fn v(version: u8, detail: impl Into<String>) -> ParseError {
        ParseError {
            detail: detail.into(),
            version,
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.detail)
    }
}

/// Parses one request line, dispatching on the presence of the `"v"`
/// envelope key: absent → legacy v1 (lenient), present → must be 2
/// (strict).
pub fn parse_line(line: &str) -> Result<Incoming, ParseError> {
    let v = json::parse(line.trim()).map_err(|e| ParseError::v(1, format!("invalid JSON: {e}")))?;
    match v.get("v") {
        None => parse_v1(&v),
        Some(ver) => {
            if ver.as_u64() != Some(2) {
                return Err(ParseError::v(
                    2,
                    format!("unsupported protocol version {ver} (this server speaks v1 and v2)"),
                ));
            }
            parse_v2(&v)
        }
    }
}

/// Shared scalar-field extraction used by both protocol versions.
struct Common {
    id: Option<String>,
    deadline_ms: Option<u64>,
    seed: u64,
    backend: Backend,
    sweep: SweepMode,
    block: Blocking,
    bucket: Bucketing,
}

fn parse_common(v: &Json, version: u8) -> Result<Common, ParseError> {
    let id = v.get("id").and_then(Json::as_str).map(str::to_string);
    let deadline_ms = match v.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(d) => Some(d.as_u64().ok_or_else(|| {
            ParseError::v(version, "`deadline_ms` must be a non-negative integer")
        })?),
    };
    let seed = match v.get("seed") {
        None | Some(Json::Null) => 0,
        Some(s) => s
            .as_u64()
            .ok_or_else(|| ParseError::v(version, "`seed` must be a non-negative integer"))?,
    };
    let backend: Backend = match v.get("backend").and_then(Json::as_str) {
        None => Backend::Auto,
        Some(s) => s.parse().map_err(|e| ParseError::v(version, String::from(e)))?,
    };
    let sweep: SweepMode = match v.get("sweep").and_then(Json::as_str) {
        None => SweepMode::Active,
        Some(s) => s.parse().map_err(|e| ParseError::v(version, String::from(e)))?,
    };
    // Locality knobs (v2; v1 requests never carry them and get the library
    // defaults). Values are validated strictly in both versions — a `block`
    // or `bucket` field with a bad value is an error, not a silent default.
    let block: Blocking = match v.get("block") {
        None | Some(Json::Null) => Blocking::default(),
        Some(s) => s
            .as_str()
            .ok_or_else(|| {
                ParseError::v(version, "`block` must be a string (off|auto|<n>kb|<n>)")
            })?
            .parse()
            .map_err(|e| ParseError::v(version, String::from(e)))?,
    };
    let bucket: Bucketing = match v.get("bucket") {
        None | Some(Json::Null) => Bucketing::default(),
        Some(s) => s
            .as_str()
            .ok_or_else(|| ParseError::v(version, "`bucket` must be a string (off|degree)"))?
            .parse()
            .map_err(|e| ParseError::v(version, String::from(e)))?,
    };
    Ok(Common {
        id,
        deadline_ms,
        seed,
        backend,
        sweep,
        block,
        bucket,
    })
}

/// Assembles the embedded [`KernelSpec`] a run request will execute with.
/// `parallel`/`count_ops` are service policy, not wire fields.
fn spec_of(run: RunKernel, c: &Common) -> KernelSpec {
    KernelSpec {
        kernel: run,
        backend: c.backend,
        sweep: c.sweep,
        parallel: true,
        seed: c.seed,
        count_ops: false,
        block: c.block,
        bucket: c.bucket,
    }
}

/// Legacy v1: flat object, lenient (unknown fields ignored), Louvain
/// variant in a separate `"variant"` field.
fn parse_v1(v: &Json) -> Result<Incoming, ParseError> {
    if v.get("stats").and_then(Json::as_bool) == Some(true) {
        return Ok(Incoming::Stats { version: 1 });
    }
    let err = |detail: String| ParseError::v(1, detail);
    let kernel_name = v
        .get("kernel")
        .and_then(Json::as_str)
        .ok_or_else(|| err("missing `kernel` field".to_string()))?;
    let common = parse_common(v, 1)?;

    if kernel_name == "sleep" {
        let ms = v
            .get("ms")
            .and_then(Json::as_u64)
            .ok_or_else(|| err("`sleep` needs integer `ms`".to_string()))?;
        return Ok(Incoming::Run(Request {
            kernel: Kernel::Sleep { ms },
            spec: None,
            deadline_ms: common.deadline_ms,
            update: None,
            id: common.id,
            version: 1,
        }));
    }

    // Kernel (and louvain variant) names come from the shared FromStr impls
    // in `gp_core::api` — one parser for the CLI flags and this protocol.
    let mut run: RunKernel = kernel_name.parse().map_err(|e| err(String::from(e)))?;
    if let Some(vs) = v.get("variant").and_then(Json::as_str) {
        if let RunKernel::Louvain(variant) = &mut run {
            *variant = vs.parse().map_err(|e| err(String::from(e)))?;
        }
    }
    let spec_json = v
        .get("graph")
        .ok_or_else(|| err(format!("kernel `{kernel_name}` needs a `graph` spec")))?;
    let spec = GraphSpec::from_json(spec_json).map_err(err)?;
    Ok(Incoming::Run(Request {
        kernel: Kernel::Run(spec_of(run, &common)),
        spec: Some(spec),
        deadline_ms: common.deadline_ms,
        // v1 predates streaming sessions; an `update` field, like any other
        // unknown v1 field, is ignored by the lenient parser above.
        update: None,
        id: common.id,
        version: 1,
    }))
}

/// v2: `{"v":2,"req":{...}}` envelope, strict field validation.
fn parse_v2(v: &Json) -> Result<Incoming, ParseError> {
    let err = |detail: String| ParseError::v(2, detail);
    let Json::Obj(envelope) = v else {
        return Err(err("v2 request must be a JSON object".to_string()));
    };
    for (k, _) in envelope {
        if k != "v" && k != "req" {
            return Err(err(format!("unknown envelope field `{k}` (v2 allows `v`, `req`)")));
        }
    }
    let req = v
        .get("req")
        .ok_or_else(|| err("v2 envelope needs a `req` object".to_string()))?;
    let Json::Obj(fields) = req else {
        return Err(err("`req` must be a JSON object".to_string()));
    };

    if req.get("stats").and_then(Json::as_bool) == Some(true) {
        if fields.len() != 1 {
            return Err(err("a stats probe carries no other fields".to_string()));
        }
        return Ok(Incoming::Stats { version: 2 });
    }

    let kernel_name = req
        .get("kernel")
        .and_then(Json::as_str)
        .ok_or_else(|| err("missing `kernel` field".to_string()))?;
    let allowed: &[&str] = if kernel_name == "sleep" {
        &["kernel", "ms", "deadline_ms", "id"]
    } else {
        &[
            "kernel", "graph", "backend", "sweep", "block", "bucket", "seed", "deadline_ms",
            "update", "id",
        ]
    };
    for (k, _) in fields {
        if !allowed.contains(&k.as_str()) {
            let hint = if k == "variant" {
                " (v2 folds the variant into the kernel string, e.g. `louvain-mplm`)"
            } else {
                ""
            };
            return Err(err(format!("unknown field `{k}`{hint}")));
        }
    }
    let common = parse_common(req, 2)?;

    if kernel_name == "sleep" {
        let ms = req
            .get("ms")
            .and_then(Json::as_u64)
            .ok_or_else(|| err("`sleep` needs integer `ms`".to_string()))?;
        return Ok(Incoming::Run(Request {
            kernel: Kernel::Sleep { ms },
            spec: None,
            deadline_ms: common.deadline_ms,
            update: None,
            id: common.id,
            version: 2,
        }));
    }

    let run: RunKernel = kernel_name.parse().map_err(|e| err(String::from(e)))?;
    let spec_json = req
        .get("graph")
        .ok_or_else(|| err(format!("kernel `{kernel_name}` needs a `graph` spec")))?;
    let spec = GraphSpec::from_json(spec_json).map_err(err)?;
    let update = match req.get("update") {
        None | Some(Json::Null) => None,
        Some(u) => {
            // Kernel deadlines are incompatible with sessions: a cut-short
            // repair could park an invalid assignment as the next warm
            // start, so update frames always run to convergence.
            if common.deadline_ms.is_some() {
                return Err(err("`update` frames do not accept `deadline_ms`".to_string()));
            }
            Some(UpdateBatch::from_json(u).map_err(err)?)
        }
    };
    Ok(Incoming::Run(Request {
        kernel: Kernel::Run(spec_of(run, &common)),
        spec: Some(spec),
        deadline_ms: common.deadline_ms,
        update,
        id: common.id,
        version: 2,
    }))
}

/// Serializes a request as a canonical v2 line (no trailing newline) —
/// the v1→v2 translation shim, driven entirely by the embedded
/// [`KernelSpec`]. Parsing the output reproduces the request with
/// `version: 2`.
pub fn to_v2_line(request: &Request) -> String {
    let mut req = ObjBuilder::new();
    match &request.kernel {
        Kernel::Sleep { ms } => {
            req = req.str("kernel", "sleep").num("ms", *ms as f64);
        }
        Kernel::Run(ks) => {
            req = req.str("kernel", kernel_wire_name(ks.kernel));
            if let Some(spec) = &request.spec {
                req = req.str("graph", &spec.canonical_key());
            }
            req = req
                .str("backend", ks.backend.name())
                .str("sweep", ks.sweep.name())
                .str("block", &ks.block.name())
                .str("bucket", ks.bucket.name())
                .num("seed", ks.seed as f64);
        }
    }
    if let Some(u) = &request.update {
        let nums = |xs: Vec<f64>| Json::Arr(xs.into_iter().map(Json::Num).collect());
        req = req.field(
            "update",
            ObjBuilder::new()
                .field(
                    "add",
                    Json::Arr(
                        u.add
                            .iter()
                            .map(|e| nums(vec![e.u as f64, e.v as f64, e.w as f64]))
                            .collect(),
                    ),
                )
                .field(
                    "del",
                    Json::Arr(u.del.iter().map(|&(a, b)| nums(vec![a as f64, b as f64])).collect()),
                )
                .build(),
        );
    }
    if let Some(d) = request.deadline_ms {
        req = req.num("deadline_ms", d as f64);
    }
    if let Some(id) = &request.id {
        req = req.str("id", id);
    }
    ObjBuilder::new()
        .num("v", 2.0)
        .field("req", req.build())
        .build()
        .to_string()
}

/// Refusal kinds with their (HTTP-flavored) status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Refusal {
    /// Admission queue at capacity — retry later.
    QueueFull,
    /// Server is draining for shutdown — retry elsewhere.
    ShuttingDown,
    /// Malformed or unsatisfiable request — don't retry.
    BadRequest,
}

impl Refusal {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            Refusal::QueueFull => "queue_full",
            Refusal::ShuttingDown => "shutting_down",
            Refusal::BadRequest => "bad_request",
        }
    }

    /// Status code.
    pub fn code(self) -> u32 {
        match self {
            Refusal::QueueFull | Refusal::ShuttingDown => 503,
            Refusal::BadRequest => 400,
        }
    }
}

/// Renders a refusal response line (without trailing newline), stamped with
/// the protocol version of the request it answers.
pub fn refusal_line(kind: Refusal, detail: &str, id: Option<&str>, version: u8) -> String {
    let mut obj = ObjBuilder::new()
        .num("v", version as f64)
        .bool("ok", false)
        .str("error", kind.name())
        .num("code", kind.code() as f64);
    if !detail.is_empty() {
        obj = obj.str("detail", detail);
    }
    if let Some(id) = id {
        obj = obj.str("id", id);
    }
    obj.build().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_of(line: &str) -> Request {
        match parse_line(line).unwrap() {
            Incoming::Run(r) => r,
            other => panic!("expected run, got {other:?}"),
        }
    }

    #[test]
    fn parses_full_v1_louvain_request() {
        let line = r#"{"kernel":"louvain","graph":{"rmat":{"scale":12,"seed":3}},"variant":"ovpl","backend":"scalar","sweep":"full","seed":9,"deadline_ms":100,"id":"a1"}"#;
        let req = run_of(line);
        let Kernel::Run(ks) = req.kernel else { panic!() };
        assert_eq!(ks.kernel, "louvain-ovpl".parse().unwrap());
        assert_eq!(ks.backend, Backend::Scalar);
        assert_eq!(ks.sweep, SweepMode::Full);
        assert_eq!(ks.seed, 9);
        assert_eq!(req.deadline_ms, Some(100));
        assert_eq!(req.id.as_deref(), Some("a1"));
        assert_eq!(req.version, 1);
        assert_eq!(
            req.cache_key().unwrap(),
            "rmat:scale=12,ef=8,seed=3|louvain-ovpl|scalar|full|seed=9|block=auto|bucket=degree"
        );
        let spec = req.kernel_spec().unwrap();
        assert_eq!(spec.kernel.cache_label(), "louvain-ovpl");
        assert_eq!(spec.seed, 9 ^ 0x1abe1);
        assert!(spec.parallel);
        assert!(!spec.count_ops);
    }

    #[test]
    fn parses_full_v2_request() {
        let line = r#"{"v":2,"req":{"kernel":"louvain-mplm","graph":"rmat:scale=12,ef=8,seed=3","backend":"emulated","sweep":"active","seed":4,"deadline_ms":50,"id":"b2"}}"#;
        let req = run_of(line);
        assert_eq!(req.version, 2);
        let Kernel::Run(ks) = req.kernel else { panic!() };
        assert_eq!(ks.kernel, "louvain-mplm".parse().unwrap());
        assert_eq!(ks.backend, Backend::Emulated);
        assert_eq!(ks.seed, 4);
        assert_eq!(req.deadline_ms, Some(50));
        assert_eq!(req.id.as_deref(), Some("b2"));
        assert_eq!(
            req.cache_key().unwrap(),
            "rmat:scale=12,ef=8,seed=3|louvain-mplm|emulated|active|seed=4|block=auto|bucket=degree"
        );
    }

    #[test]
    fn parses_stats_and_sleep_in_both_versions() {
        assert_eq!(
            parse_line(r#"{"stats":true}"#).unwrap(),
            Incoming::Stats { version: 1 }
        );
        assert_eq!(
            parse_line(r#"{"v":2,"req":{"stats":true}}"#).unwrap(),
            Incoming::Stats { version: 2 }
        );
        let req = run_of(r#"{"kernel":"sleep","ms":25}"#);
        assert_eq!(req.kernel, Kernel::Sleep { ms: 25 });
        assert!(req.cache_key().is_none());
        assert!(req.kernel_spec().is_none());
        let req = run_of(r#"{"v":2,"req":{"kernel":"sleep","ms":25,"id":"s"}}"#);
        assert_eq!(req.kernel, Kernel::Sleep { ms: 25 });
        assert_eq!(req.version, 2);
    }

    #[test]
    fn v1_defaults_are_applied() {
        let req = run_of(r#"{"kernel":"color","graph":"mesh:w=10,seed=2"}"#);
        let Kernel::Run(ks) = req.kernel else { panic!() };
        assert_eq!(ks.kernel, "color".parse().unwrap());
        assert_eq!(ks.backend, Backend::Auto);
        assert_eq!(ks.sweep, SweepMode::Active);
        assert_eq!(ks.seed, 0);
        assert_eq!(req.deadline_ms, None);
        assert!(req.id.is_none());
    }

    #[test]
    fn v1_ignores_unknown_fields_v2_rejects_them() {
        let lenient = parse_line(r#"{"kernel":"color","graph":"mesh:w=10,seed=2","bogus":1}"#);
        assert!(lenient.is_ok(), "v1 must ignore unknown fields");
        let strict =
            parse_line(r#"{"v":2,"req":{"kernel":"color","graph":"mesh:w=10,seed=2","bogus":1}}"#);
        let e = strict.unwrap_err();
        assert_eq!(e.version, 2);
        assert!(e.detail.contains("unknown field `bogus`"), "{e}");
        // `variant` is a v1-ism; the v2 error explains where it went.
        let e = parse_line(
            r#"{"v":2,"req":{"kernel":"louvain","graph":"mesh:w=10,seed=2","variant":"mplm"}}"#,
        )
        .unwrap_err();
        assert!(e.detail.contains("kernel string"), "{e}");
        // Envelope-level unknown fields are rejected too.
        let e = parse_line(r#"{"v":2,"req":{"stats":true},"extra":1}"#).unwrap_err();
        assert!(e.detail.contains("unknown envelope field `extra`"), "{e}");
    }

    #[test]
    fn unsupported_versions_are_refused_structurally() {
        let e = parse_line(r#"{"v":3,"req":{"stats":true}}"#).unwrap_err();
        assert_eq!(e.version, 2);
        assert!(e.detail.contains("unsupported protocol version"), "{e}");
        let e = parse_line(r#"{"v":"two","req":{"stats":true}}"#).unwrap_err();
        assert!(e.detail.contains("unsupported protocol version"), "{e}");
    }

    #[test]
    fn v1_to_v2_translation_is_faithful() {
        // Golden pairs: every v1 form and its canonical v2 line.
        let cases = [
            (
                r#"{"kernel":"louvain","graph":{"rmat":{"scale":12,"seed":3}},"variant":"ovpl","backend":"scalar","sweep":"full","seed":9,"deadline_ms":100,"id":"a1"}"#,
                r#"{"v":2,"req":{"kernel":"louvain-ovpl","graph":"rmat:scale=12,ef=8,seed=3","backend":"scalar","sweep":"full","block":"auto","bucket":"degree","seed":9,"deadline_ms":100,"id":"a1"}}"#,
            ),
            (
                r#"{"kernel":"color","graph":"mesh:w=10,seed=2"}"#,
                r#"{"v":2,"req":{"kernel":"color","graph":"mesh:w=10,h=10,seed=2","backend":"auto","sweep":"active","block":"auto","bucket":"degree","seed":0}}"#,
            ),
            (
                r#"{"kernel":"sleep","ms":25,"id":"s1"}"#,
                r#"{"v":2,"req":{"kernel":"sleep","ms":25,"id":"s1"}}"#,
            ),
        ];
        for (v1, golden_v2) in cases {
            let original = run_of(v1);
            let v2_line = to_v2_line(&original);
            assert_eq!(v2_line, golden_v2, "canonical serialization for {v1}");
            let reparsed = run_of(&v2_line);
            // Equal modulo the version stamp.
            assert_eq!(
                Request {
                    version: 1,
                    ..reparsed.clone()
                },
                original,
                "round-trip for {v1}"
            );
            assert_eq!(reparsed.version, 2);
            assert_eq!(reparsed.cache_key(), original.cache_key());
        }
    }

    #[test]
    fn fixed_onpl_strategies_survive_the_wire() {
        for name in ["louvain-onpl", "louvain-onpl-cd", "louvain-onpl-iter", "louvain-onpl-ivr"] {
            let req = run_of(&format!(
                r#"{{"v":2,"req":{{"kernel":"{name}","graph":"mesh:w=8,seed=1"}}}}"#
            ));
            let Kernel::Run(ks) = req.kernel else { panic!() };
            assert_eq!(kernel_wire_name(ks.kernel), name);
        }
    }

    #[test]
    fn v1_requests_default_the_locality_knobs() {
        // v1 predates the locality layer: every v1 request executes (and is
        // cached) with the library defaults.
        let req = run_of(r#"{"kernel":"color","graph":"mesh:w=10,seed=2"}"#);
        let Kernel::Run(ks) = req.kernel else { panic!() };
        assert_eq!(ks.block, Blocking::Auto);
        assert_eq!(ks.bucket, Bucketing::Degree);
        assert!(req
            .cache_key()
            .unwrap()
            .ends_with("|block=auto|bucket=degree"));
    }

    #[test]
    fn v2_locality_knobs_round_trip_and_key_the_cache() {
        let line = r#"{"v":2,"req":{"kernel":"labelprop","graph":"mesh:w=8,seed=1","block":"256kb","bucket":"off"}}"#;
        let req = run_of(line);
        let Kernel::Run(ks) = req.kernel else { panic!() };
        assert_eq!(ks.block, Blocking::Kb(256));
        assert_eq!(ks.bucket, Bucketing::Off);
        assert!(req
            .cache_key()
            .unwrap()
            .ends_with("|block=256kb|bucket=off"));
        // Distinct knob values are distinct cache entries.
        let base = run_of(r#"{"v":2,"req":{"kernel":"labelprop","graph":"mesh:w=8,seed=1"}}"#);
        assert_ne!(req.cache_key(), base.cache_key());
        // The canonical serialization carries them and re-parses equal.
        let v2 = to_v2_line(&req);
        assert!(v2.contains(r#""block":"256kb""#), "{v2}");
        assert!(v2.contains(r#""bucket":"off""#), "{v2}");
        assert_eq!(run_of(&v2), req);
        // Explicit defaults share the cache entry with omitted knobs.
        let explicit = run_of(
            r#"{"v":2,"req":{"kernel":"labelprop","graph":"mesh:w=8,seed=1","block":"auto","bucket":"degree"}}"#,
        );
        assert_eq!(explicit.cache_key(), base.cache_key());
        // A vertex-count block parses too.
        let vtx = run_of(r#"{"v":2,"req":{"kernel":"color","graph":"mesh:w=8,seed=1","block":"4096"}}"#);
        let Kernel::Run(ks) = vtx.kernel else { panic!() };
        assert_eq!(ks.block, Blocking::Vertices(4096));
    }

    #[test]
    fn bad_locality_values_are_rejected_in_both_versions() {
        for line in [
            r#"{"kernel":"color","graph":"mesh:w=4,seed=1","block":"cache"}"#,
            r#"{"kernel":"color","graph":"mesh:w=4,seed=1","block":"0"}"#,
            r#"{"kernel":"color","graph":"mesh:w=4,seed=1","bucket":"size"}"#,
            r#"{"v":2,"req":{"kernel":"color","graph":"mesh:w=4,seed=1","block":"huge"}}"#,
            r#"{"v":2,"req":{"kernel":"color","graph":"mesh:w=4,seed=1","block":4096}}"#,
            r#"{"v":2,"req":{"kernel":"color","graph":"mesh:w=4,seed=1","bucket":"on"}}"#,
        ] {
            assert!(parse_line(line).is_err(), "accepted: {line}");
        }
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_line("not json").is_err());
        assert!(parse_line(r#"{"graph":"mesh:w=4"}"#).is_err()); // no kernel
        assert!(parse_line(r#"{"kernel":"color"}"#).is_err()); // no graph
        assert!(parse_line(r#"{"kernel":"warp","graph":"mesh:w=4"}"#).is_err());
        assert!(parse_line(r#"{"kernel":"louvain","graph":"mesh:w=4","variant":"x"}"#).is_err());
        assert!(parse_line(r#"{"kernel":"color","graph":"mesh:w=4","deadline_ms":-5}"#).is_err());
        assert!(parse_line(r#"{"kernel":"sleep"}"#).is_err()); // no ms
        assert!(parse_line(r#"{"kernel":"color","graph":"mesh:w=4","backend":"gpu"}"#).is_err());
        assert!(parse_line(r#"{"kernel":"color","graph":"mesh:w=4","sweep":"lazy"}"#).is_err());
        assert!(parse_line(r#"{"v":2}"#).is_err()); // no req
        assert!(parse_line(r#"{"v":2,"req":{"kernel":"color"}}"#).is_err()); // no graph
        assert!(parse_line(r#"{"v":2,"req":{"stats":true,"id":"x"}}"#).is_err());
    }

    #[test]
    fn v2_update_frames_parse_strictly() {
        let req = run_of(
            r#"{"v":2,"req":{"kernel":"color","graph":"mesh:w=8,seed=1","update":{"add":[[0,1],[2,3,2.5]],"del":[[4,5]]}}}"#,
        );
        assert_eq!(req.version, 2);
        let u = req.update.as_ref().expect("update batch");
        assert_eq!(u.add.len(), 2);
        assert_eq!(u.add[0], Edge::new(0, 1, 1.0), "missing weight defaults to 1");
        assert_eq!(u.add[1], Edge::new(2, 3, 2.5));
        assert_eq!(u.del, vec![(4, 5)]);
        assert_eq!(u.len(), 3);
        assert!(!u.is_empty());
        // Mutating requests are never cached.
        assert!(req.cache_key().is_none());
        // The canonical serialization round-trips the batch.
        let v2 = to_v2_line(&req);
        assert!(v2.contains(r#""update""#), "{v2}");
        assert_eq!(run_of(&v2), req);
        // Empty batch objects are well-formed no-ops.
        let req = run_of(r#"{"v":2,"req":{"kernel":"color","graph":"mesh:w=8,seed=1","update":{}}}"#);
        assert!(req.update.as_ref().unwrap().is_empty());
    }

    #[test]
    fn malformed_update_frames_are_rejected() {
        for line in [
            // deadline + update is an invalid combination
            r#"{"v":2,"req":{"kernel":"color","graph":"mesh:w=8,seed=1","update":{"add":[[0,1]]},"deadline_ms":10}}"#,
            // wrong shapes
            r#"{"v":2,"req":{"kernel":"color","graph":"mesh:w=8,seed=1","update":[1,2]}}"#,
            r#"{"v":2,"req":{"kernel":"color","graph":"mesh:w=8,seed=1","update":{"add":[[0]]}}}"#,
            r#"{"v":2,"req":{"kernel":"color","graph":"mesh:w=8,seed=1","update":{"del":[[0,1,2]]}}}"#,
            r#"{"v":2,"req":{"kernel":"color","graph":"mesh:w=8,seed=1","update":{"add":[[0,-1]]}}}"#,
            r#"{"v":2,"req":{"kernel":"color","graph":"mesh:w=8,seed=1","update":{"grow":[[0,1]]}}}"#,
            r#"{"v":2,"req":{"kernel":"color","graph":"mesh:w=8,seed=1","update":{"add":[[0,1,"x"]]}}}"#,
            // sleep cannot carry an update
            r#"{"v":2,"req":{"kernel":"sleep","ms":5,"update":{"add":[[0,1]]}}}"#,
        ] {
            assert!(parse_line(line).is_err(), "accepted: {line}");
        }
    }

    #[test]
    fn v1_ignores_update_fields() {
        // v1 predates sessions: its lenient parser drops the field rather
        // than mutating anything.
        let req = run_of(r#"{"kernel":"color","graph":"mesh:w=8,seed=1","update":{"add":[[0,1]]}}"#);
        assert_eq!(req.version, 1);
        assert!(req.update.is_none());
        assert!(req.cache_key().is_some(), "still a plain cacheable run");
    }

    #[test]
    fn refusal_lines_carry_version_code_and_id() {
        let line = refusal_line(Refusal::QueueFull, "", Some("r7"), 1);
        let v = crate::json::parse(&line).unwrap();
        assert_eq!(v.get("v").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("error").and_then(Json::as_str), Some("queue_full"));
        assert_eq!(v.get("code").and_then(Json::as_u64), Some(503));
        assert_eq!(v.get("id").and_then(Json::as_str), Some("r7"));
        let line = refusal_line(Refusal::BadRequest, "nope", None, 2);
        let v = crate::json::parse(&line).unwrap();
        assert_eq!(v.get("v").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("code").and_then(Json::as_u64), Some(400));
    }

    #[test]
    fn cache_key_distinguishes_kernel_backend_sweep_and_seed() {
        let a = run_of(r#"{"kernel":"labelprop","graph":"mesh:w=8,seed=1"}"#);
        let b = run_of(r#"{"kernel":"labelprop","graph":"mesh:w=8,seed=1","seed":5}"#);
        assert_ne!(a.cache_key(), b.cache_key());
        let c = run_of(r#"{"kernel":"labelprop","graph":"mesh:w=8,seed=1","sweep":"full"}"#);
        assert_ne!(a.cache_key(), c.cache_key());
        // A v2 request with the same parameters shares the v1 cache entry.
        let d = run_of(r#"{"v":2,"req":{"kernel":"labelprop","graph":"mesh:w=8,seed=1"}}"#);
        assert_eq!(a.cache_key(), d.cache_key());
    }
}
