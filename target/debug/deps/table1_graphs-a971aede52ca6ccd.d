/root/repo/target/debug/deps/table1_graphs-a971aede52ca6ccd.d: crates/bench/src/bin/table1_graphs.rs

/root/repo/target/debug/deps/table1_graphs-a971aede52ca6ccd: crates/bench/src/bin/table1_graphs.rs

crates/bench/src/bin/table1_graphs.rs:
