/root/repo/target/release/deps/ablation_ovpl-f6e8a53ef96f443f.d: crates/bench/src/bin/ablation_ovpl.rs

/root/repo/target/release/deps/ablation_ovpl-f6e8a53ef96f443f: crates/bench/src/bin/ablation_ovpl.rs

crates/bench/src/bin/ablation_ovpl.rs:
