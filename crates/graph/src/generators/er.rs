//! Erdős–Rényi G(n, m) generator, used in tests and as an unstructured
//! control workload for the kernels.

use crate::builder::{DedupPolicy, GraphBuilder};
use crate::csr::Csr;
use crate::Edge;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// An undirected G(n, m) random graph (m distinct non-loop edges), sampled
/// by rejection; deterministic per seed. `m` must be achievable, i.e.
/// `m <= n·(n-1)/2`.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Csr {
    assert!(n >= 2 || m == 0, "need at least 2 vertices for any edge");
    let max_m = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(m <= max_m, "m = {m} exceeds the {max_m} possible edges");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut builder = GraphBuilder::new(n).dedup_policy(DedupPolicy::KeepMax);
    while seen.len() < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            builder.add_edge(Edge::unweighted(key.0, key.1));
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_edge_count() {
        let g = erdos_renyi(100, 250, 42);
        assert_eq!(g.num_edges(), 250);
        assert!(g.is_symmetric());
        assert_eq!(g.num_self_loops(), 0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(erdos_renyi(50, 100, 1), erdos_renyi(50, 100, 1));
        assert_ne!(erdos_renyi(50, 100, 1), erdos_renyi(50, 100, 2));
    }

    #[test]
    fn zero_edges() {
        let g = erdos_renyi(10, 0, 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn complete_graph_via_max_m() {
        let g = erdos_renyi(6, 15, 3);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_impossible_m() {
        erdos_renyi(4, 7, 0);
    }
}
