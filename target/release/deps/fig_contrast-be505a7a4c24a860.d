/root/repo/target/release/deps/fig_contrast-be505a7a4c24a860.d: crates/bench/src/bin/fig_contrast.rs

/root/repo/target/release/deps/fig_contrast-be505a7a4c24a860: crates/bench/src/bin/fig_contrast.rs

crates/bench/src/bin/fig_contrast.rs:
