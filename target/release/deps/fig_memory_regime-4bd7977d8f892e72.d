/root/repo/target/release/deps/fig_memory_regime-4bd7977d8f892e72.d: crates/bench/src/bin/fig_memory_regime.rs

/root/repo/target/release/deps/fig_memory_regime-4bd7977d8f892e72: crates/bench/src/bin/fig_memory_regime.rs

crates/bench/src/bin/fig_memory_regime.rs:
