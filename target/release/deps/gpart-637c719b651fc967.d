/root/repo/target/release/deps/gpart-637c719b651fc967.d: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/io.rs

/root/repo/target/release/deps/gpart-637c719b651fc967: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/io.rs

crates/cli/src/main.rs:
crates/cli/src/commands.rs:
crates/cli/src/io.rs:
