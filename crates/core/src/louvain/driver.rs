//! The full multilevel Louvain driver: alternate move and coarsening phases
//! until modularity stops improving, then project communities back to the
//! original graph.

use super::coarsen::{coarsen, project};
use super::modularity::modularity;
use super::mplm::move_phase_mplm_recorded;
use super::onpl::move_phase_onpl_recorded;
use super::ovpl::{move_phase_ovpl_recorded, prepare};
use super::plm::move_phase_plm_recorded;
use super::{LouvainConfig, MovePhaseStats, MoveState, Variant};
use gp_graph::csr::Csr;
use gp_metrics::telemetry::{PhaseProbe, Recorder, RunInfo, RunTimer};
use gp_simd::backend::Simd;
use gp_simd::engine::Engine;

/// Outcome of a full Louvain run.
#[derive(Debug, Clone)]
pub struct LouvainResult {
    /// Final community per original vertex.
    pub communities: Vec<u32>,
    /// Modularity of the final assignment.
    pub modularity: f64,
    /// Coarsening levels processed (1 = move phase only sufficed).
    pub levels: usize,
    /// Per-level move statistics.
    pub level_stats: Vec<MovePhaseStats>,
    /// Uniform run envelope (backend, levels, convergence, wall time,
    /// optional trace). Excluded from equality.
    pub info: RunInfo,
}

impl PartialEq for LouvainResult {
    fn eq(&self, other: &Self) -> bool {
        self.communities == other.communities
            && self.modularity == other.modularity
            && self.levels == other.levels
            && self.level_stats == other.level_stats
    }
}

/// `S::NAME` of a backend value (helps `match backends::engine()` name its arm).
fn name_of<S: Simd>(_: &S) -> &'static str {
    S::NAME
}

/// Backend the configured variant will actually run on: the scalar variants
/// never touch the SIMD engine; the vector variants use the registry engine (`crate::backends::engine`).
fn dispatch_backend(config: &LouvainConfig) -> &'static str {
    match config.variant {
        Variant::Plm | Variant::Mplm => "scalar",
        Variant::Onpl(_) | Variant::Ovpl => match crate::backends::engine() {
            Engine::Native(s) => name_of(&s),
            Engine::Emulated(s) => name_of(&s),
        },
    }
}

/// Dispatches one move phase to the best available SIMD backend (the
/// `Backend::Auto` path of `run_kernel`).
pub(crate) fn dispatch_move_phase_recorded<R: Recorder>(
    g: &Csr,
    state: &MoveState,
    config: &LouvainConfig,
    rec: &mut R,
) -> MovePhaseStats {
    match config.variant {
        Variant::Plm => move_phase_plm_recorded(g, state, config, rec),
        Variant::Mplm => move_phase_mplm_recorded(g, state, config, rec),
        Variant::Onpl(strategy) => match crate::backends::engine() {
            Engine::Native(s) => move_phase_onpl_recorded(&s, g, state, strategy, config, rec),
            Engine::Emulated(s) => move_phase_onpl_recorded(&s, g, state, strategy, config, rec),
        },
        Variant::Ovpl => {
            let layout = prepare(g, config);
            match crate::backends::engine() {
                Engine::Native(s) => move_phase_ovpl_recorded(&s, &layout, state, config, rec),
                Engine::Emulated(s) => move_phase_ovpl_recorded(&s, &layout, state, config, rec),
            }
        }
    }
}

/// Runs one move phase of the configured variant on an explicitly pinned
/// backend `s`, with per-sweep telemetry delivered to `rec`.
///
/// This is the expert move-phase-level API (the granularity the paper's
/// timings operate at): it mutates `state` in place rather than running the
/// full multilevel pipeline, which `run_kernel` cannot express. The scalar
/// variants (PLM/MPLM) never touch `s`. Benchmarks that pin `Counted`
/// backends for modeled runs come through here.
pub fn move_phase_with<S: Simd + Sync, R: Recorder>(
    s: &S,
    g: &Csr,
    state: &MoveState,
    config: &LouvainConfig,
    rec: &mut R,
) -> MovePhaseStats {
    match config.variant {
        Variant::Plm => move_phase_plm_recorded(g, state, config, rec),
        Variant::Mplm => move_phase_mplm_recorded(g, state, config, rec),
        Variant::Onpl(strategy) => move_phase_onpl_recorded(s, g, state, strategy, config, rec),
        Variant::Ovpl => {
            let layout = prepare(g, config);
            move_phase_ovpl_recorded(s, &layout, state, config, rec)
        }
    }
}

/// Full Louvain on the best available backend (the `Backend::Auto` path of
/// `run_kernel`): move phases and coarsening until modularity converges (or
/// a single move phase when `config.multilevel` is false, which is what the
/// paper's timings cover). Sweeps are stamped with the coarsening level via
/// [`Recorder::set_level`].
pub(crate) fn louvain_recorded<R: Recorder>(
    g: &Csr,
    config: &LouvainConfig,
    rec: &mut R,
) -> LouvainResult {
    louvain_with_runner(
        g,
        config,
        rec,
        dispatch_move_phase_recorded,
        dispatch_backend(config),
    )
}

/// Full Louvain with every move phase pinned to backend `s` (the
/// `Backend::Emulated`/`Backend::Native` paths of `run_kernel`).
pub(crate) fn louvain_pinned_recorded<S: Simd + Sync, R: Recorder>(
    s: &S,
    g: &Csr,
    config: &LouvainConfig,
    rec: &mut R,
) -> LouvainResult {
    let backend = match config.variant {
        Variant::Plm | Variant::Mplm => "scalar",
        Variant::Onpl(_) | Variant::Ovpl => S::NAME,
    };
    louvain_with_runner(
        g,
        config,
        rec,
        |g, state, config, rec| move_phase_with(s, g, state, config, rec),
        backend,
    )
}

/// The shared multilevel loop: `runner` supplies the move phase (engine
/// dispatch or an explicit pin), `backend` names it for the run envelope.
fn louvain_with_runner<R: Recorder>(
    g: &Csr,
    config: &LouvainConfig,
    rec: &mut R,
    mut runner: impl FnMut(&Csr, &MoveState, &LouvainConfig, &mut R) -> MovePhaseStats,
    backend: &'static str,
) -> LouvainResult {
    let timer = RunTimer::start();
    let mut result = LouvainResult {
        communities: (0..g.num_vertices() as u32).collect(),
        modularity: 0.0,
        levels: 0,
        level_stats: Vec::new(),
        info: RunInfo::default(),
    };

    let mut level_graph = g.clone();
    let mut assignments: Vec<(Vec<u32>, Vec<u32>)> = Vec::new(); // (zeta, fine_to_coarse)
    // Warm starts apply only at the finest level: coarse graphs have their
    // own vertex space, so deeper levels run cold from singletons.
    let mut level_config = config.clone();
    loop {
        rec.set_level(result.levels);
        let state = match &level_config.warm {
            Some(w) if w.communities.len() == level_graph.num_vertices() => {
                MoveState::from_assignment(&level_graph, &w.communities)
            }
            _ => MoveState::singleton(&level_graph),
        };
        let stats = runner(&level_graph, &state, &level_config, rec);
        result.levels += 1;
        result.level_stats.push(stats);
        let zeta = state.communities();
        let distinct = super::modularity::count_communities(&zeta);

        if !config.multilevel
            || stats.moves == 0
            || distinct == level_graph.num_vertices()
            || rec.should_stop()
        {
            assignments.push((zeta, Vec::new()));
            break;
        }
        let probe = PhaseProbe::begin::<R>();
        let coarse = coarsen(&level_graph, &zeta);
        probe.finish(rec, "coarsen");
        let done = coarse.graph.num_vertices() <= 1;
        assignments.push((zeta, coarse.fine_to_coarse));
        if done {
            break;
        }
        level_graph = coarse.graph;
        level_config.warm = None;
    }

    // Project the deepest assignment back through the levels.
    let probe = PhaseProbe::begin::<R>();
    let (mut communities, _) = assignments.pop().unwrap();
    while let Some((zeta, fine_to_coarse)) = assignments.pop() {
        communities = project(&zeta, &fine_to_coarse, &communities);
    }
    probe.finish(rec, "project");
    result.communities = communities;
    result.modularity = modularity(g, &result.communities);
    // A deadline stop anywhere in the level loop means the multilevel
    // process did not run to completion, even if each executed move phase
    // happened to converge on its own.
    let converged = result.level_stats.iter().all(|s| s.converged) && !rec.should_stop();
    result.info = RunInfo::new(backend, result.levels, converged, timer.elapsed_secs());
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce_scatter::Strategy;
    use gp_graph::builder::from_pairs;
    use gp_graph::generators::{planted_partition, planted_partition_truth, triangular_mesh};
    use gp_metrics::telemetry::NoopRecorder;

    fn seq(variant: Variant) -> LouvainConfig {
        LouvainConfig::sequential(variant)
    }

    fn louvain(g: &Csr, config: &LouvainConfig) -> LouvainResult {
        louvain_recorded(g, config, &mut NoopRecorder)
    }

    #[test]
    fn multilevel_beats_single_level_on_mesh() {
        let g = triangular_mesh(16, 16, 6);
        let single = louvain(&g, &seq(Variant::Mplm).move_phase_only());
        let multi = louvain(&g, &seq(Variant::Mplm));
        assert!(
            multi.modularity >= single.modularity - 1e-9,
            "multilevel {} < single {}",
            multi.modularity,
            single.modularity
        );
        assert!(multi.levels >= single.levels);
    }

    #[test]
    fn all_variants_recover_planted_communities() {
        let g = planted_partition(4, 16, 0.7, 0.02, 55);
        let truth = planted_partition_truth(4, 16);
        let q_truth = super::super::modularity::modularity(&g, &truth);
        for variant in [
            Variant::Plm,
            Variant::Mplm,
            Variant::Onpl(Strategy::ConflictDetect),
            Variant::Onpl(Strategy::InVectorReduce),
            Variant::Ovpl,
        ] {
            let r = louvain(&g, &seq(variant));
            assert!(
                r.modularity > 0.9 * q_truth,
                "{}: Q = {} vs truth {}",
                variant.name(),
                r.modularity,
                q_truth
            );
        }
    }

    #[test]
    fn communities_cover_all_vertices() {
        let g = triangular_mesh(10, 10, 2);
        let r = louvain(&g, &seq(Variant::Mplm));
        assert_eq!(r.communities.len(), g.num_vertices());
    }

    #[test]
    fn single_edge_graph() {
        let g = from_pairs(2, [(0, 1)]);
        let r = louvain(&g, &seq(Variant::Mplm));
        assert_eq!(r.communities[0], r.communities[1]);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(3);
        let r = louvain(&g, &seq(Variant::Mplm));
        assert_eq!(r.communities.len(), 3);
        assert_eq!(r.modularity, 0.0);
    }

    #[test]
    fn trace_records_substrate_phases() {
        use gp_metrics::telemetry::TraceRecorder;
        let g = triangular_mesh(16, 16, 6);
        let mut rec = TraceRecorder::new("louvain-mplm");
        let r = louvain_recorded(&g, &seq(Variant::Mplm), &mut rec);
        let trace = rec.into_trace();
        if r.levels > 1 {
            let coarsens: Vec<_> = trace.phases.iter().filter(|p| p.name == "coarsen").collect();
            // One coarsen per level transition (the final level may or may
            // not coarsen depending on which exit condition fired).
            assert!(
                coarsens.len() >= r.levels - 1 && coarsens.len() <= r.levels,
                "{} coarsens for {} levels",
                coarsens.len(),
                r.levels
            );
            assert!(coarsens.iter().all(|p| p.secs >= 0.0));
        }
        assert!(trace.phases.iter().any(|p| p.name == "project"));
    }

    #[test]
    fn level_stats_recorded() {
        let g = planted_partition(3, 12, 0.7, 0.05, 77);
        let r = louvain(&g, &seq(Variant::Mplm));
        assert_eq!(r.level_stats.len(), r.levels);
        assert!(r.level_stats[0].moves > 0);
    }
}
