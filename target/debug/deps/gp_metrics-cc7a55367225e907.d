/root/repo/target/debug/deps/gp_metrics-cc7a55367225e907.d: crates/metrics/src/lib.rs crates/metrics/src/energy.rs crates/metrics/src/report.rs crates/metrics/src/stats.rs crates/metrics/src/telemetry.rs crates/metrics/src/timer.rs

/root/repo/target/debug/deps/libgp_metrics-cc7a55367225e907.rlib: crates/metrics/src/lib.rs crates/metrics/src/energy.rs crates/metrics/src/report.rs crates/metrics/src/stats.rs crates/metrics/src/telemetry.rs crates/metrics/src/timer.rs

/root/repo/target/debug/deps/libgp_metrics-cc7a55367225e907.rmeta: crates/metrics/src/lib.rs crates/metrics/src/energy.rs crates/metrics/src/report.rs crates/metrics/src/stats.rs crates/metrics/src/telemetry.rs crates/metrics/src/timer.rs

crates/metrics/src/lib.rs:
crates/metrics/src/energy.rs:
crates/metrics/src/report.rs:
crates/metrics/src/stats.rs:
crates/metrics/src/telemetry.rs:
crates/metrics/src/timer.rs:
