/root/repo/target/debug/deps/fig_plm_vs_mplm-9bc1a65058151d86.d: crates/bench/src/bin/fig_plm_vs_mplm.rs

/root/repo/target/debug/deps/fig_plm_vs_mplm-9bc1a65058151d86: crates/bench/src/bin/fig_plm_vs_mplm.rs

crates/bench/src/bin/fig_plm_vs_mplm.rs:
