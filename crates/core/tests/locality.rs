//! The locality-layer equivalence suite: cache blocking and degree
//! bucketing are **scheduling** decisions, never semantic ones. For every
//! kernel, every backend, every sweep mode, every pool size, and every
//! block size — including the degenerate one-vertex block — a blocked,
//! bucketed run must be bit-identical to the unblocked, unbucketed
//! reference.
//!
//! Scope mirrors `active_set.rs`: byte equality is asserted for sequential
//! specs on any pool and for parallel specs on inline pools (1 thread, or
//! `GP_PAR_SEQ=1` — CI re-runs this whole suite under that env). Parallel
//! specs on multi-thread pools are speculative by design; for those the
//! suite asserts validity, not equality.

use gp_core::api::{run_kernel, Backend, Blocking, Bucketing, Kernel, KernelSpec, SweepMode};
use gp_core::coloring::verify_coloring;
use gp_graph::csr::Csr;
use gp_graph::generators::{erdos_renyi, preferential_attachment, star, triangular_mesh};
use gp_graph::par::with_threads;
use gp_metrics::telemetry::NoopRecorder;
use proptest::prelude::*;

/// Every kernel × variant the unified entrypoint can dispatch.
const ALL_KERNELS: [&str; 8] = [
    "color",
    "louvain-plm",
    "louvain-mplm",
    "louvain-onpl-cd",
    "louvain-onpl-ivr",
    "louvain-onpl",
    "louvain-ovpl",
    "labelprop",
];

/// The blocked configurations under test: a degenerate one-vertex block
/// (every vertex is its own locality unit — the harshest schedule), a
/// small odd vertex count (blocks misaligned with the 16-lane batches),
/// and a cache-budget policy (the production default shape).
const BLOCKS: [Blocking; 3] = [Blocking::Vertices(1), Blocking::Vertices(7), Blocking::Kb(64)];

/// Graphs with deliberately different degree profiles: a regular mesh
/// (everything mid-degree), a power law (hubs + low-degree fringe), and a
/// sparse ER graph (mostly ≤ 16 neighbors — the batched bucket dominates).
fn zoo() -> Vec<(&'static str, Csr)> {
    vec![
        ("mesh", triangular_mesh(16, 16, 3)),
        ("powerlaw", preferential_attachment(500, 4, 17)),
        ("er", erdos_renyi(600, 1500, 5)),
    ]
}

fn unblocked(kernel: &str, sweep: SweepMode) -> KernelSpec {
    KernelSpec::new(kernel.parse::<Kernel>().unwrap())
        .with_sweep(sweep)
        .with_block(Blocking::Off)
        .with_bucket(Bucketing::Off)
}

fn blocked(kernel: &str, sweep: SweepMode, block: Blocking) -> KernelSpec {
    KernelSpec::new(kernel.parse::<Kernel>().unwrap())
        .with_sweep(sweep)
        .with_block(block)
        .with_bucket(Bucketing::Degree)
}

/// Runs the full kernel × sweep × block matrix on one backend and asserts
/// byte equality against the unblocked reference (sequential specs, so the
/// contract holds on every pool).
fn backend_suite(backend: Backend) {
    for (gname, g) in zoo() {
        for kernel in ALL_KERNELS {
            for sweep in [SweepMode::Full, SweepMode::Active] {
                let reference = run_kernel(
                    &g,
                    &unblocked(kernel, sweep).sequential().with_backend(backend),
                    &mut NoopRecorder,
                );
                for block in BLOCKS {
                    let out = run_kernel(
                        &g,
                        &blocked(kernel, sweep, block).sequential().with_backend(backend),
                        &mut NoopRecorder,
                    );
                    assert_eq!(
                        reference, out,
                        "{kernel} on {gname} ({backend:?}, {sweep}, block={block}): \
                         blocked run diverged from unblocked"
                    );
                }
            }
        }
    }
}

#[test]
fn blocked_equals_unblocked_auto_backend() {
    backend_suite(Backend::Auto);
}

#[test]
fn blocked_equals_unblocked_scalar_backend() {
    backend_suite(Backend::Scalar);
}

#[test]
fn blocked_equals_unblocked_emulated_backend() {
    backend_suite(Backend::Emulated);
}

#[test]
fn blocked_equals_unblocked_native_backend() {
    // On hosts without AVX-512 `Backend::Native` falls back to the emulated
    // engine, so this still exercises the dispatch path rather than
    // silently skipping.
    backend_suite(Backend::Native);
}

/// Pool sizes must not leak into blocked outputs: sequential specs are
/// bit-identical at 1, 2, and 8 threads, and parallel specs are
/// bit-identical on the inline 1-thread pool (where `gp-par` runs every
/// combinator in chunk order — the same schedule `GP_PAR_SEQ=1` forces on
/// any pool).
#[test]
fn blocked_equals_unblocked_at_every_thread_count() {
    let g = preferential_attachment(700, 5, 23);
    for kernel in ALL_KERNELS {
        let reference = with_threads(1, || {
            run_kernel(&g, &unblocked(kernel, SweepMode::Full).sequential(), &mut NoopRecorder)
        });
        for threads in [1usize, 2, 8] {
            for block in BLOCKS {
                let out = with_threads(threads, || {
                    run_kernel(
                        &g,
                        &blocked(kernel, SweepMode::Full, block).sequential(),
                        &mut NoopRecorder,
                    )
                });
                assert_eq!(
                    reference, out,
                    "{kernel}: sequential blocked run diverged at {threads} threads (block={block})"
                );
            }
        }
        // Parallel specs on the inline pool: same schedule, same bytes.
        let par_reference = with_threads(1, || {
            run_kernel(&g, &unblocked(kernel, SweepMode::Active), &mut NoopRecorder)
        });
        for block in BLOCKS {
            let out = with_threads(1, || {
                run_kernel(&g, &blocked(kernel, SweepMode::Active, block), &mut NoopRecorder)
            });
            assert_eq!(
                par_reference, out,
                "{kernel}: parallel blocked run diverged on the 1-thread pool (block={block})"
            );
        }
    }
}

/// Speculative parallel runs on multi-thread pools are intentionally racy;
/// blocking must preserve *validity* there even when byte equality is out
/// of scope.
#[test]
fn blocked_parallel_specs_stay_valid_on_multithread_pools() {
    let g = preferential_attachment(700, 5, 23);
    let n = g.num_vertices() as u32;
    for threads in [2usize, 8] {
        for kernel in ALL_KERNELS {
            let out = with_threads(threads, || {
                run_kernel(
                    &g,
                    &blocked(kernel, SweepMode::Active, Blocking::Vertices(64)),
                    &mut NoopRecorder,
                )
            });
            assert!(out.rounds() > 0, "{kernel} at {threads} threads: no rounds");
            match &out {
                gp_core::api::KernelOutput::Coloring(r) => {
                    verify_coloring(&g, &r.colors)
                        .unwrap_or_else(|e| panic!("{kernel} at {threads} threads: {e}"));
                }
                gp_core::api::KernelOutput::Louvain(r) => {
                    assert_eq!(r.communities.len(), n as usize);
                    assert!(r.communities.iter().all(|&c| c < n));
                }
                gp_core::api::KernelOutput::Labelprop(r) => {
                    assert_eq!(r.labels.len(), n as usize);
                    assert!(r.labels.iter().all(|&l| l < n));
                }
            }
        }
    }
}

/// Hub-and-spoke: one vertex with n-1 neighbors (a hub scheduling unit all
/// by itself) surrounded by degree-1 spokes (all in the ≤ 16 batch bucket).
/// The nastiest bucketing shape — every bucket boundary is exercised at
/// once.
#[test]
fn blocked_equals_unblocked_on_hub_and_spoke() {
    for n in [17usize, 33, 100, 400] {
        let g = star(n);
        for kernel in ALL_KERNELS {
            let reference =
                run_kernel(&g, &unblocked(kernel, SweepMode::Full).sequential(), &mut NoopRecorder);
            for block in BLOCKS {
                let out = run_kernel(
                    &g,
                    &blocked(kernel, SweepMode::Full, block).sequential(),
                    &mut NoopRecorder,
                );
                let d = reference.diff(&out);
                assert!(
                    d.results_identical(),
                    "{kernel} on star({n}), block={block}:\n{d}"
                );
            }
        }
    }
}

// Random graphs salted with degree-0/degree-1 spam plus a planted hub now
// live in the conformance harness (`gp_conform::generators`), shared with
// the full differential sweep in `crates/conform/tests/conformance.rs`.
use gp_conform::generators::arb_spammy_graph;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Blocked ≡ unblocked on arbitrary spammy graphs, all kernels, both
    /// sweeps, the degenerate one-vertex block included.
    #[test]
    fn blocked_bit_identical_on_spammy_graphs(g in arb_spammy_graph()) {
        for kernel in ALL_KERNELS {
            for sweep in [SweepMode::Full, SweepMode::Active] {
                let reference =
                    run_kernel(&g, &unblocked(kernel, sweep).sequential(), &mut NoopRecorder);
                for block in BLOCKS {
                    let out = run_kernel(
                        &g,
                        &blocked(kernel, sweep, block).sequential(),
                        &mut NoopRecorder,
                    );
                    prop_assert_eq!(
                        &reference, &out,
                        "{} diverged (sweep {}, block {})", kernel, sweep, block
                    );
                }
            }
        }
    }
}
