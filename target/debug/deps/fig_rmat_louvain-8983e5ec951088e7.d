/root/repo/target/debug/deps/fig_rmat_louvain-8983e5ec951088e7.d: crates/bench/src/bin/fig_rmat_louvain.rs

/root/repo/target/debug/deps/fig_rmat_louvain-8983e5ec951088e7: crates/bench/src/bin/fig_rmat_louvain.rs

crates/bench/src/bin/fig_rmat_louvain.rs:
