//! Ablation — vertex-numbering locality and the vector kernels.
//!
//! The stand-in graphs are generated with locality-friendly numberings; real
//! crawls arrive adversarially ordered. This ablation permutes one mesh and
//! one road network through the orderings in `gp-graph::ordering` and shows
//! how the average edge span (the locality the cost model keys on) and the
//! measured kernels respond — the practical advice being: run RCM before the
//! vectorized kernels on badly-numbered inputs.

use gp_bench::harness::{print_header, time_louvain_move, BenchContext};
use gp_core::louvain::Variant;
use gp_core::reduce_scatter::Strategy;
use gp_graph::ordering::{average_edge_span, bfs_order, random_order, rcm_order};
use gp_graph::permute::apply_permutation;
use gp_graph::suite::{build_standin, entry};
use gp_metrics::report::{fmt_ratio, fmt_secs, Table};

fn main() {
    let ctx = BenchContext::from_env();
    print_header("Ablation: vertex ordering locality", &ctx);
    let mut table = Table::new(
        "Edge span and ONPL move-phase time under different orderings",
        &["graph", "ordering", "avg edge span", "MPLM wall", "ONPL wall", "ONPL gain"],
    );
    for name in ["M6", "germany"] {
        let base = build_standin(entry(name).unwrap(), ctx.scale);
        let shuffled = apply_permutation(&base, &random_order(&base, 13));
        // RCM and BFS applied to the adversarial numbering: what a user
        // would run on a badly-ordered input.
        let recovered_rcm = apply_permutation(&shuffled, &rcm_order(&shuffled));
        let recovered_bfs = apply_permutation(&shuffled, &bfs_order(&shuffled));
        for (label, g) in [
            ("natural", &base),
            ("random", &shuffled),
            ("rcm(random)", &recovered_rcm),
            ("bfs(random)", &recovered_bfs),
        ] {
            let span = average_edge_span(g);
            let t_mplm = time_louvain_move(g, Variant::Mplm, &ctx);
            let t_onpl = time_louvain_move(g, Variant::Onpl(Strategy::Adaptive), &ctx);
            table.row(&[
                name.to_string(),
                label.to_string(),
                format!("{span:.0}"),
                fmt_secs(t_mplm.mean),
                fmt_secs(t_onpl.mean),
                fmt_ratio(t_mplm.mean / t_onpl.mean),
            ]);
        }
    }
    ctx.emit(&table);
    if !ctx.csv {
        println!("\nexpected: random numbering inflates the edge span; RCM restores it.");
    }
}
