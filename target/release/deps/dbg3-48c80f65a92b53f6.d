/root/repo/target/release/deps/dbg3-48c80f65a92b53f6.d: crates/bench/src/bin/dbg3.rs

/root/repo/target/release/deps/dbg3-48c80f65a92b53f6: crates/bench/src/bin/dbg3.rs

crates/bench/src/bin/dbg3.rs:
