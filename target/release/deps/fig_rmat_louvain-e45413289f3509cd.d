/root/repo/target/release/deps/fig_rmat_louvain-e45413289f3509cd.d: crates/bench/src/bin/fig_rmat_louvain.rs

/root/repo/target/release/deps/fig_rmat_louvain-e45413289f3509cd: crates/bench/src/bin/fig_rmat_louvain.rs

crates/bench/src/bin/fig_rmat_louvain.rs:
