/root/repo/target/debug/examples/quickstart-331105484b32e824.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-331105484b32e824.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
