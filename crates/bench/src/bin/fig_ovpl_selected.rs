//! F-OVPL — regenerates Figure 13: OVPL speedup over MPLM on the selected
//! balanced-degree graphs (delaunay/nlpkkt class) on both architectures.
//!
//! Also reports the layout statistics that explain the result: lane
//! utilization (padding waste) and the preprocessing cost OVPL pays once.

use gp_bench::harness::{
    counts_louvain_move, print_header, study_archs_for_paper, time_louvain_move, BenchContext,
};
use gp_core::louvain::ovpl::prepare;
use gp_core::louvain::{LouvainConfig, Variant};
use gp_core::reduce_scatter::Strategy;
use gp_graph::suite::{balanced_degree_subset, build_standin};
use gp_metrics::report::{fmt_ratio, fmt_secs, Table};
use gp_metrics::timer::time_runs;

fn main() {
    let ctx = BenchContext::from_env();
    print_header("Figure 13: OVPL on balanced-degree graphs", &ctx);
    let mut table = Table::new(
        "Figure 13 — OVPL speedup over MPLM (balanced-degree subset)",
        &[
            "graph",
            "deg-cv",
            "lane util",
            "preproc wall",
            "measured speedup",
            "CLX model",
            "SKX model",
            "ONPL measured (contrast)",
        ],
    );
    for entry in balanced_degree_subset() {
        let g = build_standin(entry, ctx.scale);
        let archs = study_archs_for_paper(entry, &g);
        let stats = gp_graph::stats::graph_stats(&g);
        let config = LouvainConfig::default();
        let layout = prepare(&g, &config);
        let preproc = time_runs(&ctx.timing, |_| prepare(&g, &config));

        let t_mplm = time_louvain_move(&g, Variant::Mplm, &ctx);
        let t_ovpl = time_louvain_move(&g, Variant::Ovpl, &ctx);
        let t_onpl = time_louvain_move(&g, Variant::Onpl(Strategy::Adaptive), &ctx);
        let c_mplm = counts_louvain_move(&g, Variant::Mplm);
        let c_ovpl = counts_louvain_move(&g, Variant::Ovpl);
        table.row(&[
            entry.name.to_string(),
            format!("{:.2}", stats.degree_cv),
            format!("{:.2}", layout.lane_utilization()),
            fmt_secs(preproc.mean),
            fmt_ratio(t_mplm.mean / t_ovpl.mean),
            fmt_ratio(archs[0].speedup(&c_mplm, &c_ovpl)),
            fmt_ratio(archs[1].speedup(&c_mplm, &c_ovpl)),
            fmt_ratio(t_mplm.mean / t_onpl.mean),
        ]);
    }
    ctx.emit(&table);
    if !ctx.csv {
        println!("\npaper reference: up to 9.0x (CLX) and 6.5x (SKX) for OVPL on these graphs");
    }
}
