//! `gpart` — command-line front end for the graph-partitioning kernels.
//!
//! ```text
//! gpart stats     <graph>                     print Table-1-style statistics
//! gpart generate  <family> <out> [args…]      write a synthetic graph
//! gpart convert   <in> <out>                  convert between formats
//! gpart color     <graph> [--out f]           speculative greedy coloring
//! gpart louvain   <graph> [--variant v] [--out f]
//! gpart labelprop <graph> [--out f]
//! gpart partition <graph> [--k n] [--out f]
//! gpart slpa      <graph> [--threshold r] [--out f]
//! ```
//!
//! Formats are inferred from extensions: `.el`/`.txt` edge list,
//! `.graph`/`.metis` METIS, `.mtx` Matrix Market.

mod commands;
mod io;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("stats") => commands::stats(&args[1..]),
        Some("generate") => commands::generate(&args[1..]),
        Some("convert") => commands::convert(&args[1..]),
        Some("color") => commands::color(&args[1..]),
        Some("louvain") => commands::louvain(&args[1..]),
        Some("labelprop") => commands::labelprop(&args[1..]),
        Some("partition") => commands::partition(&args[1..]),
        Some("slpa") => commands::slpa(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{}", commands::USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("gpart: {message}");
            ExitCode::FAILURE
        }
    }
}
