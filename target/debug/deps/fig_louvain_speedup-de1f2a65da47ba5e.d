/root/repo/target/debug/deps/fig_louvain_speedup-de1f2a65da47ba5e.d: crates/bench/src/bin/fig_louvain_speedup.rs

/root/repo/target/debug/deps/fig_louvain_speedup-de1f2a65da47ba5e: crates/bench/src/bin/fig_louvain_speedup.rs

crates/bench/src/bin/fig_louvain_speedup.rs:
