//! The `Simd` trait: the single seam every kernel is written against.

pub mod avx512;
pub mod scalar;

use crate::vector::{Mask16, LANES};

pub use avx512::Avx512;
pub use scalar::Emulated;

/// 16 lanes of 32-bit operations, modeled on the subset of AVX-512F +
/// AVX-512CD the paper's kernels use.
///
/// Implementations carry no data (they are zero-sized tokens); holding a
/// value of the type is proof the backend is usable on this CPU, which is
/// why [`avx512::Avx512::new`] runs feature detection and every intrinsic
/// call inside the backend is sound.
///
/// # Semantics shared by all backends
///
/// * Masked operations leave unselected lanes at the value of the
///   pass-through argument (or zero for `maskz`-style ops), matching the
///   Intel intrinsics.
/// * [`Simd::conflict_i32`] computes, for each lane `i`, a bit vector of the
///   lanes `j < i` holding an equal value — the exact
///   `_mm512_conflict_epi32` definition.
/// * Gathers and scatters index 32-bit elements (scale = 4) off a slice
///   base. They are `unsafe`: the caller must guarantee every *selected*
///   lane's index is within the slice. The graph kernels obtain this from
///   the CSR invariant (all neighbor ids < |V|).
/// * Scatter with duplicate indices stores the highest-numbered lane, like
///   the hardware ("if two lanes write the same location the last one
///   wins") — the very hazard the paper's reduce-scatter exists to solve.
pub trait Simd: Copy + Send + Sync + 'static {
    /// Register of 16 × i32 lanes.
    type I32: Copy + std::fmt::Debug + Send + Sync;
    /// Register of 16 × f32 lanes.
    type F32: Copy + std::fmt::Debug + Send + Sync;

    /// Human-readable backend name for reports.
    const NAME: &'static str;
    /// True when the backend executes real vector instructions.
    const IS_VECTOR: bool;
    /// True when the backend records op counts ([`crate::counted::Counted`]).
    /// Kernels use this compile-time flag to also record their *scalar*
    /// remainder work during modeled runs, at zero cost in timed runs.
    const IS_COUNTED: bool = false;

    // ---- construction / inspection -------------------------------------

    /// Broadcast one i32 to all lanes (`vpbroadcastd`).
    fn splat_i32(&self, x: i32) -> Self::I32;
    /// Broadcast one f32 to all lanes (`vbroadcastss`).
    fn splat_f32(&self, x: f32) -> Self::F32;
    /// Spill a register to an array (test/debug aid; kernels avoid it).
    fn to_array_i32(&self, v: Self::I32) -> [i32; LANES];
    /// Spill a register to an array.
    fn to_array_f32(&self, v: Self::F32) -> [f32; LANES];
    /// Load a register from an array value.
    #[allow(clippy::wrong_self_convention)] // `self` is the backend token, not the value
    fn from_array_i32(&self, a: [i32; LANES]) -> Self::I32;
    /// Load a register from an array value.
    #[allow(clippy::wrong_self_convention)]
    fn from_array_f32(&self, a: [f32; LANES]) -> Self::F32;
    /// Extract one lane. Lanes are cheap to extract on the emulated backend
    /// and cost a spill on hardware; kernels use it sparingly (lane 0 for
    /// the in-vector reduction pivot).
    fn extract_i32(&self, v: Self::I32, lane: usize) -> i32 {
        self.to_array_i32(v)[lane]
    }
    /// Extract one f32 lane.
    fn extract_f32(&self, v: Self::F32, lane: usize) -> f32 {
        self.to_array_f32(v)[lane]
    }

    // ---- full-width loads/stores ---------------------------------------

    /// Unaligned 16-lane load (`vmovdqu32`). Panics if `src.len() < 16` in
    /// debug builds; callers guarantee it.
    fn load_i32(&self, src: &[i32]) -> Self::I32;
    /// Unaligned 16-lane load (`vmovups`).
    fn load_f32(&self, src: &[f32]) -> Self::F32;
    /// Unaligned 16-lane store.
    fn store_i32(&self, dst: &mut [i32], v: Self::I32);
    /// Unaligned 16-lane store.
    fn store_f32(&self, dst: &mut [f32], v: Self::F32);

    /// Loads `min(src.len(), 16)` lanes (rest zero) and returns the mask of
    /// valid lanes — the remainder-loop load (`vmovdqu32 {k}{z}`).
    fn load_tail_i32(&self, src: &[i32]) -> (Self::I32, Mask16);
    /// f32 variant of [`Simd::load_tail_i32`].
    fn load_tail_f32(&self, src: &[f32]) -> (Self::F32, Mask16);

    // ---- gather / scatter (AVX-512F) ------------------------------------

    /// Masked gather: for each selected lane `i`, reads
    /// `base[idx[i] as usize]`; unselected lanes keep `src`'s value
    /// (`vpgatherdd`).
    ///
    /// # Safety
    /// Every selected lane's index must satisfy
    /// `0 <= idx[i] < base.len()`.
    unsafe fn gather_i32(
        &self,
        base: &[i32],
        idx: Self::I32,
        mask: Mask16,
        src: Self::I32,
    ) -> Self::I32;

    /// Masked gather of f32 (`vgatherdps`).
    ///
    /// # Safety
    /// Same contract as [`Simd::gather_i32`].
    unsafe fn gather_f32(
        &self,
        base: &[f32],
        idx: Self::I32,
        mask: Mask16,
        src: Self::F32,
    ) -> Self::F32;

    /// Masked scatter (`vpscatterdd`). Duplicate selected indices store the
    /// highest lane.
    ///
    /// # Safety
    /// Every selected lane's index must satisfy
    /// `0 <= idx[i] < base.len()`.
    unsafe fn scatter_i32(&self, base: &mut [i32], idx: Self::I32, v: Self::I32, mask: Mask16);

    /// Masked scatter of f32 (`vscatterdps`).
    ///
    /// # Safety
    /// Same contract as [`Simd::scatter_i32`].
    unsafe fn scatter_f32(&self, base: &mut [f32], idx: Self::I32, v: Self::F32, mask: Mask16);

    // ---- conflict detection (AVX-512CD) ----------------------------------

    /// `_mm512_conflict_epi32`: lane `i` receives a bit vector with bit `j`
    /// set for every `j < i` with `a[j] == a[i]`.
    fn conflict_i32(&self, v: Self::I32) -> Self::I32;

    // ---- arithmetic / logic ----------------------------------------------

    /// Lane-wise i32 add.
    fn add_i32(&self, a: Self::I32, b: Self::I32) -> Self::I32;
    /// Lane-wise f32 add.
    fn add_f32(&self, a: Self::F32, b: Self::F32) -> Self::F32;
    /// Masked f32 add: selected lanes get `a + b`, others keep `src`.
    fn mask_add_f32(&self, src: Self::F32, mask: Mask16, a: Self::F32, b: Self::F32) -> Self::F32;
    /// Lane-wise f32 subtract.
    fn sub_f32(&self, a: Self::F32, b: Self::F32) -> Self::F32;
    /// Lane-wise f32 multiply.
    fn mul_f32(&self, a: Self::F32, b: Self::F32) -> Self::F32;
    /// Lane-wise left shift by an immediate (`vpslld`).
    fn shl_i32<const IMM: u32>(&self, a: Self::I32) -> Self::I32;
    /// Lane-wise variable left shift: `a[i] << count[i]` (`vpsllvd`).
    /// Counts ≥ 32 zero the lane, matching the hardware semantics.
    fn sllv_i32(&self, a: Self::I32, count: Self::I32) -> Self::I32;
    /// Lane-wise OR.
    fn or_i32(&self, a: Self::I32, b: Self::I32) -> Self::I32;
    /// Lane-wise AND.
    fn and_i32(&self, a: Self::I32, b: Self::I32) -> Self::I32;
    /// Lane-wise f32 max.
    fn max_f32(&self, a: Self::F32, b: Self::F32) -> Self::F32;

    // ---- comparisons -----------------------------------------------------

    /// Lane-wise `a == b` (i32).
    fn cmpeq_i32(&self, a: Self::I32, b: Self::I32) -> Mask16;
    /// Lane-wise `a != b` (i32).
    fn cmpneq_i32(&self, a: Self::I32, b: Self::I32) -> Mask16 {
        self.cmpeq_i32(a, b).not()
    }
    /// Lane-wise `a == b` under a mask; unselected lanes yield 0.
    fn mask_cmpeq_i32(&self, mask: Mask16, a: Self::I32, b: Self::I32) -> Mask16 {
        self.cmpeq_i32(a, b).and(mask)
    }
    /// Lane-wise `a == b` (f32, ordered).
    fn cmpeq_f32(&self, a: Self::F32, b: Self::F32) -> Mask16;
    /// Lane-wise `a > b` (f32, ordered).
    fn cmpgt_f32(&self, a: Self::F32, b: Self::F32) -> Mask16;
    /// Lane-wise `a < b` (i32).
    fn cmplt_i32(&self, a: Self::I32, b: Self::I32) -> Mask16;

    // ---- reductions -------------------------------------------------------

    /// Sum of all lanes (`_mm512_reduce_add_ps`).
    fn reduce_add_f32(&self, v: Self::F32) -> f32;
    /// Sum of the selected lanes (`_mm512_mask_reduce_add_ps`) — the paper's
    /// in-vector-reduction instruction.
    fn mask_reduce_add_f32(&self, mask: Mask16, v: Self::F32) -> f32;
    /// Max of all lanes (`_mm512_reduce_max_ps`) — ONLP's label-weight max.
    fn reduce_max_f32(&self, v: Self::F32) -> f32;

    // ---- compression -------------------------------------------------------

    /// `_mm512_maskz_compress_epi32`: selected lanes packed to the front,
    /// rest zeroed. Used to queue the "remaining neighbors" (RN in Fig. 2).
    fn compress_i32(&self, mask: Mask16, v: Self::I32) -> Self::I32;
    /// f32 variant of [`Simd::compress_i32`].
    fn compress_f32(&self, mask: Mask16, v: Self::F32) -> Self::F32;

    // ---- blends -------------------------------------------------------------

    /// Selected lanes take `b`, unselected `a` (`vpblendmd`).
    fn blend_i32(&self, mask: Mask16, a: Self::I32, b: Self::I32) -> Self::I32;
    /// Selected lanes take `b`, unselected `a` (`vblendmps`).
    fn blend_f32(&self, mask: Mask16, a: Self::F32, b: Self::F32) -> Self::F32;
}

/// Derives the paper's "independent lanes" mask from a conflict vector: a
/// lane is *free* when it has no earlier-lane duplicate, i.e. its conflict
/// word is zero. The mask `M` of Figures 1–2.
#[inline(always)]
pub fn conflict_free_mask<S: Simd>(s: &S, conflicts: S::I32) -> Mask16 {
    s.cmpeq_i32(conflicts, s.splat_i32(0))
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    /// The default-method implementations must agree across backends.
    #[test]
    fn default_cmpneq_consistent() {
        let s = Emulated;
        let a = s.from_array_i32([1; LANES]);
        let b = s.from_array_i32([2; LANES]);
        assert_eq!(s.cmpneq_i32(a, b), Mask16::ALL);
        assert_eq!(s.cmpneq_i32(a, a), Mask16::NONE);
    }

    #[test]
    fn conflict_free_mask_on_unique_values() {
        let s = Emulated;
        let mut vals = [0i32; LANES];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = i as i32;
        }
        let v = s.from_array_i32(vals);
        assert_eq!(conflict_free_mask(&s, s.conflict_i32(v)), Mask16::ALL);
    }

    #[test]
    fn conflict_free_mask_on_identical_values() {
        let s = Emulated;
        let v = s.splat_i32(7);
        // Only lane 0 has no earlier duplicate.
        assert_eq!(conflict_free_mask(&s, s.conflict_i32(v)), Mask16::single(0));
    }
}
