/root/repo/target/debug/deps/ablation_ordering-f1d10e9bea152153.d: crates/bench/src/bin/ablation_ordering.rs Cargo.toml

/root/repo/target/debug/deps/libablation_ordering-f1d10e9bea152153.rmeta: crates/bench/src/bin/ablation_ordering.rs Cargo.toml

crates/bench/src/bin/ablation_ordering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
