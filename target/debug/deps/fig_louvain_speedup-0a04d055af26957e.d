/root/repo/target/debug/deps/fig_louvain_speedup-0a04d055af26957e.d: crates/bench/src/bin/fig_louvain_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libfig_louvain_speedup-0a04d055af26957e.rmeta: crates/bench/src/bin/fig_louvain_speedup.rs Cargo.toml

crates/bench/src/bin/fig_louvain_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
