//! Operation counters: the measurement substrate for the cost and energy
//! models.
//!
//! Counts accumulate in global relaxed atomics so counted runs can span
//! rayon worker threads. Counted runs are for *modeling*, not wall-clock
//! timing — the figure harness times the raw backends and models with the
//! counted ones.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};

/// Classes of machine operations the models distinguish.
///
/// The vector classes map to the instruction families whose throughputs
/// differ across SkylakeX and Cascade Lake (gather, scatter, conflict); the
/// scalar classes let the same accounting cover the paper's scalar baselines
/// (MPLM, MPLP, scalar coloring).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
#[repr(usize)]
pub enum OpClass {
    /// Scalar 32-bit load from a streaming/sequential address (adjacency
    /// arrays): effectively always cache-resident.
    ScalarLoad = 0,
    /// Scalar 32-bit load from a data-dependent random address (community,
    /// label, affinity lookups): the latency-exposed accesses that dominate
    /// graph kernels at the paper's graph sizes.
    ScalarRandLoad,
    /// Scalar 32-bit store.
    ScalarStore,
    /// Scalar ALU op (add/cmp/shift).
    ScalarAlu,
    /// Scalar branch.
    ScalarBranch,
    /// 512-bit vector load (full or masked).
    VecLoad,
    /// 512-bit vector store.
    VecStore,
    /// 16-lane gather.
    Gather,
    /// 16-lane scatter.
    Scatter,
    /// `vpconflictd`.
    Conflict,
    /// Lane-wise vector ALU op (add/or/shift/max/blend).
    VecAlu,
    /// Vector compare producing a mask.
    VecCmp,
    /// Cross-lane reduction (add/max, masked or not).
    Reduce,
    /// Compress/expand.
    Compress,
    /// Mask-register op (and/or/not/popcount).
    MaskOp,
}

/// Number of [`OpClass`] variants.
pub const NUM_OP_CLASSES: usize = 15;

/// All op classes in discriminant order.
pub const ALL_OP_CLASSES: [OpClass; NUM_OP_CLASSES] = [
    OpClass::ScalarLoad,
    OpClass::ScalarRandLoad,
    OpClass::ScalarStore,
    OpClass::ScalarAlu,
    OpClass::ScalarBranch,
    OpClass::VecLoad,
    OpClass::VecStore,
    OpClass::Gather,
    OpClass::Scatter,
    OpClass::Conflict,
    OpClass::VecAlu,
    OpClass::VecCmp,
    OpClass::Reduce,
    OpClass::Compress,
    OpClass::MaskOp,
];

impl OpClass {
    /// Short label for report columns.
    pub fn label(self) -> &'static str {
        match self {
            OpClass::ScalarLoad => "s.load",
            OpClass::ScalarRandLoad => "s.rload",
            OpClass::ScalarStore => "s.store",
            OpClass::ScalarAlu => "s.alu",
            OpClass::ScalarBranch => "s.branch",
            OpClass::VecLoad => "v.load",
            OpClass::VecStore => "v.store",
            OpClass::Gather => "gather",
            OpClass::Scatter => "scatter",
            OpClass::Conflict => "conflict",
            OpClass::VecAlu => "v.alu",
            OpClass::VecCmp => "v.cmp",
            OpClass::Reduce => "reduce",
            OpClass::Compress => "compress",
            OpClass::MaskOp => "mask",
        }
    }

    /// Whether this class is a 512-bit vector operation.
    pub fn is_vector(self) -> bool {
        !matches!(
            self,
            OpClass::ScalarLoad
                | OpClass::ScalarRandLoad
                | OpClass::ScalarStore
                | OpClass::ScalarAlu
                | OpClass::ScalarBranch
        )
    }
}

static COUNTERS: [AtomicU64; NUM_OP_CLASSES] = [const { AtomicU64::new(0) }; NUM_OP_CLASSES];

/// Adds `n` operations of the given class.
#[inline(always)]
pub fn record(class: OpClass, n: u64) {
    COUNTERS[class as usize].fetch_add(n, Ordering::Relaxed);
}

/// Resets all counters to zero (start of a counted run).
pub fn reset() {
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
}

/// Snapshot of the counters.
pub fn snapshot() -> OpCounts {
    let mut counts = [0u64; NUM_OP_CLASSES];
    for (i, c) in COUNTERS.iter().enumerate() {
        counts[i] = c.load(Ordering::Relaxed);
    }
    OpCounts { counts }
}

/// Runs `f` with counters reset and returns `(result, counts)`.
///
/// ```
/// use gp_simd::backend::{Emulated, Simd};
/// use gp_simd::counted::Counted;
/// use gp_simd::counters::{counted_run, OpClass};
///
/// let s = Counted::new(Emulated);
/// let ((), counts) = counted_run(|| {
///     let v = s.splat_i32(1);
///     let _ = s.conflict_i32(v);
/// });
/// assert_eq!(counts.get(OpClass::Conflict), 1);
/// ```
///
/// Not reentrant: the counters are global, so nested or concurrent counted
/// *runs* interleave (concurrent counted *threads inside one run* are fine —
/// that is the point of the atomics).
pub fn counted_run<R>(f: impl FnOnce() -> R) -> (R, OpCounts) {
    reset();
    let r = f();
    (r, snapshot())
}

/// An immutable snapshot of operation counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct OpCounts {
    counts: [u64; NUM_OP_CLASSES],
}

impl OpCounts {
    /// Count of one class.
    pub fn get(&self, class: OpClass) -> u64 {
        self.counts[class as usize]
    }

    /// Builder for tests and analytic models.
    pub fn with(mut self, class: OpClass, n: u64) -> Self {
        self.counts[class as usize] = n;
        self
    }

    /// Sum of all operations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of the 512-bit vector operations only.
    pub fn total_vector(&self) -> u64 {
        ALL_OP_CLASSES
            .iter()
            .filter(|c| c.is_vector())
            .map(|&c| self.get(c))
            .sum()
    }

    /// Sum of the scalar operations only.
    pub fn total_scalar(&self) -> u64 {
        self.total() - self.total_vector()
    }

    /// Element-wise sum.
    pub fn add(&self, other: &OpCounts) -> OpCounts {
        let mut counts = self.counts;
        for (mine, theirs) in counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        OpCounts { counts }
    }

    /// Element-wise saturating difference (`self - other`).
    ///
    /// This is the delta-snapshot primitive for per-round telemetry:
    /// snapshot the global counters entering and leaving a round and
    /// subtract. Saturating, because a concurrent counted run (the counters
    /// are global) could in principle make a class appear to go backwards;
    /// clamping at zero keeps deltas sane rather than wrapping.
    pub fn saturating_sub(&self, other: &OpCounts) -> OpCounts {
        let mut counts = self.counts;
        for (mine, theirs) in counts.iter_mut().zip(other.counts.iter()) {
            *mine = mine.saturating_sub(*theirs);
        }
        OpCounts { counts }
    }

    /// Iterate `(class, count)` for non-zero classes.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (OpClass, u64)> + '_ {
        ALL_OP_CLASSES
            .iter()
            .map(|&c| (c, self.get(c)))
            .filter(|&(_, n)| n > 0)
    }
}

/// Convenience for scalar kernels: record the op bundle of visiting `n`
/// neighbors in a scalar loop (sequential load of the neighbor id, random
/// load of its datum, one ALU op, one store-or-update, one loop branch).
/// Called once per vertex so the accounting itself does not distort scalar
/// wall-times.
#[inline]
pub fn record_scalar_edge_visits(n: u64) {
    record(OpClass::ScalarLoad, n);
    record(OpClass::ScalarRandLoad, n);
    record(OpClass::ScalarAlu, n);
    record(OpClass::ScalarStore, n);
    record(OpClass::ScalarBranch, n);
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: counter tests mutate global state; each test resets first and
    // `cargo test` may run them concurrently with each other but not with
    // the model tests that use `counted_run` (those construct their own
    // OpCounts via `with`).

    #[test]
    fn record_and_snapshot() {
        reset();
        record(OpClass::Gather, 3);
        record(OpClass::Gather, 2);
        record(OpClass::Scatter, 1);
        let s = snapshot();
        assert_eq!(s.get(OpClass::Gather), 5);
        assert_eq!(s.get(OpClass::Scatter), 1);
        assert_eq!(s.total(), 6);
    }

    #[test]
    fn vector_vs_scalar_totals() {
        let c = OpCounts::default()
            .with(OpClass::ScalarAlu, 10)
            .with(OpClass::Gather, 4)
            .with(OpClass::MaskOp, 2);
        assert_eq!(c.total_scalar(), 10);
        assert_eq!(c.total_vector(), 6);
    }

    #[test]
    fn add_counts() {
        let a = OpCounts::default().with(OpClass::VecAlu, 1);
        let b = OpCounts::default().with(OpClass::VecAlu, 2).with(OpClass::Reduce, 3);
        let c = a.add(&b);
        assert_eq!(c.get(OpClass::VecAlu), 3);
        assert_eq!(c.get(OpClass::Reduce), 3);
    }

    #[test]
    fn saturating_sub_deltas() {
        let before = OpCounts::default()
            .with(OpClass::Gather, 10)
            .with(OpClass::VecAlu, 5);
        let after = before.add(
            &OpCounts::default()
                .with(OpClass::Gather, 7)
                .with(OpClass::Conflict, 2),
        );
        let delta = after.saturating_sub(&before);
        assert_eq!(delta.get(OpClass::Gather), 7);
        assert_eq!(delta.get(OpClass::Conflict), 2);
        assert_eq!(delta.get(OpClass::VecAlu), 0);
        // Clamped, not wrapped.
        assert_eq!(before.saturating_sub(&after).get(OpClass::Gather), 0);
    }

    #[test]
    fn scalar_edge_bundle() {
        reset();
        record_scalar_edge_visits(4);
        let s = snapshot();
        assert_eq!(s.get(OpClass::ScalarLoad), 4);
        assert_eq!(s.get(OpClass::ScalarRandLoad), 4);
        assert_eq!(s.get(OpClass::ScalarAlu), 4);
        assert_eq!(s.get(OpClass::ScalarBranch), 4);
    }

    #[test]
    fn labels_unique() {
        let labels: std::collections::HashSet<_> =
            ALL_OP_CLASSES.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), NUM_OP_CLASSES);
    }

    #[test]
    fn discriminants_match_all_array() {
        for (i, c) in ALL_OP_CLASSES.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
    }
}
