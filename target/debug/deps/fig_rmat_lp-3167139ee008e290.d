/root/repo/target/debug/deps/fig_rmat_lp-3167139ee008e290.d: crates/bench/src/bin/fig_rmat_lp.rs Cargo.toml

/root/repo/target/debug/deps/libfig_rmat_lp-3167139ee008e290.rmeta: crates/bench/src/bin/fig_rmat_lp.rs Cargo.toml

crates/bench/src/bin/fig_rmat_lp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
