//! Synthetic graph generators.
//!
//! The paper evaluates on SNAP/DIMACS graphs spanning road networks, meshes,
//! social networks, web crawls, and optimization matrices. Those downloads
//! are not available here, so each family is reproduced by a generator whose
//! output matches the structural statistics the paper's conclusions hinge on
//! (average degree, degree balance, locality). See `suite.rs` for the named
//! Table-1 stand-ins and DESIGN.md §2 for the substitution rationale.
//!
//! All generators are deterministic given their seed.

pub mod ba;
pub mod er;
pub mod grid;
pub mod mesh;
pub mod rmat;
pub mod special;

pub use ba::preferential_attachment;
pub use er::erdos_renyi;
pub use grid::{grid2d, road_network, stencil3d};
pub use mesh::triangular_mesh;
pub use rmat::{rmat, RmatConfig};
pub use special::{
    clique, cycle, near_regular, path, planted_partition, planted_partition_truth, ring_lattice,
    star,
};
