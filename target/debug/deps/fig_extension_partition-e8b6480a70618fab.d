/root/repo/target/debug/deps/fig_extension_partition-e8b6480a70618fab.d: crates/bench/src/bin/fig_extension_partition.rs Cargo.toml

/root/repo/target/debug/deps/libfig_extension_partition-e8b6480a70618fab.rmeta: crates/bench/src/bin/fig_extension_partition.rs Cargo.toml

crates/bench/src/bin/fig_extension_partition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
