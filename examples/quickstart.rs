//! Quickstart: generate a graph, color it, and detect communities — all with
//! the best vector backend the host offers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use graph_partition_avx512::core::coloring::{color_graph, verify_coloring, ColoringConfig};
use graph_partition_avx512::core::labelprop::{label_propagation, LabelPropConfig};
use graph_partition_avx512::core::louvain::{louvain, LouvainConfig};
use graph_partition_avx512::graph::generators::rmat::{rmat, RmatConfig};
use graph_partition_avx512::graph::stats::graph_stats;
use graph_partition_avx512::simd::engine::Engine;

fn main() {
    // A power-law graph: 4096 vertices, ~8 edges per vertex.
    let graph = rmat(RmatConfig::new(12, 8).with_seed(42));
    let stats = graph_stats(&graph);
    println!(
        "graph: {} vertices, {} edges, max degree {}, avg degree {:.1}",
        stats.num_vertices, stats.num_edges, stats.max_degree, stats.avg_degree
    );
    println!("vector backend: {}\n", Engine::best().name());

    // Distance-1 coloring with the speculative parallel greedy algorithm
    // (ONPL-vectorized color assignment on AVX-512 hosts).
    let coloring = color_graph(&graph, &ColoringConfig::default());
    verify_coloring(&graph, &coloring.colors).expect("coloring must be valid");
    println!(
        "coloring: {} colors in {} speculative rounds (valid ✓)",
        coloring.num_colors, coloring.rounds
    );

    // Community detection with the full multilevel Louvain method.
    let communities = louvain(&graph, &LouvainConfig::default());
    println!(
        "louvain: modularity {:.4} across {} levels",
        communities.modularity, communities.levels
    );

    // And with label propagation.
    let lp = label_propagation(&graph, &LabelPropConfig::default());
    let distinct: std::collections::HashSet<_> = lp.labels.iter().collect();
    println!(
        "label propagation: {} communities after {} sweeps",
        distinct.len(),
        lp.iterations
    );
}
