/root/repo/target/debug/deps/reduce_scatter-6dd7780694f76ca9.d: crates/bench/benches/reduce_scatter.rs Cargo.toml

/root/repo/target/debug/deps/libreduce_scatter-6dd7780694f76ca9.rmeta: crates/bench/benches/reduce_scatter.rs Cargo.toml

crates/bench/benches/reduce_scatter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
