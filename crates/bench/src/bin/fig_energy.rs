//! F-NRG — regenerates Figure 14(a,b): modeled energy consumption of ONPL
//! and OVPL relative to MPLM on both architectures (the RAPL substitute —
//! see DESIGN.md §2).
//!
//! Bars above 1 mean the vectorized variant consumes *less* energy.
//! Expected shape: ONPL ≥ 1 for most graphs (fewer decoded instructions);
//! OVPL < 1 (preprocessing work + padded lanes).

use gp_bench::harness::{counts_louvain_move, print_header, study_archs_for_paper, BenchContext};
use gp_core::louvain::ovpl::prepare;
use gp_core::louvain::{LouvainConfig, Variant};
use gp_core::reduce_scatter::Strategy;
use gp_graph::suite::build_suite;
use gp_metrics::report::{fmt_ratio, Table};
use gp_simd::counters::{record_scalar_edge_visits, OpCounts};
use gp_simd::energy::SERVER_ENERGY;

/// OVPL's energy bill includes its preprocessing (coloring + sort + layout):
/// approximate it as one scalar pass over all arcs (coloring) plus
/// `n log n`-ish sorting ALU work, charged as scalar ops.
fn ovpl_preprocessing_counts(g: &gp_graph::csr::Csr) -> OpCounts {
    let ((), counts) = gp_simd::counters::counted_run(|| {
        record_scalar_edge_visits(g.num_arcs() as u64);
        let n = g.num_vertices() as u64;
        let sort_ops = (n as f64 * (n.max(2) as f64).log2()) as u64;
        gp_simd::counters::record(gp_simd::counters::OpClass::ScalarAlu, sort_ops);
        // Layout construction: one random CSR read plus one store per
        // interleaved slot (padding included — wasted slots still burn
        // energy, the paper's point).
        let cfg = LouvainConfig::default();
        let layout = prepare(g, &cfg);
        gp_simd::counters::record(
            gp_simd::counters::OpClass::ScalarRandLoad,
            layout.nbrs.len() as u64,
        );
        gp_simd::counters::record(
            gp_simd::counters::OpClass::ScalarStore,
            layout.nbrs.len() as u64,
        );
    });
    counts
}

fn main() {
    let ctx = BenchContext::from_env();
    print_header("Figure 14: energy of ONPL / OVPL vs MPLM", &ctx);
    let onpl = Variant::Onpl(Strategy::Adaptive);
    let mut table = Table::new(
        "Figure 14 — modeled energy gain over MPLM (>1 = less energy)",
        &[
            "graph",
            "ONPL CLX",
            "ONPL SKX",
            "OVPL CLX",
            "OVPL SKX",
            "ONPL speedup CLX (contrast)",
        ],
    );
    for (entry, g) in build_suite(ctx.scale) {
        let archs = study_archs_for_paper(entry, &g);
        let c_mplm = counts_louvain_move(&g, Variant::Mplm);
        let c_onpl = counts_louvain_move(&g, onpl);
        let c_ovpl = counts_louvain_move(&g, Variant::Ovpl).add(&ovpl_preprocessing_counts(&g));
        table.row(&[
            entry.name.to_string(),
            fmt_ratio(SERVER_ENERGY.efficiency_gain(&archs[0], &c_mplm, &c_onpl)),
            fmt_ratio(SERVER_ENERGY.efficiency_gain(&archs[1], &c_mplm, &c_onpl)),
            fmt_ratio(SERVER_ENERGY.efficiency_gain(&archs[0], &c_mplm, &c_ovpl)),
            fmt_ratio(SERVER_ENERGY.efficiency_gain(&archs[1], &c_mplm, &c_ovpl)),
            fmt_ratio(archs[0].speedup(&c_mplm, &c_onpl)),
        ]);
    }
    ctx.emit(&table);
    if !ctx.csv {
        println!("\npaper reference: ONPL saves energy on most graphs (sometimes more than its speedup); OVPL consumes more energy than MPLM and ONPL");
    }
}
