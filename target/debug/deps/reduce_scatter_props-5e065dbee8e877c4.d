/root/repo/target/debug/deps/reduce_scatter_props-5e065dbee8e877c4.d: crates/core/tests/reduce_scatter_props.rs Cargo.toml

/root/repo/target/debug/deps/libreduce_scatter_props-5e065dbee8e877c4.rmeta: crates/core/tests/reduce_scatter_props.rs Cargo.toml

crates/core/tests/reduce_scatter_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
