//! Supplementary experiment — the ONPL pattern generalized to edge-cut
//! partitioning (the paper's future work: "deploy these techniques on more
//! graph partitioning kernels").
//!
//! The multilevel partitioner's refinement aggregates boundary weights per
//! part with the same gather/reduce-scatter kernel as ONPL Louvain. This
//! binary reports (a) partition quality — cut and balance per graph — and
//! (b) the modeled cross-architecture speedup of the vectorized refinement
//! over the scalar one.

use gp_bench::harness::{print_header, study_archs_for_paper, BenchContext};
use gp_core::partition::refine::{refine, refine_scalar};
use gp_core::partition::{partition_graph, PartitionConfig};
use gp_metrics::report::{fmt_ratio, Table};
use gp_simd::backend::Emulated;
use gp_simd::counted::Counted;
use gp_simd::counters::{self, OpClass};
use gp_graph::suite::{build_standin, entry};

fn main() {
    let ctx = BenchContext::from_env();
    print_header("Supplementary: edge-cut partitioning via the ONPL kernel", &ctx);
    let mut table = Table::new(
        "4-way partition quality + modeled refinement speedup",
        &[
            "graph",
            "edge cut",
            "cut frac",
            "balance",
            "refine CLX",
            "refine SKX",
        ],
    );
    for name in ["M6", "germany", "nlpkkt200", "in-2004"] {
        let e = entry(name).unwrap();
        let g = build_standin(e, ctx.scale);
        let archs = study_archs_for_paper(e, &g);
        let config = PartitionConfig::kway(4);
        let r = partition_graph(&g, &config);

        // Model the refinement kernels on a striped (worst-case) start.
        let weights = vec![1.0f32; g.num_vertices()];
        let stripes: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v % 4).collect();
        let scalar_counts = {
            let mut parts = stripes.clone();
            counters::counted_run(|| {
                // The scalar path records through count_ops-style analytic
                // charges; approximate per-arc bundle here.
                refine_scalar(&g, &weights, &mut parts, &config);
                let arcs = g.num_arcs() as u64 * config.refine_passes as u64;
                counters::record(OpClass::ScalarLoad, 2 * arcs);
                counters::record(OpClass::ScalarRandLoad, 2 * arcs);
                counters::record(OpClass::ScalarStore, arcs);
                counters::record(OpClass::ScalarAlu, 2 * arcs);
                counters::record(OpClass::ScalarBranch, 2 * arcs);
            })
            .1
        };
        let vector_counts = {
            let s: Counted<Emulated> = Counted::new(Emulated);
            let mut parts = stripes.clone();
            counters::counted_run(|| refine(&s, &g, &weights, &mut parts, &config)).1
        };

        table.row(&[
            name.to_string(),
            format!("{:.0}", r.edge_cut),
            format!("{:.3}", r.edge_cut / g.total_weight()),
            format!("{:.3}", r.balance),
            fmt_ratio(archs[0].speedup(&scalar_counts, &vector_counts)),
            fmt_ratio(archs[1].speedup(&scalar_counts, &vector_counts)),
        ]);
    }
    ctx.emit(&table);
    if !ctx.csv {
        println!("\nexpected: locality-structured graphs cut a small fraction of their");
        println!("edges; the vectorized refinement shows ONPL-like modeled gains.");
    }
}
