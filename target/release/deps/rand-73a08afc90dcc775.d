/root/repo/target/release/deps/rand-73a08afc90dcc775.d: .devstubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-73a08afc90dcc775.rlib: .devstubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-73a08afc90dcc775.rmeta: .devstubs/rand/src/lib.rs

.devstubs/rand/src/lib.rs:
