//! ONLP — One Neighbor Per Lane label propagation (Section 4.3).
//!
//! "For each node, it loads 16 neighbors and gathers their corresponding
//! labels at once. For each distinct label, it sums the neighbor edge weight
//! ... Then an intrinsic instruction `_mm512_reduce_max_ps` [is] applied to
//! find out the heaviest neighbor label." The weight summation is the same
//! reduce-scatter as ONPL Louvain; the heaviest-label search is a vectorized
//! max-scan over the touched labels.

use super::{run_lp_sweeps, LabelPropConfig, LabelPropResult};
use crate::coloring::onpl::as_i32;
use crate::louvain::mplm::AffinityBuf;
use crate::reduce_scatter::Strategy;
use crate::vector_affinity::accumulate;
use gp_graph::csr::Csr;
use gp_metrics::telemetry::Recorder;
#[cfg(test)]
use gp_metrics::telemetry::NoopRecorder;
use gp_simd::backend::Simd;
use gp_simd::vector::{Mask16, LANES};
use std::sync::atomic::{AtomicU32, Ordering};

/// Views the atomic label array as gatherable `i32`s (the same benign-race
/// pattern as the other optimistic kernels).
#[inline(always)]
fn labels_view(labels: &[AtomicU32]) -> &[i32] {
    // SAFETY: AtomicU32 is repr(transparent) over u32.
    unsafe { std::slice::from_raw_parts(labels.as_ptr() as *const i32, labels.len()) }
}

/// Vectorized heaviest-label selection for `u`; `None` if no non-loop
/// neighbor exists.
#[inline]
fn best_label_onlp<S: Simd>(
    s: &S,
    g: &Csr,
    labels: &[AtomicU32],
    u: u32,
    buf: &mut AffinityBuf,
) -> Option<u32> {
    let neighbors = as_i32(g.neighbors(u));
    let weights = g.weights_of(u);
    let view = labels_view(labels);

    // Label-weight accumulation: gather labels, reduce-scatter weights.
    accumulate(
        s,
        neighbors,
        weights,
        u,
        view,
        Strategy::ConflictDetect,
        buf,
    );
    if buf.touched.is_empty() {
        return None;
    }

    // Vectorized max-scan: the heaviest touched label.
    let current = labels[u as usize].load(Ordering::Relaxed);
    let mut best_w_v = s.splat_f32(0.0);
    let mut best_l_v = s.splat_i32(current as i32);
    let touched = as_i32(&buf.touched);
    let mut off = 0;
    while off < touched.len() {
        let (ls, mask) = s.load_tail_i32(&touched[off..]);
        // SAFETY: touched labels < n.
        let ws = unsafe { s.gather_f32(&buf.aff, ls, mask, s.splat_f32(0.0)) };
        let better = s.cmpgt_f32(ws, best_w_v).and(mask);
        best_w_v = s.blend_f32(better, best_w_v, ws);
        best_l_v = s.blend_i32(better, best_l_v, ls);
        off += LANES;
    }
    let best_w = s.reduce_max_f32(best_w_v);
    // Prefer the current label on ties (same rule as MPLP).
    let best = if best_w <= buf.aff[current as usize] {
        current
    } else {
        let lane = s
            .cmpeq_f32(best_w_v, s.splat_f32(best_w))
            .first_set()
            .expect("max lane must exist");
        s.extract_i32(best_l_v, lane) as u32
    };
    buf.reset();
    Some(best)
}

/// Batched heaviest-label proposal for up to 16 vertices of degree ≤ 16,
/// one vertex per lane (the locality layer's low-degree bin). Returns a
/// bit mask of valid lanes (lanes whose vertex has a non-self-loop
/// neighbor — the exact `None` condition of [`best_label_onlp`]).
///
/// The layout is transposed relative to [`best_label_onlp`]: slot `j`
/// holds neighbor `j` of *each* lane's vertex, gathered through the lane's
/// CSR row start. Proposals are computed from the label state at call time
/// (the pre-batch snapshot); the caller applies them in lane order with
/// dependency repair (see `run_lp_sweeps`).
///
/// Bit-exactness with the per-vertex kernel: per lane, the affinity of a
/// label is folded in ascending neighbor order starting from `0.0` — the
/// same f32 sequence `accumulate` + its scalar duplicate remainder
/// produces for a single ≤16-neighbor chunk — and the best-label scan
/// keeps the earliest slot on ties, matching the per-vertex max-scan's
/// first-touched-lane rule; the stay rule `best_w <= aff[current]` is the
/// blend below.
fn propose16_onlp<S: Simd>(
    s: &S,
    g: &Csr,
    labels: &[AtomicU32],
    ids: &[u32],
    out: &mut [u32; 16],
) -> u16 {
    let view = labels_view(labels);
    let adj = as_i32(g.adj());
    let wgt = g.weights();
    let xadj = g.xadj();
    let lanes = Mask16::first(ids.len());

    let mut vid_a = [0i32; LANES];
    let mut row_a = [0i32; LANES];
    let mut deg_a = [0i32; LANES];
    let mut max_deg = 0usize;
    for (l, &v) in ids.iter().enumerate() {
        vid_a[l] = v as i32;
        row_a[l] = xadj[v as usize] as i32;
        let d = g.degree(v);
        deg_a[l] = d as i32;
        max_deg = max_deg.max(d);
    }
    let vids = s.from_array_i32(vid_a);
    let rows = s.from_array_i32(row_a);
    let degs = s.from_array_i32(deg_a);

    // Transposed neighborhood snapshot: slot j = neighbor j of every lane.
    let mut labs = [s.splat_i32(-1); LANES];
    let mut wts = [s.splat_f32(0.0); LANES];
    let mut ms = [Mask16::NONE; LANES];
    let mut valid = Mask16::NONE;
    for j in 0..max_deg {
        let idx = s.add_i32(rows, s.splat_i32(j as i32));
        let m = s.cmplt_i32(s.splat_i32(j as i32), degs).and(lanes);
        // SAFETY: selected lanes have j < degree, so row + j indexes the
        // lane's CSR row (and the weight array, which is adj-aligned).
        let nbr = unsafe { s.gather_i32(adj, idx, m, s.splat_i32(0)) };
        let mm = m.and(s.cmpneq_i32(nbr, vids)); // self-loops contribute nothing
        // SAFETY: gathered neighbor ids are < |V| by the CSR invariant.
        labs[j] = unsafe { s.gather_i32(view, nbr, mm, s.splat_i32(-1)) };
        wts[j] = unsafe { s.gather_f32(wgt, idx, mm, s.splat_f32(0.0)) };
        ms[j] = mm;
        valid = valid.or(mm);
    }

    // SAFETY: the batch's own vertex ids are < |V|.
    let labcur = unsafe { s.gather_i32(view, vids, lanes, s.splat_i32(0)) };
    // aff[current]: fold matching weights in ascending neighbor order.
    let mut curw = s.splat_f32(0.0);
    for j2 in 0..max_deg {
        let same = s.cmpeq_i32(labs[j2], labcur).and(ms[j2]);
        curw = s.mask_add_f32(curw, same, curw, wts[j2]);
    }
    // Best-label scan: slot j1's label scores the same ascending fold;
    // strictly-greater keeps the earliest max slot, duplicates of a label
    // recompute the identical sum and never displace it.
    let mut bestw = s.splat_f32(0.0);
    let mut bestl = labcur;
    for j1 in 0..max_deg {
        let mut wsum = s.splat_f32(0.0);
        for j2 in 0..max_deg {
            let same = s.cmpeq_i32(labs[j2], labs[j1]).and(ms[j2]);
            wsum = s.mask_add_f32(wsum, same, wsum, wts[j2]);
        }
        let better = s.cmpgt_f32(wsum, bestw).and(ms[j1]);
        bestw = s.blend_f32(better, bestw, wsum);
        bestl = s.blend_i32(better, bestl, labs[j1]);
    }
    // Stay rule: keep the current label unless the best strictly beats it.
    let change = s.cmpgt_f32(bestw, curw);
    let proposed = s.to_array_i32(s.blend_i32(change, labcur, bestl));
    for (l, slot) in out.iter_mut().enumerate().take(ids.len()) {
        *slot = proposed[l] as u32;
    }
    valid.0
}

/// Runs ONLP label propagation. Test-only convenience: external callers
/// reach this as `run_kernel` with a pinned vector backend.
#[cfg(test)]
pub(crate) fn label_propagation_onlp<S: Simd + Sync>(
    s: &S,
    g: &Csr,
    config: &LabelPropConfig,
) -> LabelPropResult {
    label_propagation_onlp_recorded(s, g, config, &mut NoopRecorder)
}

/// [`label_propagation_onlp`] with per-sweep telemetry delivered to `rec`.
///
/// All sweep machinery (frontier, ordering, chunked deadline polling,
/// convergence) lives in [`run_lp_sweeps`]; this variant contributes the
/// vectorized heaviest-label kernel. Under [`SweepMode::Active`] the
/// frontier arrives as a packed `u32` worklist, so the 16-lane
/// neighbor-gather loop in [`best_label_onlp`] runs over consecutive real
/// vertices — no wasted lanes on inactive ones.
///
/// [`SweepMode::Active`]: crate::frontier::SweepMode::Active
pub(crate) fn label_propagation_onlp_recorded<S: Simd + Sync, R: Recorder>(
    s: &S,
    g: &Csr,
    config: &LabelPropConfig,
    rec: &mut R,
) -> LabelPropResult {
    run_lp_sweeps(
        g,
        config,
        rec,
        S::NAME,
        |g, labels, u, buf| best_label_onlp(s, g, labels, u, buf),
        Some(|g: &Csr, labels: &[AtomicU32], ids: &[u32], out: &mut [u32; 16]| {
            propose16_onlp(s, g, labels, ids, out)
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::super::mplp::label_propagation_mplp;
    use super::*;
    use crate::louvain::modularity::modularity;
    use gp_graph::builder::from_pairs;
    use gp_graph::generators::{clique, planted_partition, preferential_attachment};
    use gp_simd::backend::Emulated;

    const S: Emulated = Emulated;

    fn run_seq(g: &Csr) -> LabelPropResult {
        label_propagation_onlp(&S, g, &LabelPropConfig::sequential())
    }

    #[test]
    fn onlp_clique_consensus() {
        let r = run_seq(&clique(10));
        assert!(r.labels.iter().all(|&l| l == r.labels[0]));
    }

    #[test]
    fn onlp_matches_mplp_quality() {
        let g = planted_partition(4, 16, 0.8, 0.01, 13);
        let scalar = label_propagation_mplp(&g, &LabelPropConfig::sequential());
        let vector = run_seq(&g);
        let q_s = modularity(&g, &scalar.labels);
        let q_v = modularity(&g, &vector.labels);
        assert!(
            (q_s - q_v).abs() < 0.05,
            "ONLP Q = {q_v} vs MPLP Q = {q_s}"
        );
    }

    #[test]
    fn onlp_exact_match_on_well_separated_graph() {
        let g = planted_partition(3, 8, 0.9, 0.0, 3);
        let scalar = label_propagation_mplp(&g, &LabelPropConfig::sequential());
        let vector = run_seq(&g);
        assert_eq!(scalar.labels, vector.labels);
    }

    #[test]
    fn onlp_hub_graph() {
        let g = preferential_attachment(300, 3, 11);
        let r = run_seq(&g);
        assert!(r.iterations < 100);
        assert_eq!(r.labels.len(), 300);
    }

    #[test]
    fn onlp_isolated_vertices() {
        let g = from_pairs(3, [(0, 1)]);
        let r = run_seq(&g);
        assert_eq!(r.labels[2], 2);
    }

    #[test]
    fn onlp_parallel() {
        let g = planted_partition(4, 12, 0.7, 0.02, 21);
        let r = label_propagation_onlp(&S, &g, &LabelPropConfig::default());
        assert!(modularity(&g, &r.labels) > 0.4);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn onlp_native_matches_emulated() {
        if let Some(native) = gp_simd::backend::Avx512::new() {
            let g = planted_partition(4, 16, 0.8, 0.01, 31);
            let cfg = LabelPropConfig::sequential();
            let a = label_propagation_onlp(&native, &g, &cfg);
            let b = label_propagation_onlp(&S, &g, &cfg);
            assert_eq!(a.labels, b.labels);
        }
    }
}
