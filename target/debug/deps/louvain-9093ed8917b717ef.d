/root/repo/target/debug/deps/louvain-9093ed8917b717ef.d: crates/bench/benches/louvain.rs Cargo.toml

/root/repo/target/debug/deps/liblouvain-9093ed8917b717ef.rmeta: crates/bench/benches/louvain.rs Cargo.toml

crates/bench/benches/louvain.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
