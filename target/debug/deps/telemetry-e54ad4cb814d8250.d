/root/repo/target/debug/deps/telemetry-e54ad4cb814d8250.d: tests/telemetry.rs

/root/repo/target/debug/deps/telemetry-e54ad4cb814d8250: tests/telemetry.rs

tests/telemetry.rs:
