/root/repo/target/debug/deps/ablation_reduce_scatter-bc4af1d91317e4ff.d: crates/bench/src/bin/ablation_reduce_scatter.rs Cargo.toml

/root/repo/target/debug/deps/libablation_reduce_scatter-bc4af1d91317e4ff.rmeta: crates/bench/src/bin/ablation_reduce_scatter.rs Cargo.toml

crates/bench/src/bin/ablation_reduce_scatter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
