/root/repo/target/debug/deps/fig_extension_partition-28bcb06d3375acb8.d: crates/bench/src/bin/fig_extension_partition.rs

/root/repo/target/debug/deps/fig_extension_partition-28bcb06d3375acb8: crates/bench/src/bin/fig_extension_partition.rs

crates/bench/src/bin/fig_extension_partition.rs:
