/root/repo/target/release/deps/rand_chacha-c6179802d5ffc46b.d: .devstubs/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-c6179802d5ffc46b.rlib: .devstubs/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-c6179802d5ffc46b.rmeta: .devstubs/rand_chacha/src/lib.rs

.devstubs/rand_chacha/src/lib.rs:
