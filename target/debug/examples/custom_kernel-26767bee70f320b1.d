/root/repo/target/debug/examples/custom_kernel-26767bee70f320b1.d: examples/custom_kernel.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_kernel-26767bee70f320b1.rmeta: examples/custom_kernel.rs Cargo.toml

examples/custom_kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
