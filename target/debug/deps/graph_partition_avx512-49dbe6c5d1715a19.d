/root/repo/target/debug/deps/graph_partition_avx512-49dbe6c5d1715a19.d: src/lib.rs

/root/repo/target/debug/deps/graph_partition_avx512-49dbe6c5d1715a19: src/lib.rs

src/lib.rs:
