/root/repo/target/debug/deps/serde-f8aec5d925f0a642.d: .devstubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-f8aec5d925f0a642.rlib: .devstubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-f8aec5d925f0a642.rmeta: .devstubs/serde/src/lib.rs

.devstubs/serde/src/lib.rs:
