//! Coloring validation.

use gp_graph::csr::Csr;

/// Error describing an invalid coloring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColoringError {
    /// The color array length does not match the vertex count.
    WrongLength { expected: usize, actual: usize },
    /// A vertex is uncolored (color 0).
    Uncolored(u32),
    /// Two adjacent vertices share a color.
    Conflict { u: u32, v: u32, color: u32 },
}

impl std::fmt::Display for ColoringError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColoringError::WrongLength { expected, actual } => {
                write!(f, "colors has length {actual}, expected {expected}")
            }
            ColoringError::Uncolored(v) => write!(f, "vertex {v} is uncolored"),
            ColoringError::Conflict { u, v, color } => {
                write!(f, "edge ({u}, {v}) has both endpoints colored {color}")
            }
        }
    }
}

impl std::error::Error for ColoringError {}

/// Checks that `colors` is a valid distance-1 coloring of `g`: every vertex
/// has a positive color and no edge joins two vertices of the same color
/// (self-loops are exempt — no assignment can avoid them).
pub fn verify_coloring(g: &Csr, colors: &[u32]) -> Result<(), ColoringError> {
    if colors.len() != g.num_vertices() {
        return Err(ColoringError::WrongLength {
            expected: g.num_vertices(),
            actual: colors.len(),
        });
    }
    for u in g.vertices() {
        if colors[u as usize] == 0 {
            return Err(ColoringError::Uncolored(u));
        }
        for &v in g.neighbors(u) {
            if v != u && colors[u as usize] == colors[v as usize] {
                return Err(ColoringError::Conflict {
                    u,
                    v,
                    color: colors[u as usize],
                });
            }
        }
    }
    Ok(())
}

/// Number of distinct colors used.
pub fn count_colors(colors: &[u32]) -> u32 {
    let mut seen: Vec<u32> = colors.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_graph::builder::from_pairs;

    #[test]
    fn accepts_valid_coloring() {
        let g = from_pairs(3, [(0, 1), (1, 2)]);
        assert!(verify_coloring(&g, &[1, 2, 1]).is_ok());
    }

    #[test]
    fn rejects_conflict() {
        let g = from_pairs(2, [(0, 1)]);
        let err = verify_coloring(&g, &[1, 1]).unwrap_err();
        assert!(matches!(err, ColoringError::Conflict { color: 1, .. }));
    }

    #[test]
    fn rejects_uncolored() {
        let g = from_pairs(2, [(0, 1)]);
        assert_eq!(
            verify_coloring(&g, &[1, 0]),
            Err(ColoringError::Uncolored(1))
        );
    }

    #[test]
    fn rejects_wrong_length() {
        let g = from_pairs(3, [(0, 1)]);
        assert!(matches!(
            verify_coloring(&g, &[1, 2]),
            Err(ColoringError::WrongLength { .. })
        ));
    }

    #[test]
    fn self_loop_is_exempt() {
        let g = gp_graph::builder::GraphBuilder::new(1)
            .add_edges([gp_graph::Edge::new(0, 0, 1.0)])
            .build();
        assert!(verify_coloring(&g, &[1]).is_ok());
    }

    #[test]
    fn counts_distinct_colors() {
        assert_eq!(count_colors(&[1, 2, 1, 3, 2]), 3);
        assert_eq!(count_colors(&[]), 0);
    }

    #[test]
    fn error_messages_are_informative() {
        let e = ColoringError::Conflict { u: 1, v: 2, color: 3 };
        assert!(e.to_string().contains("(1, 2)"));
    }
}
