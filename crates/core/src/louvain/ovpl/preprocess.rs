//! OVPL preprocessing (Section 5.1).
//!
//! 1. group vertices by their greedy-coloring color (no two same-colored
//!    vertices are adjacent);
//! 2. sort each group by non-increasing degree ("sorting will help to
//!    minimize wasted computation": it keeps each block's max-to-min degree
//!    spread small);
//! 3. cut full 16-vertex blocks from each group; leftovers from all groups
//!    are packed into mixed-color tail blocks — like the paper's example,
//!    where the second block "contains vertices of different colors to fill
//!    the vector". Unlike the paper we re-verify non-adjacency while mixing,
//!    so the no-two-neighbors invariant holds for *every* block;
//! 4. lay each block out in interleaved sliced-ELLPACK form.

use super::blocks::{Block, OvplLayout, SENTINEL};
use gp_graph::csr::Csr;
use gp_simd::vector::LANES;

/// Builds the OVPL layout from a valid coloring of `g`.
///
/// # Panics
/// Panics (in debug builds) if `colors` is not a valid coloring — the block
/// invariant would silently break convergence otherwise.
pub fn build_layout(g: &Csr, colors: &[u32], sort_by_degree: bool) -> OvplLayout {
    let n = g.num_vertices();
    assert_eq!(colors.len(), n, "coloring length mismatch");
    debug_assert!(
        crate::coloring::verify_coloring(g, colors).is_ok(),
        "OVPL preprocessing requires a valid coloring"
    );

    // Group by color (colors are 1-based from the greedy algorithm).
    let colors_used = colors.iter().copied().max().unwrap_or(0);
    let mut groups: Vec<Vec<u32>> = vec![Vec::new(); colors_used as usize + 1];
    for u in 0..n as u32 {
        groups[colors[u as usize] as usize].push(u);
    }

    let mut full_blocks: Vec<Vec<u32>> = Vec::new();
    let mut leftovers: Vec<u32> = Vec::new();
    for group in groups.iter_mut().skip(1) {
        if sort_by_degree {
            group.sort_by_key(|&u| std::cmp::Reverse(g.degree(u)));
        }
        let mut chunks = group.chunks_exact(LANES);
        for chunk in &mut chunks {
            full_blocks.push(chunk.to_vec());
        }
        leftovers.extend_from_slice(chunks.remainder());
    }

    // Pack leftovers into mixed-color blocks, preserving non-adjacency.
    if sort_by_degree {
        leftovers.sort_by_key(|&u| std::cmp::Reverse(g.degree(u)));
    }
    let mut pool = leftovers;
    while !pool.is_empty() {
        let mut block: Vec<u32> = Vec::with_capacity(LANES);
        let mut rest: Vec<u32> = Vec::new();
        for v in pool {
            if block.len() < LANES && !block.iter().any(|&b| g.has_edge(v, b)) {
                block.push(v);
            } else {
                rest.push(v);
            }
        }
        full_blocks.push(block);
        pool = rest;
    }

    // Process blocks in spatial order (minimum member id): greedy
    // modularity is sensitive to the visit schedule, and grouping by color
    // alone would sweep the graph one color class at a time, destroying the
    // locality a natural-order scan exploits. Ordering the *blocks* by their
    // lowest vertex id restores that locality while keeping every block's
    // non-adjacency invariant intact.
    full_blocks.sort_by_key(|members| members.iter().copied().min().unwrap_or(u32::MAX));

    // Interleaved ELLPACK arrays.
    let mut layout = OvplLayout {
        blocks: Vec::with_capacity(full_blocks.len()),
        nbrs: Vec::new(),
        wts: Vec::new(),
        colors_used,
        padded_slots: 0,
        vertex_block: vec![0; n],
        degrees: (0..n as u32).map(|u| g.degree(u) as u32).collect(),
    };
    for members in full_blocks {
        let offset = layout.nbrs.len();
        let max_deg = members.iter().map(|&u| g.degree(u)).max().unwrap_or(0) as u32;
        let min_deg = members.iter().map(|&u| g.degree(u)).min().unwrap_or(0) as u32;
        let mut vertices = [SENTINEL; LANES];
        for (lane, &u) in members.iter().enumerate() {
            vertices[lane] = u as i32;
        }
        layout.nbrs.resize(offset + max_deg as usize * LANES, SENTINEL);
        layout.wts.resize(offset + max_deg as usize * LANES, 0.0);
        for (lane, &u) in members.iter().enumerate() {
            for (i, (v, w)) in g.edges_of(u).enumerate() {
                layout.nbrs[offset + i * LANES + lane] = v as i32;
                layout.wts[offset + i * LANES + lane] = w;
            }
        }
        // Padded slots: sentinel entries in this block's slice.
        let real: usize = members.iter().map(|&u| g.degree(u)).sum();
        layout.padded_slots += (max_deg as usize * LANES - real) as u64;
        for &u in &members {
            layout.vertex_block[u as usize] = layout.blocks.len() as u32;
        }
        layout.blocks.push(Block {
            offset,
            max_deg,
            min_deg,
            vertices,
        });
    }
    layout
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::{color_graph_scalar, ColoringConfig};
    use gp_graph::generators::{clique, erdos_renyi, ring_lattice, star, triangular_mesh};
    use std::collections::HashSet;

    fn layout_of(g: &Csr, sort: bool) -> OvplLayout {
        let coloring = color_graph_scalar(g, &ColoringConfig::sequential());
        build_layout(g, &coloring.colors, sort)
    }

    /// Every block must hold pairwise non-adjacent vertices — the invariant
    /// OVPL's convergence rests on.
    fn assert_block_invariants(g: &Csr, layout: &OvplLayout) {
        let mut seen = HashSet::new();
        for (bi, b) in layout.blocks.iter().enumerate() {
            let members: Vec<u32> = b.iter_real().map(|(_, v)| v).collect();
            for (i, &u) in members.iter().enumerate() {
                assert!(seen.insert(u), "vertex {u} appears in two blocks");
                for &v in &members[i + 1..] {
                    assert!(!g.has_edge(u, v), "adjacent {u},{v} share a block");
                }
            }
            // Degree bounds and the vertex→block / degree maps.
            for (_, v) in b.iter_real() {
                let d = g.degree(v) as u32;
                assert!(d <= b.max_deg && d >= b.min_deg);
                assert_eq!(layout.vertex_block[v as usize] as usize, bi);
                assert_eq!(layout.degrees[v as usize], d);
            }
        }
        assert_eq!(seen.len(), g.num_vertices(), "every vertex must be placed");
    }

    /// The ELLPACK arrays must contain exactly the graph's edges.
    fn assert_ellpack_roundtrip(g: &Csr, layout: &OvplLayout) {
        for b in &layout.blocks {
            for (lane, u) in b.iter_real() {
                let mut recovered: Vec<(u32, f32)> = Vec::new();
                for i in 0..b.max_deg as usize {
                    let e = layout.nbrs[b.offset + i * LANES + lane];
                    if e != SENTINEL {
                        recovered.push((e as u32, layout.wts[b.offset + i * LANES + lane]));
                    }
                }
                let mut expected: Vec<(u32, f32)> = g.edges_of(u).collect();
                recovered.sort_by_key(|&(v, _)| v);
                expected.sort_by_key(|&(v, _)| v);
                assert_eq!(recovered, expected, "vertex {u} edges corrupted");
            }
        }
    }

    #[test]
    fn mesh_layout_invariants() {
        let g = triangular_mesh(12, 12, 5);
        let layout = layout_of(&g, true);
        assert_block_invariants(&g, &layout);
        assert_ellpack_roundtrip(&g, &layout);
    }

    #[test]
    fn random_graph_layout_invariants() {
        let g = erdos_renyi(300, 1200, 7);
        let layout = layout_of(&g, true);
        assert_block_invariants(&g, &layout);
        assert_ellpack_roundtrip(&g, &layout);
    }

    #[test]
    fn unsorted_layout_still_valid() {
        let g = erdos_renyi(200, 800, 3);
        let layout = layout_of(&g, false);
        assert_block_invariants(&g, &layout);
        assert_ellpack_roundtrip(&g, &layout);
    }

    #[test]
    fn ring_lattice_fills_lanes_perfectly() {
        // Regular graph: blocks have max_deg == min_deg, zero padding in
        // full blocks (only tail blocks may pad).
        let g = ring_lattice(160, 4);
        let layout = layout_of(&g, true);
        assert_block_invariants(&g, &layout);
        assert!(
            layout.lane_utilization() > 0.9,
            "utilization {}",
            layout.lane_utilization()
        );
        for b in &layout.blocks {
            if b.len() == LANES {
                assert_eq!(b.max_deg, b.min_deg);
            }
        }
    }

    #[test]
    fn star_layout_handles_extreme_skew() {
        let g = star(100);
        let layout = layout_of(&g, true);
        assert_block_invariants(&g, &layout);
        assert_ellpack_roundtrip(&g, &layout);
        // Hub (degree 99) must sit in a block with massive padding.
        assert!(layout.padded_slots > 0);
    }

    #[test]
    fn clique_gets_one_vertex_per_block() {
        // Every pair is adjacent, so every block holds exactly one vertex.
        let g = clique(5);
        let layout = layout_of(&g, true);
        assert_block_invariants(&g, &layout);
        for b in &layout.blocks {
            assert_eq!(b.len(), 1);
        }
    }

    #[test]
    fn degree_sorting_reduces_padding() {
        let g = erdos_renyi(400, 3200, 13);
        let sorted = layout_of(&g, true);
        let unsorted = layout_of(&g, false);
        assert!(
            sorted.padded_slots <= unsorted.padded_slots,
            "sorting should not increase padding: {} vs {}",
            sorted.padded_slots,
            unsorted.padded_slots
        );
    }

    #[test]
    fn memory_accounting_positive() {
        let g = triangular_mesh(8, 8, 2);
        let layout = layout_of(&g, true);
        assert!(layout.memory_bytes() > g.num_arcs() * 8);
    }
}
