//! Concurrency stress: run the speculative/optimistic parallel algorithms
//! on an explicit many-thread rayon pool (oversubscribing the host's cores)
//! so the benign races the paper's algorithms are designed around actually
//! fire — and verify every safety invariant still holds.

#![allow(deprecated)] // exercises pinned-backend/legacy entrypoints run_kernel doesn't expose

use gp_core::coloring::{color_graph_onpl, color_graph_scalar, verify_coloring, ColoringConfig};
use gp_core::labelprop::{label_propagation_mplp, LabelPropConfig};
use gp_core::louvain::driver::run_move_phase_with;
use gp_core::louvain::{modularity, LouvainConfig, MoveState, Variant};
use gp_core::reduce_scatter::Strategy;
use gp_graph::generators::{erdos_renyi, planted_partition, preferential_attachment};
use gp_simd::backend::Emulated;

fn pool() -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(8)
        .build()
        .expect("pool")
}

#[test]
fn speculative_coloring_survives_oversubscription() {
    let g = erdos_renyi(2000, 12_000, 3);
    let cfg = ColoringConfig::default();
    pool().install(|| {
        for run in 0..3 {
            let r = color_graph_scalar(&g, &cfg);
            verify_coloring(&g, &r.colors)
                .unwrap_or_else(|e| panic!("run {run}: invalid coloring: {e}"));
            let r = color_graph_onpl(&Emulated, &g, &cfg);
            verify_coloring(&g, &r.colors)
                .unwrap_or_else(|e| panic!("run {run}: invalid ONPL coloring: {e}"));
        }
    });
}

#[test]
fn optimistic_louvain_keeps_volume_invariant_under_races() {
    let g = preferential_attachment(1500, 4, 9);
    let cfg = LouvainConfig {
        variant: Variant::Onpl(Strategy::Adaptive),
        parallel: true,
        ..Default::default()
    };
    pool().install(|| {
        let state = MoveState::singleton(&g);
        run_move_phase_with(&Emulated, &g, &state, &cfg);
        // Volumes must balance even after racy concurrent moves: every
        // apply_move is a pair of atomic adds.
        let total: f64 = state.volume.iter().map(|v| v.load() as f64).sum();
        let expect = g.total_volume();
        assert!(
            (total - expect).abs() < 1e-3 * expect,
            "volume leaked: {total} vs {expect}"
        );
        // Communities are still a valid assignment.
        let zeta = state.communities();
        assert!(zeta.iter().all(|&c| (c as usize) < g.num_vertices()));
        let q = modularity(&g, &zeta);
        assert!(q > 0.0, "racy run collapsed to Q = {q}");
    });
}

#[test]
fn parallel_label_propagation_converges_under_oversubscription() {
    let g = planted_partition(6, 40, 0.4, 0.01, 21);
    let cfg = LabelPropConfig::default();
    pool().install(|| {
        let r = label_propagation_mplp(&g, &cfg);
        assert!(r.iterations < cfg.max_iterations, "no convergence");
        let q = modularity(&g, &r.labels);
        assert!(q > 0.4, "parallel LP quality collapsed: {q}");
    });
}

#[test]
fn move_phase_is_convergent_across_repeated_racy_runs() {
    // The 25-iteration cap is PLM's safety net; under light load the racy
    // runs should converge well before it.
    let g = planted_partition(4, 30, 0.5, 0.02, 5);
    let cfg = LouvainConfig {
        variant: Variant::Mplm,
        parallel: true,
        ..Default::default()
    };
    pool().install(|| {
        for _ in 0..5 {
            let state = MoveState::singleton(&g);
            let stats = run_move_phase_with(&Emulated, &g, &state, &cfg);
            assert!(
                stats.iterations <= cfg.max_move_iterations,
                "cap violated: {}",
                stats.iterations
            );
        }
    });
}
