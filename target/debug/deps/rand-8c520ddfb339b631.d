/root/repo/target/debug/deps/rand-8c520ddfb339b631.d: .devstubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-8c520ddfb339b631.rlib: .devstubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-8c520ddfb339b631.rmeta: .devstubs/rand/src/lib.rs

.devstubs/rand/src/lib.rs:
