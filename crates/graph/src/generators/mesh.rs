//! Triangulated-mesh generator.
//!
//! The mesh instances in Table 1 (333SP, AS365, M6, NACA0015, NLR,
//! delaunay_n24) share average degree ≈ 5–6 with *very balanced* degrees —
//! the property Figure 13 credits for OVPL's big wins. A lattice with one
//! diagonal per cell yields exactly that profile (interior degree 6, like a
//! Delaunay triangulation of uniform points), with optional random point
//! "jitter" implemented as diagonal-orientation randomization.

use crate::builder::from_pairs;
use crate::csr::Csr;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A `rows × cols` triangulated lattice: the 4-neighbor grid plus one
/// diagonal per cell. With `seed`, diagonal orientation is randomized
/// (deterministically), which breaks up the perfectly regular structure the
/// way a Delaunay triangulation of random points would.
pub fn triangular_mesh(rows: usize, cols: usize, seed: u64) -> Csr {
    assert!(rows >= 2 && cols >= 2);
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut pairs = Vec::with_capacity(3 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                pairs.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                pairs.push((id(r, c), id(r + 1, c)));
            }
            if r + 1 < rows && c + 1 < cols {
                if rng.gen::<bool>() {
                    pairs.push((id(r, c), id(r + 1, c + 1)));
                } else {
                    pairs.push((id(r, c + 1), id(r + 1, c)));
                }
            }
        }
    }
    from_pairs(rows * cols, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_size_and_symmetry() {
        let g = triangular_mesh(10, 10, 3);
        assert_eq!(g.num_vertices(), 100);
        let expected = 10 * 9 * 2 + 9 * 9; // grid edges + one diagonal per cell
        assert_eq!(g.num_edges(), expected);
        assert!(g.is_symmetric());
    }

    #[test]
    fn mesh_degrees_are_balanced() {
        let g = triangular_mesh(40, 40, 9);
        // Interior vertices have degree 5–8; that's the "degrees close to the
        // average" property Figure 13 selects for.
        let avg = g.avg_degree();
        assert!(avg > 5.0 && avg < 6.5, "avg degree {avg}");
        assert!(g.max_degree() <= 8, "max degree {}", g.max_degree());
    }

    #[test]
    fn mesh_deterministic() {
        assert_eq!(triangular_mesh(8, 8, 1), triangular_mesh(8, 8, 1));
        assert_ne!(triangular_mesh(8, 8, 1), triangular_mesh(8, 8, 2));
    }
}
