//! Contrast kernels: SpMV and BFS.
//!
//! The paper positions partitioning kernels against "classic problems like
//! BFS or SpMV", whose vectorizations need only *gather* (and were possible
//! before AVX-512 scatter): SpMV reduces gathered values into a per-row
//! accumulator, BFS expands frontiers with gather + compress. Neither needs
//! the reduce-scatter pattern. These implementations let the benchmark
//! harness demonstrate the paper's architectural claim: gather-only kernels
//! show a small SkylakeX↔CascadeLake gap, while the scatter-bound
//! partitioning kernels are the ones that reward Cascade Lake's scatter
//! hardware.

use crate::coloring::onpl::as_i32;
use gp_graph::csr::Csr;
use gp_metrics::telemetry::{RunInfo, RunTimer};
use gp_simd::backend::Simd;
use gp_simd::vector::LANES;

/// Scalar sparse matrix–vector product over the graph's adjacency:
/// `y[u] = Σ_{v ∈ N(u)} w(u,v) · x[v]`.
pub fn spmv_scalar(g: &Csr, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), g.num_vertices());
    assert_eq!(y.len(), g.num_vertices());
    for u in g.vertices() {
        let mut acc = 0.0f32;
        for (v, w) in g.edges_of(u) {
            acc += w * x[v as usize];
        }
        y[u as usize] = acc;
    }
}

/// Vectorized SpMV: 16 neighbors per step — load column indices and values,
/// gather `x`, multiply-accumulate into a vector register, one horizontal
/// reduction per row. Gather-only: no scatter, no conflict detection.
pub fn spmv_vector<S: Simd>(s: &S, g: &Csr, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), g.num_vertices());
    assert_eq!(y.len(), g.num_vertices());
    let zero = s.splat_f32(0.0);
    for u in g.vertices() {
        let neighbors = as_i32(g.neighbors(u));
        let weights = g.weights_of(u);
        let mut acc = zero;
        let mut off = 0;
        while off < neighbors.len() {
            let (nbrs, mask) = s.load_tail_i32(&neighbors[off..]);
            let (wts, _) = s.load_tail_f32(&weights[off..]);
            // SAFETY: neighbor ids < |V| = x.len() (CSR invariant).
            let xs = unsafe { s.gather_f32(x, nbrs, mask, zero) };
            acc = s.mask_add_f32(acc, mask, acc, s.mul_f32(wts, xs));
            off += LANES;
        }
        y[u as usize] = s.reduce_add_f32(acc);
    }
}

/// Result of a BFS: level per vertex (`u32::MAX` = unreached).
#[derive(Debug, Clone)]
pub struct BfsResult {
    pub levels: Vec<u32>,
    /// Vertices per level (the frontier sizes).
    pub frontier_sizes: Vec<usize>,
    /// Uniform run envelope (backend, depth, completion, wall time).
    /// Excluded from equality.
    pub info: RunInfo,
}

impl PartialEq for BfsResult {
    fn eq(&self, other: &Self) -> bool {
        self.levels == other.levels && self.frontier_sizes == other.frontier_sizes
    }
}

/// Scalar level-synchronous BFS from `source`.
pub fn bfs_scalar(g: &Csr, source: u32) -> BfsResult {
    let timer = RunTimer::start();
    let n = g.num_vertices();
    let mut levels = vec![u32::MAX; n];
    let mut frontier = vec![source];
    levels[source as usize] = 0;
    let mut result = BfsResult {
        levels: Vec::new(),
        frontier_sizes: Vec::new(),
        info: RunInfo::default(),
    };
    let mut depth = 0u32;
    while !frontier.is_empty() {
        result.frontier_sizes.push(frontier.len());
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in g.neighbors(u) {
                if levels[v as usize] == u32::MAX {
                    levels[v as usize] = depth + 1;
                    next.push(v);
                }
            }
        }
        frontier = next;
        depth += 1;
    }
    result.levels = levels;
    result.info = RunInfo::new(
        "scalar",
        result.frontier_sizes.len(),
        true,
        timer.elapsed_secs(),
    );
    result
}

/// Vectorized level-synchronous BFS: per frontier vertex, gather the levels
/// of 16 neighbors, select the unvisited ones, scatter the new level, and
/// *compress* them into the next frontier — gather + compress + one scatter
/// of constants (no read-modify-write, hence no reduce-scatter needed).
pub fn bfs_vector<S: Simd>(s: &S, g: &Csr, source: u32) -> BfsResult {
    let timer = RunTimer::start();
    let n = g.num_vertices();
    // Levels as i32 with -1 = unreached, for direct vector compares.
    let mut levels = vec![-1i32; n];
    levels[source as usize] = 0;
    let mut frontier = vec![source as i32];
    let mut result = BfsResult {
        levels: Vec::new(),
        frontier_sizes: Vec::new(),
        info: RunInfo::default(),
    };
    let unreached = s.splat_i32(-1);
    let mut depth = 0i32;
    let mut spill = [0i32; LANES];
    while !frontier.is_empty() {
        result.frontier_sizes.push(frontier.len());
        let mut next: Vec<i32> = Vec::new();
        let next_level = s.splat_i32(depth + 1);
        for &u in &frontier {
            let neighbors = as_i32(g.neighbors(u as u32));
            let mut off = 0;
            while off < neighbors.len() {
                let (nbrs, mask) = s.load_tail_i32(&neighbors[off..]);
                // SAFETY: neighbor ids < |V| = levels.len().
                let lv = unsafe { s.gather_i32(&levels, nbrs, mask, s.splat_i32(0)) };
                let fresh = s.cmpeq_i32(lv, unreached).and(mask);
                if !fresh.is_empty() {
                    // Mark immediately so later chunks see them; duplicate
                    // lanes within one chunk scatter the same value.
                    unsafe { s.scatter_i32(&mut levels, nbrs, next_level, fresh) };
                    let packed = s.compress_i32(fresh, nbrs);
                    s.store_i32(&mut spill, packed);
                    let mut taken = &spill[..fresh.count()];
                    // In-chunk duplicates survive the compress; drop them so
                    // the frontier matches the scalar algorithm's.
                    let mut seen_in_chunk: Vec<i32> = Vec::with_capacity(taken.len());
                    for &v in taken {
                        if !seen_in_chunk.contains(&v) {
                            seen_in_chunk.push(v);
                        }
                    }
                    taken = &seen_in_chunk[..];
                    next.extend_from_slice(taken);
                }
                off += LANES;
            }
        }
        frontier = next;
        depth += 1;
    }
    result.levels = levels.into_iter().map(|l| l as u32).collect();
    result.info = RunInfo::new(
        S::NAME,
        result.frontier_sizes.len(),
        true,
        timer.elapsed_secs(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_graph::builder::from_pairs;
    use gp_graph::generators::{erdos_renyi, path, star, triangular_mesh};
    use gp_simd::backend::Emulated;

    const S: Emulated = Emulated;

    #[test]
    fn spmv_scalar_matches_vector() {
        let g = erdos_renyi(200, 900, 3);
        let x: Vec<f32> = (0..200).map(|i| (i as f32).sin()).collect();
        let mut y1 = vec![0f32; 200];
        let mut y2 = vec![0f32; 200];
        spmv_scalar(&g, &x, &mut y1);
        spmv_vector(&S, &g, &x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn spmv_on_path_is_neighbor_sum() {
        let g = path(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let mut y = vec![0f32; 4];
        spmv_vector(&S, &g, &x, &mut y);
        assert_eq!(y, vec![2.0, 4.0, 6.0, 3.0]);
    }

    #[test]
    fn bfs_levels_on_path() {
        let g = path(5);
        let r = bfs_scalar(&g, 0);
        assert_eq!(r.levels, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.frontier_sizes, vec![1, 1, 1, 1, 1]);
    }

    #[test]
    fn bfs_vector_matches_scalar_levels() {
        for g in [
            triangular_mesh(15, 15, 3),
            erdos_renyi(300, 1000, 7),
            star(40),
        ] {
            let a = bfs_scalar(&g, 0);
            let b = bfs_vector(&S, &g, 0);
            assert_eq!(a.levels, b.levels);
            assert_eq!(a.frontier_sizes, b.frontier_sizes);
        }
    }

    #[test]
    fn bfs_unreachable_vertices_stay_max() {
        let g = from_pairs(4, [(0, 1)]);
        let r = bfs_vector(&S, &g, 0);
        assert_eq!(r.levels[2], u32::MAX);
        assert_eq!(r.levels[3], u32::MAX);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn contrast_kernels_native_match_emulated() {
        if let Some(n) = gp_simd::backend::Avx512::new() {
            let g = erdos_renyi(256, 1500, 11);
            let x: Vec<f32> = (0..256).map(|i| i as f32 * 0.5).collect();
            let mut y1 = vec![0f32; 256];
            let mut y2 = vec![0f32; 256];
            spmv_vector(&n, &g, &x, &mut y1);
            spmv_vector(&S, &g, &x, &mut y2);
            assert_eq!(y1, y2);
            assert_eq!(bfs_vector(&n, &g, 0).levels, bfs_vector(&S, &g, 0).levels);
        }
    }
}
