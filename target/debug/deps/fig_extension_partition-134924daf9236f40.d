/root/repo/target/debug/deps/fig_extension_partition-134924daf9236f40.d: crates/bench/src/bin/fig_extension_partition.rs

/root/repo/target/debug/deps/fig_extension_partition-134924daf9236f40: crates/bench/src/bin/fig_extension_partition.rs

crates/bench/src/bin/fig_extension_partition.rs:
