//! Offline stand-in for the `rayon` crate (API subset used by this workspace).
//!
//! Executes every "parallel" combinator sequentially on the calling thread.
//! This is sound for this repository because every parallel pass is written
//! to be *output-invariant* under scheduling (see `gp_graph::par`): chunk
//! decomposition plus deterministic combination means the sequential schedule
//! produces byte-identical results to any parallel one. Thread-pool
//! bookkeeping (`ThreadPoolBuilder` / `ThreadPool::install` /
//! `current_num_threads`) is emulated with a thread-local so pool-scoping
//! code and the `--threads` knob behave observably the same.
//!
//! Closure bounds are intentionally looser than real rayon (`FnMut` instead
//! of `Fn + Send + Sync`); code that compiles against real rayon compiles
//! against this stub unchanged.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

// ---------------------------------------------------------------------------
// Thread-pool emulation
// ---------------------------------------------------------------------------

thread_local! {
    /// 0 = no scoped pool installed (report hardware parallelism).
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Size configured via [`ThreadPoolBuilder::build_global`] (0 = default).
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of threads the "current pool" would use. Inside
/// [`ThreadPool::install`] this is the configured pool size; otherwise the
/// [`ThreadPoolBuilder::build_global`] size if one was set; otherwise the
/// hardware parallelism, mirroring rayon's global-pool default.
pub fn current_num_threads() -> usize {
    let scoped = POOL_THREADS.with(|c| c.get());
    if scoped != 0 {
        return scoped;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global != 0 {
        return global;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Error from [`ThreadPoolBuilder::build`]; never produced by this stub.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// `0` means "default" (hardware parallelism), as in rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }

    /// Sizes the "global pool": subsequent [`current_num_threads`] calls
    /// outside a scoped [`ThreadPool::install`] report this size. Like
    /// rayon, the first caller wins; later calls return an error.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        match GLOBAL_THREADS.compare_exchange(0, n, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => Ok(()),
            Err(_) => Err(ThreadPoolBuildError(())),
        }
    }
}

/// Scoped pool: work "installed" on it runs on the caller's thread, but
/// [`current_num_threads`] reports the configured size for the duration.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|c| c.set(self.0));
            }
        }
        let prev = POOL_THREADS.with(|c| c.replace(self.num_threads));
        let _restore = Restore(prev);
        op()
    }
}

// ---------------------------------------------------------------------------
// Parallel iterator facade
// ---------------------------------------------------------------------------

/// Sequential "parallel iterator": wraps a std iterator and exposes the
/// rayon combinator names.
pub struct Par<I>(I);

/// `Par` is itself iterable, so it satisfies the blanket
/// [`IntoParallelIterator`] impl and can be passed to combinators such as
/// [`Par::zip`] (mirroring rayon, where parallel iterators implement
/// `IntoParallelIterator` reflexively).
impl<I: Iterator> Iterator for Par<I> {
    type Item = I::Item;
    fn next(&mut self) -> Option<I::Item> {
        self.0.next()
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl<I: Iterator> Par<I> {
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// rayon's per-thread scratch initializer; sequentially this is a single
    /// scratch value threaded through every element.
    pub fn for_each_init<T, INIT, F>(self, mut init: INIT, mut f: F)
    where
        INIT: FnMut() -> T,
        F: FnMut(&mut T, I::Item),
    {
        let mut scratch = init();
        self.0.for_each(|item| f(&mut scratch, item));
    }

    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> Par<std::iter::Map<I, F>> {
        Par(self.0.map(f))
    }

    pub fn map_init<T, B, INIT, F>(
        self,
        mut init: INIT,
        mut f: F,
    ) -> Par<std::vec::IntoIter<B>>
    where
        INIT: FnMut() -> T,
        F: FnMut(&mut T, I::Item) -> B,
    {
        let mut scratch = init();
        let out: Vec<B> = self.0.map(|item| f(&mut scratch, item)).collect();
        Par(out.into_iter())
    }

    pub fn filter_map<B, F: FnMut(I::Item) -> Option<B>>(
        self,
        f: F,
    ) -> Par<std::iter::FilterMap<I, F>> {
        Par(self.0.filter_map(f))
    }

    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> Par<std::iter::Filter<I, F>> {
        Par(self.0.filter(f))
    }

    pub fn zip<Z: IntoParallelIterator>(self, other: Z) -> Par<std::iter::Zip<I, Z::SeqIter>> {
        Par(self.0.zip(other.into_par_iter().0))
    }

    pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
        Par(self.0.enumerate())
    }

    pub fn all<F: FnMut(I::Item) -> bool>(mut self, f: F) -> bool {
        self.0.all(f)
    }

    pub fn any<F: FnMut(I::Item) -> bool>(mut self, f: F) -> bool {
        self.0.any(f)
    }

    pub fn count(self) -> usize {
        self.0.count()
    }

    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: FnMut() -> I::Item,
        OP: FnMut(I::Item, I::Item) -> I::Item,
    {
        let mut identity = identity;
        self.0.fold(identity(), op)
    }

    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.min()
    }

    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Scheduling hint; a no-op sequentially.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Scheduling hint; a no-op sequentially.
    pub fn with_max_len(self, _max: usize) -> Self {
        self
    }
}

// ---------------------------------------------------------------------------
// Conversion traits (rayon::prelude names)
// ---------------------------------------------------------------------------

/// `into_par_iter()` — blanket over everything iterable (ranges, `Vec`, …).
pub trait IntoParallelIterator {
    type Item;
    type SeqIter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> Par<Self::SeqIter>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Item = T::Item;
    type SeqIter = T::IntoIter;
    fn into_par_iter(self) -> Par<T::IntoIter> {
        Par(self.into_iter())
    }
}

/// `par_iter()` — blanket over `&T: IntoIterator`.
pub trait IntoParallelRefIterator<'a> {
    type Item: 'a;
    type SeqIter: Iterator<Item = Self::Item>;
    fn par_iter(&'a self) -> Par<Self::SeqIter>;
}

impl<'a, T: 'a + ?Sized> IntoParallelRefIterator<'a> for T
where
    &'a T: IntoIterator,
{
    type Item = <&'a T as IntoIterator>::Item;
    type SeqIter = <&'a T as IntoIterator>::IntoIter;
    fn par_iter(&'a self) -> Par<Self::SeqIter> {
        Par(self.into_iter())
    }
}

/// `par_iter_mut()` — blanket over `&mut T: IntoIterator`.
pub trait IntoParallelRefMutIterator<'a> {
    type Item: 'a;
    type SeqIter: Iterator<Item = Self::Item>;
    fn par_iter_mut(&'a mut self) -> Par<Self::SeqIter>;
}

impl<'a, T: 'a + ?Sized> IntoParallelRefMutIterator<'a> for T
where
    &'a mut T: IntoIterator,
{
    type Item = <&'a mut T as IntoIterator>::Item;
    type SeqIter = <&'a mut T as IntoIterator>::IntoIter;
    fn par_iter_mut(&'a mut self) -> Par<Self::SeqIter> {
        Par(self.into_iter())
    }
}

/// Shared-slice views (`par_windows`, `par_chunks`).
pub trait ParallelSlice<T> {
    fn par_windows(&self, window_size: usize) -> Par<std::slice::Windows<'_, T>>;
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_windows(&self, window_size: usize) -> Par<std::slice::Windows<'_, T>> {
        Par(self.windows(window_size))
    }
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>> {
        Par(self.chunks(chunk_size))
    }
}

/// Mutable-slice operations (`par_sort_*`, `par_chunks_mut`).
pub trait ParallelSliceMut<T> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>>;
    fn par_sort(&mut self)
    where
        T: Ord;
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, compare: F);
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F);
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
        Par(self.chunks_mut(chunk_size))
    }
    fn par_sort(&mut self)
    where
        T: Ord,
    {
        self.sort();
    }
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }
    fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, compare: F) {
        self.sort_unstable_by(compare);
    }
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F) {
        self.sort_unstable_by_key(key);
    }
}

/// Runs two closures, returning both results (sequentially: left then right).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

pub mod iter {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, Par,
    };
}

pub mod slice {
    pub use crate::{ParallelSlice, ParallelSliceMut};
}

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, Par,
        ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn combinators_match_sequential() {
        let v: Vec<u32> = (0..100).collect();
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        assert!(v.par_iter().all(|&x| x < 100));
        assert!(doubled.par_windows(2).all(|w| w[0] <= w[1]));

        let mut w = vec![5u32, 3, 1, 4, 2];
        w.par_sort_unstable_by_key(|&x| std::cmp::Reverse(x));
        assert_eq!(w, [5, 4, 3, 2, 1]);

        let pairs: Vec<(usize, u32)> = (0..5usize).into_par_iter().zip(w.par_iter().copied()).collect();
        assert_eq!(pairs[1], (1, 4));
    }

    #[test]
    fn for_each_init_threads_scratch() {
        let mut hits = 0usize;
        [1, 2, 3].par_iter().for_each_init(
            || vec![0u8; 4],
            |scratch, &x| {
                scratch[0] = x;
                // no-op use of scratch
            },
        );
        (0..3u32).into_par_iter().for_each(|_| hits += 0);
        let _ = hits;
    }

    #[test]
    fn install_scopes_thread_count() {
        let outside = current_num_threads();
        assert!(outside >= 1);
        let pool = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 7);
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn build_global_first_caller_wins() {
        // Depending on test order this may or may not be the first caller,
        // so assert only the invariants that hold either way.
        let r = ThreadPoolBuilder::new().num_threads(3).build_global();
        if r.is_ok() {
            assert_eq!(current_num_threads(), 3);
        }
        assert!(ThreadPoolBuilder::new().num_threads(9).build_global().is_err());
        // Scoped pools still override the global size.
        let pool = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 7);
    }

    #[test]
    fn nested_install_restores() {
        let p2 = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let p5 = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        p2.install(|| {
            assert_eq!(current_num_threads(), 2);
            p5.install(|| assert_eq!(current_num_threads(), 5));
            assert_eq!(current_num_threads(), 2);
        });
    }
}
