//! The locality layer: cache-blocked, degree-bucketed sweep execution.
//!
//! The paper's scale study (Figures 8/11/14) shows the vector kernels' edge
//! over scalar decaying as the graph outgrows the last-level cache: the
//! gather-heavy neighborhood reads miss more and more. This module attacks
//! that decay with two orthogonal, output-preserving transforms every kernel
//! family executes through:
//!
//! * **Cache blocking** ([`Blocking`]) — each sweep's ordered worklist is
//!   partitioned into contiguous *blocks* of vertices sized to a cache
//!   budget (`GP_BLOCK_KB`, or auto-derived from the CSR's bytes-per-vertex)
//!   and processed block-by-block. Blocks partition the *already ordered*
//!   sweep sequence, so sequential execution visits exactly the same
//!   vertices in exactly the same order as the unblocked sweep — outputs
//!   are bit-identical by construction, for any block size (including the
//!   degenerate one-vertex block).
//! * **Degree bucketing** ([`Bucketing`]) — within each block, vertices are
//!   routed to the kernel shape their degree fits: runs of ≤16-neighbor
//!   vertices take the kernel's cheap low-degree path (coloring's
//!   branch-free bitmask; labelprop's per-vertex vector kernel), mid-degree
//!   vertices the existing one-neighbor-per-lane path, and hub vertices
//!   become their own scheduling units so a parallel worker never inherits
//!   a hub buried in a thousand-vertex chunk. `GP_BATCH16=1` swaps the low
//!   bin onto the transposed one-vertex-per-lane batch kernels (16 per ZMM,
//!   the OVPL layout without its preprocessing cost) — kept as an opt-in
//!   A/B arm because the gathers and per-batch scoring lose to the
//!   per-vertex kernels on every measured host. The low/hub boundaries come
//!   from the degree histogram ([`gp_graph::stats::DegreeHistogram`]) at
//!   frontier-build time.
//!
//! An engaged plan additionally drives a two-stage software-prefetch
//! pipeline ahead of the in-order visit point (CSR row at
//! [`PREFETCH_ROW_AHEAD`], per-neighbor state via the kernels' `warm` hooks
//! at [`PREFETCH_STATE_AHEAD`]) — the lever that flattens the
//! scale-vs-speedup decay once state gathers start missing the LLC. It
//! only turns on past a working-set gate ([`PREFETCH_MIN_BYTES`]): below
//! it everything is cache-resident and the pipeline would be pure
//! overhead. Prefetch has no memory effects, so it cannot perturb outputs.
//!
//! ## The bit-identity contract
//!
//! Blocked execution must be indistinguishable from unblocked execution at
//! the output level (`crates/core/tests/locality.rs` pins this across every
//! kernel × backend × thread count × block size):
//!
//! * Sequential (and inline-pool) execution streams blocks in order; the
//!   low-degree batcher only ever groups *consecutive* eligible vertices
//!   and flushes before any non-low vertex, so the visit sequence is
//!   untouched.
//! * Batched kernels compute all 16 lanes from a pre-batch snapshot, then
//!   apply results lane-by-lane **in order** with exact dependency repair:
//!   before applying lane `l`, if any neighbor of `v_l` is an earlier lane
//!   of this batch whose value actually changed, lane `l` is recomputed
//!   with the per-vertex kernel against current state. Both checks are
//!   O(16·16) worst case and almost always empty.
//! * Parallel execution on a real pool fans *units* (block-bounded ranges
//!   plus hub singletons) across workers — reordering that the racy
//!   speculative contract already permits (see `docs/PARALLELISM.md`), and
//!   that `GP_PAR_SEQ=1` collapses back to the sequential schedule.

use crate::frontier::DEADLINE_CHUNK;
use gp_graph::csr::Csr;
use gp_graph::stats::DegreeHistogram;
use gp_metrics::telemetry::Recorder;
use std::ops::Range;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Highest degree routed to the one-vertex-per-lane batch kernels: one
/// neighbor slot per lane of a 16-lane register.
pub const LOW_MAX_DEGREE: u32 = 16;

/// Far lookahead of the software-prefetch pipeline (worklist positions):
/// the CSR row of the vertex this far ahead is prefetched, so its adjacency
/// is resident when the near stage reads it.
const PREFETCH_ROW_AHEAD: usize = 16;

/// Near lookahead: the kernel's `warm` hook runs for the vertex this far
/// ahead, reading the (already prefetched) row and prefetching the state
/// words its neighbors will need.
const PREFETCH_STATE_AHEAD: usize = 4;

/// Most neighbors a single `warm` call touches — hubs would otherwise spend
/// longer warming than the prefetch distance can hide.
pub(crate) const WARM_NEIGHBOR_CAP: usize = 64;

/// Working sets below this footprint sit in the last-level cache, where the
/// software-prefetch pipeline is pure overhead (every prefetched line was
/// already resident, but the `warm` hook still re-walked the row). The gate
/// keeps sub-LLC graphs on the plain in-order stream; `GP_PREFETCH=0|1`
/// forces the pipeline off/on regardless of size (the test knob). 16 MiB
/// matches the measured knee on the dev host (rmat-16, ~9 MB, loses ~9%
/// with the pipeline on; rmat-17, ~18 MB, gains with it on).
const PREFETCH_MIN_BYTES: usize = 16 << 20;

/// Best-effort L1 prefetch; compiles to nothing off x86-64.
#[inline(always)]
pub(crate) fn prefetch<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch has no memory effects and tolerates any address.
    unsafe {
        core::arch::x86_64::_mm_prefetch(p as *const i8, core::arch::x86_64::_MM_HINT_T0)
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Far-stage prefetch: pull `v`'s adjacency (ids and weights) toward L1.
#[inline(always)]
fn prefetch_row(g: &Csr, v: u32) {
    let start = g.xadj()[v as usize] as usize;
    prefetch(unsafe { g.adj().as_ptr().add(start) });
    prefetch(unsafe { g.weights().as_ptr().add(start) });
}

/// Default cache budget per block when `GP_BLOCK_KB` is unset: sized to a
/// typical per-core LLC slice so one block's working set (CSR rows + state
/// arrays) stays resident while the block is swept.
pub const DEFAULT_BLOCK_KB: u32 = 4096;

/// Cache-blocking policy for a kernel run (`KernelSpec.block`, CLI
/// `--block`, serve v2 `block`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Blocking {
    /// No blocking: one block spans the whole sweep (the pre-locality
    /// behavior, kept as the A/B baseline).
    Off,
    /// Derive the block size from the graph: `GP_BLOCK_KB` (default
    /// [`DEFAULT_BLOCK_KB`]) divided by the CSR's average bytes-per-vertex.
    #[default]
    Auto,
    /// Explicit cache budget in KiB, converted like `Auto`.
    Kb(u32),
    /// Explicit block length in vertices (the test knob; `1` gives the
    /// degenerate one-vertex block).
    Vertices(u32),
}

impl Blocking {
    /// Stable wire/cache-key spelling (`off | auto | <n>kb | <n>`).
    pub fn name(self) -> String {
        match self {
            Blocking::Off => "off".into(),
            Blocking::Auto => "auto".into(),
            Blocking::Kb(k) => format!("{k}kb"),
            Blocking::Vertices(v) => format!("{v}"),
        }
    }
}

impl std::fmt::Display for Blocking {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

impl FromStr for Blocking {
    type Err = crate::error::SpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(Blocking::Off),
            "auto" => Ok(Blocking::Auto),
            other => {
                if let Some(kb) = other.strip_suffix("kb") {
                    kb.parse::<u32>()
                        .ok()
                        .filter(|&k| k > 0)
                        .map(Blocking::Kb)
                        .ok_or_else(|| crate::error::SpecError::InvalidBlockBudget(other.to_string()))
                } else {
                    other
                        .parse::<u32>()
                        .ok()
                        .filter(|&v| v > 0)
                        .map(Blocking::Vertices)
                        .ok_or_else(|| crate::error::SpecError::InvalidBlockSize(other.to_string()))
                }
            }
        }
    }
}

/// Degree-bucketing policy (`KernelSpec.bucket`, CLI `--bucket`, serve v2
/// `bucket`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Bucketing {
    /// Every vertex takes the kernel's uniform per-vertex path.
    Off,
    /// Route by degree: ≤16-neighbor runs to the 16-per-ZMM batch kernel,
    /// hubs to singleton scheduling units, the rest to the per-vertex path.
    #[default]
    Degree,
}

impl Bucketing {
    /// Stable wire/cache-key spelling (`off | degree`).
    pub fn name(self) -> &'static str {
        match self {
            Bucketing::Off => "off",
            Bucketing::Degree => "degree",
        }
    }
}

impl std::fmt::Display for Bucketing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Bucketing {
    type Err = crate::error::SpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(Bucketing::Off),
            "degree" => Ok(Bucketing::Degree),
            other => Err(crate::error::SpecError::UnknownBucket(other.to_string())),
        }
    }
}

/// Reads the `GP_BLOCK_KB` cache-budget override.
fn block_kb_from_env() -> u32 {
    std::env::var("GP_BLOCK_KB")
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .filter(|&k| k > 0)
        .unwrap_or(DEFAULT_BLOCK_KB)
}

/// Converts a cache budget to a block length in vertices using the CSR's
/// average footprint: ~16 bytes of row/state overhead per vertex plus 8
/// bytes (id + weight) per arc.
fn budget_to_vertices(g: &Csr, kb: u32) -> usize {
    let n = g.num_vertices().max(1);
    let avg_arcs = g.num_arcs().div_ceil(n).max(1);
    let bytes_per_vertex = 16 + 8 * avg_arcs;
    ((kb as usize).saturating_mul(1024) / bytes_per_vertex).max(1)
}

/// The resolved per-run locality plan: what [`Blocking`]/[`Bucketing`] plus
/// the graph's degree histogram boil down to. Computed once per kernel run
/// (per level, for multilevel Louvain) when the first frontier is built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Plan {
    /// Vertices per cache block; `usize::MAX` disables blocking.
    pub block_vertices: usize,
    /// Whether degree bucketing is on.
    pub bucket: bool,
    /// Degree at or above which a vertex is scheduled as its own parallel
    /// unit; `u32::MAX` means the graph has no hubs worth singling out.
    pub hub_min: u32,
    /// Route low-degree runs to the transposed 16-per-ZMM batch kernels
    /// (`GP_BATCH16=1`). Off by default: on every host measured so far the
    /// transposed batch loses to the per-vertex kernels it replaces (see
    /// `docs/PERFORMANCE.md`), so the default low-bin route is the cheap
    /// per-vertex path and the batch stays as an A/B knob.
    pub batch16: bool,
    /// Run the two-stage software-prefetch pipeline ahead of the in-order
    /// stream. On when the plan is engaged *and* the graph's estimated
    /// footprint exceeds [`PREFETCH_MIN_BYTES`] (or `GP_PREFETCH=1` forces
    /// it); prefetch has no memory effects, so this flag never changes
    /// outputs.
    pub prefetch: bool,
}

impl Plan {
    /// The no-op plan: unblocked, unbucketed (the pre-locality execution).
    pub fn none() -> Plan {
        Plan {
            block_vertices: usize::MAX,
            bucket: false,
            hub_min: u32::MAX,
            batch16: false,
            prefetch: false,
        }
    }

    /// Resolves the knobs against `g`. The hub threshold is a pure function
    /// of the graph's degree histogram (see
    /// [`DegreeHistogram::hub_threshold`]), so it is identical across
    /// thread counts and sweep modes.
    pub fn for_graph(g: &Csr, block: Blocking, bucket: Bucketing) -> Plan {
        let block_vertices = match block {
            Blocking::Off => usize::MAX,
            Blocking::Auto => budget_to_vertices(g, block_kb_from_env()),
            Blocking::Kb(k) => budget_to_vertices(g, k),
            Blocking::Vertices(v) => (v as usize).max(1),
        };
        let bucket_on = bucket == Bucketing::Degree;
        let hub_min = if bucket_on {
            DegreeHistogram::build(g).hub_threshold()
        } else {
            u32::MAX
        };
        let engaged = block_vertices != usize::MAX || bucket_on;
        let footprint = 16 * g.num_vertices() + 8 * g.num_arcs();
        let prefetch = engaged
            && match std::env::var("GP_PREFETCH") {
                Ok(v) if v.trim() == "0" => false,
                Ok(v) if v.trim() == "1" => true,
                _ => footprint > PREFETCH_MIN_BYTES,
            };
        Plan {
            block_vertices,
            bucket: bucket_on,
            hub_min,
            batch16: bucket_on
                && std::env::var("GP_BATCH16").is_ok_and(|v| v.trim() == "1"),
            prefetch,
        }
    }

    /// True when this plan changes nothing about execution.
    pub fn is_none(&self) -> bool {
        self.block_vertices == usize::MAX && !self.bucket
    }
}

/// Per-round bin census for telemetry: how the sweep's eligible vertices
/// split across the locality bins, plus the block count. Computed as a pure
/// function of the worklist and the plan (never tallied during execution),
/// so traces are deterministic for any thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BinTally {
    /// Cache blocks the sweep was partitioned into.
    pub blocks: u64,
    /// Eligible vertices with degree ≤ [`LOW_MAX_DEGREE`].
    pub low: u64,
    /// Eligible vertices between the low and hub thresholds.
    pub mid: u64,
    /// Eligible vertices at or above the hub threshold.
    pub hub: u64,
}

/// Computes the [`BinTally`] for a sweep over `len` positions. `resolve`
/// maps a position to its eligible vertex (`None` = skipped in place), and
/// `degree_of` prices it. Only called when a recorder is enabled.
pub(crate) fn tally(
    plan: &Plan,
    len: usize,
    resolve: impl Fn(usize) -> Option<u32>,
    degree_of: impl Fn(u32) -> u64,
) -> BinTally {
    let mut t = BinTally {
        blocks: if len == 0 {
            0
        } else {
            (len as u64).div_ceil(plan.block_vertices.min(len) as u64)
        },
        ..BinTally::default()
    };
    for i in 0..len {
        let Some(v) = resolve(i) else { continue };
        let d = degree_of(v);
        if d <= LOW_MAX_DEGREE as u64 {
            t.low += 1;
        } else if d >= plan.hub_min as u64 {
            t.hub += 1;
        } else {
            t.mid += 1;
        }
    }
    t
}

/// The per-chunk grain of the sequential/inline shapes: block-bounded, and
/// additionally capped at [`DEADLINE_CHUNK`] when the recorder can fire
/// deadlines (so blocking never *reduces* deadline responsiveness).
fn sweep_grain<R: Recorder>(plan: &Plan, len: usize) -> usize {
    let cap = if R::CHECKS_DEADLINE {
        DEADLINE_CHUNK
    } else {
        len.max(1)
    };
    plan.block_vertices.min(cap).max(1)
}

/// Streams `range` in ascending position order through the bucketer: runs
/// of consecutive eligible low-degree vertices are collected (up to 16) and
/// flushed to `batch` before any non-low vertex is processed, so the visit
/// sequence equals the plain in-order sweep exactly.
///
/// When `plan.prefetch` is set (engaged plan, working set past the LLC
/// gate), a two-stage software-prefetch pipeline runs ahead of the visit
/// point: the CSR row of the vertex [`PREFETCH_ROW_AHEAD`] positions out is
/// pulled toward L1, and the kernel's `warm` hook fires for the vertex
/// [`PREFETCH_STATE_AHEAD`] positions out — it reads the (now resident) row
/// and prefetches the per-neighbor state words the kernel is about to
/// gather. Prefetching has no memory effects, so outputs are untouched;
/// `Plan::none()` never prefetches, keeping the unblocked baseline
/// byte-for-byte the pre-locality execution.
#[allow(clippy::too_many_arguments)]
fn stream_range<B>(
    g: &Csr,
    plan: &Plan,
    range: Range<usize>,
    resolve: &(impl Fn(usize) -> Option<u32> + ?Sized),
    buf: &mut B,
    one: &(impl Fn(&mut B, u32) + ?Sized),
    batch: Option<&(impl Fn(&mut B, &[u32]) + ?Sized)>,
    warm: Option<&(impl Fn(u32) + ?Sized)>,
) {
    let pipeline = plan.prefetch;
    let end = range.end;
    let lookahead = |i: usize| {
        if !pipeline {
            return;
        }
        if i + PREFETCH_ROW_AHEAD < end {
            if let Some(w) = resolve(i + PREFETCH_ROW_AHEAD) {
                prefetch_row(g, w);
            }
        }
        if let Some(warm) = warm {
            if i + PREFETCH_STATE_AHEAD < end {
                if let Some(w) = resolve(i + PREFETCH_STATE_AHEAD) {
                    warm(w);
                }
            }
        }
    };
    match batch {
        Some(batch16) if plan.bucket => {
            let mut low = [0u32; LOW_MAX_DEGREE as usize];
            let mut nlow = 0usize;
            for i in range {
                lookahead(i);
                let Some(v) = resolve(i) else { continue };
                if g.degree(v) <= LOW_MAX_DEGREE as usize {
                    low[nlow] = v;
                    nlow += 1;
                    if nlow == low.len() {
                        batch16(buf, &low);
                        nlow = 0;
                    }
                } else {
                    if nlow > 0 {
                        batch16(buf, &low[..nlow]);
                        nlow = 0;
                    }
                    one(buf, v);
                }
            }
            if nlow > 0 {
                batch16(buf, &low[..nlow]);
            }
        }
        _ => {
            for i in range {
                lookahead(i);
                if let Some(v) = resolve(i) {
                    one(buf, v);
                }
            }
        }
    }
}

/// Builds the parallel unit list: block-bounded position ranges, split so
/// that every hub vertex (degree ≥ `plan.hub_min`) forms its own singleton
/// unit. This is the load-balance fix for hub-heavy worklists — a worker
/// claims a hub *alone* instead of a slice that hides one.
fn build_units(
    g: &Csr,
    plan: &Plan,
    len: usize,
    grain: usize,
    resolve: &(impl Fn(usize) -> Option<u32> + ?Sized),
) -> Vec<Range<usize>> {
    let cut_hubs = plan.bucket && plan.hub_min != u32::MAX;
    let mut units = Vec::with_capacity(len.div_ceil(grain.max(1)));
    let mut start = 0usize;
    while start < len {
        let end = (start + grain).min(len);
        if cut_hubs {
            let mut s = start;
            for i in start..end {
                if let Some(v) = resolve(i) {
                    if g.degree(v) as u32 >= plan.hub_min {
                        if s < i {
                            units.push(s..i);
                        }
                        units.push(i..i + 1);
                        s = i + 1;
                    }
                }
            }
            if s < end {
                units.push(s..end);
            }
        } else {
            units.push(start..end);
        }
        start = end;
    }
    units
}

/// The parallel grain: block-bounded like the sequential shape, but also
/// capped so a real pool always sees several units per worker. (The
/// pre-locality executor handed a recorder without deadline checks a single
/// full-length chunk, which starved every worker but one; units fix that
/// for blocked *and* unblocked parallel sweeps.)
fn par_grain(grain: usize, len: usize, threads: usize) -> usize {
    let target = len.div_ceil(4 * threads.max(1)).max(256);
    grain.min(target).max(1)
}

/// Runs one sweep over `len` positions through the locality plan. The
/// blocked/bucketed replacement for [`crate::frontier::run_chunked`]:
///
/// * `resolve(i)` maps position `i` to its eligible vertex (`None` = skip
///   in place — the `full`-sweep filter);
/// * `one(buf, v)` is the kernel's per-vertex path;
/// * `batch(buf, ids)` (optional) processes a run of ≤16 consecutive
///   eligible low-degree vertices *exactly as if* `one` had been applied to
///   each in order (the kernel owns that equivalence; see the module docs).
///
/// Returns `true` if a deadline bailed the sweep early. Execution shapes
/// mirror `run_chunked`: sequential and inline pools stream blocks in order
/// (bit-identical to unblocked); real pools fan units across workers with
/// caller-only deadline polling.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_sweep<R, B>(
    g: &Csr,
    plan: &Plan,
    len: usize,
    parallel: bool,
    rec: &R,
    resolve: impl Fn(usize) -> Option<u32> + Send + Sync,
    make_buf: impl Fn() -> B + Send + Sync,
    one: impl Fn(&mut B, u32) + Send + Sync,
    batch: Option<impl Fn(&mut B, &[u32]) + Send + Sync>,
    warm: Option<impl Fn(u32) + Send + Sync>,
) -> bool
where
    R: Recorder,
    B: Send,
{
    if len == 0 {
        return false;
    }
    let grain = sweep_grain::<R>(plan, len);
    if parallel {
        let pool = gp_par::current();
        if !pool.is_inline() {
            let units = build_units(
                g,
                plan,
                len,
                par_grain(grain, len, pool.threads()),
                &resolve,
            );
            return fan_out_units(&units, &pool, rec, &make_buf, |buf, unit| {
                stream_range(
                    g,
                    plan,
                    unit.clone(),
                    &resolve,
                    buf,
                    &one,
                    batch.as_ref(),
                    warm.as_ref(),
                )
            });
        }
    }
    let mut buf: Option<B> = None;
    let mut start = 0usize;
    while start < len {
        if R::CHECKS_DEADLINE && start > 0 && rec.should_stop() {
            return true;
        }
        let end = (start + grain).min(len);
        let b = buf.get_or_insert_with(&make_buf);
        stream_range(
            g,
            plan,
            start..end,
            &resolve,
            b,
            &one,
            batch.as_ref(),
            warm.as_ref(),
        );
        start = end;
    }
    false
}

/// Fans `units` across the current pool's workers plus the calling thread
/// via an atomic cursor — the unit-list generalization of the frontier
/// executor's chunk fan-out. Only the caller touches `rec` (no `R: Sync`);
/// it polls between its own units and raises `stop` for the others.
fn fan_out_units<R, B>(
    units: &[Range<usize>],
    pool: &gp_par::Pool,
    rec: &R,
    make_buf: &(impl Fn() -> B + Send + Sync),
    run_unit: impl Fn(&mut B, &Range<usize>) + Send + Sync,
) -> bool
where
    R: Recorder,
    B: Send,
{
    if units.is_empty() {
        return false;
    }
    let cursor = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    pool.scope(|s| {
        for _ in 0..pool.threads() {
            s.spawn(|| {
                let mut buf = make_buf();
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let c = cursor.fetch_add(1, Ordering::Relaxed);
                    if c >= units.len() {
                        break;
                    }
                    run_unit(&mut buf, &units[c]);
                }
            });
        }
        let mut buf: Option<B> = None;
        let mut claimed = 0usize;
        loop {
            if R::CHECKS_DEADLINE && claimed > 0 && rec.should_stop() {
                stop.store(true, Ordering::Relaxed);
                break;
            }
            if stop.load(Ordering::Relaxed) {
                break;
            }
            let c = cursor.fetch_add(1, Ordering::Relaxed);
            if c >= units.len() {
                break;
            }
            run_unit(buf.get_or_insert_with(make_buf), &units[c]);
            claimed += 1;
        }
    });
    stop.load(Ordering::Relaxed)
}

/// Bucketed iteration over a packed vertex slice — the coloring-shaped
/// entry: `ids` is one cache block of the conflict set (the driver cuts
/// blocks; see [`slice_blocked`]), and this fans/streams it through the
/// bucketer. Deadline polling stays with the driver, matching the coloring
/// pipeline's `FnMut` slice contract.
#[allow(clippy::too_many_arguments)]
pub(crate) fn for_each_bucketed<B: Send>(
    g: &Csr,
    plan: &Plan,
    ids: &[u32],
    parallel: bool,
    make_buf: impl Fn() -> B + Send + Sync,
    one: impl Fn(&mut B, u32) + Send + Sync,
    batch: Option<impl Fn(&mut B, &[u32]) + Send + Sync>,
    warm: Option<impl Fn(u32) + Send + Sync>,
) {
    let resolve = |i: usize| Some(ids[i]);
    if parallel {
        let pool = gp_par::current();
        if !pool.is_inline() {
            let grain = par_grain(ids.len().max(1), ids.len(), pool.threads());
            let units = build_units(g, plan, ids.len(), grain, &resolve);
            fan_out_units(
                &units,
                &pool,
                &gp_metrics::telemetry::NoopRecorder,
                &make_buf,
                |buf, unit| {
                    stream_range(
                        g,
                        plan,
                        unit.clone(),
                        &resolve,
                        buf,
                        &one,
                        batch.as_ref(),
                        warm.as_ref(),
                    )
                },
            );
            return;
        }
    }
    let mut buf = make_buf();
    stream_range(
        g,
        plan,
        0..ids.len(),
        &resolve,
        &mut buf,
        &one,
        batch.as_ref(),
        warm.as_ref(),
    );
}

/// Block-bounded [`crate::frontier::slice_chunked`]: cuts `items` at block
/// boundaries (and at [`DEADLINE_CHUNK`] under a deadline-checking
/// recorder) and hands each block to `f` in order, polling the deadline
/// between blocks. Returns `true` on an early bail.
pub(crate) fn slice_blocked<R: Recorder, T>(
    items: &[T],
    block: usize,
    rec: &R,
    mut f: impl FnMut(&[T]),
) -> bool {
    let cap = if R::CHECKS_DEADLINE {
        DEADLINE_CHUNK
    } else {
        items.len().max(1)
    };
    let chunk = block.min(cap).max(1);
    let mut start = 0usize;
    while start < items.len() {
        if R::CHECKS_DEADLINE && start > 0 && rec.should_stop() {
            return true;
        }
        let end = (start + chunk).min(items.len());
        f(&items[start..end]);
        start = end;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_graph::builder::from_pairs;
    use gp_graph::generators::{erdos_renyi, star};
    use gp_metrics::telemetry::NoopRecorder;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn blocking_roundtrips_strings() {
        for b in [
            Blocking::Off,
            Blocking::Auto,
            Blocking::Kb(256),
            Blocking::Vertices(4096),
            Blocking::Vertices(1),
        ] {
            assert_eq!(b.name().parse::<Blocking>().unwrap(), b);
            assert_eq!(format!("{b}"), b.name());
        }
        assert!("".parse::<Blocking>().is_err());
        assert!("0".parse::<Blocking>().is_err());
        assert!("0kb".parse::<Blocking>().is_err());
        assert!("cache".parse::<Blocking>().is_err());
        assert_eq!(Blocking::default(), Blocking::Auto);
    }

    #[test]
    fn bucketing_roundtrips_strings() {
        for b in [Bucketing::Off, Bucketing::Degree] {
            assert_eq!(b.name().parse::<Bucketing>().unwrap(), b);
            assert_eq!(format!("{b}"), b.name());
        }
        assert!("size".parse::<Bucketing>().is_err());
        assert_eq!(Bucketing::default(), Bucketing::Degree);
    }

    #[test]
    fn plan_off_is_none() {
        let g = erdos_renyi(100, 300, 1);
        let p = Plan::for_graph(&g, Blocking::Off, Bucketing::Off);
        assert!(p.is_none());
        assert_eq!(p, Plan::none());
    }

    #[test]
    fn plan_auto_derives_block_from_budget() {
        let g = erdos_renyi(1000, 4000, 2);
        let p = Plan::for_graph(&g, Blocking::Kb(64), Bucketing::Degree);
        // avg arcs/vertex = 8 → 16 + 64 bytes/vertex → 64 KiB / 80 B = 819.
        assert_eq!(p.block_vertices, 64 * 1024 / 80);
        assert!(p.bucket);
        let p1 = Plan::for_graph(&g, Blocking::Vertices(1), Bucketing::Off);
        assert_eq!(p1.block_vertices, 1);
        assert!(!p1.bucket);
    }

    #[test]
    fn tally_census_matches_plan() {
        // Star: one hub of degree 40, forty leaves of degree 1.
        let g = star(41);
        let plan = Plan {
            block_vertices: 10,
            bucket: true,
            hub_min: 32,
            batch16: true,
            prefetch: true,
        };
        let t = tally(&plan, 41, |i| Some(i as u32), |v| g.degree(v) as u64);
        assert_eq!(t.blocks, 5); // ceil(41 / 10)
        assert_eq!(t.hub, 1);
        assert_eq!(t.low, 40);
        assert_eq!(t.mid, 0);
    }

    #[test]
    fn stream_preserves_order_and_batches_consecutive_low_runs() {
        // Degrees: vertex 0 is a hub (deg 19 > 16), the rest are leaves.
        let g = star(20);
        let plan = Plan {
            block_vertices: usize::MAX,
            bucket: true,
            hub_min: u32::MAX,
            batch16: true,
            prefetch: true,
        };
        let mut events: Vec<String> = Vec::new();
        let order = [1u32, 2, 0, 3, 4, 5];
        {
            let ev = std::cell::RefCell::new(&mut events);
            stream_range(
                &g,
                &plan,
                0..order.len(),
                &|i| Some(order[i]),
                &mut (),
                &|_: &mut (), v| ev.borrow_mut().push(format!("one:{v}")),
                Some(&|_: &mut (), ids: &[u32]| {
                    ev.borrow_mut().push(format!("batch:{ids:?}"))
                }),
                None::<&fn(u32)>,
            );
        }
        // The low run before the hub flushes first, then the hub, then the
        // trailing run — sequence order intact.
        assert_eq!(
            events,
            vec!["batch:[1, 2]", "one:0", "batch:[3, 4, 5]"]
        );
    }

    #[test]
    fn units_single_out_hubs() {
        let g = star(50); // vertex 0 has degree 49
        let plan = Plan {
            block_vertices: usize::MAX,
            bucket: true,
            hub_min: 32,
            batch16: true,
            prefetch: true,
        };
        let units = build_units(&g, &plan, 50, 20, &|i| Some(i as u32));
        // Grain cuts at 20/40, hub 0 singled out of the first range.
        assert_eq!(units, vec![0..1, 1..20, 20..40, 40..50]);
    }

    #[test]
    fn run_sweep_visits_every_eligible_vertex_once() {
        let g = erdos_renyi(3000, 12000, 7);
        for parallel in [false, true] {
            for block in [usize::MAX, 4096, 257, 1] {
                let plan = Plan {
                    block_vertices: block,
                    bucket: true,
                    hub_min: 64,
                    batch16: true,
                    prefetch: true,
                };
                let seen: Vec<AtomicU64> =
                    (0..3000).map(|_| AtomicU64::new(0)).collect();
                let bailed = run_sweep(
                    &g,
                    &plan,
                    3000,
                    parallel,
                    &NoopRecorder,
                    |i| (i % 3 != 0).then_some(i as u32),
                    || (),
                    |_, v| {
                        seen[v as usize].fetch_add(1, Ordering::Relaxed);
                    },
                    Some(|_: &mut (), ids: &[u32]| {
                        for &v in ids {
                            seen[v as usize].fetch_add(1, Ordering::Relaxed);
                        }
                    }),
                    None::<fn(u32)>,
                );
                assert!(!bailed);
                for (i, s) in seen.iter().enumerate() {
                    let expect = u64::from(i % 3 != 0);
                    assert_eq!(
                        s.load(Ordering::Relaxed),
                        expect,
                        "vertex {i} block {block} parallel {parallel}"
                    );
                }
            }
        }
    }

    #[test]
    fn slice_blocked_covers_in_block_sized_pieces() {
        let items: Vec<u32> = (0..100).collect();
        let mut pieces: Vec<usize> = Vec::new();
        let mut seen: Vec<u32> = Vec::new();
        assert!(!slice_blocked(&items, 32, &NoopRecorder, |sub| {
            pieces.push(sub.len());
            seen.extend_from_slice(sub);
        }));
        assert_eq!(pieces, vec![32, 32, 32, 4]);
        assert_eq!(seen, items);
    }

    #[test]
    fn batcher_flushes_only_low_degree_vertices() {
        let g = from_pairs(20, (1..18).map(|v| (0, v)).collect::<Vec<_>>());
        // Vertex 0 has degree 17 (> 16): must take the `one` path even
        // though everything else batches.
        let plan = Plan {
            block_vertices: usize::MAX,
            bucket: true,
            hub_min: u32::MAX,
            batch16: true,
            prefetch: true,
        };
        let ones = std::cell::Cell::new(0u32);
        let batched = std::cell::Cell::new(0u32);
        stream_range(
            &g,
            &plan,
            0..20,
            &|i| Some(i as u32),
            &mut (),
            &|_: &mut (), _| ones.set(ones.get() + 1),
            Some(&|_: &mut (), ids: &[u32]| batched.set(batched.get() + ids.len() as u32)),
            None::<&fn(u32)>,
        );
        assert_eq!(ones.get(), 1);
        assert_eq!(batched.get(), 19);
    }
}
