/root/repo/target/debug/deps/telemetry-e592d79d9e6d0229.d: tests/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry-e592d79d9e6d0229.rmeta: tests/telemetry.rs Cargo.toml

tests/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
