/root/repo/target/debug/examples/community_pipeline-cc436b6f6c75fbdc.d: examples/community_pipeline.rs

/root/repo/target/debug/examples/community_pipeline-cc436b6f6c75fbdc: examples/community_pipeline.rs

examples/community_pipeline.rs:
