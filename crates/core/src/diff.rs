//! Structured output comparison: [`KernelOutput::diff`].
//!
//! The equivalence suites (and the `gp-conform` differential runner) all
//! ask the same question — *did two runs produce the same answer, and if
//! not, where exactly did they part ways?* Ad-hoc `assert_eq!` loops answer
//! the first half and then dump two million-element vectors at you for the
//! second. [`OutputDiff`] answers both: per-field summaries for the scalar
//! payload, the **first divergent vertex** (plus a count of how many
//! differ) for the per-vertex arrays, and a shape-level comparison of the
//! telemetry envelope (backend, round counts, phase names — never wall
//! times, which legitimately differ between any two runs).
//!
//! The diff deliberately distinguishes *result* fields (covered by each
//! result struct's `PartialEq`, which the determinism contract's
//! bit-identity tier is defined over) from *telemetry shape*: two runs can
//! be bit-identical in results while reporting different backends — that is
//! exactly the situation the conformance harness exists to scrutinize, so
//! [`OutputDiff::results_identical`] and [`OutputDiff::is_empty`] are
//! separate questions.

use crate::api::KernelOutput;
use gp_metrics::telemetry::RunInfo;
use std::fmt;

/// One named field whose two sides disagree, rendered as strings so a
/// single type covers `usize`, `f64`, backend names, and phase lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDiff {
    /// Field path (`"modularity"`, `"info.backend"`, `"trace.phases"`, …).
    pub field: &'static str,
    /// The value on `self`'s side of the comparison.
    pub left: String,
    /// The value on `other`'s side of the comparison.
    pub right: String,
}

impl FieldDiff {
    fn new(field: &'static str, left: impl fmt::Display, right: impl fmt::Display) -> FieldDiff {
        FieldDiff {
            field,
            left: left.to_string(),
            right: right.to_string(),
        }
    }
}

/// Where two per-vertex arrays first part ways.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexDivergence {
    /// Name of the array (`"colors"`, `"communities"`, `"labels"`).
    pub array: &'static str,
    /// The first index at which the arrays disagree.
    pub vertex: u32,
    /// `self`'s value at that vertex.
    pub left: u32,
    /// `other`'s value at that vertex.
    pub right: u32,
    /// Total number of disagreeing indices (over the common prefix).
    pub differing: usize,
}

/// The full comparison report from [`KernelOutput::diff`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OutputDiff {
    /// Scalar result-field disagreements (rounds, modularity, levels, …) —
    /// the fields each result struct's `PartialEq` covers, minus the
    /// per-vertex arrays.
    pub fields: Vec<FieldDiff>,
    /// First divergent vertex in the per-vertex payload, when the arrays
    /// are comparable (same kernel family, same length) but unequal.
    pub first_divergence: Option<VertexDivergence>,
    /// Telemetry-shape disagreements: backend name, envelope round count,
    /// convergence flag, trace presence/shape. Timing fields are never
    /// compared.
    pub telemetry: Vec<FieldDiff>,
}

impl OutputDiff {
    /// No differences at all — results *and* telemetry shape agree.
    pub fn is_empty(&self) -> bool {
        self.results_identical() && self.telemetry.is_empty()
    }

    /// The result payloads are bit-identical (the determinism contract's
    /// strong tier). Telemetry shape may still differ — e.g. a native and
    /// an emulated run that agree on every output bit.
    pub fn results_identical(&self) -> bool {
        self.fields.is_empty() && self.first_divergence.is_none()
    }
}

impl fmt::Display for OutputDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("outputs identical (results and telemetry shape)");
        }
        if let Some(d) = &self.first_divergence {
            writeln!(
                f,
                "{}[{}]: {} != {} ({} of the array disagree)",
                d.array, d.vertex, d.left, d.right, d.differing
            )?;
        }
        for fd in &self.fields {
            writeln!(f, "{}: {} != {}", fd.field, fd.left, fd.right)?;
        }
        for fd in &self.telemetry {
            writeln!(f, "telemetry {}: {} != {}", fd.field, fd.left, fd.right)?;
        }
        Ok(())
    }
}

/// Compares two per-vertex arrays; a length mismatch is a field diff, a
/// content mismatch pinpoints the first divergent vertex.
fn diff_vertices(
    array: &'static str,
    len_field: &'static str,
    a: &[u32],
    b: &[u32],
    out: &mut OutputDiff,
) {
    if a.len() != b.len() {
        out.fields.push(FieldDiff::new(len_field, a.len(), b.len()));
        return;
    }
    let mut first: Option<usize> = None;
    let mut differing = 0usize;
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        if x != y {
            differing += 1;
            if first.is_none() {
                first = Some(i);
            }
        }
    }
    if let Some(i) = first {
        out.first_divergence = Some(VertexDivergence {
            array,
            vertex: i as u32,
            left: a[i],
            right: b[i],
            differing,
        });
    }
}

/// Compares the telemetry *shape* of two run envelopes. Wall times and
/// per-round timings are excluded by construction; only fields that the
/// determinism contract constrains (backend identity, round structure,
/// phase sequence, histogram presence) are reported.
fn diff_telemetry(a: &RunInfo, b: &RunInfo, out: &mut OutputDiff) {
    let tele = &mut out.telemetry;
    if a.backend != b.backend {
        tele.push(FieldDiff::new("info.backend", a.backend, b.backend));
    }
    if a.rounds != b.rounds {
        tele.push(FieldDiff::new("info.rounds", a.rounds, b.rounds));
    }
    if a.converged != b.converged {
        tele.push(FieldDiff::new("info.converged", a.converged, b.converged));
    }
    match (&a.trace, &b.trace) {
        (None, None) => {}
        (Some(_), None) | (None, Some(_)) => {
            tele.push(FieldDiff::new(
                "trace",
                a.trace.is_some(),
                b.trace.is_some(),
            ));
        }
        (Some(ta), Some(tb)) => {
            if ta.kernel != tb.kernel {
                tele.push(FieldDiff::new("trace.kernel", &ta.kernel, &tb.kernel));
            }
            if ta.rounds.len() != tb.rounds.len() {
                tele.push(FieldDiff::new(
                    "trace.rounds.len",
                    ta.rounds.len(),
                    tb.rounds.len(),
                ));
            }
            let phases_a: Vec<&str> = ta.phases.iter().map(|p| p.name).collect();
            let phases_b: Vec<&str> = tb.phases.iter().map(|p| p.name).collect();
            if phases_a != phases_b {
                tele.push(FieldDiff::new(
                    "trace.phases",
                    phases_a.join(","),
                    phases_b.join(","),
                ));
            }
            if ta.degree_hist.is_some() != tb.degree_hist.is_some() {
                tele.push(FieldDiff::new(
                    "trace.degree_hist",
                    ta.degree_hist.is_some(),
                    tb.degree_hist.is_some(),
                ));
            }
        }
    }
}

impl KernelOutput {
    /// Structured comparison against another run's output: scalar field
    /// summaries, the first divergent vertex in the per-vertex payload, and
    /// a telemetry-shape delta. `diff(a, b).results_identical()` agrees
    /// with `a == b` restricted to matching kernel families — the
    /// conformance runner and the equivalence suites assert on the diff so
    /// a failure names the divergence instead of dumping whole arrays.
    pub fn diff(&self, other: &KernelOutput) -> OutputDiff {
        let mut out = OutputDiff::default();
        match (self, other) {
            (KernelOutput::Coloring(a), KernelOutput::Coloring(b)) => {
                diff_vertices("colors", "colors.len", &a.colors, &b.colors, &mut out);
                if a.rounds != b.rounds {
                    out.fields.push(FieldDiff::new("rounds", a.rounds, b.rounds));
                }
                if a.num_colors != b.num_colors {
                    out.fields
                        .push(FieldDiff::new("num_colors", a.num_colors, b.num_colors));
                }
            }
            (KernelOutput::Louvain(a), KernelOutput::Louvain(b)) => {
                diff_vertices(
                    "communities",
                    "communities.len",
                    &a.communities,
                    &b.communities,
                    &mut out,
                );
                if a.modularity != b.modularity {
                    out.fields
                        .push(FieldDiff::new("modularity", a.modularity, b.modularity));
                }
                if a.levels != b.levels {
                    out.fields.push(FieldDiff::new("levels", a.levels, b.levels));
                }
                if a.level_stats != b.level_stats {
                    out.fields.push(FieldDiff::new(
                        "level_stats",
                        format!("{:?}", a.level_stats),
                        format!("{:?}", b.level_stats),
                    ));
                }
            }
            (KernelOutput::Labelprop(a), KernelOutput::Labelprop(b)) => {
                diff_vertices("labels", "labels.len", &a.labels, &b.labels, &mut out);
                if a.iterations != b.iterations {
                    out.fields
                        .push(FieldDiff::new("iterations", a.iterations, b.iterations));
                }
                if a.updates != b.updates {
                    out.fields.push(FieldDiff::new(
                        "updates",
                        format!("{:?}", a.updates),
                        format!("{:?}", b.updates),
                    ));
                }
            }
            (a, b) => {
                out.fields
                    .push(FieldDiff::new("kind", a.kind(), b.kind()));
            }
        }
        diff_telemetry(self.info(), other.info(), &mut out);
        out
    }

    /// The output's kernel family label (`color` / `louvain` / `labelprop`).
    pub fn kind(&self) -> &'static str {
        match self {
            KernelOutput::Coloring(_) => "color",
            KernelOutput::Louvain(_) => "louvain",
            KernelOutput::Labelprop(_) => "labelprop",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{run_kernel, Backend, Kernel, KernelSpec};
    use gp_metrics::telemetry::NoopRecorder;
    use gp_graph::generators::special::path;

    fn spec(kernel: Kernel) -> KernelSpec {
        KernelSpec {
            kernel,
            backend: Backend::Scalar,
            ..KernelSpec::default()
        }
    }

    #[test]
    fn identical_runs_diff_empty() {
        let g = path(64);
        let a = run_kernel(&g, &spec(Kernel::Coloring), &mut NoopRecorder);
        let b = run_kernel(&g, &spec(Kernel::Coloring), &mut NoopRecorder);
        let d = a.diff(&b);
        assert!(d.is_empty(), "unexpected diff:\n{d}");
        assert!(d.results_identical());
        assert_eq!(d.to_string(), "outputs identical (results and telemetry shape)");
    }

    #[test]
    fn divergent_colors_name_the_first_vertex() {
        let g = path(64);
        let a = run_kernel(&g, &spec(Kernel::Coloring), &mut NoopRecorder);
        let mut b = a.clone();
        if let KernelOutput::Coloring(r) = &mut b {
            r.colors[7] ^= 1;
            r.colors[9] ^= 1;
        }
        let d = a.diff(&b);
        assert!(!d.results_identical());
        let v = d.first_divergence.expect("divergence found");
        assert_eq!(v.array, "colors");
        assert_eq!(v.vertex, 7);
        assert_eq!(v.differing, 2);
        assert!(d.to_string().contains("colors[7]"));
    }

    #[test]
    fn scalar_field_mismatch_is_reported() {
        let g = path(64);
        let a = run_kernel(&g, &spec(Kernel::Labelprop), &mut NoopRecorder);
        let mut b = a.clone();
        if let KernelOutput::Labelprop(r) = &mut b {
            r.updates.push(5);
        }
        let d = a.diff(&b);
        assert!(d.first_divergence.is_none());
        assert_eq!(d.fields.len(), 1);
        assert_eq!(d.fields[0].field, "updates");
    }

    #[test]
    fn kind_mismatch_short_circuits() {
        let g = path(64);
        let a = run_kernel(&g, &spec(Kernel::Coloring), &mut NoopRecorder);
        let b = run_kernel(&g, &spec(Kernel::Labelprop), &mut NoopRecorder);
        let d = a.diff(&b);
        assert_eq!(d.fields[0].field, "kind");
        assert_eq!(d.fields[0].left, "color");
        assert_eq!(d.fields[0].right, "labelprop");
    }

    #[test]
    fn telemetry_shape_delta_is_separate_from_results() {
        let g = path(64);
        let a = run_kernel(&g, &spec(Kernel::Coloring), &mut NoopRecorder);
        let mut b = a.clone();
        if let KernelOutput::Coloring(r) = &mut b {
            r.info.backend = "emulated-elsewhere";
        }
        let d = a.diff(&b);
        assert!(d.results_identical(), "telemetry must not affect results");
        assert!(!d.is_empty());
        assert_eq!(d.telemetry[0].field, "info.backend");
    }
}
