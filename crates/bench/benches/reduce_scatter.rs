//! Criterion bench: the reduce-scatter primitive under the duplicate-density
//! regimes the paper discusses (distinct lanes ↔ converged lanes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gp_core::reduce_scatter::{reduce_scatter, Strategy};
use gp_simd::backend::Simd;
use gp_simd::engine::Engine;
use gp_simd::vector::{Mask16, LANES};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn batches(distinct: usize, n: usize, acc_len: i32) -> Vec<[i32; LANES]> {
    let mut rng = ChaCha8Rng::seed_from_u64(distinct as u64);
    (0..n)
        .map(|_| {
            let pool: Vec<i32> = (0..distinct).map(|_| rng.gen_range(0..acc_len)).collect();
            std::array::from_fn(|_| pool[rng.gen_range(0..distinct)])
        })
        .collect()
}

fn bench_reduce_scatter(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduce_scatter");
    let acc_len = 4096;
    for distinct in [16usize, 4, 1] {
        let idx = batches(distinct, 512, acc_len as i32);
        for strategy in Strategy::ALL {
            group.bench_with_input(
                BenchmarkId::new(strategy.name(), distinct),
                &idx,
                |b, idx| {
                    let mut acc = vec![0f32; acc_len];
                    match gp_core::backends::engine() {
                        Engine::Native(s) => b.iter(|| {
                            let vals = s.splat_f32(1.0);
                            for a in idx {
                                let iv = s.from_array_i32(*a);
                                unsafe {
                                    reduce_scatter(&s, strategy, &mut acc, iv, vals, Mask16::ALL)
                                };
                            }
                        }),
                        Engine::Emulated(s) => b.iter(|| {
                            let vals = s.splat_f32(1.0);
                            for a in idx {
                                let iv = s.from_array_i32(*a);
                                unsafe {
                                    reduce_scatter(&s, strategy, &mut acc, iv, vals, Mask16::ALL)
                                };
                            }
                        }),
                    }
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_reduce_scatter);
criterion_main!(benches);
