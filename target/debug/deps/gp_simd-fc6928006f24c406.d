/root/repo/target/debug/deps/gp_simd-fc6928006f24c406.d: crates/simd/src/lib.rs crates/simd/src/backend/mod.rs crates/simd/src/backend/avx512.rs crates/simd/src/backend/scalar.rs crates/simd/src/counted.rs crates/simd/src/counters.rs crates/simd/src/cost.rs crates/simd/src/energy.rs crates/simd/src/engine.rs crates/simd/src/vector.rs

/root/repo/target/debug/deps/libgp_simd-fc6928006f24c406.rlib: crates/simd/src/lib.rs crates/simd/src/backend/mod.rs crates/simd/src/backend/avx512.rs crates/simd/src/backend/scalar.rs crates/simd/src/counted.rs crates/simd/src/counters.rs crates/simd/src/cost.rs crates/simd/src/energy.rs crates/simd/src/engine.rs crates/simd/src/vector.rs

/root/repo/target/debug/deps/libgp_simd-fc6928006f24c406.rmeta: crates/simd/src/lib.rs crates/simd/src/backend/mod.rs crates/simd/src/backend/avx512.rs crates/simd/src/backend/scalar.rs crates/simd/src/counted.rs crates/simd/src/counters.rs crates/simd/src/cost.rs crates/simd/src/energy.rs crates/simd/src/engine.rs crates/simd/src/vector.rs

crates/simd/src/lib.rs:
crates/simd/src/backend/mod.rs:
crates/simd/src/backend/avx512.rs:
crates/simd/src/backend/scalar.rs:
crates/simd/src/counted.rs:
crates/simd/src/counters.rs:
crates/simd/src/cost.rs:
crates/simd/src/energy.rs:
crates/simd/src/engine.rs:
crates/simd/src/vector.rs:
