//! Criterion bench: one Louvain move phase per variant on representative
//! suite stand-ins (Figure 12's kernel).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gp_core::louvain::move_phase_with;
use gp_metrics::telemetry::NoopRecorder;
use gp_core::louvain::ovpl::{move_phase_ovpl, prepare};
use gp_core::louvain::{LouvainConfig, MoveState, Variant};
use gp_core::reduce_scatter::Strategy;
use gp_graph::suite::{build_standin, entry, SuiteScale};
use gp_simd::engine::Engine;

fn bench_louvain(c: &mut Criterion) {
    let mut group = c.benchmark_group("louvain_move_phase");
    group.sample_size(10);
    for name in ["belgium", "M6", "nlpkkt200"] {
        let g = build_standin(entry(name).unwrap(), SuiteScale::Test);
        for variant in [
            Variant::Plm,
            Variant::Mplm,
            Variant::Onpl(Strategy::Adaptive),
        ] {
            let config = LouvainConfig {
                variant,
                ..Default::default()
            };
            group.bench_with_input(
                BenchmarkId::new(variant.name(), name),
                &g,
                |b, g| match gp_core::backends::engine() {
                    Engine::Native(s) => b.iter(|| {
                        let state = MoveState::singleton(g);
                        move_phase_with(&s, g, &state, &config, &mut NoopRecorder)
                    }),
                    Engine::Emulated(s) => b.iter(|| {
                        let state = MoveState::singleton(g);
                        move_phase_with(&s, g, &state, &config, &mut NoopRecorder)
                    }),
                },
            );
        }
        // OVPL with preprocessing hoisted (the paper's timing convention).
        let config = LouvainConfig {
            variant: Variant::Ovpl,
            ..Default::default()
        };
        let layout = prepare(&g, &config);
        group.bench_with_input(BenchmarkId::new("OVPL", name), &g, |b, g| {
            match gp_core::backends::engine() {
                Engine::Native(s) => b.iter(|| {
                    let state = MoveState::singleton(g);
                    move_phase_ovpl(&s, &layout, &state, &config)
                }),
                Engine::Emulated(s) => b.iter(|| {
                    let state = MoveState::singleton(g);
                    move_phase_ovpl(&s, &layout, &state, &config)
                }),
            }
        });
    }
    group.finish();
}

criterion_group!(benches, bench_louvain);
criterion_main!(benches);
