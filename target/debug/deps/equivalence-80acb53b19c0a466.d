/root/repo/target/debug/deps/equivalence-80acb53b19c0a466.d: tests/equivalence.rs

/root/repo/target/debug/deps/equivalence-80acb53b19c0a466: tests/equivalence.rs

tests/equivalence.rs:
