/root/repo/target/debug/deps/gpart-78a48b66174dd084.d: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/io.rs

/root/repo/target/debug/deps/gpart-78a48b66174dd084: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/io.rs

crates/cli/src/main.rs:
crates/cli/src/commands.rs:
crates/cli/src/io.rs:
