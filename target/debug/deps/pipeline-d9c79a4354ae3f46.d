/root/repo/target/debug/deps/pipeline-d9c79a4354ae3f46.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-d9c79a4354ae3f46: tests/pipeline.rs

tests/pipeline.rs:
