/root/repo/target/debug/deps/table2_rmat_params-6a077ae08d79ef50.d: crates/bench/src/bin/table2_rmat_params.rs

/root/repo/target/debug/deps/table2_rmat_params-6a077ae08d79ef50: crates/bench/src/bin/table2_rmat_params.rs

crates/bench/src/bin/table2_rmat_params.rs:
