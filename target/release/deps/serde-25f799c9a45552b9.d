/root/repo/target/release/deps/serde-25f799c9a45552b9.d: .devstubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-25f799c9a45552b9.rlib: .devstubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-25f799c9a45552b9.rmeta: .devstubs/serde/src/lib.rs

.devstubs/serde/src/lib.rs:
