/root/repo/target/debug/deps/fig_modularity-23f08eff4f25f8f0.d: crates/bench/src/bin/fig_modularity.rs Cargo.toml

/root/repo/target/debug/deps/libfig_modularity-23f08eff4f25f8f0.rmeta: crates/bench/src/bin/fig_modularity.rs Cargo.toml

crates/bench/src/bin/fig_modularity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
