/root/repo/target/debug/deps/gp_metrics-d42479d077332794.d: crates/metrics/src/lib.rs crates/metrics/src/energy.rs crates/metrics/src/report.rs crates/metrics/src/stats.rs crates/metrics/src/telemetry.rs crates/metrics/src/timer.rs Cargo.toml

/root/repo/target/debug/deps/libgp_metrics-d42479d077332794.rmeta: crates/metrics/src/lib.rs crates/metrics/src/energy.rs crates/metrics/src/report.rs crates/metrics/src/stats.rs crates/metrics/src/telemetry.rs crates/metrics/src/timer.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/energy.rs:
crates/metrics/src/report.rs:
crates/metrics/src/stats.rs:
crates/metrics/src/telemetry.rs:
crates/metrics/src/timer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
