/root/repo/target/debug/deps/fig_memory_regime-96598a2a2ac970ce.d: crates/bench/src/bin/fig_memory_regime.rs

/root/repo/target/debug/deps/fig_memory_regime-96598a2a2ac970ce: crates/bench/src/bin/fig_memory_regime.rs

crates/bench/src/bin/fig_memory_regime.rs:
