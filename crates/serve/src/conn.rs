//! Nonblocking connection state machines for the event-loop server.
//!
//! [`LineDecoder`] turns an arbitrary byte stream into newline-delimited
//! frames, tolerating reads split at any byte boundary, CRLF line endings,
//! and oversized lines (which are dropped with an [`DecodeEvent::Oversized`]
//! marker while the decoder stays usable for subsequent lines).
//!
//! [`Connection`] wraps a nonblocking `TcpStream` with the decoder on the
//! read side and a cursor-tracked output buffer on the write side, so the
//! event loop can make progress on partial reads *and* partial writes
//! without ever blocking.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};

/// Hard cap on a single request line; anything longer is a protocol abuse,
/// not a graph workload (canonical graph specs are tens of bytes).
pub const MAX_LINE: usize = 256 * 1024;

/// One framing outcome from [`LineDecoder::push`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeEvent {
    /// A complete line (newline stripped, trailing `\r` trimmed).
    Line(String),
    /// A line exceeded the size cap and was discarded. Emitted once per
    /// oversized line, when the cap is first crossed.
    Oversized,
}

/// Incremental newline framer over a byte stream.
#[derive(Debug, Default)]
pub struct LineDecoder {
    buf: Vec<u8>,
    /// True while skipping the remainder of an oversized line.
    discarding: bool,
}

impl LineDecoder {
    /// Creates an empty decoder.
    pub fn new() -> LineDecoder {
        LineDecoder::default()
    }

    /// Feeds `bytes` into the framer, returning every event they complete.
    /// Partial lines are buffered until a later push supplies the newline.
    pub fn push(&mut self, bytes: &[u8]) -> Vec<DecodeEvent> {
        let mut events = Vec::new();
        for &b in bytes {
            if self.discarding {
                if b == b'\n' {
                    self.discarding = false;
                }
                continue;
            }
            if b == b'\n' {
                let mut line = std::mem::take(&mut self.buf);
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                events.push(DecodeEvent::Line(String::from_utf8_lossy(&line).into_owned()));
            } else {
                self.buf.push(b);
                if self.buf.len() > MAX_LINE {
                    self.buf.clear();
                    self.discarding = true;
                    events.push(DecodeEvent::Oversized);
                }
            }
        }
        events
    }

    /// Bytes currently buffered awaiting a newline.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

/// A nonblocking connection tracked by the event loop: framing state on the
/// read side, a partially-flushed output buffer on the write side.
pub(crate) struct Connection {
    pub stream: TcpStream,
    pub decoder: LineDecoder,
    /// Outgoing bytes; `wpos..` is the unsent suffix.
    wbuf: Vec<u8>,
    wpos: usize,
    /// The poller's current write-interest for this fd, so the loop only
    /// issues `reregister` when the desired interest actually changes.
    pub want_write: bool,
    /// Peer sent EOF; close once the write buffer drains.
    pub peer_closed: bool,
    /// Unrecoverable I/O error; reap immediately.
    pub dead: bool,
}

impl Connection {
    /// Adopts an accepted stream, switching it to nonblocking + nodelay.
    pub fn new(stream: TcpStream) -> io::Result<Connection> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Connection {
            stream,
            decoder: LineDecoder::new(),
            wbuf: Vec::new(),
            wpos: 0,
            want_write: false,
            peer_closed: false,
            dead: false,
        })
    }

    /// Reads everything currently available, returning the framing events.
    /// Sets `peer_closed` on EOF and `dead` on a fatal error.
    pub fn read_events(&mut self) -> Vec<DecodeEvent> {
        let mut events = Vec::new();
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.peer_closed = true;
                    break;
                }
                Ok(n) => events.extend(self.decoder.push(&chunk[..n])),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        events
    }

    /// Queues `line` (newline appended) for delivery.
    pub fn enqueue(&mut self, line: &str) {
        self.wbuf.extend_from_slice(line.as_bytes());
        self.wbuf.push(b'\n');
    }

    /// Writes as much queued output as the socket accepts right now.
    pub fn flush(&mut self) {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        } else if self.wpos > 64 * 1024 {
            // Compact so a slow reader can't pin an ever-growing buffer.
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
    }

    /// Unsent output remains queued.
    pub fn wants_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// Half-closes both directions (used during final drain).
    pub fn shutdown(&self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_survive_any_split_boundary() {
        let input = b"{\"kernel\":\"color\"}\r\n{\"stats\":true}\n";
        for split in 0..=input.len() {
            let mut dec = LineDecoder::new();
            let mut events = dec.push(&input[..split]);
            events.extend(dec.push(&input[split..]));
            assert_eq!(
                events,
                vec![
                    DecodeEvent::Line("{\"kernel\":\"color\"}".into()),
                    DecodeEvent::Line("{\"stats\":true}".into()),
                ],
                "split at byte {split}"
            );
            assert_eq!(dec.pending(), 0);
        }
    }

    #[test]
    fn oversized_line_is_dropped_and_decoder_recovers() {
        let mut dec = LineDecoder::new();
        let big = vec![b'x'; MAX_LINE + 10];
        let mut events = dec.push(&big);
        assert_eq!(events, vec![DecodeEvent::Oversized]);
        // Rest of the oversized line plus a valid follow-up.
        events = dec.push(b"yyy\nok\n");
        assert_eq!(events, vec![DecodeEvent::Line("ok".into())]);
    }

    #[test]
    fn byte_at_a_time_feed() {
        let mut dec = LineDecoder::new();
        let mut got = Vec::new();
        for &b in b"a\nbb\n" {
            got.extend(dec.push(&[b]));
        }
        assert_eq!(
            got,
            vec![DecodeEvent::Line("a".into()), DecodeEvent::Line("bb".into())]
        );
    }
}
