//! Incremental (warm-start) kernel execution for streaming graphs.
//!
//! After a [`gp_graph::DeltaCsr`] absorbs an edge batch, the previous
//! kernel output is almost entirely still correct — only the vertices near
//! the mutation can need new colors/labels/communities. This module
//! re-shapes a previous [`KernelOutput`] plus the batch's
//! [`TouchedSet`] into the kernel families' warm-start configs and routes
//! them through the ordinary [`crate::api::run_kernel_inner`] dispatch, so
//! the locality layer, both SIMD backends, and every sweep-mode executor
//! apply unchanged — the AVX-512 sweeps simply start from a seeded frontier
//! instead of an all-active one.
//!
//! Per-family seeding (see `docs/STREAMING.md` for the full arguments):
//!
//! * **Coloring** — seed = the touched vertices. Untouched vertices keep
//!   colors that were mutually conflict-free before the batch; deletions
//!   cannot create a conflict, and an added edge has both endpoints in the
//!   seed. `AssignColors` picks each seed vertex's smallest color absent
//!   from *live* neighbor colors, so a repaired vertex can never clash with
//!   an untouched neighbor — any residual conflict involves two vertices
//!   recolored in the same round, which the existing active-mode
//!   `DetectConflicts` scan catches exactly. The conflict cone therefore
//!   grows to fixpoint through the ordinary speculative rounds.
//! * **Label propagation / Louvain** — seed = touched vertices plus their
//!   one-hop neighborhood ([`TouchedSet::expand`]): a changed edge can flip
//!   the best label/community of either endpoint and of anything adjacent.
//!   Vertices farther out re-activate transitively through the existing
//!   frontier machinery, and the sweeps run to the family's own
//!   convergence criterion.
//!
//! Incremental results are *valid and comparable-quality*, not bit-equal
//! to a from-scratch run: these kernels are speculative/greedy, so their
//! output depends on the starting assignment by design. The equivalence
//! suite (`crates/core/tests/incremental.rs`) checks validity (proper
//! coloring, label fixpoint) and quality (modularity tolerance) against a
//! from-scratch run on the mutated graph.

use crate::api::{run_kernel_inner, Kernel, KernelOutput, KernelSpec, WarmStart};
use crate::coloring::ColorWarm;
use crate::labelprop::LpWarm;
use crate::louvain::LouvainWarm;
use gp_graph::csr::Csr;
use gp_graph::delta::{DeltaCsr, TouchedSet};
use gp_graph::Edge;
use gp_metrics::telemetry::{PhaseProbe, Recorder};
use std::sync::Arc;

/// Applies one mutation batch to `delta` under a [`PhaseProbe`], so traces
/// of a streaming session show the mutation cost next to the kernel
/// rounds. The phase is recorded as `delta_apply`, or `delta_apply+compact`
/// when the batch triggered a compaction (overflow or tombstone policy).
pub fn apply_update<R: Recorder>(
    delta: &mut DeltaCsr,
    additions: &[Edge],
    deletions: &[(u32, u32)],
    rec: &mut R,
) -> Result<TouchedSet, crate::error::RunError> {
    let probe = PhaseProbe::begin::<R>();
    let compactions_before = delta.stats().compactions;
    let touched = delta
        .apply_edges(additions, deletions)
        .map_err(crate::error::RunError::Update);
    let compacted = delta.stats().compactions > compactions_before;
    probe.finish(
        rec,
        if compacted {
            "delta_apply+compact"
        } else {
            "delta_apply"
        },
    );
    touched
}

/// Runs `spec` on the mutated graph `g`, warm-started from `prev` and the
/// batch's `touched` set.
///
/// `g` is the mutated graph — either [`DeltaCsr::as_csr`]'s padded view
/// (tombstones and slack are weight-0 self-loops every kernel ignores) or a
/// dense [`DeltaCsr::snapshot`]. Falls back to a cold [`run_kernel`]-
/// equivalent run when `prev` does not fit (different kernel family, or a
/// vertex count that no longer matches); an empty `touched` set returns
/// `prev` unchanged.
///
/// [`run_kernel`]: crate::api::run_kernel
pub fn run_kernel_incremental<R: Recorder>(
    g: &Csr,
    spec: &KernelSpec,
    prev: &KernelOutput,
    touched: &TouchedSet,
    rec: &mut R,
) -> KernelOutput {
    let n = g.num_vertices();
    let warm = match (spec.kernel, prev) {
        (Kernel::Coloring, KernelOutput::Coloring(p)) if p.colors.len() == n => {
            if touched.is_empty() {
                return prev.clone();
            }
            Some(WarmStart::Color(ColorWarm {
                colors: Arc::new(p.colors.clone()),
                seed: Arc::new(touched.as_slice().to_vec()),
            }))
        }
        (Kernel::Labelprop, KernelOutput::Labelprop(p)) if p.labels.len() == n => {
            if touched.is_empty() {
                return prev.clone();
            }
            Some(WarmStart::Lp(LpWarm {
                labels: Arc::new(p.labels.clone()),
                seed: Arc::new(touched.expand(g)),
            }))
        }
        (Kernel::Louvain(_), KernelOutput::Louvain(p)) if p.communities.len() == n => {
            if touched.is_empty() {
                return prev.clone();
            }
            Some(WarmStart::Louvain(LouvainWarm {
                communities: Arc::new(p.communities.clone()),
                seed: Arc::new(touched.expand(g)),
            }))
        }
        // Family mismatch or stale shape: nothing to warm-start from.
        _ => None,
    };
    run_kernel_inner(g, spec, rec, warm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::run_kernel;
    use crate::coloring::verify_coloring;
    use gp_graph::generators::erdos_renyi;
    use gp_metrics::telemetry::NoopRecorder;

    fn spec(kernel: &str) -> KernelSpec {
        KernelSpec::new(kernel.parse().unwrap())
    }

    #[test]
    fn empty_touched_set_returns_prev_unchanged() {
        let g = erdos_renyi(50, 150, 3);
        let d = DeltaCsr::from_csr(&g);
        let s = spec("coloring");
        let prev = run_kernel(d.as_csr(), &s, &mut NoopRecorder);
        let again =
            run_kernel_incremental(d.as_csr(), &s, &prev, &TouchedSet::default(), &mut NoopRecorder);
        assert_eq!(prev, again);
    }

    #[test]
    fn family_mismatch_falls_back_to_cold_run() {
        let g = erdos_renyi(50, 150, 3);
        let mut d = DeltaCsr::from_csr(&g);
        let lp_prev = run_kernel(d.as_csr(), &spec("lp"), &mut NoopRecorder);
        let touched = d.apply_edges(&[Edge::unweighted(0, 1)], &[]).unwrap();
        let out = run_kernel_incremental(
            d.as_csr(),
            &spec("coloring"),
            &lp_prev,
            &touched,
            &mut NoopRecorder,
        );
        let r = out.as_coloring().expect("coloring output");
        verify_coloring(&d.snapshot(), &r.colors).unwrap();
    }

    #[test]
    fn incremental_coloring_repairs_added_edges() {
        let g = erdos_renyi(120, 400, 9);
        let mut d = DeltaCsr::from_csr(&g);
        let s = spec("coloring");
        let mut prev = run_kernel(d.as_csr(), &s, &mut NoopRecorder);
        for round in 0..5u32 {
            let adds: Vec<Edge> = (0..6)
                .map(|i| Edge::unweighted((round * 17 + i) % 120, (round * 31 + 7 * i + 1) % 120))
                .filter(|e| e.u != e.v)
                .collect();
            let touched = apply_update(&mut d, &adds, &[(round, round + 1)], &mut NoopRecorder)
                .unwrap();
            prev = run_kernel_incremental(d.as_csr(), &s, &prev, &touched, &mut NoopRecorder);
            verify_coloring(&d.snapshot(), &prev.as_coloring().unwrap().colors).unwrap();
        }
    }
}
