//! Pipelined batch executor: overlap substrate stages with kernel rounds.
//!
//! Every entrypoint so far runs one request's phases strictly in sequence —
//! generate, assemble the CSR, prep, kernel rounds — so the gp-par pool
//! idles through the single-threaded stretches of one phase while the next
//! request's embarrassingly parallel substrate work waits in line. This
//! module applies the overlap playbook on-CPU (ROADMAP item 4): a
//! **typestate pipeline** whose stages are distinct types,
//!
//! ```text
//! Loaded ── build() ──▶ Built ── coarsen() ──▶ Coarsened ── partition() ──▶ Partitioned
//! ```
//!
//! so out-of-order execution is a *compile* error (there is no
//! `Loaded::partition`), and a [`PipelineExecutor`] that drives a bounded
//! in-flight window of batch items across two lanes:
//!
//! * the **substrate lane** (one helper thread running on the shared gp-par
//!   pool via [`gp_par::Pool::install`]) admits item N+1 and runs its
//!   `build`/`coarsen` stages while…
//! * the **kernel lane** (the calling thread) runs item N's kernel rounds.
//!
//! Stage handoff goes through a small SPSC slot ([`StageSlot`]) whose
//! capacity is the window: when the kernel lane falls behind, the substrate
//! lane blocks (backpressure) instead of racing ahead unboundedly.
//!
//! **Determinism contract.** The kernel lane consumes items strictly in
//! admission order and calls [`run_kernel`] exactly as a sequential
//! per-item loop would, on graphs produced by the same (thread-count
//! invariant) substrate. Outputs for `parallel: false` specs are therefore
//! bit-identical to sequential execution at any window size and pool size;
//! `parallel: true` specs keep their usual valid-but-racy semantics. The
//! `coarsen` stage runs the kernel-independent substrate prep (the degree
//! census behind the locality layer's bucket planning and the batch
//! report); multilevel coarsening proper depends on kernel-internal labels
//! and stays inside the kernel stage — hoisting it out would break the
//! bit-identity contract.
//!
//! Busy/idle timelines ([`gp_metrics::interval`]) thread through the
//! executor with the usual zero-cost noop path; `fig_pipeline` renders them
//! to CSV and a utilization summary. See `docs/PIPELINE.md`.

use crate::api::{run_kernel, KernelOutput, KernelSpec};
use gp_graph::csr::Csr;
use gp_graph::stats::DegreeHistogram;
use gp_metrics::interval::{IntervalSink, SpanProbe};
use gp_metrics::telemetry::{NoopRecorder, Recorder};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

// --------------------------------------------------------------- handoff

/// A small bounded SPSC handoff slot with blocking push/pop and two-sided
/// close — the per-stage channel between pipeline lanes.
///
/// `push` blocks while the slot is full (backpressure: the producer may run
/// at most `capacity` items ahead) and returns `false` once the receiver
/// has hung up; `pop` blocks while the slot is empty and returns `None`
/// once the sender has hung up *and* the buffer is drained — buffered items
/// are always delivered.
pub struct StageSlot<T> {
    state: Mutex<SlotState<T>>,
    cv: Condvar,
}

struct SlotState<T> {
    buf: VecDeque<T>,
    capacity: usize,
    tx_closed: bool,
    rx_closed: bool,
}

impl<T> StageSlot<T> {
    /// Slot with the given capacity (clamped to ≥ 1).
    pub fn new(capacity: usize) -> StageSlot<T> {
        StageSlot {
            state: Mutex::new(SlotState {
                buf: VecDeque::new(),
                capacity: capacity.max(1),
                tx_closed: false,
                rx_closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Delivers `value`, blocking while the slot is full. Returns `false`
    /// (dropping `value`) when the receiver has closed its side.
    pub fn push(&self, value: T) -> bool {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.rx_closed {
                return false;
            }
            if st.buf.len() < st.capacity {
                st.buf.push_back(value);
                self.cv.notify_all();
                return true;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Takes the next value, blocking while the slot is empty. Returns
    /// `None` once the sender has closed and every buffered value has been
    /// delivered.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(v) = st.buf.pop_front() {
                self.cv.notify_all();
                return Some(v);
            }
            if st.tx_closed {
                return None;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Sender hang-up: `pop` drains the buffer, then reports `None`.
    pub fn close_tx(&self) {
        self.state.lock().unwrap().tx_closed = true;
        self.cv.notify_all();
    }

    /// Receiver hang-up: subsequent `push` calls return `false` immediately
    /// (a cancelled consumer must not leave the producer blocked).
    pub fn close_rx(&self) {
        self.state.lock().unwrap().rx_closed = true;
        self.cv.notify_all();
    }
}

/// Closes a slot's sender side on drop, so a panicking producer can never
/// leave the consumer blocked in `pop`.
struct CloseTxOnDrop<'a, T>(&'a StageSlot<T>);

impl<T> Drop for CloseTxOnDrop<'_, T> {
    fn drop(&mut self) {
        self.0.close_tx();
    }
}

// ---------------------------------------------------------- cancellation

/// Shared cancellation flag for a running batch: setting it stops admission
/// of new items and drops in-flight items at the next stage boundary;
/// already-completed items keep their results.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation (idempotent, callable from any thread).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

// ------------------------------------------------------------- typestate

/// One batch item: a label, the kernel spec to run, and the deferred graph
/// materialization (generator + CSR assembly).
pub struct BatchItem {
    label: String,
    spec: KernelSpec,
    source: Box<dyn FnOnce() -> Csr + Send>,
}

impl BatchItem {
    /// New item; `source` materializes the graph when the pipeline's build
    /// stage runs (generation is deferred so it can overlap another item's
    /// kernel).
    pub fn new(
        label: impl Into<String>,
        spec: KernelSpec,
        source: impl FnOnce() -> Csr + Send + 'static,
    ) -> BatchItem {
        BatchItem {
            label: label.into(),
            spec,
            source: Box::new(source),
        }
    }

    /// The item's display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The kernel spec the item will run.
    pub fn spec(&self) -> &KernelSpec {
        &self.spec
    }
}

/// Stage 0 — admitted: the spec is known, nothing has been materialized.
///
/// The stage types are deliberately distinct (no shared trait object), so
/// running stages out of order does not typecheck:
///
/// ```compile_fail
/// use gp_core::api::{Kernel, KernelSpec};
/// use gp_core::pipeline::{BatchItem, Loaded};
/// use gp_metrics::telemetry::NoopRecorder;
///
/// let item = BatchItem::new("x", KernelSpec::new(Kernel::Coloring), || unreachable!());
/// // error[E0599]: no method `partition` on `Loaded` — build + coarsen first.
/// Loaded::admit(0, item).partition(&mut NoopRecorder);
/// ```
pub struct Loaded {
    index: usize,
    item: BatchItem,
}

impl Loaded {
    /// Admits a batch item at position `index`.
    pub fn admit(index: usize, item: BatchItem) -> Loaded {
        Loaded { index, item }
    }

    /// Runs the substrate build: graph generation + CSR assembly (parallel
    /// over the current gp-par pool, output invariant to its size).
    pub fn build(self) -> Built {
        let BatchItem { label, spec, source } = self.item;
        Built {
            index: self.index,
            label,
            spec,
            graph: source(),
        }
    }
}

/// Stage 1 — built: the CSR exists.
pub struct Built {
    index: usize,
    label: String,
    spec: KernelSpec,
    graph: Csr,
}

impl Built {
    /// Runs the coarsen-level substrate prep: the degree census that feeds
    /// the locality layer's bucket planning and the batch report.
    /// (Multilevel coarsening proper is kernel-internal — see the module
    /// docs — so hoisting it here would break bit-identity.)
    pub fn coarsen(self) -> Coarsened {
        let census = DegreeHistogram::build(&self.graph);
        Coarsened {
            index: self.index,
            label: self.label,
            spec: self.spec,
            graph: self.graph,
            census,
        }
    }
}

/// Stage 2 — coarsened: substrate work is done; only kernel rounds remain.
pub struct Coarsened {
    index: usize,
    label: String,
    spec: KernelSpec,
    graph: Csr,
    census: DegreeHistogram,
}

impl Coarsened {
    /// The item's batch position.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The materialized graph.
    pub fn graph(&self) -> &Csr {
        &self.graph
    }

    /// The degree census computed by the coarsen stage.
    pub fn census(&self) -> &DegreeHistogram {
        &self.census
    }

    /// Runs the kernel rounds through the one shared [`run_kernel`]
    /// dispatch — byte-for-byte the call a sequential per-item loop makes.
    pub fn partition<R: Recorder>(self, rec: &mut R) -> Partitioned {
        let output = run_kernel(&self.graph, &self.spec, rec);
        Partitioned {
            index: self.index,
            label: self.label,
            vertices: self.graph.num_vertices(),
            edges: self.graph.num_edges(),
            output,
        }
    }
}

/// Stage 3 — partitioned: the finished item.
pub struct Partitioned {
    index: usize,
    label: String,
    vertices: usize,
    edges: usize,
    output: KernelOutput,
}

impl Partitioned {
    /// The item's batch position.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The item's display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Vertex count of the graph the kernel ran on.
    pub fn vertices(&self) -> usize {
        self.vertices
    }

    /// Edge count of the graph the kernel ran on.
    pub fn edges(&self) -> usize {
        self.edges
    }

    /// Borrows the kernel output.
    pub fn output(&self) -> &KernelOutput {
        &self.output
    }

    /// Consumes the stage into the kernel output.
    pub fn into_output(self) -> KernelOutput {
        self.output
    }
}

// -------------------------------------------------------------- executor

/// Outcome of one batch item.
#[derive(Debug, Clone, PartialEq)]
pub enum ItemOutcome {
    /// The item ran to completion.
    Done(Box<KernelOutput>),
    /// The batch was cancelled before this item's kernel stage started; its
    /// in-flight substrate work (if any) was dropped.
    Cancelled,
}

impl ItemOutcome {
    /// The kernel output, when the item completed.
    pub fn output(&self) -> Option<&KernelOutput> {
        match self {
            ItemOutcome::Done(out) => Some(out),
            ItemOutcome::Cancelled => None,
        }
    }

    /// Whether the item was dropped by cancellation.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, ItemOutcome::Cancelled)
    }
}

/// Drives a batch of items through the typestate stages with a bounded
/// in-flight window: substrate stages for item N+1 run on a helper lane
/// (over the shared gp-par pool) while item N's kernel rounds run on the
/// calling thread.
#[derive(Debug, Clone, Copy)]
pub struct PipelineExecutor {
    window: usize,
}

impl PipelineExecutor {
    /// Executor whose substrate lane may complete at most `window` items
    /// ahead of the kernel lane (clamped to ≥ 1). `window` bounds memory —
    /// at most `window + 2` graphs are alive at once — not correctness:
    /// outputs are window-invariant.
    pub fn new(window: usize) -> PipelineExecutor {
        PipelineExecutor {
            window: window.max(1),
        }
    }

    /// The in-flight window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Runs the batch to completion, recording lane busy spans into `sink`
    /// ([`gp_metrics::interval::NoopIntervals`] for the zero-cost path).
    /// Results arrive in item order.
    pub fn run<S: IntervalSink>(&self, items: Vec<BatchItem>, sink: &S) -> Vec<ItemOutcome> {
        self.run_with(items, sink, &CancelToken::new(), |_, _| {})
    }

    /// [`PipelineExecutor::run`] with a cancellation token and a per-item
    /// completion callback (invoked on the kernel lane, in item order —
    /// cancelling from inside the callback deterministically drops every
    /// later item).
    pub fn run_with<S: IntervalSink>(
        &self,
        items: Vec<BatchItem>,
        sink: &S,
        cancel: &CancelToken,
        mut on_item: impl FnMut(usize, &ItemOutcome),
    ) -> Vec<ItemOutcome> {
        let n = items.len();
        let mut results: Vec<ItemOutcome> = (0..n).map(|_| ItemOutcome::Cancelled).collect();
        if n == 0 {
            return results;
        }
        let slot: StageSlot<Coarsened> = StageSlot::new(self.window);
        // The helper thread inherits the *caller's* pool, so both lanes
        // share one set of workers (a per-batch pool would fight the
        // ambient one for cores).
        let pool = gp_par::current();
        std::thread::scope(|scope| {
            let slot = &slot;
            let handle = std::thread::Builder::new()
                .name("gp-pipe-substrate".into())
                .spawn_scoped(scope, move || {
                    let _close = CloseTxOnDrop(slot);
                    pool.install(move || {
                        for (index, item) in items.into_iter().enumerate() {
                            if cancel.is_cancelled() {
                                break;
                            }
                            let loaded = Loaded::admit(index, item);
                            let probe = SpanProbe::begin::<S>();
                            let built = loaded.build();
                            probe.finish(sink, "substrate", 0, "build", index);
                            let probe = SpanProbe::begin::<S>();
                            let coarsened = built.coarsen();
                            probe.finish(sink, "substrate", 0, "coarsen", index);
                            if !slot.push(coarsened) {
                                break;
                            }
                        }
                    });
                })
                .expect("cannot spawn the pipeline substrate lane");
            // Kernel lane: strictly in admission order (the slot is FIFO and
            // this is the only consumer), so `parallel: false` outputs are
            // bit-identical to a sequential per-item loop.
            while let Some(staged) = slot.pop() {
                if cancel.is_cancelled() {
                    slot.close_rx();
                    break;
                }
                let index = staged.index();
                let probe = SpanProbe::begin::<S>();
                let done = staged.partition(&mut NoopRecorder);
                probe.finish(sink, "kernel", 0, "kernel", index);
                let outcome = ItemOutcome::Done(Box::new(done.into_output()));
                on_item(index, &outcome);
                results[index] = outcome;
            }
            handle.join().expect("pipeline substrate lane panicked");
        });
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Kernel;
    use gp_graph::generators::rmat::{rmat, RmatConfig};
    use gp_metrics::interval::{IntervalRecorder, NoopIntervals};

    fn item(kernel: Kernel, scale: u32, seed: u64) -> BatchItem {
        BatchItem::new(
            format!("{}-s{scale}", kernel.label()),
            KernelSpec::new(kernel).sequential(),
            move || rmat(RmatConfig::new(scale, 4).with_seed(seed)),
        )
    }

    #[test]
    fn stage_slot_delivers_in_order_and_drains_on_close() {
        let slot: StageSlot<u32> = StageSlot::new(2);
        assert!(slot.push(1));
        assert!(slot.push(2));
        slot.close_tx();
        assert_eq!(slot.pop(), Some(1));
        assert_eq!(slot.pop(), Some(2));
        assert_eq!(slot.pop(), None);
    }

    #[test]
    fn stage_slot_push_fails_after_rx_close() {
        let slot: StageSlot<u32> = StageSlot::new(1);
        slot.close_rx();
        assert!(!slot.push(7));
    }

    #[test]
    fn stage_slot_backpressure_blocks_until_pop() {
        let slot: StageSlot<u32> = StageSlot::new(1);
        assert!(slot.push(1));
        std::thread::scope(|s| {
            let t = s.spawn(|| slot.push(2)); // blocks: capacity 1
            std::thread::sleep(std::time::Duration::from_millis(10));
            assert_eq!(slot.pop(), Some(1));
            assert!(t.join().unwrap());
        });
        assert_eq!(slot.pop(), Some(2));
    }

    #[test]
    fn typestate_chain_matches_direct_run_kernel() {
        let spec = KernelSpec::new(Kernel::Coloring).sequential();
        let g = rmat(RmatConfig::new(8, 4).with_seed(3));
        let expected = run_kernel(&g, &spec, &mut NoopRecorder);
        let staged = Loaded::admit(
            0,
            BatchItem::new("c", spec, move || rmat(RmatConfig::new(8, 4).with_seed(3))),
        )
        .build()
        .coarsen();
        assert!(staged.census().max_degree > 0);
        let done = staged.partition(&mut NoopRecorder);
        assert_eq!(done.vertices(), 256);
        assert_eq!(*done.output(), expected);
    }

    #[test]
    fn executor_preserves_item_order_and_outputs() {
        let batch = vec![
            item(Kernel::Coloring, 8, 1),
            item(Kernel::Labelprop, 8, 2),
            item(Kernel::Coloring, 9, 3),
        ];
        let expected: Vec<KernelOutput> = vec![
            run_kernel(
                &rmat(RmatConfig::new(8, 4).with_seed(1)),
                &KernelSpec::new(Kernel::Coloring).sequential(),
                &mut NoopRecorder,
            ),
            run_kernel(
                &rmat(RmatConfig::new(8, 4).with_seed(2)),
                &KernelSpec::new(Kernel::Labelprop).sequential(),
                &mut NoopRecorder,
            ),
            run_kernel(
                &rmat(RmatConfig::new(9, 4).with_seed(3)),
                &KernelSpec::new(Kernel::Coloring).sequential(),
                &mut NoopRecorder,
            ),
        ];
        let got = PipelineExecutor::new(2).run(batch, &NoopIntervals);
        assert_eq!(got.len(), 3);
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(g.output().unwrap(), e);
        }
    }

    #[test]
    fn executor_records_a_timeline() {
        let rec = IntervalRecorder::new();
        let got = PipelineExecutor::new(2).run(
            vec![item(Kernel::Coloring, 8, 1), item(Kernel::Labelprop, 8, 2)],
            &rec,
        );
        assert!(got.iter().all(|o| !o.is_cancelled()));
        let tl = rec.into_timeline();
        // 2 items × (build + coarsen) on the substrate lane + 2 kernels.
        assert_eq!(tl.spans().len(), 6);
        let sum = tl.summary();
        assert_eq!(sum.lanes, 2);
        assert!(sum.stages.iter().any(|s| s.stage == "kernel"));
        assert!(sum.stages.iter().any(|s| s.stage == "build"));
    }

    #[test]
    fn cancel_from_callback_drops_every_later_item() {
        let cancel = CancelToken::new();
        let batch = vec![
            item(Kernel::Coloring, 8, 1),
            item(Kernel::Coloring, 8, 2),
            item(Kernel::Coloring, 8, 3),
            item(Kernel::Coloring, 8, 4),
        ];
        let cancel2 = cancel.clone();
        let got = PipelineExecutor::new(2).run_with(batch, &NoopIntervals, &cancel, |index, out| {
            assert!(!out.is_cancelled());
            if index == 0 {
                cancel2.cancel();
            }
        });
        // The callback runs on the kernel lane before the next kernel
        // starts, so the cut is deterministic: item 0 done, 1..4 dropped.
        assert!(!got[0].is_cancelled());
        assert!(got[1..].iter().all(ItemOutcome::is_cancelled));
    }

    #[test]
    fn pre_cancelled_batch_runs_nothing() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let got = PipelineExecutor::new(1).run_with(
            vec![item(Kernel::Coloring, 8, 1)],
            &NoopIntervals,
            &cancel,
            |_, _| panic!("no item should complete"),
        );
        assert!(got.iter().all(ItemOutcome::is_cancelled));
    }

    #[test]
    fn empty_batch_is_fine() {
        let got = PipelineExecutor::new(3).run(Vec::new(), &NoopIntervals);
        assert!(got.is_empty());
    }
}
