/root/repo/target/debug/examples/quickstart-f4bbab3e14411c1c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f4bbab3e14411c1c: examples/quickstart.rs

examples/quickstart.rs:
