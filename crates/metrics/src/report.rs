//! Plain-text, CSV, and JSON emission for the figure binaries.
//!
//! Every experiment binary prints one [`Table`] whose rows mirror the
//! series of the corresponding paper figure, so EXPERIMENTS.md can quote the
//! output directly. Per-round [`Trace`]s (see [`crate::telemetry`]) export
//! through [`trace_json`] / [`trace_csv`] / [`write_trace`] so a figure
//! binary can drop a convergence trace next to its table.

use crate::telemetry::Trace;
use gp_simd::counters::ALL_OP_CLASSES;
use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header arity.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: appends a row of displayable values.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                let _ = write!(s, "{:width$}", cell, width = widths[i]);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders a GitHub-flavored Markdown table (for EXPERIMENTS.md-style
    /// documents).
    pub fn to_markdown(&self) -> String {
        let escape = |cell: &str| cell.replace('|', "\\|");
        let mut out = String::new();
        let _ = writeln!(out, "**{}**", self.title);
        let _ = writeln!(
            out,
            "| {} |",
            self.headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(" | ")
        );
        let _ = writeln!(out, "|{}|", vec!["---"; self.headers.len()].join("|"));
        for row in &self.rows {
            let _ = writeln!(
                out,
                "| {} |",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(" | ")
            );
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(|h| quote(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// JSON-safe float: finite values as-is, NaN/inf as 0 (JSON has no NaN).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        // `{:?}` is shortest-round-trip for f64 and always valid JSON.
        format!("{x:?}")
    } else {
        "0".to_string()
    }
}

/// Renders a per-round trace as a self-describing JSON document:
///
/// ```json
/// {
///   "kernel": "coloring-onpl",
///   "total_secs": 0.0123,
///   "rounds": [
///     {"round": 0, "level": 0, "secs": 0.004, "moves": 1000,
///      "conflicts": 37, "active": 1000, "active_edges": 8000,
///      "quality_delta": 0.0, "ops": {"gather": 4096, "conflict": 256}}
///   ],
///   "phases": [
///     {"phase": "coarsen", "level": 0, "secs": 0.002}
///   ]
/// }
/// ```
///
/// `ops` lists only non-zero op classes (keys are
/// [`gp_simd::counters::OpClass::label`] strings).
pub fn trace_json(trace: &Trace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(
        out,
        "  \"kernel\": \"{}\",",
        trace.kernel.replace('"', "\\\"")
    );
    let _ = writeln!(out, "  \"total_secs\": {},", json_f64(trace.total_secs()));
    if let Some(h) = &trace.degree_hist {
        let join = |v: &[u64]| {
            v.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(", ")
        };
        let _ = writeln!(
            out,
            "  \"degree_hist\": {{\"low\": [{}], \"log2\": [{}], \
             \"max_degree\": {}, \"hub_threshold\": {}}},",
            join(&h.low),
            join(&h.log2),
            h.max_degree,
            h.hub_threshold.map_or("null".to_string(), |t| t.to_string())
        );
    }
    let _ = writeln!(out, "  \"rounds\": [");
    for (i, r) in trace.rounds.iter().enumerate() {
        let ops: Vec<String> = r
            .ops
            .iter_nonzero()
            .map(|(c, n)| format!("\"{}\": {}", c.label(), n))
            .collect();
        let _ = write!(
            out,
            "    {{\"round\": {}, \"level\": {}, \"secs\": {}, \"moves\": {}, \
             \"conflicts\": {}, \"active\": {}, \"active_edges\": {}, \
             \"quality_delta\": {}, \"blocks\": {}, \"bin_low\": {}, \
             \"bin_mid\": {}, \"bin_hub\": {}, \"ops\": {{{}}}}}",
            r.round,
            r.level,
            json_f64(r.secs),
            r.moves,
            r.conflicts,
            r.active,
            r.active_edges,
            json_f64(r.quality_delta),
            r.blocks,
            r.bin_low,
            r.bin_mid,
            r.bin_hub,
            ops.join(", ")
        );
        let _ = writeln!(out, "{}", if i + 1 < trace.rounds.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"phases\": [");
    for (i, p) in trace.phases.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"phase\": \"{}\", \"level\": {}, \"secs\": {}}}",
            p.name,
            p.level,
            json_f64(p.secs)
        );
        let _ = writeln!(out, "{}", if i + 1 < trace.phases.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    let _ = write!(out, "}}");
    out
}

/// Renders a per-round trace as CSV with one column per op class:
/// `round,level,secs,moves,conflicts,active,active_edges,quality_delta,s.load,...,mask`.
/// Substrate phases are appended as `# phase,<name>,<level>,<secs>` comment
/// lines so the round table keeps its fixed schema.
pub fn trace_csv(trace: &Trace) -> String {
    let mut out = String::new();
    let mut header: Vec<&str> = vec![
        "round",
        "level",
        "secs",
        "moves",
        "conflicts",
        "active",
        "active_edges",
        "quality_delta",
        "blocks",
        "bin_low",
        "bin_mid",
        "bin_hub",
    ];
    header.extend(ALL_OP_CLASSES.iter().map(|c| c.label()));
    let _ = writeln!(out, "{}", header.join(","));
    for r in &trace.rounds {
        let mut cells = vec![
            r.round.to_string(),
            r.level.to_string(),
            format!("{:e}", r.secs),
            r.moves.to_string(),
            r.conflicts.to_string(),
            r.active.to_string(),
            r.active_edges.to_string(),
            format!("{:e}", r.quality_delta),
            r.blocks.to_string(),
            r.bin_low.to_string(),
            r.bin_mid.to_string(),
            r.bin_hub.to_string(),
        ];
        cells.extend(ALL_OP_CLASSES.iter().map(|&c| r.ops.get(c).to_string()));
        let _ = writeln!(out, "{}", cells.join(","));
    }
    // Substrate phases ride along as comment lines so the round table keeps
    // its fixed schema for existing consumers.
    for p in &trace.phases {
        let _ = writeln!(out, "# phase,{},{},{:e}", p.name, p.level, p.secs);
    }
    out
}

/// Writes a trace to `path`, choosing the format by extension: `.csv` gets
/// [`trace_csv`], anything else gets [`trace_json`].
pub fn write_trace(path: &str, trace: &Trace) -> std::io::Result<()> {
    let body = if path.ends_with(".csv") {
        trace_csv(trace)
    } else {
        trace_json(trace)
    };
    std::fs::write(path, body)
}

/// Formats a ratio the way the paper's bar charts label them.
pub fn fmt_ratio(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats seconds with sensible units.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("Demo", &["graph", "speedup"]);
        t.row(&["belgium".into(), "1.52".into()]);
        t.row(&["uk-2002".into(), "0.91".into()]);
        let s = t.render();
        assert!(s.contains("# Demo"));
        assert!(s.contains("belgium"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["has,comma".into(), "has\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_wrong_arity() {
        Table::new("x", &["a", "b"]).row(&["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ratio(1.5), "1.50");
        assert_eq!(fmt_secs(2.0), "2.000 s");
        assert_eq!(fmt_secs(0.002), "2.000 ms");
        assert_eq!(fmt_secs(0.0000005), "0.5 µs");
    }

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("Md", &["a", "b"]);
        t.row(&["x|y".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("**Md**"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("x\\|y"), "{md}");
    }

    #[test]
    fn empty_table() {
        let t = Table::new("empty", &["a"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    fn demo_trace() -> Trace {
        use crate::telemetry::{DegreeSummary, PhaseStats, RoundStats};
        use gp_simd::counters::{OpClass, OpCounts};
        Trace {
            kernel: "demo-kernel".into(),
            degree_hist: Some(DegreeSummary {
                low: vec![1, 80, 19],
                log2: vec![80, 19, 0, 0, 0, 0, 1],
                max_degree: 99,
                hub_threshold: Some(64),
            }),
            phases: vec![PhaseStats {
                name: "coarsen",
                level: 0,
                secs: 0.125,
            }],
            rounds: vec![
                RoundStats {
                    round: 0,
                    level: 0,
                    secs: 0.5,
                    moves: 100,
                    conflicts: 7,
                    active: 100,
                    active_edges: 840,
                    quality_delta: 0.25,
                    ops: OpCounts::default()
                        .with(OpClass::Gather, 64)
                        .with(OpClass::Conflict, 4),
                    blocks: 4,
                    bin_low: 80,
                    bin_mid: 19,
                    bin_hub: 1,
                },
                RoundStats {
                    round: 1,
                    level: 1,
                    secs: 0.25,
                    moves: 3,
                    conflicts: 0,
                    active: 7,
                    active_edges: 52,
                    quality_delta: f64::NAN,
                    ops: OpCounts::default(),
                    blocks: 0,
                    bin_low: 0,
                    bin_mid: 0,
                    bin_hub: 0,
                },
            ],
        }
    }

    #[test]
    fn trace_json_shape() {
        let json = trace_json(&demo_trace());
        assert!(json.contains("\"kernel\": \"demo-kernel\""));
        assert!(json.contains("\"round\": 0"));
        assert!(json.contains("\"gather\": 64"));
        assert!(json.contains("\"conflict\": 4"));
        assert!(json.contains("\"moves\": 100"));
        assert!(json.contains("\"active_edges\": 840"));
        assert!(json.contains("\"blocks\": 4"));
        assert!(json.contains("\"bin_low\": 80"));
        assert!(json.contains("\"bin_hub\": 1"));
        assert!(json.contains("\"total_secs\": 0.75"));
        assert!(
            json.contains("\"degree_hist\": {\"low\": [1, 80, 19], \"log2\": [80, 19, 0, 0, 0, 0, 1], \"max_degree\": 99, \"hub_threshold\": 64}"),
            "{json}"
        );
        assert!(json.contains("\"phase\": \"coarsen\""), "{json}");
        // NaN must not leak into JSON.
        assert!(!json.contains("NaN"));
        // Crude structural sanity: balanced braces/brackets.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn trace_csv_shape() {
        let csv = trace_csv(&demo_trace());
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header
            .starts_with("round,level,secs,moves,conflicts,active,active_edges,quality_delta"));
        assert!(header.ends_with("mask"));
        let row0 = lines.next().unwrap();
        assert!(row0.starts_with("0,0,"));
        assert_eq!(
            header.split(',').count(),
            row0.split(',').count(),
            "column count mismatch"
        );
        // 1 header + 2 rounds + 1 phase comment.
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.lines().last().unwrap().starts_with("# phase,coarsen,0,"));
    }

    #[test]
    fn write_trace_by_extension() {
        let dir = std::env::temp_dir();
        let json_path = dir.join(format!("gp_trace_{}.json", std::process::id()));
        let csv_path = dir.join(format!("gp_trace_{}.csv", std::process::id()));
        let t = demo_trace();
        write_trace(json_path.to_str().unwrap(), &t).unwrap();
        write_trace(csv_path.to_str().unwrap(), &t).unwrap();
        let json = std::fs::read_to_string(&json_path).unwrap();
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        assert!(json.starts_with('{'));
        assert!(csv.starts_with("round,"));
        std::fs::remove_file(&json_path).ok();
        std::fs::remove_file(&csv_path).ok();
    }
}
