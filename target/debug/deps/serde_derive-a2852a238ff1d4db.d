/root/repo/target/debug/deps/serde_derive-a2852a238ff1d4db.d: .devstubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-a2852a238ff1d4db.so: .devstubs/serde_derive/src/lib.rs

.devstubs/serde_derive/src/lib.rs:
