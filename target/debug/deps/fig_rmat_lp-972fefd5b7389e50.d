/root/repo/target/debug/deps/fig_rmat_lp-972fefd5b7389e50.d: crates/bench/src/bin/fig_rmat_lp.rs Cargo.toml

/root/repo/target/debug/deps/libfig_rmat_lp-972fefd5b7389e50.rmeta: crates/bench/src/bin/fig_rmat_lp.rs Cargo.toml

crates/bench/src/bin/fig_rmat_lp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
