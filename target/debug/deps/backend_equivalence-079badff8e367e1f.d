/root/repo/target/debug/deps/backend_equivalence-079badff8e367e1f.d: crates/simd/tests/backend_equivalence.rs

/root/repo/target/debug/deps/backend_equivalence-079badff8e367e1f: crates/simd/tests/backend_equivalence.rs

crates/simd/tests/backend_equivalence.rs:
