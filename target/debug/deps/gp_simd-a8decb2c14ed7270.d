/root/repo/target/debug/deps/gp_simd-a8decb2c14ed7270.d: crates/simd/src/lib.rs crates/simd/src/backend/mod.rs crates/simd/src/backend/avx512.rs crates/simd/src/backend/scalar.rs crates/simd/src/counted.rs crates/simd/src/counters.rs crates/simd/src/cost.rs crates/simd/src/energy.rs crates/simd/src/engine.rs crates/simd/src/vector.rs

/root/repo/target/debug/deps/gp_simd-a8decb2c14ed7270: crates/simd/src/lib.rs crates/simd/src/backend/mod.rs crates/simd/src/backend/avx512.rs crates/simd/src/backend/scalar.rs crates/simd/src/counted.rs crates/simd/src/counters.rs crates/simd/src/cost.rs crates/simd/src/energy.rs crates/simd/src/engine.rs crates/simd/src/vector.rs

crates/simd/src/lib.rs:
crates/simd/src/backend/mod.rs:
crates/simd/src/backend/avx512.rs:
crates/simd/src/backend/scalar.rs:
crates/simd/src/counted.rs:
crates/simd/src/counters.rs:
crates/simd/src/cost.rs:
crates/simd/src/energy.rs:
crates/simd/src/engine.rs:
crates/simd/src/vector.rs:
