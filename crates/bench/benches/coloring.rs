//! Criterion bench: scalar vs ONPL speculative coloring on representative
//! suite stand-ins (one per structural class).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gp_core::api::{run_kernel, Backend, Kernel, KernelSpec};
use gp_core::coloring::{color_with, ColoringConfig};
use gp_metrics::telemetry::NoopRecorder;
use gp_graph::suite::{build_standin, entry, SuiteScale};
use gp_simd::engine::Engine;

fn bench_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("coloring");
    let config = ColoringConfig::default();
    for name in ["belgium", "M6", "in-2004", "nlpkkt200"] {
        let g = build_standin(entry(name).unwrap(), SuiteScale::Test);
        let spec = KernelSpec::new(Kernel::Coloring).with_backend(Backend::Scalar);
        group.bench_with_input(BenchmarkId::new("scalar", name), &g, |b, g| {
            b.iter(|| run_kernel(g, &spec, &mut NoopRecorder))
        });
        group.bench_with_input(BenchmarkId::new("onpl", name), &g, |b, g| {
            match gp_core::backends::engine() {
                Engine::Native(s) => b.iter(|| color_with(&s, g, &config, &mut NoopRecorder)),
                Engine::Emulated(s) => b.iter(|| color_with(&s, g, &config, &mut NoopRecorder)),
            }
        });
    }
    group.finish();
}

criterion_group!(benches, bench_coloring);
criterion_main!(benches);
