//! Extension-based graph loading and saving.

use gp_graph::csr::Csr;
use gp_graph::io::{
    read_edgelist, read_matrix_market, read_metis, write_edgelist, write_matrix_market,
    write_metis,
};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

/// Supported on-disk formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    EdgeList,
    Metis,
    MatrixMarket,
}

/// Infers a format from a file extension.
pub fn format_of(path: &str) -> Result<Format, String> {
    match Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .map(|e| e.to_ascii_lowercase())
        .as_deref()
    {
        Some("el") | Some("txt") | Some("edges") => Ok(Format::EdgeList),
        Some("graph") | Some("metis") => Ok(Format::Metis),
        Some("mtx") | Some("mm") => Ok(Format::MatrixMarket),
        other => Err(format!(
            "cannot infer format from extension {other:?} of `{path}` \
             (known: .el/.txt/.edges, .graph/.metis, .mtx/.mm)"
        )),
    }
}

/// Loads a graph, inferring the format.
pub fn load(path: &str) -> Result<Csr, String> {
    let format = format_of(path)?;
    let file = File::open(path).map_err(|e| format!("cannot open `{path}`: {e}"))?;
    let reader = BufReader::new(file);
    let parse = |r: Result<Csr, gp_graph::io::IoError>| {
        r.map_err(|e| format!("cannot parse `{path}`: {e}"))
    };
    match format {
        Format::EdgeList => parse(read_edgelist(reader)),
        Format::Metis => parse(read_metis(reader)),
        Format::MatrixMarket => parse(read_matrix_market(reader)),
    }
}

/// Saves a graph, inferring the format.
pub fn save(g: &Csr, path: &str) -> Result<(), String> {
    let format = format_of(path)?;
    let file = File::create(path).map_err(|e| format!("cannot create `{path}`: {e}"))?;
    let writer = BufWriter::new(file);
    let done = match format {
        Format::EdgeList => write_edgelist(g, writer),
        Format::Metis => write_metis(g, writer),
        Format::MatrixMarket => write_matrix_market(g, writer),
    };
    done.map_err(|e| format!("cannot write `{path}`: {e}"))
}

/// Writes one value per line (community/color assignments).
pub fn save_assignment(values: &[u32], path: &str) -> Result<(), String> {
    use std::io::Write;
    let file = File::create(path).map_err(|e| format!("cannot create `{path}`: {e}"))?;
    let mut w = BufWriter::new(file);
    for v in values {
        writeln!(w, "{v}").map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }
    Ok(())
}
