/root/repo/target/debug/deps/fig_ovpl_selected-ebb1686d4c05f560.d: crates/bench/src/bin/fig_ovpl_selected.rs

/root/repo/target/debug/deps/fig_ovpl_selected-ebb1686d4c05f560: crates/bench/src/bin/fig_ovpl_selected.rs

crates/bench/src/bin/fig_ovpl_selected.rs:
