//! The differential runner: executes one graph through every combination
//! the determinism contract speaks about and diffs the outputs with
//! [`KernelOutput::diff`].
//!
//! ## Contract tiers
//!
//! The runner encodes the repo's determinism contract
//! (`docs/KERNELS.md`, `docs/PARALLELISM.md`) as two tiers:
//!
//! * **Bit tier** — outputs must be byte-identical. Holds for: `full` vs
//!   `active` sweeps; blocked vs unblocked; bucketed vs unbucketed;
//!   sequential specs across 1/2/8-thread pools; and backend pairs per
//!   kernel family — coloring and Louvain agree across *all* backends
//!   (the scalar reference and the 16-lane kernels are move-for-move
//!   equivalent), label propagation only across the vector backends
//!   (scalar MPLP tie-breaks differently by design, and `auto` resolves to
//!   MPLP on non-AVX-512 hosts — the [`gp_core::backends`] registry
//!   decides which pairs are comparable on this host).
//! * **Racy tier** — parallel execution on multi-thread pools may reorder
//!   speculative moves, so outputs are checked for *validity* (proper
//!   coloring within the greedy Δ+1 bound, assignments in range) and
//!   *quality* (community kernels within [`MODULARITY_TOL`] of the
//!   sequential reference) instead of bits.
//!
//! Every check panics with the offending `(case, kernel, combination)` and
//! the rendered [`OutputDiff`], so a CI failure names the divergence
//! instead of dumping arrays. The entry points return the number of
//! comparisons they made — the conformance tests assert the matrix did not
//! silently collapse.

use gp_core::api::{run_kernel, Backend, Blocking, Bucketing, Kernel, KernelSpec, SweepMode};
use gp_core::api::KernelOutput;
use gp_core::coloring::verify_coloring;
use gp_core::incremental::run_kernel_incremental;
use gp_core::louvain::modularity;
use gp_graph::csr::Csr;
use gp_graph::delta::DeltaCsr;
use gp_graph::par::with_threads;
use gp_metrics::telemetry::NoopRecorder;

/// Every kernel × variant the unified entrypoint dispatches — the same
/// list the equivalence suites iterate.
pub const ALL_KERNELS: [&str; 8] = [
    "color",
    "louvain-plm",
    "louvain-mplm",
    "louvain-onpl-cd",
    "louvain-onpl-ivr",
    "louvain-onpl",
    "louvain-ovpl",
    "labelprop",
];

/// Racy-tier quality bound: a parallel (or incremental) community result
/// must come within this much modularity of the sequential reference.
pub const MODULARITY_TOL: f64 = 0.25;

/// Thread counts the bit tier is checked across (the substrate contract:
/// sequential specs are pool-size-invariant).
pub const THREADS: [usize; 3] = [1, 2, 8];

fn spec_for(kernel: &str) -> KernelSpec {
    KernelSpec::new(kernel.parse::<Kernel>().unwrap())
}

/// Backend pairs the bit tier promises identical on *this host*, per
/// kernel family. Derived from the backend registry: label propagation's
/// `auto` resolves to scalar MPLP on hosts without AVX-512 (or under the
/// forced-emulation override), where it is only comparable to the scalar
/// pin.
pub fn bit_identical_pairs(kernel: &str) -> Vec<(Backend, Backend)> {
    let native = gp_core::backends::engine().is_native();
    if kernel == "labelprop" {
        let mut pairs = vec![(Backend::Emulated, Backend::Native)];
        if native {
            pairs.push((Backend::Auto, Backend::Native));
        } else {
            pairs.push((Backend::Auto, Backend::Scalar));
        }
        pairs
    } else {
        // Coloring and every Louvain variant: scalar reference and vector
        // kernels are move-for-move equivalent, so all pins agree.
        vec![
            (Backend::Scalar, Backend::Emulated),
            (Backend::Emulated, Backend::Native),
            (Backend::Auto, Backend::Native),
        ]
    }
}

fn assert_identical(case: &str, what: &str, a: &KernelOutput, b: &KernelOutput) {
    let d = a.diff(b);
    assert!(
        d.results_identical(),
        "{case}: {what} diverged:\n{d}"
    );
}

/// **Bit tier.** Runs `kernels` on `g` and asserts every bit-identity the
/// contract promises: backend pairs, full ≡ active, blocked ≡ unblocked,
/// bucketed ≡ unbucketed, and 1/2/8-thread invariance of sequential specs.
/// Returns the number of output comparisons performed.
pub fn bit_tier(case: &str, g: &Csr, kernels: &[&str]) -> usize {
    let mut comparisons = 0;
    for kernel in kernels {
        let base = spec_for(kernel).sequential();
        let reference = run_kernel(g, &base, &mut NoopRecorder);

        // Backend pairs (sequential, both sweeps).
        for (left, right) in bit_identical_pairs(kernel) {
            for sweep in [SweepMode::Full, SweepMode::Active] {
                let a = run_kernel(
                    g,
                    &base.with_backend(left).with_sweep(sweep),
                    &mut NoopRecorder,
                );
                let b = run_kernel(
                    g,
                    &base.with_backend(right).with_sweep(sweep),
                    &mut NoopRecorder,
                );
                assert_identical(
                    case,
                    &format!("{kernel} {left} vs {right} (sweep {sweep})"),
                    &a,
                    &b,
                );
                comparisons += 1;
            }
        }

        // full ≡ active on the default backend.
        let full = run_kernel(g, &base.with_sweep(SweepMode::Full), &mut NoopRecorder);
        let active = run_kernel(g, &base.with_sweep(SweepMode::Active), &mut NoopRecorder);
        assert_identical(case, &format!("{kernel} full vs active"), &full, &active);
        comparisons += 1;

        // Locality knobs: blocked ≡ unblocked (one-vertex block included),
        // bucketed ≡ unbucketed.
        let unblocked = run_kernel(
            g,
            &base.with_block(Blocking::Off).with_bucket(Bucketing::Off),
            &mut NoopRecorder,
        );
        for block in [Blocking::Auto, Blocking::Kb(1), Blocking::Vertices(1)] {
            let blocked = run_kernel(
                g,
                &base.with_block(block).with_bucket(Bucketing::Off),
                &mut NoopRecorder,
            );
            assert_identical(case, &format!("{kernel} block={block} vs off"), &unblocked, &blocked);
            comparisons += 1;
        }
        let bucketed = run_kernel(
            g,
            &base.with_block(Blocking::Off).with_bucket(Bucketing::Degree),
            &mut NoopRecorder,
        );
        assert_identical(case, &format!("{kernel} bucket=degree vs off"), &unblocked, &bucketed);
        comparisons += 1;

        // Pool-size invariance of the sequential spec.
        for threads in THREADS {
            let out = with_threads(threads, || run_kernel(g, &base, &mut NoopRecorder));
            assert_identical(case, &format!("{kernel} @ {threads} threads"), &reference, &out);
            comparisons += 1;
        }
    }
    comparisons
}

/// Structural validity of an output on `g`; `max_degree` bounds the greedy
/// coloring. Panics with `(case, kernel)` on violation.
pub fn assert_valid(case: &str, kernel: &str, g: &Csr, max_degree: usize, out: &KernelOutput) {
    let n = g.num_vertices() as u32;
    match out {
        KernelOutput::Coloring(r) => {
            verify_coloring(g, &r.colors).unwrap_or_else(|e| panic!("{case}: {kernel}: {e}"));
            assert!(
                r.num_colors <= max_degree as u32 + 1,
                "{case}: {kernel}: {} colors beyond the greedy Δ+1 bound",
                r.num_colors
            );
        }
        KernelOutput::Louvain(r) => {
            assert_eq!(r.communities.len(), n as usize, "{case}: {kernel}: length");
            assert!(
                r.communities.iter().all(|&c| c < n),
                "{case}: {kernel}: community id out of range"
            );
            assert!(r.modularity.is_finite(), "{case}: {kernel}: modularity NaN");
        }
        KernelOutput::Labelprop(r) => {
            assert_eq!(r.labels.len(), n as usize, "{case}: {kernel}: length");
            assert!(
                r.labels.iter().all(|&l| l < n),
                "{case}: {kernel}: label out of range"
            );
        }
    }
}

/// Modularity of a community-style output (None for coloring).
fn quality(out: &KernelOutput, g: &Csr) -> Option<f64> {
    match out {
        KernelOutput::Louvain(r) => Some(modularity(g, &r.communities)),
        KernelOutput::Labelprop(r) => Some(modularity(g, &r.labels)),
        KernelOutput::Coloring(_) => None,
    }
}

/// **Racy tier.** Runs `kernels` in parallel mode on an 8-thread pool and
/// checks validity plus (for Louvain) quality against the sequential
/// reference. Also asserts the ≤1-thread escape hatch: a parallel spec on
/// a 1-thread pool is bit-identical to the sequential spec.
pub fn racy_tier(case: &str, g: &Csr, kernels: &[&str]) -> usize {
    let mut checks = 0;
    let max_degree = g.max_degree();
    for kernel in kernels {
        let seq = run_kernel(g, &spec_for(kernel).sequential(), &mut NoopRecorder);
        let par_spec = spec_for(kernel);

        // Parallel on a 1-thread pool collapses to the sequential schedule.
        let par1 = with_threads(1, || run_kernel(g, &par_spec, &mut NoopRecorder));
        assert_identical(case, &format!("{kernel} parallel@1 vs sequential"), &seq, &par1);
        checks += 1;

        // Parallel on a real pool: validity + quality, never bits.
        let par8 = with_threads(8, || run_kernel(g, &par_spec, &mut NoopRecorder));
        assert_valid(case, kernel, g, max_degree, &par8);
        checks += 1;
        if kernel.starts_with("louvain") {
            let (q_seq, q_par) = (quality(&seq, g).unwrap(), quality(&par8, g).unwrap());
            assert!(
                q_par >= q_seq - MODULARITY_TOL,
                "{case}: {kernel}: parallel modularity {q_par:.4} fell {:.4} below sequential {q_seq:.4}",
                q_seq - q_par
            );
            checks += 1;
        }
    }
    checks
}

/// **Streaming tier.** Replays a delta-edit script through
/// `run_kernel_incremental`, asserting validity after every batch and
/// final quality against a from-scratch run on the mutated graph — the
/// incremental contract (valid and comparable, not bit-identical).
pub fn streaming_tier(
    case: &str,
    g: &Csr,
    script: &[crate::generators::EditBatch],
    kernels: &[&str],
) -> usize {
    let mut checks = 0;
    for kernel in kernels {
        let spec = spec_for(kernel).sequential();
        let mut delta = DeltaCsr::from_csr(g);
        let mut prev = run_kernel(delta.as_csr(), &spec, &mut NoopRecorder);
        for (step, (adds, dels)) in script.iter().enumerate() {
            let touched = delta
                .apply_edges(adds, dels)
                .unwrap_or_else(|e| panic!("{case}: {kernel}: step {step} refused: {e}"));
            prev = run_kernel_incremental(delta.as_csr(), &spec, &prev, &touched, &mut NoopRecorder);
            assert_valid(
                &format!("{case} step {step}"),
                kernel,
                &delta.snapshot(),
                delta.as_csr().max_degree(),
                &prev,
            );
            checks += 1;
        }
        let dense = delta.snapshot();
        let cold = run_kernel(&dense, &spec, &mut NoopRecorder);
        if let (Some(q_inc), Some(q_cold)) = (quality(&prev, &dense), quality(&cold, &dense)) {
            assert!(
                q_inc >= q_cold - MODULARITY_TOL,
                "{case}: {kernel}: incremental modularity {q_inc:.4} fell {:.4} below cold {q_cold:.4}",
                q_cold - q_inc
            );
            checks += 1;
        }
    }
    checks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_are_registry_consistent() {
        for kernel in ALL_KERNELS {
            let pairs = bit_identical_pairs(kernel);
            assert!(!pairs.is_empty());
            // Every named backend must appear in the registry.
            for (a, b) in pairs {
                for backend in [a, b] {
                    assert!(Backend::available().iter().any(|r| r.backend == backend));
                }
            }
        }
    }

    #[test]
    fn smoke_on_a_tiny_graph() {
        let g = crate::generators::pendant_spam(24, 20, 1);
        let c = bit_tier("smoke", &g, &["color", "labelprop"]);
        assert!(c > 0);
        let c = racy_tier("smoke", &g, &["color"]);
        assert!(c > 0);
    }
}
