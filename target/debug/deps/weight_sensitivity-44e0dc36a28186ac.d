/root/repo/target/debug/deps/weight_sensitivity-44e0dc36a28186ac.d: crates/core/tests/weight_sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libweight_sensitivity-44e0dc36a28186ac.rmeta: crates/core/tests/weight_sensitivity.rs Cargo.toml

crates/core/tests/weight_sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
