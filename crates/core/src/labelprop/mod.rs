//! Label propagation community detection (Section 3.3 / Algorithm 5).
//!
//! Every vertex starts in its own singleton community (its label); each
//! sweep, every *active* vertex adopts the label with the heaviest total
//! edge weight in its neighborhood. A vertex that keeps its label goes
//! inactive; changing a label re-activates the neighbors. The process stops
//! when fewer than θ vertices update.
//!
//! [`mplp`] is the scalar parallel baseline (MPLP in Figure 15); [`onlp`]
//! is the one-neighbor-per-lane vectorization (ONLP).

pub mod mplp;
pub mod onlp;

use crate::frontier::{Frontier, SweepMode};
use crate::locality::{self, Blocking, Bucketing, Plan};
use crate::louvain::mplm::AffinityBuf;
use gp_graph::csr::Csr;
use gp_metrics::telemetry::{Recorder, RoundProbe, RoundStats, RunInfo, RunTimer};
use gp_simd::counters;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Warm start for incremental label propagation
/// (`crates/core/src/incremental.rs`): adopt a previous labeling and sweep
/// only from a seeded frontier (the touched vertices and their neighborhoods)
/// instead of the all-active first sweep.
#[derive(Debug, Clone)]
pub struct LpWarm {
    /// Per-vertex labels from the previous run.
    pub labels: Arc<Vec<u32>>,
    /// Sorted, deduplicated vertices active in the first sweep.
    pub seed: Arc<Vec<u32>>,
}

/// Label propagation configuration.
#[derive(Debug, Clone)]
pub struct LabelPropConfig {
    /// Process vertices with rayon parallelism.
    pub parallel: bool,
    /// Stop when a sweep updates ≤ θ vertices (the paper's `updated > θ`
    /// loop condition). NetworKit's default is `n · 10⁻⁵`, applied via
    /// [`LabelPropConfig::theta_for`].
    pub theta_fraction: f64,
    /// Hard sweep cap (the algorithm converges much earlier in practice).
    pub max_iterations: usize,
    /// Record scalar op counts for modeled runs.
    pub count_ops: bool,
    /// Seed for the per-sweep traversal shuffle. Label propagation needs a
    /// randomized visit order (the paper: "Nodes traverse in a parallel
    /// fashion, which brings the randomization on the node selection") —
    /// in-order sweeps let low-id labels flood across community borders.
    pub seed: u64,
    /// How each sweep enumerates vertices: [`SweepMode::Active`] visits only
    /// the frontier (vertices with a neighbor that changed label last
    /// sweep) through a packed worklist, [`SweepMode::Full`] scans all
    /// vertices and skips inactive ones in place. Bit-identical outputs.
    pub sweep: SweepMode,
    /// Cache-blocking policy for the sweeps (locality layer).
    /// Bit-identical outputs for every setting.
    pub block: Blocking,
    /// Degree-bucketing policy: routes runs of ≤16-degree vertices through
    /// the one-vertex-per-lane batch kernel (ONLP only; MPLP stays scalar).
    pub bucket: Bucketing,
    /// Warm start: adopt previous labels and re-converge from a seeded
    /// frontier. `None` (the default) is the ordinary full run.
    pub warm: Option<LpWarm>,
}

impl Default for LabelPropConfig {
    fn default() -> Self {
        LabelPropConfig {
            parallel: true,
            theta_fraction: 1e-5,
            max_iterations: 100,
            count_ops: false,
            seed: 0x1abe1,
            sweep: SweepMode::Active,
            block: Blocking::default(),
            bucket: Bucketing::default(),
            warm: None,
        }
    }
}

/// Builds the shuffled traversal order for sweep `iteration`, deterministic
/// per `(seed, iteration)` (used by SLPA; label propagation itself orders
/// by [`order_key`] so the `full` and `active` sweeps agree).
pub(crate) fn sweep_order(n: usize, seed: u64, iteration: usize) -> Vec<u32> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut rng =
        rand_chacha::ChaCha8Rng::seed_from_u64(seed.wrapping_add(iteration as u64 * 0x9e3779b9));
    order.shuffle(&mut rng);
    order
}

/// Deterministic pseudorandom sort key for vertex `v` in sweep `iteration`
/// (splitmix64-style finalizer). Sorting *any subset* of vertices by
/// `(order_key, v)` yields the subsequence of the same global permutation —
/// which is exactly what makes the packed active-set worklist visit
/// vertices in the same relative order as a full shuffled sweep, keeping
/// the two sweep modes bit-identical.
#[inline]
pub(crate) fn order_key(seed: u64, iteration: usize, v: u32) -> u64 {
    let mut x = seed
        ^ (iteration as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (u64::from(v) << 1 | 1);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Sorts `vertices` into the sweep-`iteration` traversal order.
#[inline]
pub(crate) fn order_vertices(vertices: &mut [u32], seed: u64, iteration: usize) {
    vertices.sort_unstable_by_key(|&v| (order_key(seed, iteration, v), v));
}

/// Shared sweep driver for MPLP and ONLP: frontier bookkeeping, traversal
/// ordering, chunked deadline polling, convergence, and telemetry live
/// here; the variants plug in their heaviest-label kernel.
///
/// Active-set semantics (both sweep modes): a vertex is visited in sweep
/// `s` iff a neighbor changed label in sweep `s - 1` (every vertex is
/// visited in sweep 0). [`SweepMode::Full`] enumerates all `n` vertices and
/// filters against the frontier in place — the paper-shaped baseline that
/// still pays the `O(n)` scan; [`SweepMode::Active`] enumerates the packed
/// worklist only. Both visit the same vertices in the same order
/// ([`order_key`] is per-vertex, so sorting the worklist reproduces the
/// subsequence of the full shuffled order), hence bit-identical labels.
///
/// Sweeps execute through the locality layer ([`crate::locality`]): the
/// ordered traversal is cut into cache blocks, and — when `propose16` is
/// provided and bucketing is on — runs of consecutive ≤16-degree vertices
/// are proposed 16-at-a-time one-vertex-per-lane, then applied lane-by-lane
/// in order with exact dependency repair (a lane whose neighbor changed
/// earlier in the batch recomputes via `best` against live state), so
/// sequential labels stay bit-identical to the unbatched sweep.
pub(crate) fn run_lp_sweeps<R: Recorder>(
    g: &Csr,
    config: &LabelPropConfig,
    rec: &mut R,
    backend: &'static str,
    best: impl Fn(&Csr, &[AtomicU32], u32, &mut AffinityBuf) -> Option<u32> + Sync,
    propose16: Option<impl Fn(&Csr, &[AtomicU32], &[u32], &mut [u32; 16]) -> u16 + Sync>,
) -> LabelPropResult {
    let timer = RunTimer::start();
    let n = g.num_vertices();
    let plan = Plan::for_graph(g, config.block, config.bucket);
    let (labels, mut frontier): (Vec<AtomicU32>, Frontier) = match &config.warm {
        Some(w) if w.labels.len() == n => (
            w.labels.iter().map(|&l| AtomicU32::new(l)).collect(),
            Frontier::seeded(n, &w.seed),
        ),
        _ => (
            (0..n as u32).map(AtomicU32::new).collect(),
            Frontier::all_active(n),
        ),
    };
    let theta = config.theta_for(n);
    let mut converged = false;
    let mut bailed = false;
    let mut result = LabelPropResult {
        labels: Vec::new(),
        iterations: 0,
        updates: Vec::new(),
        info: RunInfo::default(),
    };

    let mut order: Vec<u32> = Vec::new();
    for iteration in 0..config.max_iterations {
        let active_now = frontier.len() as u64;
        let active_edges = if R::ENABLED || config.count_ops {
            frontier.active_edge_count(|v| g.degree(v) as u64)
        } else {
            0
        };
        order.clear();
        match config.sweep {
            SweepMode::Full => order.extend(0..n as u32),
            SweepMode::Active => order.extend_from_slice(frontier.worklist()),
        }
        order_vertices(&mut order, config.seed, iteration);
        let probe = RoundProbe::begin::<R>();
        let updated = AtomicU64::new(0);
        let bins = if R::ENABLED {
            let fr = &frontier;
            let order = &order;
            locality::tally(
                &plan,
                order.len(),
                |i| fr.is_active(order[i]).then_some(order[i]),
                |v| g.degree(v) as u64,
            )
        } else {
            Default::default()
        };
        {
            let fr = &frontier;
            let order = &order;
            let labels = &labels;
            let updated = &updated;
            let best = &best;
            // Per-vertex path: compute and apply against live state.
            let apply_one_ref = |buf: &mut AffinityBuf, u: u32| {
                let Some(best_l) = best(g, labels, u, buf) else {
                    return;
                };
                let current = labels[u as usize].load(Ordering::Relaxed);
                if best_l != current {
                    labels[u as usize].store(best_l, Ordering::Relaxed);
                    updated.fetch_add(1, Ordering::Relaxed);
                    for &v in g.neighbors(u) {
                        fr.activate(v);
                    }
                }
            };
            // Low-degree batch: propose all lanes from a pre-batch
            // snapshot, then apply in lane order. A lane is stale iff one
            // of its neighbors is an earlier lane of this batch whose
            // label actually changed — only then does the lane recompute
            // against live state, so the applied sequence is exactly what
            // per-vertex execution would have produced.
            let batch16 = plan.batch16;
            let apply_batch = propose16.as_ref().map(|propose| {
                move |buf: &mut AffinityBuf, ids: &[u32]| {
                    // The transposed 16-per-ZMM proposal loses to the
                    // per-vertex vector kernel on every measured host (the
                    // gathers and the O(max_deg^2) scoring outweigh the lane
                    // packing), so it stays an opt-in A/B arm.
                    if !batch16 {
                        for &u in ids {
                            apply_one_ref(buf, u);
                        }
                        return;
                    }
                    let mut proposals = [0u32; 16];
                    let valid = propose(g, labels, ids, &mut proposals);
                    let mut changed = [0u32; 16];
                    let mut nchanged = 0usize;
                    // Membership filter for the staleness scan: a neighbor
                    // can only be an earlier changed lane if its hash bit is
                    // set, so the exact `contains` walk runs only on hits.
                    let mut bloom = 0u64;
                    for (lane, &u) in ids.iter().enumerate() {
                        let stale = nchanged > 0
                            && g.neighbors(u).iter().any(|v| {
                                bloom & (1 << (v & 63)) != 0
                                    && changed[..nchanged].contains(v)
                            });
                        let best_l = if stale {
                            match best(g, labels, u, buf) {
                                Some(b) => b,
                                None => continue,
                            }
                        } else if valid & (1 << lane) != 0 {
                            proposals[lane]
                        } else {
                            continue;
                        };
                        let current = labels[u as usize].load(Ordering::Relaxed);
                        if best_l != current {
                            labels[u as usize].store(best_l, Ordering::Relaxed);
                            updated.fetch_add(1, Ordering::Relaxed);
                            for &v in g.neighbors(u) {
                                fr.activate(v);
                            }
                            changed[nchanged] = u;
                            nchanged += 1;
                            bloom |= 1 << (u & 63);
                        }
                    }
                }
            });
            bailed = locality::run_sweep(
                g,
                &plan,
                order.len(),
                config.parallel,
                rec,
                |i| fr.is_active(order[i]).then_some(order[i]),
                || AffinityBuf::new(n),
                |buf: &mut AffinityBuf, u: u32| apply_one_ref(buf, u),
                apply_batch,
                Some(|v: u32| {
                    for &nv in g.neighbors(v).iter().take(locality::WARM_NEIGHBOR_CAP) {
                        locality::prefetch(&labels[nv as usize] as *const _);
                    }
                }),
            );
        }
        if config.count_ops {
            // Per visited arc: adj + weight stream loads, random label and
            // label-weight loads, store, branch; selection: one random load
            // + compare per candidate label (the touched list is
            // deduplicated but bounded by degree — charge half as the
            // expected dedup ratio mid-convergence). `active_edges` counts
            // exactly the arcs this sweep visited.
            let arcs = active_edges;
            counters::record(counters::OpClass::ScalarLoad, 2 * arcs);
            counters::record(counters::OpClass::ScalarRandLoad, 2 * arcs + arcs / 2);
            counters::record(counters::OpClass::ScalarStore, arcs);
            counters::record(counters::OpClass::ScalarAlu, 2 * arcs);
            counters::record(counters::OpClass::ScalarBranch, 2 * arcs);
        }
        result.iterations += 1;
        let ups = updated.into_inner();
        result.updates.push(ups);
        probe.finish(
            rec,
            RoundStats::new(iteration)
                .active(active_now)
                .active_edges(active_edges)
                .moves(ups)
                .bins(bins.blocks, bins.low, bins.mid, bins.hub),
        );
        if bailed {
            break;
        }
        if ups <= theta {
            converged = true;
            break;
        }
        // Cooperative cancellation (deadline): stop after a completed sweep.
        if rec.should_stop() {
            break;
        }
        frontier.advance();
    }
    result.labels = labels.into_iter().map(|l| l.into_inner()).collect();
    result.info = RunInfo::new(
        backend,
        result.iterations,
        converged && !bailed,
        timer.elapsed_secs(),
    );
    result
}

impl LabelPropConfig {
    /// Deterministic sequential configuration.
    pub fn sequential() -> Self {
        LabelPropConfig {
            parallel: false,
            ..Default::default()
        }
    }

    /// The absolute update threshold θ for a graph of `n` vertices.
    pub fn theta_for(&self, n: usize) -> u64 {
        (self.theta_fraction * n as f64).floor() as u64
    }
}

/// Outcome of a label-propagation run.
#[derive(Debug, Clone)]
pub struct LabelPropResult {
    /// Final label (community) per vertex.
    pub labels: Vec<u32>,
    /// Sweeps executed.
    pub iterations: usize,
    /// Vertices updated per sweep.
    pub updates: Vec<u64>,
    /// Uniform run envelope (backend, sweeps, convergence, wall time,
    /// optional trace). Excluded from equality.
    pub info: RunInfo,
}

impl PartialEq for LabelPropResult {
    fn eq(&self, other: &Self) -> bool {
        self.labels == other.labels
            && self.iterations == other.iterations
            && self.updates == other.updates
    }
}

