//! # gp-simd
//!
//! The 16-lane vector engine underneath the paper's ONPL/OVPL kernels.
//!
//! The paper's kernels are written against `AVX-512F` + `AVX-512CD`
//! (512-bit loads, `epi32` gathers/scatters, `vpconflictd`, masked
//! reductions). This crate exposes those operations through one seam, the
//! [`backend::Simd`] trait, with three interchangeable implementations:
//!
//! * [`backend::avx512::Avx512`] — the real instructions via
//!   `std::arch::x86_64` intrinsics (stable since Rust 1.89), gated by
//!   runtime CPU detection;
//! * [`backend::scalar::Emulated`] — a portable, bit-exact emulation used on
//!   non-AVX-512 hosts and as the reference semantics in property tests;
//! * [`counted::Counted`] — a decorator that counts every operation by
//!   [`counters::OpClass`], feeding the [`cost`] and [`energy`] models.
//!
//! The cost/energy models are the substitution for the paper's second
//! machine: the paper compares SkylakeX against Cascade Lake, whose main
//! relevant difference is scatter (and to a lesser degree gather)
//! throughput. Running a kernel under [`counted::Counted`] yields an
//! [`counters::OpCounts`]; [`cost::ArchProfile::cycles`] turns that into
//! modeled cycles per architecture, and [`energy::EnergyModel`] into modeled
//! Joules (the RAPL substitute). See DESIGN.md §2.

pub mod backend;
pub mod counted;
pub mod counters;
pub mod cost;
pub mod energy;
pub mod engine;
pub mod vector;

pub use backend::Simd;
pub use counted::Counted;
pub use counters::{OpClass, OpCounts};
pub use cost::ArchProfile;
pub use engine::Engine;
pub use vector::{Mask16, LANES};
