//! File I/O integration: suite graphs survive round trips through all three
//! on-disk formats, through real temporary files.

use graph_partition_avx512::graph::io::{
    read_edgelist, read_matrix_market, read_metis, write_edgelist, write_matrix_market,
    write_metis,
};
use graph_partition_avx512::graph::suite::{build_standin, entry, SuiteScale};
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("gp_test_{}_{name}", std::process::id()));
    p
}

#[test]
fn metis_file_roundtrip() {
    let g = build_standin(entry("belgium").unwrap(), SuiteScale::Test);
    let path = tmp("belgium.metis");
    write_metis(&g, BufWriter::new(File::create(&path).unwrap())).unwrap();
    let g2 = read_metis(BufReader::new(File::open(&path).unwrap())).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(g.num_vertices(), g2.num_vertices());
    // METIS drops self-loops; our stand-ins have none, so edges match.
    assert_eq!(g.num_edges(), g2.num_edges());
    for u in g.vertices() {
        assert_eq!(g.degree(u), g2.degree(u), "degree of {u} changed");
    }
}

#[test]
fn matrix_market_file_roundtrip() {
    let g = build_standin(entry("kkt_power").unwrap(), SuiteScale::Test);
    let path = tmp("kkt.mtx");
    write_matrix_market(&g, BufWriter::new(File::create(&path).unwrap())).unwrap();
    let g2 = read_matrix_market(BufReader::new(File::open(&path).unwrap())).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(g, g2, "Matrix Market roundtrip must be exact");
}

#[test]
fn edgelist_file_roundtrip_preserves_structure() {
    let g = build_standin(entry("Oregon-2").unwrap(), SuiteScale::Test);
    let path = tmp("oregon.el");
    write_edgelist(&g, BufWriter::new(File::create(&path).unwrap())).unwrap();
    let g2 = read_edgelist(BufReader::new(File::open(&path).unwrap())).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(g.num_vertices(), g2.num_vertices());
    assert_eq!(g.num_edges(), g2.num_edges());
    // The reader remaps ids; compare degree sequences.
    let mut d1: Vec<usize> = g.vertices().map(|u| g.degree(u)).collect();
    let mut d2: Vec<usize> = g2.vertices().map(|u| g2.degree(u)).collect();
    d1.sort_unstable();
    d2.sort_unstable();
    assert_eq!(d1, d2);
}

#[test]
fn algorithms_work_on_reloaded_graphs() {
    use graph_partition_avx512::core::api::{run_kernel, Kernel, KernelSpec};
    use graph_partition_avx512::metrics::telemetry::NoopRecorder;
    let g = build_standin(entry("M6").unwrap(), SuiteScale::Test);
    let path = tmp("m6.mtx");
    write_matrix_market(&g, BufWriter::new(File::create(&path).unwrap())).unwrap();
    let g2 = read_matrix_market(BufReader::new(File::open(&path).unwrap())).unwrap();
    std::fs::remove_file(&path).ok();
    let spec = KernelSpec::new(Kernel::Louvain(Default::default())).sequential();
    let q1 = run_kernel(&g, &spec, &mut NoopRecorder).as_louvain().unwrap().modularity;
    let q2 = run_kernel(&g2, &spec, &mut NoopRecorder).as_louvain().unwrap().modularity;
    assert!((q1 - q2).abs() < 1e-9, "identical graphs must give identical Q");
}
