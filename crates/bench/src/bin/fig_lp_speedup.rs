//! F-LPS — regenerates Figure 15(a,b): ONLP speedup over MPLP on both
//! architectures.
//!
//! Expected shape: moderate gains, best around 2.0× on Cascade Lake; label
//! propagation vectorizes but exposes fewer follow-on instructions than the
//! Louvain affinity/modularity sections, so gains trail ONPL Louvain.

use gp_bench::harness::{
    counts_labelprop, emit_traces, print_header, study_archs_for_paper, time_labelprop,
    BenchContext,
};
use gp_graph::suite::build_suite;
use gp_metrics::report::{fmt_ratio, fmt_secs, Table};

fn main() {
    let ctx = BenchContext::from_env();
    print_header("Figure 15: ONLP vs MPLP", &ctx);
    let mut table = Table::new(
        "Figure 15 — ONLP speedup over MPLP (label propagation)",
        &[
            "graph",
            "MPLP wall",
            "ONLP wall",
            "measured gain",
            "CLX model",
            "SKX model",
        ],
    );
    for (entry, g) in build_suite(ctx.scale) {
        let archs = study_archs_for_paper(entry, &g);
        let t_scalar = time_labelprop(&g, false, &ctx);
        let t_vector = time_labelprop(&g, true, &ctx);
        let c_scalar = counts_labelprop(&g, false);
        let c_vector = counts_labelprop(&g, true);
        emit_traces(entry.name, &g);
        table.row(&[
            entry.name.to_string(),
            fmt_secs(t_scalar.mean),
            fmt_secs(t_vector.mean),
            fmt_ratio(t_scalar.mean / t_vector.mean),
            fmt_ratio(archs[0].speedup(&c_scalar, &c_vector)),
            fmt_ratio(archs[1].speedup(&c_scalar, &c_vector)),
        ]);
    }
    ctx.emit(&table);
    if !ctx.csv {
        println!("\npaper reference: best gain ~2.0x on Cascade Lake, moderate elsewhere");
    }
}
