/root/repo/target/debug/deps/fig_ovpl_selected-fab3ad53189be7a2.d: crates/bench/src/bin/fig_ovpl_selected.rs Cargo.toml

/root/repo/target/debug/deps/libfig_ovpl_selected-fab3ad53189be7a2.rmeta: crates/bench/src/bin/fig_ovpl_selected.rs Cargo.toml

crates/bench/src/bin/fig_ovpl_selected.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
