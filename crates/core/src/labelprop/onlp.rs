//! ONLP — One Neighbor Per Lane label propagation (Section 4.3).
//!
//! "For each node, it loads 16 neighbors and gathers their corresponding
//! labels at once. For each distinct label, it sums the neighbor edge weight
//! ... Then an intrinsic instruction `_mm512_reduce_max_ps` [is] applied to
//! find out the heaviest neighbor label." The weight summation is the same
//! reduce-scatter as ONPL Louvain; the heaviest-label search is a vectorized
//! max-scan over the touched labels.

use super::{run_lp_sweeps, LabelPropConfig, LabelPropResult};
use crate::coloring::onpl::as_i32;
use crate::louvain::mplm::AffinityBuf;
use crate::reduce_scatter::Strategy;
use crate::vector_affinity::accumulate;
use gp_graph::csr::Csr;
use gp_metrics::telemetry::Recorder;
#[cfg(test)]
use gp_metrics::telemetry::NoopRecorder;
use gp_simd::backend::Simd;
use gp_simd::vector::LANES;
use std::sync::atomic::{AtomicU32, Ordering};

/// Views the atomic label array as gatherable `i32`s (the same benign-race
/// pattern as the other optimistic kernels).
#[inline(always)]
fn labels_view(labels: &[AtomicU32]) -> &[i32] {
    // SAFETY: AtomicU32 is repr(transparent) over u32.
    unsafe { std::slice::from_raw_parts(labels.as_ptr() as *const i32, labels.len()) }
}

/// Vectorized heaviest-label selection for `u`; `None` if no non-loop
/// neighbor exists.
#[inline]
fn best_label_onlp<S: Simd>(
    s: &S,
    g: &Csr,
    labels: &[AtomicU32],
    u: u32,
    buf: &mut AffinityBuf,
) -> Option<u32> {
    let neighbors = as_i32(g.neighbors(u));
    let weights = g.weights_of(u);
    let view = labels_view(labels);

    // Label-weight accumulation: gather labels, reduce-scatter weights.
    accumulate(
        s,
        neighbors,
        weights,
        u,
        view,
        Strategy::ConflictDetect,
        buf,
    );
    if buf.touched.is_empty() {
        return None;
    }

    // Vectorized max-scan: the heaviest touched label.
    let current = labels[u as usize].load(Ordering::Relaxed);
    let mut best_w_v = s.splat_f32(0.0);
    let mut best_l_v = s.splat_i32(current as i32);
    let touched = as_i32(&buf.touched);
    let mut off = 0;
    while off < touched.len() {
        let (ls, mask) = s.load_tail_i32(&touched[off..]);
        // SAFETY: touched labels < n.
        let ws = unsafe { s.gather_f32(&buf.aff, ls, mask, s.splat_f32(0.0)) };
        let better = s.cmpgt_f32(ws, best_w_v).and(mask);
        best_w_v = s.blend_f32(better, best_w_v, ws);
        best_l_v = s.blend_i32(better, best_l_v, ls);
        off += LANES;
    }
    let best_w = s.reduce_max_f32(best_w_v);
    // Prefer the current label on ties (same rule as MPLP).
    let best = if best_w <= buf.aff[current as usize] {
        current
    } else {
        let lane = s
            .cmpeq_f32(best_w_v, s.splat_f32(best_w))
            .first_set()
            .expect("max lane must exist");
        s.extract_i32(best_l_v, lane) as u32
    };
    buf.reset();
    Some(best)
}

/// Runs ONLP label propagation. Test-only convenience: external callers
/// reach this as `run_kernel` with a pinned vector backend.
#[cfg(test)]
pub(crate) fn label_propagation_onlp<S: Simd + Sync>(
    s: &S,
    g: &Csr,
    config: &LabelPropConfig,
) -> LabelPropResult {
    label_propagation_onlp_recorded(s, g, config, &mut NoopRecorder)
}

/// [`label_propagation_onlp`] with per-sweep telemetry delivered to `rec`.
///
/// All sweep machinery (frontier, ordering, chunked deadline polling,
/// convergence) lives in [`run_lp_sweeps`]; this variant contributes the
/// vectorized heaviest-label kernel. Under [`SweepMode::Active`] the
/// frontier arrives as a packed `u32` worklist, so the 16-lane
/// neighbor-gather loop in [`best_label_onlp`] runs over consecutive real
/// vertices — no wasted lanes on inactive ones.
///
/// [`SweepMode::Active`]: crate::frontier::SweepMode::Active
pub(crate) fn label_propagation_onlp_recorded<S: Simd + Sync, R: Recorder>(
    s: &S,
    g: &Csr,
    config: &LabelPropConfig,
    rec: &mut R,
) -> LabelPropResult {
    run_lp_sweeps(g, config, rec, S::NAME, |g, labels, u, buf| {
        best_label_onlp(s, g, labels, u, buf)
    })
}

#[cfg(test)]
mod tests {
    use super::super::mplp::label_propagation_mplp;
    use super::*;
    use crate::louvain::modularity::modularity;
    use gp_graph::builder::from_pairs;
    use gp_graph::generators::{clique, planted_partition, preferential_attachment};
    use gp_simd::backend::Emulated;

    const S: Emulated = Emulated;

    fn run_seq(g: &Csr) -> LabelPropResult {
        label_propagation_onlp(&S, g, &LabelPropConfig::sequential())
    }

    #[test]
    fn onlp_clique_consensus() {
        let r = run_seq(&clique(10));
        assert!(r.labels.iter().all(|&l| l == r.labels[0]));
    }

    #[test]
    fn onlp_matches_mplp_quality() {
        let g = planted_partition(4, 16, 0.8, 0.01, 13);
        let scalar = label_propagation_mplp(&g, &LabelPropConfig::sequential());
        let vector = run_seq(&g);
        let q_s = modularity(&g, &scalar.labels);
        let q_v = modularity(&g, &vector.labels);
        assert!(
            (q_s - q_v).abs() < 0.05,
            "ONLP Q = {q_v} vs MPLP Q = {q_s}"
        );
    }

    #[test]
    fn onlp_exact_match_on_well_separated_graph() {
        let g = planted_partition(3, 8, 0.9, 0.0, 3);
        let scalar = label_propagation_mplp(&g, &LabelPropConfig::sequential());
        let vector = run_seq(&g);
        assert_eq!(scalar.labels, vector.labels);
    }

    #[test]
    fn onlp_hub_graph() {
        let g = preferential_attachment(300, 3, 11);
        let r = run_seq(&g);
        assert!(r.iterations < 100);
        assert_eq!(r.labels.len(), 300);
    }

    #[test]
    fn onlp_isolated_vertices() {
        let g = from_pairs(3, [(0, 1)]);
        let r = run_seq(&g);
        assert_eq!(r.labels[2], 2);
    }

    #[test]
    fn onlp_parallel() {
        let g = planted_partition(4, 12, 0.7, 0.02, 21);
        let r = label_propagation_onlp(&S, &g, &LabelPropConfig::default());
        assert!(modularity(&g, &r.labels) > 0.4);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn onlp_native_matches_emulated() {
        if let Some(native) = gp_simd::backend::Avx512::new() {
            let g = planted_partition(4, 16, 0.8, 0.01, 31);
            let cfg = LabelPropConfig::sequential();
            let a = label_propagation_onlp(&native, &g, &cfg);
            let b = label_propagation_onlp(&S, &g, &cfg);
            assert_eq!(a.labels, b.labels);
        }
    }
}
