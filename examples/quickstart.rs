//! Quickstart: generate a graph, color it, and detect communities — all with
//! the best vector backend the host offers, through the unified
//! [`run_kernel`] entry point.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use graph_partition_avx512::prelude::*;
use gp_graph::stats::graph_stats;

fn main() {
    // A power-law graph: 4096 vertices, ~8 edges per vertex.
    let graph = rmat(RmatConfig::new(12, 8).with_seed(42));
    let stats = graph_stats(&graph);
    println!(
        "graph: {} vertices, {} edges, max degree {}, avg degree {:.1}",
        stats.num_vertices, stats.num_edges, stats.max_degree, stats.avg_degree
    );
    println!("vector backend: {}\n", gp_core::backends::engine().name());

    // Distance-1 coloring with the speculative parallel greedy algorithm
    // (ONPL-vectorized color assignment on AVX-512 hosts).
    let spec = KernelSpec::new(Kernel::Coloring);
    let coloring = run_kernel(&graph, &spec, &mut NoopRecorder);
    verify_coloring(&graph, coloring.colors().unwrap()).expect("coloring must be valid");
    let coloring = coloring.as_coloring().unwrap();
    println!(
        "coloring: {} colors in {} speculative rounds (valid ✓)",
        coloring.num_colors, coloring.rounds
    );

    // Community detection with the full multilevel Louvain method. The
    // kernel/variant axis is a value, so specs parse from strings too:
    // `"louvain-mplm".parse::<Kernel>()`.
    let spec = KernelSpec::new("louvain".parse().unwrap());
    let communities = run_kernel(&graph, &spec, &mut NoopRecorder);
    let louvain = communities.as_louvain().unwrap();
    println!(
        "louvain: modularity {:.4} across {} levels (backend: {})",
        louvain.modularity,
        louvain.levels,
        communities.backend()
    );

    // And with label propagation.
    let spec = KernelSpec::new(Kernel::Labelprop);
    let lp = run_kernel(&graph, &spec, &mut NoopRecorder);
    let distinct: std::collections::HashSet<_> = lp.communities().unwrap().iter().collect();
    println!(
        "label propagation: {} communities after {} sweeps",
        distinct.len(),
        lp.rounds()
    );
}
