/root/repo/target/debug/deps/fig_lp_speedup-7d4a9dc853ee0028.d: crates/bench/src/bin/fig_lp_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libfig_lp_speedup-7d4a9dc853ee0028.rmeta: crates/bench/src/bin/fig_lp_speedup.rs Cargo.toml

crates/bench/src/bin/fig_lp_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
