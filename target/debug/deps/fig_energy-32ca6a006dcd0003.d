/root/repo/target/debug/deps/fig_energy-32ca6a006dcd0003.d: crates/bench/src/bin/fig_energy.rs

/root/repo/target/debug/deps/fig_energy-32ca6a006dcd0003: crates/bench/src/bin/fig_energy.rs

crates/bench/src/bin/fig_energy.rs:
