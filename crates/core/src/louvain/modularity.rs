//! The modularity metric (Figure 11b's quality measure).
//!
//! `Q = Σ_C [ intra_vol(C) / (2·ω(E)) − (vol(C) / (2·ω(E)))² ]`
//!
//! where `intra_vol(C)` counts every intra-community edge twice and every
//! self-loop twice (consistent with the volume definition in the paper's
//! notation section), so a single community containing the whole graph has
//! `Q = 1 − 1 = 0` and singleton communities on a clique give `Q < 0`.

use gp_graph::csr::Csr;

/// Computes modularity of an assignment in f64 (the metric is exact even
/// when move phases run in f32).
///
/// # Panics
/// Panics if `zeta.len() != g.num_vertices()` or a community id is out of
/// `0..n`.
pub fn modularity(g: &Csr, zeta: &[u32]) -> f64 {
    let n = g.num_vertices();
    assert_eq!(zeta.len(), n, "community array length mismatch");
    if n == 0 {
        return 0.0;
    }
    let m = g.total_weight();
    if m == 0.0 {
        return 0.0;
    }
    let two_m = 2.0 * m;

    let mut intra_vol = vec![0.0f64; n];
    let mut vol = vec![0.0f64; n];
    for u in g.vertices() {
        let cu = zeta[u as usize] as usize;
        assert!(cu < n, "community id {cu} out of range");
        vol[cu] += g.volume(u);
        for (v, w) in g.edges_of(u) {
            if zeta[v as usize] == zeta[u as usize] {
                // Each non-loop intra edge is visited from both endpoints
                // (+2w total); a self-loop is visited once, count it double.
                intra_vol[cu] += if v == u { 2.0 * w as f64 } else { w as f64 };
            }
        }
    }
    let mut q = 0.0;
    for c in 0..n {
        if vol[c] > 0.0 {
            let frac = vol[c] / two_m;
            q += intra_vol[c] / two_m - frac * frac;
        }
    }
    q
}

/// Number of non-empty communities in an assignment.
pub fn count_communities(zeta: &[u32]) -> usize {
    let mut ids: Vec<u32> = zeta.to_vec();
    ids.sort_unstable();
    ids.dedup();
    ids.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_graph::builder::from_pairs;
    use gp_graph::generators::{clique, planted_partition, planted_partition_truth};

    #[test]
    fn one_community_is_zero() {
        let g = clique(5);
        assert!((modularity(&g, &[0; 5])).abs() < 1e-12);
    }

    #[test]
    fn singletons_on_clique_are_negative() {
        let g = clique(5);
        let zeta: Vec<u32> = (0..5).collect();
        assert!(modularity(&g, &zeta) < 0.0);
    }

    #[test]
    fn two_cliques_split_is_good() {
        // Two triangles joined by one edge; the natural split scores high.
        let g = from_pairs(
            6,
            [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)],
        );
        let split = modularity(&g, &[0, 0, 0, 1, 1, 1]);
        let merged = modularity(&g, &[0; 6]);
        let singletons = modularity(&g, &[0, 1, 2, 3, 4, 5]);
        assert!(split > merged);
        assert!(split > singletons);
        assert!(split > 0.3);
    }

    #[test]
    fn planted_truth_beats_random_assignment() {
        let g = planted_partition(4, 16, 0.6, 0.02, 3);
        let truth = planted_partition_truth(4, 16);
        let random: Vec<u32> = (0..64).map(|u| u % 7).collect();
        assert!(modularity(&g, &truth) > modularity(&g, &random));
    }

    #[test]
    fn self_loops_count_in_modularity() {
        // A graph that is one self-loop: the single community holds all
        // weight, Q = 1/... intra_vol = 2w, vol = 2w, m = w:
        // Q = 2w/2w - (2w/2w)^2 = 0.
        let g = gp_graph::builder::GraphBuilder::new(1)
            .add_edges([gp_graph::Edge::new(0, 0, 3.0)])
            .build();
        assert!((modularity(&g, &[0])).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_modularity_zero() {
        let g = Csr::empty(3);
        assert_eq!(modularity(&g, &[0, 1, 2]), 0.0);
    }

    #[test]
    fn weighted_edges_respected() {
        // Heavy edge inside community 0, light edge crossing.
        let g = gp_graph::builder::GraphBuilder::new(4)
            .add_edges([
                gp_graph::Edge::new(0, 1, 10.0),
                gp_graph::Edge::new(2, 3, 10.0),
                gp_graph::Edge::new(1, 2, 0.1),
            ])
            .build();
        let good = modularity(&g, &[0, 0, 1, 1]);
        let bad = modularity(&g, &[0, 1, 0, 1]);
        assert!(good > bad);
    }

    #[test]
    fn count_communities_works() {
        assert_eq!(count_communities(&[5, 5, 2, 7]), 3);
        assert_eq!(count_communities(&[]), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_wrong_length() {
        modularity(&clique(3), &[0, 0]);
    }
}
