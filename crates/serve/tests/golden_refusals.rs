//! Golden pins for the serve tier's `bad_request` wire bodies.
//!
//! The typed error layer (`gp_core::error::{SpecError, RunError}`,
//! `gp_graph::delta::ApplyError`) replaced the stringly `Err(String)`
//! returns the protocol used to thread straight onto the wire. These tests
//! pin every refusal body byte-for-byte, so a future refactor of the error
//! enums cannot silently change what clients see. If one of these
//! assertions fails, the wire contract changed — that needs a protocol
//! version bump, not a test update.

use gp_serve::protocol::{parse_line, refusal_line, Refusal};

/// Runs a malformed request line through the parser and renders the exact
/// refusal the connection loop would write back.
fn refusal_for(line: &str) -> String {
    let err = parse_line(line).expect_err("line must be refused");
    refusal_line(Refusal::BadRequest, &err.detail, None, err.version)
}

#[test]
fn unknown_kernel_body_is_pinned() {
    assert_eq!(
        refusal_for(r#"{"kernel":"zap","graph":{"rmat":{"scale":4,"seed":1}}}"#),
        r#"{"v":1,"ok":false,"error":"bad_request","code":400,"detail":"unknown kernel 'zap' (color|louvain[-<variant>]|labelprop)"}"#
    );
}

#[test]
fn unknown_variant_body_is_pinned() {
    assert_eq!(
        refusal_for(r#"{"kernel":"louvain","variant":"zap","graph":{"rmat":{"scale":4,"seed":1}}}"#),
        r#"{"v":1,"ok":false,"error":"bad_request","code":400,"detail":"unknown louvain variant 'zap' (plm|mplm|onpl|ovpl)"}"#
    );
}

#[test]
fn unknown_backend_body_is_pinned() {
    assert_eq!(
        refusal_for(r#"{"kernel":"color","backend":"cuda","graph":{"rmat":{"scale":4,"seed":1}}}"#),
        r#"{"v":1,"ok":false,"error":"bad_request","code":400,"detail":"unknown backend 'cuda' (auto|scalar|emulated|native)"}"#
    );
}

#[test]
fn unknown_sweep_body_is_pinned() {
    assert_eq!(
        refusal_for(r#"{"kernel":"color","sweep":"lazy","graph":{"rmat":{"scale":4,"seed":1}}}"#),
        r#"{"v":1,"ok":false,"error":"bad_request","code":400,"detail":"unknown sweep mode 'lazy' (full|active)"}"#
    );
}

#[test]
fn invalid_block_bodies_are_pinned() {
    // A `<n>kb` budget that fails to parse as a positive integer.
    assert_eq!(
        refusal_for(
            r#"{"v":2,"req":{"kernel":"color","block":"0kb","graph":"rmat:scale=4,ef=8,seed=1"}}"#
        ),
        r#"{"v":2,"ok":false,"error":"bad_request","code":400,"detail":"invalid block budget '0kb' (off|auto|<n>kb|<n>)"}"#
    );
    // A bare vertex count that fails to parse.
    assert_eq!(
        refusal_for(
            r#"{"v":2,"req":{"kernel":"color","block":"tiny","graph":"rmat:scale=4,ef=8,seed=1"}}"#
        ),
        r#"{"v":2,"ok":false,"error":"bad_request","code":400,"detail":"invalid block size 'tiny' (off|auto|<n>kb|<n>)"}"#
    );
}

#[test]
fn unknown_bucket_body_is_pinned() {
    assert_eq!(
        refusal_for(
            r#"{"v":2,"req":{"kernel":"color","bucket":"size","graph":"rmat:scale=4,ef=8,seed=1"}}"#
        ),
        r#"{"v":2,"ok":false,"error":"bad_request","code":400,"detail":"unknown bucket mode 'size' (off|degree)"}"#
    );
}

/// The worker-side update-rejection detail: `apply_update` now returns the
/// typed `RunError`, and the `update rejected: {e}` prefix plus the
/// `ApplyError` rendering must match the stringly era exactly.
#[test]
fn update_rejection_details_are_pinned() {
    use gp_core::error::RunError;
    use gp_graph::delta::ApplyError;

    let cases: [(ApplyError, &str); 3] = [
        (
            ApplyError::EdgeOutOfRange { u: 7, v: 9, n: 4 },
            "update rejected: edge (7, 9) out of range (n = 4)",
        ),
        (
            ApplyError::NonPositiveWeight { u: 1, v: 2, w: 0.0 },
            "update rejected: edge (1, 2) weight 0 must be > 0",
        ),
        (
            ApplyError::DeletionOutOfRange { u: 5, v: 0, n: 3 },
            "update rejected: deletion (5, 0) out of range (n = 3)",
        ),
    ];
    for (apply, want) in cases {
        let e = RunError::Update(apply);
        assert_eq!(format!("update rejected: {e}"), want);
    }
}

/// Versioned framing details around the detail string: id echo and the
/// version stamp both survive the typed-error migration.
#[test]
fn refusal_framing_is_pinned() {
    assert_eq!(
        refusal_line(Refusal::BadRequest, "nope", Some("r1"), 2),
        r#"{"v":2,"ok":false,"error":"bad_request","code":400,"detail":"nope","id":"r1"}"#
    );
    assert_eq!(
        refusal_line(Refusal::QueueFull, "", None, 1),
        r#"{"v":1,"ok":false,"error":"queue_full","code":503}"#
    );
}
