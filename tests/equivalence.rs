//! End-to-end backend equivalence: whole algorithms (not just single ops)
//! must produce identical results on the native AVX-512 backend and the
//! portable emulation. Skipped silently on hosts without AVX-512.

use graph_partition_avx512::core::api::{run_kernel, Backend, Kernel, KernelSpec};
use graph_partition_avx512::core::coloring::{color_with, ColoringConfig};
use graph_partition_avx512::core::louvain::onpl::move_phase_onpl;
use graph_partition_avx512::metrics::telemetry::NoopRecorder;
use graph_partition_avx512::core::louvain::ovpl::{move_phase_ovpl, prepare};
use graph_partition_avx512::core::louvain::{LouvainConfig, MoveState, Variant};
use graph_partition_avx512::core::reduce_scatter::Strategy;
use graph_partition_avx512::graph::suite::{build_standin, entry, SuiteScale};
use graph_partition_avx512::simd::backend::{Avx512, Emulated};

fn native() -> Option<Avx512> {
    Avx512::new()
}

#[test]
fn coloring_identical_across_backends() {
    let Some(n) = native() else { return };
    for name in ["belgium", "M6", "in-2004", "nlpkkt200", "loc-Gowalla"] {
        let g = build_standin(entry(name).unwrap(), SuiteScale::Test);
        let cfg = ColoringConfig::sequential();
        let a = color_with(&n, &g, &cfg, &mut NoopRecorder);
        let b = color_with(&Emulated, &g, &cfg, &mut NoopRecorder);
        assert_eq!(a.colors, b.colors, "{name}: backends diverged");
    }
}

#[test]
fn onpl_louvain_identical_across_backends() {
    let Some(n) = native() else { return };
    for strategy in [
        Strategy::ConflictDetect,
        Strategy::InVectorReduce,
        Strategy::Adaptive,
    ] {
        let g = build_standin(entry("kkt_power").unwrap(), SuiteScale::Test);
        let cfg = LouvainConfig::sequential(Variant::Onpl(strategy));
        let s1 = MoveState::singleton(&g);
        move_phase_onpl(&n, &g, &s1, strategy, &cfg);
        let s2 = MoveState::singleton(&g);
        move_phase_onpl(&Emulated, &g, &s2, strategy, &cfg);
        assert_eq!(
            s1.communities(),
            s2.communities(),
            "{strategy:?}: backends diverged"
        );
    }
}

#[test]
fn ovpl_identical_across_backends() {
    let Some(n) = native() else { return };
    let g = build_standin(entry("delaunay_n24").unwrap(), SuiteScale::Test);
    let cfg = LouvainConfig::sequential(Variant::Ovpl);
    let layout = prepare(&g, &cfg);
    let s1 = MoveState::singleton(&g);
    move_phase_ovpl(&n, &layout, &s1, &cfg);
    let s2 = MoveState::singleton(&g);
    move_phase_ovpl(&Emulated, &layout, &s2, &cfg);
    assert_eq!(s1.communities(), s2.communities());
}

#[test]
fn onlp_identical_across_backends() {
    if native().is_none() {
        return;
    }
    let g = build_standin(entry("Oregon-2").unwrap(), SuiteScale::Test);
    let spec = KernelSpec::new(Kernel::Labelprop).sequential();
    let a = run_kernel(&g, &spec.with_backend(Backend::Native), &mut NoopRecorder);
    let b = run_kernel(&g, &spec.with_backend(Backend::Emulated), &mut NoopRecorder);
    assert_eq!(a.as_labelprop().unwrap(), b.as_labelprop().unwrap());
}
