//! Property tests over whole kernels on random graphs: the invariants that
//! must hold for any input, not just the suite.

use gp_core::api::{run_kernel, Backend, Kernel, KernelSpec};
use gp_core::coloring::verify_coloring;
use gp_core::contrast::{bfs_scalar, bfs_vector, spmv_scalar, spmv_vector};
use gp_core::louvain::ovpl::prepare;
use gp_core::louvain::{move_phase_with, LouvainConfig, MoveState, Variant};
use gp_graph::builder::from_pairs;
use gp_graph::csr::Csr;
use gp_metrics::telemetry::NoopRecorder;
use gp_simd::backend::Emulated;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Csr> {
    (2usize..80).prop_flat_map(|n| {
        prop::collection::vec((0..n as u32, 0..n as u32), 0..(4 * n))
            .prop_map(move |pairs| from_pairs(n, pairs.into_iter().filter(|(u, v)| u != v)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ONPL coloring equals scalar coloring on any graph (sequential mode).
    #[test]
    fn coloring_backends_agree(g in arb_graph()) {
        let spec = KernelSpec::new(Kernel::Coloring).sequential();
        let a = run_kernel(&g, &spec.with_backend(Backend::Scalar), &mut NoopRecorder);
        let b = run_kernel(&g, &spec.with_backend(Backend::Emulated), &mut NoopRecorder);
        prop_assert_eq!(a.colors().unwrap(), b.colors().unwrap());
        prop_assert!(verify_coloring(&g, a.colors().unwrap()).is_ok());
    }

    /// SpMV vector equals scalar on any graph and input vector.
    #[test]
    fn spmv_agrees(g in arb_graph(), seed in any::<u32>()) {
        let n = g.num_vertices();
        let x: Vec<f32> = (0..n).map(|i| ((i as u32 ^ seed) % 97) as f32 * 0.25).collect();
        let mut y1 = vec![0f32; n];
        let mut y2 = vec![0f32; n];
        spmv_scalar(&g, &x, &mut y1);
        spmv_vector(&Emulated, &g, &x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            prop_assert!((a - b).abs() <= 1e-3 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    /// Vectorized BFS produces the same level array as scalar BFS.
    #[test]
    fn bfs_agrees(g in arb_graph()) {
        let a = bfs_scalar(&g, 0);
        let b = bfs_vector(&Emulated, &g, 0);
        prop_assert_eq!(a.levels, b.levels);
    }

    /// BFS levels are consistent: every reached vertex (except the source)
    /// has a neighbor exactly one level closer.
    #[test]
    fn bfs_levels_are_shortest_paths(g in arb_graph()) {
        let r = bfs_vector(&Emulated, &g, 0);
        for u in g.vertices() {
            let l = r.levels[u as usize];
            if l == u32::MAX || l == 0 {
                continue;
            }
            let has_parent = g
                .neighbors(u)
                .iter()
                .any(|&v| r.levels[v as usize] == l - 1);
            prop_assert!(has_parent, "vertex {u} at level {l} has no parent");
            // And no neighbor can be more than one level away.
            for &v in g.neighbors(u) {
                let lv = r.levels[v as usize];
                prop_assert!(lv != u32::MAX && lv + 1 >= l, "edge spans >1 level");
            }
        }
    }

    /// Label propagation terminates and labels stay within the vertex range
    /// on any graph, both kernels.
    #[test]
    fn labelprop_terminates(g in arb_graph()) {
        let spec = KernelSpec::new(Kernel::Labelprop).sequential();
        for backend in [Backend::Scalar, Backend::Emulated] {
            let out = run_kernel(&g, &spec.with_backend(backend), &mut NoopRecorder);
            let labels = &out.as_labelprop().unwrap().labels;
            prop_assert_eq!(labels.len(), g.num_vertices());
            prop_assert!(labels.iter().all(|&l| (l as usize) < g.num_vertices()));
        }
    }

    /// Community volumes remain consistent after any move phase: the sum of
    /// community volumes equals the total graph volume, and each community's
    /// volume equals the sum of its members' volumes.
    #[test]
    fn move_phase_volume_invariant(g in arb_graph()) {
        for variant in [Variant::Mplm, Variant::Ovpl] {
            let cfg = LouvainConfig::sequential(variant);
            let state = MoveState::singleton(&g);
            move_phase_with(&Emulated, &g, &state, &cfg, &mut NoopRecorder);
            let zeta = state.communities();
            let mut expect = vec![0.0f64; g.num_vertices()];
            for u in g.vertices() {
                expect[zeta[u as usize] as usize] += state.vertex_volume[u as usize] as f64;
            }
            for (c, &e) in expect.iter().enumerate() {
                let actual = state.volume[c].load() as f64;
                prop_assert!(
                    (actual - e).abs() < 1e-2 * e.abs().max(1.0),
                    "{variant:?}: community {c} volume {actual} vs {e}"
                );
            }
        }
    }

    /// OVPL preprocessing covers every vertex exactly once for any graph.
    #[test]
    fn ovpl_layout_is_a_partition(g in arb_graph()) {
        let cfg = LouvainConfig::sequential(Variant::Ovpl);
        let layout = prepare(&g, &cfg);
        let mut count = vec![0u32; g.num_vertices()];
        for b in &layout.blocks {
            for (_, v) in b.iter_real() {
                count[v as usize] += 1;
            }
        }
        prop_assert!(count.iter().all(|&c| c == 1));
    }
}
