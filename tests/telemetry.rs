//! Integration tests for the per-round telemetry layer (DESIGN.md /
//! docs/observability.md).
//!
//! Two guarantees are checked end-to-end:
//!
//! 1. **Observation does not perturb** — running a kernel with a
//!    [`TraceRecorder`] attached produces bit-identical results to the
//!    `NoopRecorder` (= plain entry point) run on the same seeded graph.
//! 2. **Deltas sum to totals** — the per-round op-class deltas snapshotted
//!    by the probes add up to the whole-run counter totals reported by
//!    `counters::counted_run`, so the trace is a lossless decomposition of
//!    the modeled run.
//!
//! The op counters are process-global; every test that touches them lives
//! in the single `counter_deltas_*` test below to avoid cross-test races
//! (`cargo test` runs tests on multiple threads).

use graph_partition_avx512::prelude::*;
use graph_partition_avx512::core::api::Kernel;
use graph_partition_avx512::core::louvain::Variant;
use graph_partition_avx512::simd::counters;

fn seeded_graph() -> Csr {
    rmat(RmatConfig::new(9, 8).with_seed(42))
}

fn run_coloring<R: Recorder>(g: &Csr, spec: KernelSpec, rec: &mut R) -> ColoringResult {
    match run_kernel(g, &spec, rec) {
        KernelOutput::Coloring(r) => r,
        _ => unreachable!(),
    }
}

fn run_louvain<R: Recorder>(g: &Csr, spec: KernelSpec, rec: &mut R) -> LouvainResult {
    match run_kernel(g, &spec, rec) {
        KernelOutput::Louvain(r) => r,
        _ => unreachable!(),
    }
}

fn run_labelprop<R: Recorder>(g: &Csr, spec: KernelSpec, rec: &mut R) -> LabelPropResult {
    match run_kernel(g, &spec, rec) {
        KernelOutput::Labelprop(r) => r,
        _ => unreachable!(),
    }
}

// ------------------------------------------------------- observation ≡ noop

#[test]
fn coloring_trace_matches_noop_run() {
    let g = seeded_graph();
    let spec = KernelSpec::new(Kernel::Coloring);
    let plain = run_coloring(&g, spec, &mut NoopRecorder);
    let mut rec = TraceRecorder::new("coloring");
    let traced = run_coloring(&g, spec, &mut rec);
    assert_eq!(plain, traced, "recording changed the coloring");
    let trace = rec.into_trace();
    assert_eq!(trace.rounds.len(), traced.rounds, "one RoundStats per round");
    assert!(trace.rounds.iter().any(|r| r.moves > 0));
    // Round indices are dense from zero.
    for (i, r) in trace.rounds.iter().enumerate() {
        assert_eq!(r.round, i);
    }
}

#[test]
fn louvain_trace_matches_noop_run() {
    let g = seeded_graph();
    for variant in [Variant::Mplm, Variant::Ovpl] {
        let spec = KernelSpec::new(Kernel::Louvain(variant)).sequential();
        let plain = run_louvain(&g, spec, &mut NoopRecorder);
        let mut rec = TraceRecorder::new("louvain");
        let traced = run_louvain(&g, spec, &mut rec);
        assert_eq!(plain.communities, traced.communities, "{variant:?}");
        assert_eq!(plain.modularity, traced.modularity, "{variant:?}");
        assert_eq!(plain.levels, traced.levels, "{variant:?}");
        let trace = rec.into_trace();
        assert!(!trace.rounds.is_empty(), "{variant:?} recorded no rounds");
        // The driver stamps the coarsening level on every round.
        assert!(trace.rounds.iter().all(|r| r.level < traced.levels));
        // Move phases converge: the last round of the deepest level moved 0.
        assert_eq!(trace.rounds.last().unwrap().moves, 0, "{variant:?}");
    }
}

#[test]
fn louvain_trace_reports_quality_deltas() {
    let g = seeded_graph();
    let spec = KernelSpec::new(Kernel::Louvain(Variant::Mplm)).sequential();
    let mut rec = TraceRecorder::new("louvain-mplm");
    let r = run_louvain(&g, spec, &mut rec);
    let trace = rec.into_trace();
    // First sweep from singletons gains most of the final modularity.
    let q0 = trace.rounds[0].quality_delta;
    assert!(q0 > 0.0, "first sweep should improve modularity, got {q0}");
    assert!(q0 <= r.modularity + 1e-9);
}

#[test]
fn labelprop_trace_matches_noop_run() {
    let g = seeded_graph();
    let spec = KernelSpec::new(Kernel::Labelprop).sequential();
    let plain = run_labelprop(&g, spec, &mut NoopRecorder);
    let mut rec = TraceRecorder::new("labelprop");
    let traced = run_labelprop(&g, spec, &mut rec);
    assert_eq!(plain, traced, "recording changed the labels");
    let trace = rec.into_trace();
    assert_eq!(trace.rounds.len(), traced.iterations);
    // The frontier (active count) shrinks as labels settle.
    let first = trace.rounds.first().unwrap().active;
    let last = trace.rounds.last().unwrap().active;
    assert!(first >= last, "frontier grew: {first} -> {last}");
}

#[test]
fn run_info_envelope_is_filled() {
    let g = seeded_graph();
    let c = run_coloring(&g, KernelSpec::new(Kernel::Coloring), &mut NoopRecorder);
    assert!(!c.info.backend.is_empty());
    assert!(c.info.elapsed_secs >= 0.0);
    let l = run_louvain(
        &g,
        KernelSpec::new(Kernel::Louvain(Variant::Mplm)).sequential(),
        &mut NoopRecorder,
    );
    assert_eq!(l.info.backend, "scalar");
    assert_eq!(l.info.rounds, l.levels);
    let lp = run_labelprop(&g, KernelSpec::new(Kernel::Labelprop), &mut NoopRecorder);
    assert!(lp.info.rounds > 0);
    let p = partition_graph(&g, &PartitionConfig::kway(2));
    assert!(!p.info.backend.is_empty());
    let s = slpa(&g, &SlpaConfig::default());
    assert!(s.info.elapsed_secs >= 0.0);
}

// ----------------------------------------------------- deltas sum to totals
//
// One #[test] on purpose: the op counters are process-global, so concurrent
// counted runs would bleed into each other's totals.

#[test]
fn counter_deltas_sum_to_run_totals() {
    let g = seeded_graph();

    // Coloring (ONPL, sequential + counted so scalar ops register too; the
    // counted Emulated pin comes from the spec's backend + count_ops).
    let spec = KernelSpec::new(Kernel::Coloring)
        .sequential()
        .counted()
        .with_backend(Backend::Emulated);
    let mut rec = TraceRecorder::new("coloring-onpl");
    let (_, totals) = counters::counted_run(|| run_kernel(&g, &spec, &mut rec));
    let trace = rec.into_trace();
    assert_eq!(
        trace.total_ops(),
        totals,
        "coloring per-round deltas must sum to the counted-run totals"
    );
    assert!(totals.total() > 0, "counted run recorded nothing");

    // Label propagation (ONLP).
    let spec = KernelSpec::new(Kernel::Labelprop)
        .sequential()
        .counted()
        .with_backend(Backend::Emulated);
    let mut rec = TraceRecorder::new("labelprop-onlp");
    let (_, totals) = counters::counted_run(|| run_kernel(&g, &spec, &mut rec));
    let trace = rec.into_trace();
    assert_eq!(
        trace.total_ops(),
        totals,
        "labelprop per-round deltas must sum to the counted-run totals"
    );
    assert!(totals.get(graph_partition_avx512::simd::counters::OpClass::Gather) > 0);
}
