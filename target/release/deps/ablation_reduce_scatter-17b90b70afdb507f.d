/root/repo/target/release/deps/ablation_reduce_scatter-17b90b70afdb507f.d: crates/bench/src/bin/ablation_reduce_scatter.rs

/root/repo/target/release/deps/ablation_reduce_scatter-17b90b70afdb507f: crates/bench/src/bin/ablation_reduce_scatter.rs

crates/bench/src/bin/ablation_reduce_scatter.rs:
