//! `gp-par`: a std-only work-stealing thread pool.
//!
//! This crate is the execution engine behind every "parallel" code path in
//! the workspace. The public surface is small and deliberate:
//!
//! * [`Pool::new`] — a pool with an **exact** worker-thread count;
//! * [`Pool::scope`] / [`Scope::spawn`] — structured fork/join with borrowed
//!   data (all spawned jobs complete before `scope` returns);
//! * [`Pool::join`] — binary fork/join, the primitive under parallel sorts;
//! * [`Pool::for_each_range`] — the chunked bridge used by the
//!   `rayon`-compatible shim in `.devstubs/rayon` and by the kernel sweep
//!   executors;
//! * [`split_ranges`] — the **thread-count-independent** chunk decomposition
//!   every bridge uses, so that any per-chunk computation (and any ordered
//!   combination of per-chunk results) is a pure function of the input
//!   length, never of the pool size;
//! * [`global`] / [`cached`] / [`current`] / [`Pool::install`] — pool
//!   discovery and process-lifetime caching.
//!
//! # Scheduling model
//!
//! A sharded run queue: one injector deque shared by external submitters
//! plus one deque per worker. Workers pop their own deque LIFO (depth-first
//! on nested joins, keeps working sets hot), then take from the injector
//! FIFO, then steal FIFO from siblings. Blocked scope owners that *are*
//! workers of the same pool help drain jobs instead of parking, so nested
//! `join`/`scope` on a worker can never deadlock.
//!
//! # Determinism contract
//!
//! Three properties combine to keep every output in this workspace a pure
//! function of its inputs (see `docs/PARALLELISM.md`):
//!
//! 1. chunk decomposition depends only on `(len, min_len)` ([`split_ranges`]);
//! 2. bridges combine per-chunk results **in chunk order**;
//! 3. a pool whose thread count is ≤ 1 executes everything inline on the
//!    caller, in submission order — byte-for-byte the semantics of the old
//!    sequential stub.
//!
//! The [`global`] pool defaults to **one** thread (override with
//! `GP_THREADS`), a deliberate deviation from rayon's
//! all-cores default: parallelism in this workspace is opt-in per the
//! determinism contract.
//!
//! # `GP_PAR_SEQ=1`
//!
//! The escape hatch. When set (read once at first use), every pool runs
//! inline-sequential regardless of its configured thread count —
//! `threads()` still reports the configured count, so chunk *accounting*
//! (e.g. `current_num_threads`-derived decompositions in callers) is
//! unchanged while execution is the old single-threaded path. Used by CI to
//! keep the sequential fallback green.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};
use std::time::Duration;

/// Upper bound on the number of chunks [`split_ranges`] will produce.
///
/// Bounding the chunk count makes per-chunk state (scratch buffers,
/// `for_each_init` inits) O(1) in the input size while still giving an
/// 8-thread pool 8× oversubscription for load balancing.
pub const MAX_CHUNKS: usize = 64;

type Job = Box<dyn FnOnce() + Send + 'static>;

// ---------------------------------------------------------------------------
// Shared pool state
// ---------------------------------------------------------------------------

struct Shared {
    /// FIFO queue for jobs submitted from non-worker threads.
    injector: Mutex<VecDeque<Job>>,
    /// One deque per worker: owner pops LIFO, thieves steal FIFO.
    worker_queues: Vec<Mutex<VecDeque<Job>>>,
    /// Jobs queued but not yet claimed; consulted before parking.
    pending: AtomicUsize,
    /// Sleep coordination: `notify_one` per pushed job.
    sleep_lock: Mutex<()>,
    sleep_cv: Condvar,
    shutdown: AtomicBool,
    /// Configured thread count (reported even when no workers exist).
    threads: usize,
    /// Back-pointer so `current()` inside a job can recover the owning pool.
    owner: OnceLock<Weak<PoolInner>>,
    id: usize,
}

impl Shared {
    fn push_job(&self, job: Job) {
        // Workers of this pool push to their own deque (depth-first nested
        // joins); everyone else goes through the injector.
        let mine = WORKER_CTX.with(|ctx| {
            ctx.borrow().as_ref().and_then(|(shared, idx)| {
                if shared.id == self.id {
                    Some(*idx)
                } else {
                    None
                }
            })
        });
        match mine {
            Some(idx) => self.worker_queues[idx].lock().unwrap().push_back(job),
            None => self.injector.lock().unwrap().push_back(job),
        }
        self.pending.fetch_add(1, Ordering::SeqCst);
        // Lock ordering with the worker's pre-park pending check prevents a
        // missed wakeup: either the worker sees pending > 0, or it is inside
        // `wait` releasing the lock when we notify.
        let _g = self.sleep_lock.lock().unwrap();
        self.sleep_cv.notify_one();
    }

    /// Claim one job: own deque (LIFO) → injector (FIFO) → steal (FIFO).
    fn find_job(&self, me: Option<usize>) -> Option<Job> {
        if let Some(i) = me {
            if let Some(job) = self.worker_queues[i].lock().unwrap().pop_back() {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            self.pending.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
        let n = self.worker_queues.len();
        let start = me.map(|i| i + 1).unwrap_or(0);
        for off in 0..n {
            let victim = (start + off) % n;
            if Some(victim) == me {
                continue;
            }
            if let Some(job) = self.worker_queues[victim].lock().unwrap().pop_front() {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        None
    }
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    WORKER_CTX.with(|ctx| *ctx.borrow_mut() = Some((Arc::clone(&shared), index)));
    loop {
        if let Some(job) = shared.find_job(Some(index)) {
            job();
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let guard = shared.sleep_lock.lock().unwrap();
        if shared.pending.load(Ordering::SeqCst) == 0 && !shared.shutdown.load(Ordering::Acquire) {
            // Timeout is belt-and-braces only; the push/park lock ordering
            // already rules out missed wakeups.
            let _ = shared
                .sleep_cv
                .wait_timeout(guard, Duration::from_millis(100))
                .unwrap();
        }
    }
    WORKER_CTX.with(|ctx| *ctx.borrow_mut() = None);
}

thread_local! {
    /// Set for the lifetime of a worker thread: (pool shared state, my index).
    static WORKER_CTX: std::cell::RefCell<Option<(Arc<Shared>, usize)>> =
        const { std::cell::RefCell::new(None) };
    /// Stack of pools made current via `Pool::install`.
    static INSTALLED: std::cell::RefCell<Vec<Pool>> = const { std::cell::RefCell::new(Vec::new()) };
}

// ---------------------------------------------------------------------------
// Pool
// ---------------------------------------------------------------------------

struct PoolInner {
    shared: Arc<Shared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Drop for PoolInner {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = self.shared.sleep_lock.lock().unwrap();
            self.shared.sleep_cv.notify_all();
        }
        for h in self.handles.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }
}

/// A work-stealing thread pool with an exact worker count.
///
/// Cheap to clone (an `Arc`). Worker threads are joined when the last clone
/// is dropped. Pools with a configured thread count ≤ 1 — and every pool
/// when `GP_PAR_SEQ=1` — spawn **no** threads and execute all work inline on
/// the submitting thread.
#[derive(Clone)]
pub struct Pool {
    inner: Arc<PoolInner>,
}

static POOLS_CREATED: AtomicUsize = AtomicUsize::new(0);

impl Pool {
    /// Build a pool with exactly `threads` workers (`0` is clamped to 1).
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let id = POOLS_CREATED.fetch_add(1, Ordering::SeqCst);
        let spawn_workers = threads > 1 && !sequential_mode();
        let nworkers = if spawn_workers { threads } else { 0 };
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            worker_queues: (0..nworkers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            sleep_lock: Mutex::new(()),
            sleep_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            threads,
            owner: OnceLock::new(),
            id,
        });
        let mut handles = Vec::with_capacity(nworkers);
        for i in 0..nworkers {
            let s = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("gp-par-{id}-{i}"))
                    .spawn(move || worker_loop(s, i))
                    .expect("spawn gp-par worker"),
            );
        }
        let inner = Arc::new(PoolInner {
            shared: Arc::clone(&shared),
            handles: Mutex::new(handles),
        });
        let _ = shared.owner.set(Arc::downgrade(&inner));
        Pool { inner }
    }

    /// The configured thread count (even when running inline-sequential).
    pub fn threads(&self) -> usize {
        self.inner.shared.threads
    }

    /// Unique id of this pool within the process (creation order).
    pub fn id(&self) -> usize {
        self.inner.shared.id
    }

    /// True when this pool executes everything inline on the caller
    /// (thread count ≤ 1, or `GP_PAR_SEQ=1`).
    pub fn is_inline(&self) -> bool {
        self.inner.shared.worker_queues.is_empty()
    }

    /// Structured fork/join. Every job spawned on the [`Scope`] completes
    /// before `scope` returns; panics from jobs (or from `f` itself) are
    /// propagated to the caller after all jobs have finished.
    pub fn scope<'scope, R>(&self, f: impl FnOnce(&Scope<'scope>) -> R) -> R {
        let latch = Arc::new(Latch::new());
        let s = Scope {
            shared: Arc::clone(&self.inner.shared),
            latch: Arc::clone(&latch),
            inline: self.is_inline(),
            _marker: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&s)));
        if !s.inline {
            wait_for_latch(&self.inner.shared, &latch);
        }
        if let Some(payload) = latch.take_panic() {
            resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Run `a` on the calling thread while `b` is eligible to run on any
    /// worker; returns when both have completed. Inline pools run `a` then
    /// `b` sequentially.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        if self.is_inline() {
            let ra = a();
            let rb = b();
            return (ra, rb);
        }
        let mut rb = None;
        let rb_ref = &mut rb;
        let ra = self.scope(move |s| {
            s.spawn(move || *rb_ref = Some(b()));
            a()
        });
        (ra, rb.expect("join: spawned half did not run"))
    }

    /// Chunked bridge: split `0..len` with [`split_ranges`]`(len, min_len)`
    /// and run `f` on every chunk, fanned out across the pool. The
    /// decomposition is independent of the pool size; only the assignment of
    /// chunks to threads varies.
    pub fn for_each_range(&self, len: usize, min_len: usize, f: impl Fn(Range<usize>) + Send + Sync) {
        let ranges = split_ranges(len, min_len);
        if self.is_inline() || ranges.len() <= 1 {
            for r in ranges {
                f(r);
            }
            return;
        }
        let f = &f;
        self.scope(|s| {
            for r in ranges {
                s.spawn(move || f(r));
            }
        });
    }

    /// Make this pool the [`current`] pool for the duration of `f` (on this
    /// thread). `f` runs on the calling thread, not on a worker.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        INSTALLED.with(|st| st.borrow_mut().push(self.clone()));
        let result = catch_unwind(AssertUnwindSafe(f));
        INSTALLED.with(|st| {
            st.borrow_mut().pop();
        });
        match result {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }
}

// ---------------------------------------------------------------------------
// Scope + latch
// ---------------------------------------------------------------------------

struct Latch {
    count: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl Latch {
    fn new() -> Latch {
        Latch {
            count: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn increment(&self) {
        self.count.fetch_add(1, Ordering::SeqCst);
    }

    fn decrement(&self) {
        if self.count.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Acquire the wait lock before notifying: a waiter is either
            // holding it (and will re-check the count) or already parked.
            let _g = self.lock.lock().unwrap();
            self.cv.notify_all();
        }
    }

    fn done(&self) -> bool {
        self.count.load(Ordering::SeqCst) == 0
    }

    fn store_panic(&self, payload: Box<dyn Any + Send + 'static>) {
        let mut slot = self.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send + 'static>> {
        self.panic.lock().unwrap().take()
    }
}

fn wait_for_latch(shared: &Shared, latch: &Latch) {
    let me = WORKER_CTX.with(|ctx| {
        ctx.borrow()
            .as_ref()
            .and_then(|(s, idx)| if s.id == shared.id { Some(*idx) } else { None })
    });
    match me {
        // A worker waiting on its own pool helps drain jobs — this is what
        // makes nested join/scope on workers deadlock-free.
        Some(idx) => {
            while !latch.done() {
                if let Some(job) = shared.find_job(Some(idx)) {
                    job();
                } else {
                    let guard = latch.lock.lock().unwrap();
                    if !latch.done() {
                        let _ = latch.cv.wait_timeout(guard, Duration::from_micros(200)).unwrap();
                    }
                }
            }
        }
        // External threads park; workers will finish the jobs.
        None => {
            let mut guard = latch.lock.lock().unwrap();
            while !latch.done() {
                guard = latch.cv.wait(guard).unwrap();
            }
        }
    }
}

/// Handle for spawning borrowed jobs inside [`Pool::scope`].
pub struct Scope<'scope> {
    shared: Arc<Shared>,
    latch: Arc<Latch>,
    inline: bool,
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawn a job that may borrow data outliving the scope. Runs inline
    /// immediately on inline pools.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        if self.inline {
            f();
            return;
        }
        self.latch.increment();
        let latch = Arc::clone(&self.latch);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                latch.store_panic(payload);
            }
            latch.decrement();
        });
        // SAFETY: `Pool::scope` does not return until the latch has counted
        // this job down (even when the scope body panics), so every borrow
        // with lifetime 'scope strictly outlives the job's execution.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send + 'static>>(
                job,
            )
        };
        self.shared.push_job(job);
    }
}

// ---------------------------------------------------------------------------
// Chunk decomposition
// ---------------------------------------------------------------------------

/// Split `0..len` into at most [`MAX_CHUNKS`] contiguous, non-empty ranges of
/// roughly `min_len` elements each, covering `0..len` exactly.
///
/// The decomposition is a **pure function of `(len, min_len)`** — never of
/// the thread count — which is the keystone of the workspace determinism
/// contract: any chunk-ordered combination of per-chunk results is identical
/// for every pool size, including the inline-sequential path.
pub fn split_ranges(len: usize, min_len: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let min_len = min_len.max(1);
    let chunks = len.div_ceil(min_len).clamp(1, MAX_CHUNKS);
    let per = len.div_ceil(chunks);
    (0..chunks)
        .map(|c| (c * per).min(len)..((c + 1) * per).min(len))
        .filter(|r| !r.is_empty())
        .collect()
}

// ---------------------------------------------------------------------------
// Global, cached, and current pools
// ---------------------------------------------------------------------------

static GLOBAL: OnceLock<Pool> = OnceLock::new();
/// Thread-count request recorded by `set_global_threads` before first use.
static GLOBAL_REQUEST: AtomicUsize = AtomicUsize::new(0);

fn default_global_threads() -> usize {
    std::env::var("GP_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// The process-wide default pool.
///
/// Sized by the first of: [`set_global_threads`] (if called before first
/// use), the `GP_THREADS` environment variable, else **1** — the
/// deterministic-by-default deviation from rayon described in the crate
/// docs.
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| {
        let req = GLOBAL_REQUEST.load(Ordering::SeqCst);
        let n = if req > 0 { req } else { default_global_threads() };
        Pool::new(n)
    })
}

/// Request a size for the global pool. `0` means "use the default sizing".
/// Fails if the global pool was already built with a different size.
pub fn set_global_threads(threads: usize) -> Result<(), GlobalPoolError> {
    let effective = if threads == 0 { default_global_threads() } else { threads };
    if let Some(p) = GLOBAL.get() {
        return if p.threads() == effective {
            Ok(())
        } else {
            Err(GlobalPoolError {
                built: p.threads(),
                requested: effective,
            })
        };
    }
    GLOBAL_REQUEST.store(effective, Ordering::SeqCst);
    let p = global(); // force the build now so the request can't be raced away
    if p.threads() == effective {
        Ok(())
    } else {
        Err(GlobalPoolError {
            built: p.threads(),
            requested: effective,
        })
    }
}

/// Error from [`set_global_threads`] when the global pool already exists
/// with a different size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalPoolError {
    pub built: usize,
    pub requested: usize,
}

impl std::fmt::Display for GlobalPoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "global pool already built with {} threads (requested {})",
            self.built, self.requested
        )
    }
}

impl std::error::Error for GlobalPoolError {}

static CACHE: OnceLock<Mutex<HashMap<usize, Pool>>> = OnceLock::new();

/// A process-lifetime pool with exactly `threads` workers, created on first
/// request and reused for every subsequent request of the same size. This is
/// what makes repeated `with_threads(n, ..)` calls on hot paths cheap: the
/// worker threads are spawned once per distinct count, not once per call.
pub fn cached(threads: usize) -> Pool {
    let threads = threads.max(1);
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap();
    map.entry(threads).or_insert_with(|| Pool::new(threads)).clone()
}

/// Total number of pools ever constructed in this process. Used by the
/// `with_threads` pool-caching regression test.
pub fn pools_created() -> usize {
    POOLS_CREATED.load(Ordering::SeqCst)
}

/// The pool governing the calling thread: the worker's own pool if this is
/// a worker thread, else the innermost [`Pool::install`]ed pool, else the
/// [`global`] pool.
pub fn current() -> Pool {
    let worker_pool = WORKER_CTX.with(|ctx| {
        ctx.borrow()
            .as_ref()
            .and_then(|(shared, _)| shared.owner.get().and_then(Weak::upgrade))
            .map(|inner| Pool { inner })
    });
    if let Some(p) = worker_pool {
        return p;
    }
    if let Some(p) = INSTALLED.with(|st| st.borrow().last().cloned()) {
        return p;
    }
    global().clone()
}

/// True when `GP_PAR_SEQ=1` (read once per process): every pool runs
/// inline-sequential, reproducing the pre-`gp-par` stub semantics exactly.
pub fn sequential_mode() -> bool {
    static SEQ: OnceLock<bool> = OnceLock::new();
    *SEQ.get_or_init(|| {
        std::env::var("GP_PAR_SEQ").map(|v| v.trim() == "1").unwrap_or(false)
    })
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_runs_every_job() {
        for threads in [1, 2, 4, 8] {
            let pool = Pool::new(threads);
            let hits = AtomicUsize::new(0);
            pool.scope(|s| {
                for _ in 0..100 {
                    s.spawn(|| {
                        hits.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(hits.load(Ordering::SeqCst), 100, "threads={threads}");
        }
    }

    #[test]
    fn scope_jobs_can_borrow_locals() {
        let pool = Pool::new(4);
        let data: Vec<u64> = (0..1000).collect();
        let sum = AtomicU64::new(0);
        pool.scope(|s| {
            for chunk in data.chunks(100) {
                let sum = &sum;
                s.spawn(move || {
                    sum.fetch_add(chunk.iter().sum::<u64>(), Ordering::SeqCst);
                });
            }
        });
        assert_eq!(sum.load(Ordering::SeqCst), (0..1000).sum::<u64>());
    }

    #[test]
    fn join_returns_both_results() {
        let pool = Pool::new(2);
        let (a, b) = pool.join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn nested_join_on_workers_makes_progress() {
        // Recursive sum via join exercises worker-side helping: the worker
        // that owns the outer join must drain its own deque while waiting.
        fn sum(pool: &Pool, r: Range<u64>) -> u64 {
            let n = r.end - r.start;
            if n <= 64 {
                return r.sum();
            }
            let mid = r.start + n / 2;
            let (a, b) = pool.join(
                || sum(pool, r.start..mid),
                || sum(pool, mid..r.end),
            );
            a + b
        }
        for threads in [1, 2, 8] {
            let pool = Pool::new(threads);
            assert_eq!(sum(&pool, 0..10_000), (0..10_000).sum::<u64>());
        }
    }

    #[test]
    fn panic_in_spawned_job_propagates() {
        let pool = Pool::new(2);
        let after = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom in job"));
                s.spawn(|| {
                    after.fetch_add(1, Ordering::SeqCst);
                });
            });
        }));
        assert!(result.is_err());
        if pool.is_inline() {
            // GP_PAR_SEQ=1 (or a 1-thread pool): spawn runs inline, so the
            // panic unwinds through the scope body before the sibling is
            // even submitted — exactly the sequential schedule's behavior.
            assert_eq!(after.load(Ordering::SeqCst), 0);
        } else {
            // The sibling job still ran to completion before the panic
            // surfaced.
            assert_eq!(after.load(Ordering::SeqCst), 1);
        }
        // Pool remains usable after a panicked scope.
        let (a, b) = pool.join(|| 1, || 2);
        assert_eq!(a + b, 3);
    }

    #[test]
    fn panic_in_scope_body_waits_for_jobs() {
        let pool = Pool::new(2);
        let ran = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| {
                    std::thread::sleep(Duration::from_millis(20));
                    ran.fetch_add(1, Ordering::SeqCst);
                });
                panic!("boom in body");
            });
        }));
        assert!(result.is_err());
        assert_eq!(ran.load(Ordering::SeqCst), 1, "spawned job must finish before unwind");
    }

    #[test]
    fn for_each_range_covers_exactly_once() {
        for threads in [1, 4] {
            let pool = Pool::new(threads);
            for len in [0usize, 1, 5, 100, 4096, 100_000] {
                let seen: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
                pool.for_each_range(len, 1024, |r| {
                    for i in r {
                        seen[i].fetch_add(1, Ordering::SeqCst);
                    }
                });
                assert!(
                    seen.iter().all(|c| c.load(Ordering::SeqCst) == 1),
                    "len={len} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn split_ranges_properties() {
        for len in [0usize, 1, 5, 9, 64, 65, 4096, 1 << 20] {
            for min_len in [0usize, 1, 7, 4096, 1 << 16] {
                let ranges = split_ranges(len, min_len);
                assert!(ranges.len() <= MAX_CHUNKS);
                assert!(ranges.iter().all(|r| !r.is_empty()), "len={len} min_len={min_len}");
                // Exact cover, in order, no overlap.
                let mut cursor = 0;
                for r in &ranges {
                    assert_eq!(r.start, cursor);
                    cursor = r.end;
                }
                assert_eq!(cursor, len);
                if len == 0 {
                    assert!(ranges.is_empty());
                }
            }
        }
    }

    #[test]
    fn exact_thread_counts_and_ids() {
        let a = Pool::new(3);
        let b = Pool::new(5);
        assert_eq!(a.threads(), 3);
        assert_eq!(b.threads(), 5);
        assert_ne!(a.id(), b.id());
        assert_eq!(Pool::new(0).threads(), 1);
    }

    #[test]
    fn inline_pool_spawns_no_threads_and_runs_in_order() {
        let pool = Pool::new(1);
        assert!(pool.is_inline());
        let order = Mutex::new(Vec::new());
        pool.scope(|s| {
            // Inline spawn runs immediately in program order.
            for i in 0..5 {
                let order = &order;
                s.spawn(move || order.lock().unwrap().push(i));
            }
        });
        assert_eq!(order.into_inner().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cached_pools_are_reused() {
        let before = pools_created();
        let p1 = cached(3);
        let created_after_first = pools_created();
        for _ in 0..100 {
            let p = cached(3);
            assert_eq!(p.id(), p1.id());
        }
        assert_eq!(pools_created(), created_after_first);
        assert!(created_after_first <= before + 1);
    }

    #[test]
    fn install_scopes_current() {
        let pool = Pool::new(7);
        let outer = current().threads();
        let inner = pool.install(|| current().threads());
        assert_eq!(inner, 7);
        assert_eq!(current().threads(), outer);
    }

    #[test]
    fn current_inside_job_is_owning_pool() {
        if sequential_mode() {
            // GP_PAR_SEQ=1: jobs run inline on the caller, which keeps its
            // own ambient pool — there is no worker context to report.
            return;
        }
        let pool = Pool::new(4);
        let seen = AtomicUsize::new(0);
        pool.scope(|s| {
            s.spawn(|| {
                seen.store(current().threads(), Ordering::SeqCst);
            });
        });
        assert_eq!(seen.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn many_concurrent_scopes_from_external_threads() {
        let pool = Pool::new(4);
        let total = AtomicUsize::new(0);
        std::thread::scope(|ts| {
            for _ in 0..8 {
                let pool = pool.clone();
                let total = &total;
                ts.spawn(move || {
                    for _ in 0..50 {
                        pool.scope(|s| {
                            for _ in 0..10 {
                                s.spawn(|| {
                                    total.fetch_add(1, Ordering::SeqCst);
                                });
                            }
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 8 * 50 * 10);
    }

    #[test]
    fn pool_drop_joins_workers() {
        let pool = Pool::new(4);
        let hits = Arc::new(AtomicUsize::new(0));
        {
            let hits = Arc::clone(&hits);
            pool.scope(move |s| {
                for _ in 0..16 {
                    let hits = Arc::clone(&hits);
                    s.spawn(move || {
                        hits.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }
        drop(pool); // must not hang
        assert_eq!(hits.load(Ordering::SeqCst), 16);
    }
}
