//! The runtime backend registry: the one place backend selection policy
//! lives.
//!
//! Before this module existed, "which SIMD universe does this run in?" was
//! answered ad hoc — `Engine::best()` sprinkled through the kernels, the
//! CLI, and every benchmark bin, each implicitly re-encoding the
//! `GP_FORCE_EMULATED` override that `gp-simd` used to read on its own.
//! The conformance harness needs to *enumerate* the execution universes it
//! must diff, so the scattered string matching is replaced by one
//! enumerable API:
//!
//! * [`Backend::available`] — every selectable backend with its ISA
//!   capability probe, native/emulated/scalar provenance, and whether an
//!   environment override forced the resolution;
//! * [`engine`] — the process-wide engine selection (cached), the only
//!   reader of `GP_FORCE_EMULATED` in the workspace;
//! * [`Backend::resolves_to`] — the engine-level universe a pin lands in
//!   on this host.
//!
//! `gp-simd` itself is now env-free: [`gp_simd::engine::Engine::probe`] and
//! [`IsaProbe::detect`] answer the pure hardware question, and this module
//! layers policy (override, caching, provenance) on top. Consumers —
//! `run_kernel` dispatch, `gpart --version`, the serve `{"stats":true}`
//! body, the conformance runner — all read the same registry, so they can
//! never drift.

use crate::api::Backend;
use gp_simd::engine::Engine;
pub use gp_simd::engine::IsaProbe;
use std::sync::OnceLock;

/// The environment override the registry honors, and the string reported
/// as [`BackendInfo::env_override`] when it is active.
pub const FORCE_EMULATED_VAR: &str = "GP_FORCE_EMULATED";

/// True when `GP_FORCE_EMULATED=1` — read once per process, like the engine
/// selection it feeds.
pub fn forced_emulated() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(forced_emulated_uncached)
}

/// Uncached read of the override (tests that mutate the environment
/// mid-process).
pub fn forced_emulated_uncached() -> bool {
    std::env::var(FORCE_EMULATED_VAR).is_ok_and(|v| v == "1")
}

/// The process-wide engine selection: the native backend when the CPU has
/// AVX-512F/CD and no override forces emulation. Cached in a `OnceLock` —
/// hot loops that consult the engine per round must not pay a `getenv`.
pub fn engine() -> Engine {
    static BEST: OnceLock<Engine> = OnceLock::new();
    *BEST.get_or_init(engine_uncached)
}

/// Uncached variant of [`engine`]: re-probes the hardware and re-reads the
/// override on every call.
pub fn engine_uncached() -> Engine {
    Engine::select(forced_emulated_uncached())
}

/// The host's ISA capability report (cached; CPUID is not free).
pub fn isa() -> IsaProbe {
    static ISA: OnceLock<IsaProbe> = OnceLock::new();
    *ISA.get_or_init(IsaProbe::detect)
}

/// Which execution universe a backend's kernels run in on this host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Real AVX-512F/CD vector instructions.
    Native,
    /// The portable 16-lane software emulation.
    Emulated,
    /// The scalar reference kernels.
    Scalar,
}

impl Provenance {
    /// Stable lowercase name (matches the `RunInfo::backend` vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            Provenance::Native => "avx512",
            Provenance::Emulated => "emulated",
            Provenance::Scalar => "scalar",
        }
    }
}

impl std::fmt::Display for Provenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One registry row: a selectable backend and how it resolves on this host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendInfo {
    /// The selectable backend (the CLI `--backend` / wire `backend` value).
    pub backend: Backend,
    /// Whether a pin on this backend runs as requested. `Native` is
    /// unavailable on hosts without AVX-512F/CD and under a forced-emulation
    /// override; pins still *execute* (they fall back to the emulation,
    /// bit-identically), but report the fallback universe.
    pub available: bool,
    /// The engine-level universe the backend's kernels enter on this host.
    /// `Auto` may still refine to the scalar reference per kernel (coloring
    /// and label propagation skip lane-by-lane emulation — see
    /// [`crate::api::Backend::Auto`]); that refinement is dispatch, not
    /// selection, and the per-run truth is always `RunInfo::backend`.
    pub provenance: Provenance,
    /// `Some("GP_FORCE_EMULATED=1")` when the environment override decided
    /// this row's resolution rather than the hardware probe.
    pub env_override: Option<&'static str>,
}

impl BackendInfo {
    /// The resolved universe's stable name (for reports and wire bodies).
    pub fn resolves_to(&self) -> &'static str {
        self.provenance.name()
    }
}

impl Backend {
    /// Enumerates every selectable backend with its resolution on this
    /// host — the registry the conformance runner, `gpart --version`, and
    /// the serve stats plane all consume. Order is stable: `auto`,
    /// `scalar`, `emulated`, `native`.
    pub fn available() -> Vec<BackendInfo> {
        [
            Backend::Auto,
            Backend::Scalar,
            Backend::Emulated,
            Backend::Native,
        ]
        .into_iter()
        .map(Backend::info)
        .collect()
    }

    /// This backend's registry row (see [`Backend::available`]).
    pub fn info(self) -> BackendInfo {
        let forced = forced_emulated();
        let native = engine().is_native();
        let override_tag = || {
            if forced {
                Some("GP_FORCE_EMULATED=1")
            } else {
                None
            }
        };
        match self {
            Backend::Scalar => BackendInfo {
                backend: self,
                available: true,
                provenance: Provenance::Scalar,
                env_override: None,
            },
            Backend::Emulated => BackendInfo {
                backend: self,
                available: true,
                provenance: Provenance::Emulated,
                env_override: None,
            },
            Backend::Native => BackendInfo {
                backend: self,
                available: native,
                provenance: if native {
                    Provenance::Native
                } else {
                    Provenance::Emulated
                },
                env_override: override_tag(),
            },
            Backend::Auto => BackendInfo {
                backend: self,
                available: true,
                provenance: if native {
                    Provenance::Native
                } else {
                    Provenance::Emulated
                },
                env_override: override_tag(),
            },
        }
    }

    /// The engine-level universe this backend resolves to on this host
    /// (shorthand for `self.info().resolves_to()`).
    pub fn resolves_to(self) -> &'static str {
        self.info().resolves_to()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_enumerates_all_backends_in_stable_order() {
        let rows = Backend::available();
        assert_eq!(
            rows.iter().map(|r| r.backend.name()).collect::<Vec<_>>(),
            ["auto", "scalar", "emulated", "native"]
        );
        for row in &rows {
            assert_eq!(row, &row.backend.info());
        }
    }

    #[test]
    fn scalar_and_emulated_are_always_available() {
        assert!(Backend::Scalar.info().available);
        assert_eq!(Backend::Scalar.info().provenance, Provenance::Scalar);
        assert!(Backend::Scalar.info().env_override.is_none());
        assert!(Backend::Emulated.info().available);
        assert_eq!(Backend::Emulated.info().provenance, Provenance::Emulated);
    }

    #[test]
    fn native_row_tracks_the_engine() {
        let native = engine().is_native();
        let row = Backend::Native.info();
        assert_eq!(row.available, native);
        assert_eq!(
            row.provenance,
            if native {
                Provenance::Native
            } else {
                Provenance::Emulated
            }
        );
        assert_eq!(row.resolves_to(), engine().name());
        // The override tag only appears when the env actually forced it.
        if row.env_override.is_some() {
            assert!(forced_emulated());
            assert!(!native, "an override forces emulation, never native");
        }
    }

    #[test]
    fn auto_resolves_like_the_engine() {
        assert_eq!(Backend::Auto.resolves_to(), engine().name());
    }

    #[test]
    fn engine_selection_is_cached_and_consistent() {
        assert_eq!(engine().name(), engine().name());
        assert_eq!(engine().is_native(), engine_uncached().is_native());
        // Forced emulation (the CI emulated job) must defeat native even on
        // AVX-512 hosts.
        if forced_emulated() {
            assert!(!engine().is_native());
        }
        // The ISA probe and the engine agree unless the override intervened.
        if !forced_emulated() {
            assert_eq!(engine().is_native(), isa().native_ok());
        }
    }

    #[test]
    fn provenance_names_match_runinfo_vocabulary() {
        assert_eq!(Provenance::Native.name(), "avx512");
        assert_eq!(Provenance::Emulated.to_string(), "emulated");
        assert_eq!(Provenance::Scalar.name(), "scalar");
    }
}
