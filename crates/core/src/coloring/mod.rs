//! Speculative parallel greedy graph coloring (paper Algorithms 1–3).
//!
//! The iterative scheme of Çatalyürek et al.: optimistically color all
//! conflict vertices in parallel ([`greedy`] / [`onpl`]), then detect
//! conflicting edges and re-color the losers until no conflict remains.
//! Only the color *assignment* is vectorized (the paper: "We only apply
//! vectorization on the color assignment portion"); conflict detection is
//! shared scalar code.

pub mod greedy;
pub mod onpl;
pub mod verify;

pub use greedy::assign_colors_scalar;
pub(crate) use greedy::color_graph_scalar;
pub use onpl::assign_colors_onpl;
pub use onpl::color_with;
pub use verify::{count_colors, verify_coloring};

use crate::frontier::SweepMode;
use crate::locality::{Blocking, Bucketing};
use gp_metrics::telemetry::RunInfo;
use std::sync::Arc;

/// Warm start for incremental re-coloring (`crates/core/src/incremental.rs`):
/// a previous (valid-for-the-old-graph) coloring plus the conflict seed to
/// repair from. The iterative driver adopts `colors` instead of the all-zero
/// init and replaces the initial all-vertices conflict set with `seed`, so
/// only the cone reachable from the seed is ever re-colored.
#[derive(Debug, Clone)]
pub struct ColorWarm {
    /// Per-vertex colors from the previous run (1-based; 0 entries are
    /// treated as uncolored and must be covered by `seed`).
    pub colors: Arc<Vec<u32>>,
    /// Sorted, deduplicated vertices to re-color in round 1.
    pub seed: Arc<Vec<u32>>,
}

/// Configuration shared by all coloring variants.
#[derive(Debug, Clone)]
pub struct ColoringConfig {
    /// Color conflict vertices with rayon parallelism. With `false`, the
    /// algorithm degenerates to sequential greedy coloring (no conflicts
    /// ever arise — useful for deterministic tests).
    pub parallel: bool,
    /// Safety valve on speculative rounds; the algorithm converges long
    /// before this on any real input.
    pub max_rounds: usize,
    /// Record scalar op counts into `gp_simd::counters` (modeled runs).
    pub count_ops: bool,
    /// Also vectorize `DetectConflicts` (paper §4.1: "identifying
    /// conflicting coloring vectorize[s] naturally"). The paper's
    /// measurements vectorize only the assignment, so this defaults to
    /// `false`; the ablation flips it.
    pub vectorized_conflicts: bool,
    /// How `DetectConflicts` enumerates its scan set:
    /// [`SweepMode::Active`] re-examines only the vertices recolored this
    /// round (sufficient — a new conflict needs *both* endpoints recolored
    /// in the same round; see `docs/KERNELS.md`), [`SweepMode::Full`]
    /// re-scans every vertex every round as the A/B baseline. Outputs are
    /// bit-identical.
    pub sweep: SweepMode,
    /// Cache-blocking policy for the assign phase (locality layer).
    /// Bit-identical outputs for every setting.
    pub block: Blocking,
    /// Degree-bucketing policy: routes ≤16-degree runs of the conflict set
    /// through the one-vertex-per-lane batch kernel.
    pub bucket: Bucketing,
    /// Warm start: adopt a previous coloring and repair only from a seed
    /// conflict set instead of coloring from scratch. `None` (the default)
    /// is the ordinary full run.
    pub warm: Option<ColorWarm>,
}

impl Default for ColoringConfig {
    fn default() -> Self {
        ColoringConfig {
            parallel: true,
            max_rounds: 10_000,
            count_ops: false,
            vectorized_conflicts: false,
            sweep: SweepMode::Active,
            block: Blocking::default(),
            bucket: Bucketing::default(),
            warm: None,
        }
    }
}

impl ColoringConfig {
    /// Sequential, deterministic configuration.
    pub fn sequential() -> Self {
        ColoringConfig {
            parallel: false,
            ..Default::default()
        }
    }

    /// Enables op counting.
    pub fn counted(mut self) -> Self {
        self.count_ops = true;
        self
    }

    /// Sets the sweep mode (`full` re-scans every vertex in
    /// `DetectConflicts`; `active` only the recolored set).
    pub fn with_sweep(mut self, sweep: SweepMode) -> Self {
        self.sweep = sweep;
        self
    }
}

/// Result of a coloring run.
#[derive(Debug, Clone)]
pub struct ColoringResult {
    /// 1-based colors per vertex (0 never appears after completion).
    pub colors: Vec<u32>,
    /// Number of speculative rounds until conflict-free.
    pub rounds: usize,
    /// Number of distinct colors used.
    pub num_colors: u32,
    /// Uniform run envelope (backend, rounds, convergence, wall time,
    /// optional trace). Excluded from equality.
    pub info: RunInfo,
}

impl PartialEq for ColoringResult {
    fn eq(&self, other: &Self) -> bool {
        self.colors == other.colors
            && self.rounds == other.rounds
            && self.num_colors == other.num_colors
    }
}

