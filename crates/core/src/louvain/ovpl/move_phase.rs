//! The OVPL block move phase (Section 5.2).
//!
//! Per block: walk neighbor slots `0..max_deg`. Slot `i` loads the `i`-th
//! neighbor of all 16 vertices with one aligned vector load, gathers their
//! communities, computes the interleaved affinity index
//! `community * 16 + lane`, and does gather → add → scatter. No reduce step
//! is needed: the low 4 index bits are the lane, so no two lanes ever write
//! the same accumulator — the conflict-freedom OVPL buys with its
//! preprocessing. Below `min_deg` no existence mask is computed (the paper's
//! optimization); above it, lanes whose vertex has run out of neighbors are
//! masked off via the [`SENTINEL`] compare.
//!
//! The affinity store is `16 × n` floats per worker — the "much higher
//! memory utilization than PLM" (and the reason some paper runs OOM'd).

use super::blocks::{Block, OvplLayout, SENTINEL};
use super::super::{delta_mod, LouvainConfig, MovePhaseStats, MoveState};
use crate::frontier::{run_chunked, Frontier, SweepMode};
use gp_metrics::telemetry::{NoopRecorder, Recorder};
use gp_simd::backend::Simd;
use gp_simd::vector::{Mask16, LANES};
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-worker OVPL buffers: interleaved affinity accumulators and per-lane
/// touched lists.
pub struct BlockBuf {
    /// `aff[c * 16 + lane]` = affinity of lane's vertex to community `c`.
    aff: Vec<f32>,
    /// Touched communities per lane (for reset and selection).
    touched: [Vec<u32>; LANES],
}

impl BlockBuf {
    /// Allocates buffers for community ids `< n`.
    pub fn new(n: usize) -> Self {
        BlockBuf {
            aff: vec![0.0; n * LANES],
            touched: std::array::from_fn(|_| Vec::with_capacity(32)),
        }
    }

    #[inline]
    fn reset(&mut self) {
        for lane in 0..LANES {
            for &c in &self.touched[lane] {
                self.aff[c as usize * LANES + lane] = 0.0;
            }
            self.touched[lane].clear();
        }
    }
}

/// Views the atomic community array as gatherable `i32`s (same benign-race
/// pattern as ONPL).
#[inline(always)]
fn zeta_view(zeta: &[std::sync::atomic::AtomicU32]) -> &[i32] {
    // SAFETY: AtomicU32 is repr(transparent) over u32.
    unsafe { std::slice::from_raw_parts(zeta.as_ptr() as *const i32, zeta.len()) }
}

/// Processes one block: vectorized affinity accumulation, then the paper's
/// "natural" per-lane move selection and application. Only *active* lanes
/// (per `fr`) select and apply moves — the affinity pass runs for every
/// lane, so both sweep modes compute identical per-lane accumulators and
/// the full/active outputs stay bit-identical. Returns moves applied.
#[allow(clippy::too_many_arguments)] // mirrors the kernel's data flow
#[inline]
fn process_block<S: Simd>(
    s: &S,
    layout: &OvplLayout,
    block: &Block,
    state: &MoveState,
    fr: &Frontier,
    buf: &mut BlockBuf,
    inv_m: f32,
    inv_2m2: f32,
) -> u64 {
    if block.is_empty() || block.max_deg == 0 {
        return 0;
    }
    let zeta = zeta_view(&state.zeta);
    let vids_v = s.from_array_i32(block.vertices);
    let valid: Mask16 = s.cmpneq_i32(vids_v, s.splat_i32(SENTINEL));
    let sentinel_v = s.splat_i32(SENTINEL);
    let lane_iota = s.from_array_i32(std::array::from_fn(|i| i as i32));

    for i in 0..block.max_deg as usize {
        let slot = block.offset + i * LANES;
        let nbrs = s.load_i32(&layout.nbrs[slot..]);
        // Existence checks only past min_deg (the paper's saving); self-loop
        // lanes are always excluded from affinity.
        let mut mask = if i < block.min_deg as usize {
            valid
        } else {
            valid.and(s.cmpneq_i32(nbrs, sentinel_v))
        };
        mask = mask.and(s.cmpneq_i32(nbrs, vids_v));
        if mask.is_empty() {
            continue;
        }
        let wts = s.load_f32(&layout.wts[slot..]);
        // SAFETY: neighbor ids < |V| (CSR invariant carried into the layout).
        let zs = unsafe { s.gather_i32(zeta, nbrs, mask, s.splat_i32(0)) };
        // Interleaved index: community * 16 + lane — per-lane disjoint, so a
        // plain gather/add/scatter is exact.
        let idx = s.or_i32(s.shl_i32::<4>(zs), lane_iota);
        // SAFETY: idx < 16 * n = buf.aff.len().
        let zero_f = s.splat_f32(0.0);
        let cur = unsafe { s.gather_f32(&buf.aff, idx, mask, zero_f) };
        // First touch per lane: the gathered accumulator is still zero —
        // keeps the per-lane touched lists duplicate-free for free.
        let fresh = s.cmpeq_f32(cur, zero_f).and(mask);
        let upd = s.mask_add_f32(cur, mask, cur, wts);
        unsafe { s.scatter_f32(&mut buf.aff, idx, upd, mask) };

        let z_arr = s.to_array_i32(zs);
        for lane in fresh.iter_set() {
            buf.touched[lane].push(z_arr[lane] as u32);
        }
    }

    // Per-lane selection and application ("done without particular
    // optimization using a natural way of performing this task").
    let mut moves = 0u64;
    for (lane, u) in block.iter_real() {
        if !fr.is_active(u) {
            continue;
        }
        let touched = &buf.touched[lane];
        if touched.is_empty() {
            continue;
        }
        let c = state.community(u);
        let vol_u = state.vertex_volume[u as usize];
        let vol_c_without_u = state.volume[c as usize].load() - vol_u;
        let aff_c = buf.aff[c as usize * LANES + lane];
        let mut best_delta = 0.0f32;
        let mut best = c;
        for &d in touched {
            if d == c {
                continue;
            }
            let delta = delta_mod(
                aff_c,
                buf.aff[d as usize * LANES + lane],
                vol_c_without_u,
                state.volume[d as usize].load(),
                vol_u,
                inv_m,
                inv_2m2,
            );
            if delta > best_delta {
                best_delta = delta;
                best = d;
            }
        }
        if best != c && best_delta > 0.0 {
            state.apply_move(u, c, best);
            moves += 1;
            // Wake the neighbors: walk this lane's interleaved slots (the
            // layout is the only adjacency OVPL has at hand).
            for i in 0..block.max_deg as usize {
                let v = layout.nbrs[block.offset + i * LANES + lane];
                if v != SENTINEL {
                    fr.activate(v as u32);
                }
            }
        }
        if S::IS_COUNTED {
            // The per-lane selection is deliberately scalar (the paper's
            // "natural way"); charge ~4 scalar ops per candidate community.
            use gp_simd::counters::{record, OpClass};
            let k = touched.len() as u64;
            record(OpClass::ScalarRandLoad, 2 * k); // affinity + volume
            record(OpClass::ScalarAlu, 2 * k);
        }
    }
    buf.reset();
    moves
}

/// One full move phase over the preprocessed layout.
pub fn move_phase_ovpl<S: Simd + Sync>(
    s: &S,
    layout: &OvplLayout,
    state: &MoveState,
    config: &LouvainConfig,
) -> MovePhaseStats {
    move_phase_ovpl_recorded(s, layout, state, config, &mut NoopRecorder)
}

/// [`move_phase_ovpl`] with per-sweep telemetry delivered to `rec`.
///
/// OVPL works off the preprocessed layout rather than the CSR graph, so
/// `quality_delta` is not computed here (it stays zero); the multilevel
/// driver still reports per-level modularity.
pub fn move_phase_ovpl_recorded<S: Simd + Sync, R: Recorder>(
    s: &S,
    layout: &OvplLayout,
    state: &MoveState,
    config: &LouvainConfig,
    rec: &mut R,
) -> MovePhaseStats {
    let n = state.len();
    let inv_m = (1.0 / state.total_weight) as f32;
    let inv_2m2 = (1.0 / (2.0 * state.total_weight * state.total_weight)) as f32;

    super::super::run_sweeps(
        config,
        n,
        |v| layout.degrees[v as usize] as u64,
        rec,
        || 0.0,
        // OVPL's blocked ELLPACK layout fixes the traversal granularity
        // itself; the locality plan does not apply, so the census is zeros.
        |_| crate::locality::BinTally::default(),
        |fr, _active_edges, rec| {
            let moved = AtomicU64::new(0);
            // Block-granularity frontier: a block is live when any of its
            // lanes holds an active vertex. Full mode walks every block (the
            // per-lane `is_active` filter inside `process_block` keeps the
            // moves identical); active mode lifts the vertex worklist to the
            // sorted, deduplicated set of live blocks.
            let ids: Vec<u32> = match config.sweep {
                SweepMode::Full => (0..layout.blocks.len() as u32).collect(),
                SweepMode::Active => {
                    let mut ids: Vec<u32> = fr
                        .worklist()
                        .iter()
                        .map(|&v| layout.vertex_block[v as usize])
                        .collect();
                    ids.sort_unstable();
                    ids.dedup();
                    ids
                }
            };
            let bailed = run_chunked(
                ids.len(),
                config.parallel,
                rec,
                || BlockBuf::new(n),
                |buf, i| {
                    let block = &layout.blocks[ids[i] as usize];
                    let m = process_block(s, layout, block, state, fr, buf, inv_m, inv_2m2);
                    moved.fetch_add(m, Ordering::Relaxed);
                },
            );
            (moved.into_inner(), bailed)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::super::super::modularity::modularity;
    use super::super::super::mplm::move_phase_mplm;
    use super::super::super::Variant;
    use super::super::prepare;
    use super::*;
    use gp_graph::csr::Csr;
    use gp_graph::generators::{clique, planted_partition, ring_lattice, triangular_mesh};
    use gp_simd::backend::Emulated;

    const S: Emulated = Emulated;

    fn run_ovpl(g: &Csr) -> Vec<u32> {
        let cfg = LouvainConfig::sequential(Variant::Ovpl);
        let layout = prepare(g, &cfg);
        let state = MoveState::singleton(g);
        move_phase_ovpl(&S, &layout, &state, &cfg);
        state.communities()
    }

    #[test]
    fn ovpl_merges_a_clique() {
        let zeta = run_ovpl(&clique(7));
        assert!(zeta.iter().all(|&c| c == zeta[0]), "{zeta:?}");
    }

    #[test]
    fn ovpl_matches_scalar_quality_on_planted_partition() {
        let g = planted_partition(4, 16, 0.7, 0.03, 19);
        let state = MoveState::singleton(&g);
        move_phase_mplm(&g, &state, &LouvainConfig::sequential(Variant::Mplm));
        let q_scalar = modularity(&g, &state.communities());
        let q_ovpl = modularity(&g, &run_ovpl(&g));
        assert!(
            (q_scalar - q_ovpl).abs() < 0.03,
            "OVPL Q = {q_ovpl}, scalar Q = {q_scalar}"
        );
    }

    #[test]
    fn ovpl_on_mesh() {
        let g = triangular_mesh(14, 14, 8);
        let q = modularity(&g, &run_ovpl(&g));
        assert!(q > 0.3, "mesh Q = {q}");
    }

    #[test]
    fn ovpl_on_regular_graph() {
        // The balanced-degree case OVPL is built for.
        let g = ring_lattice(128, 3);
        let q = modularity(&g, &run_ovpl(&g));
        assert!(q > 0.4, "ring Q = {q}");
    }

    #[test]
    fn ovpl_parallel_blocks() {
        let g = planted_partition(3, 16, 0.6, 0.04, 3);
        let cfg = LouvainConfig {
            variant: Variant::Ovpl,
            ..Default::default()
        };
        let layout = prepare(&g, &cfg);
        let state = MoveState::singleton(&g);
        move_phase_ovpl(&S, &layout, &state, &cfg);
        assert!(modularity(&g, &state.communities()) > 0.2);
    }

    #[test]
    fn ovpl_empty_graph() {
        let g = Csr::empty(5);
        let zeta = run_ovpl(&g);
        assert_eq!(zeta, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ovpl_converges_no_oscillation() {
        // The two-vertex swap graph from Section 5.1: with block-safe
        // preprocessing the pair must converge instead of swapping forever.
        let g = gp_graph::builder::from_pairs(2, [(0, 1)]);
        let cfg = LouvainConfig::sequential(Variant::Ovpl);
        let layout = prepare(&g, &cfg);
        let state = MoveState::singleton(&g);
        let stats = move_phase_ovpl(&S, &layout, &state, &cfg);
        assert!(
            stats.iterations < 25,
            "did not converge: {} iterations",
            stats.iterations
        );
        let zeta = state.communities();
        assert_eq!(zeta[0], zeta[1], "pair should merge");
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn ovpl_native_matches_emulated() {
        if let Some(native) = gp_simd::backend::Avx512::new() {
            let g = planted_partition(4, 16, 0.7, 0.03, 29);
            let cfg = LouvainConfig::sequential(Variant::Ovpl);
            let layout = prepare(&g, &cfg);
            let s1 = MoveState::singleton(&g);
            move_phase_ovpl(&native, &layout, &s1, &cfg);
            let s2 = MoveState::singleton(&g);
            move_phase_ovpl(&S, &layout, &s2, &cfg);
            assert_eq!(s1.communities(), s2.communities());
        }
    }
}
