//! T2 — regenerates Table 2: the R-MAT parameter grid used by the
//! Figure 7–10 sweeps, with the reduced scales this reproduction sweeps by
//! default (the paper's scale-24 instances exceed the host's budget; the
//! sweep axes and probability distributions are identical).

use gp_bench::harness::{print_header, BenchContext};
use gp_bench::rmat_sweep::{self, PAPER_EDGE_FACTORS, PAPER_SCALES};
use gp_graph::generators::rmat::TABLE2_DISTRIBUTIONS;
use gp_metrics::report::Table;

fn main() {
    let ctx = BenchContext::from_env();
    print_header("Table 2: R-MAT parameters", &ctx);
    let mut table = Table::new(
        "Table 2 — R-MAT parameters",
        &["axis", "paper values", "reproduction default"],
    );
    table.row(&[
        "scale".into(),
        format!("{PAPER_SCALES:?}"),
        format!("{:?} (GP_RMAT_SCALES)", rmat_sweep::scales()),
    ]);
    table.row(&[
        "edge-factor".into(),
        format!("{PAPER_EDGE_FACTORS:?}"),
        format!("{:?} (GP_RMAT_EFS)", rmat_sweep::edge_factors()),
    ]);
    for (i, (a, b, c, d)) in TABLE2_DISTRIBUTIONS.iter().enumerate() {
        table.row(&[
            format!("distribution {}", i + 1),
            format!(
                "a={:.0}%, b={:.0}%, c={:.0}%, d={:.0}%",
                a * 100.0,
                b * 100.0,
                c * 100.0,
                d * 100.0
            ),
            "same".into(),
        ]);
    }
    ctx.emit(&table);
}
