/root/repo/target/debug/deps/coloring-06f033f5f438fe69.d: crates/bench/benches/coloring.rs Cargo.toml

/root/repo/target/debug/deps/libcoloring-06f033f5f438fe69.rmeta: crates/bench/benches/coloring.rs Cargo.toml

crates/bench/benches/coloring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
