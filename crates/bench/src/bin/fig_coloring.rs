//! F-COL — regenerates Figure 6: impact of vectorizing graph coloring.
//!
//! Per suite graph: scalar/vectorized runtime ratio (>1 means the ONPL
//! assignment kernel wins), measured on this host and modeled on both study
//! architectures. Expected shape: gains up to ~2.0 on Cascade Lake and
//! ~1.4 on SkylakeX, moderate for most graphs (coloring has limited
//! vectorization opportunity — only color assignment vectorizes).

use gp_bench::harness::{
    counts_coloring, emit_traces, print_header, study_archs_for_paper, time_coloring, BenchContext,
};
use gp_graph::suite::{build_suite, SUITE};
use gp_metrics::report::{fmt_ratio, fmt_secs, Table};

fn main() {
    let ctx = BenchContext::from_env();
    print_header("Figure 6: coloring scalar vs vectorized", &ctx);
    assert_eq!(SUITE.len(), 19);
    let mut table = Table::new(
        "Figure 6 — Scalar/Vectorized runtime ratio for graph coloring",
        &[
            "graph",
            "scalar wall",
            "onpl wall",
            "measured gain",
            "model CascadeLake",
            "model SkylakeX",
        ],
    );
    for (entry, g) in build_suite(ctx.scale) {
        let archs = study_archs_for_paper(entry, &g);
        let t_scalar = time_coloring(&g, false, &ctx);
        let t_vector = time_coloring(&g, true, &ctx);
        let (_, c_scalar) = counts_coloring(&g, false);
        let (_, c_vector) = counts_coloring(&g, true);
        emit_traces(entry.name, &g);
        table.row(&[
            entry.name.to_string(),
            fmt_secs(t_scalar.mean),
            fmt_secs(t_vector.mean),
            fmt_ratio(t_scalar.mean / t_vector.mean),
            fmt_ratio(archs[0].speedup(&c_scalar, &c_vector)),
            fmt_ratio(archs[1].speedup(&c_scalar, &c_vector)),
        ]);
    }
    ctx.emit(&table);
    if !ctx.csv {
        println!("\npaper reference: up to 2.0x (Cascade Lake), up to 1.4x (SkylakeX)");
    }
}
