//! Shared R-MAT sweep infrastructure for the Figure 7–10 binaries.
//!
//! The paper sweeps scale 17–24 and edge factor 1–128 (Table 2); those
//! instances (up to 4 billion arcs) exceed this host, so the default sweep
//! uses reduced scales with identical axes and probability distributions —
//! the *trends* (gain vs. edge factor, gain vs. vertex count) are what
//! Figures 7–10 plot. Override with `GP_RMAT_SCALES` / `GP_RMAT_EFS`.

use gp_graph::csr::Csr;
use gp_graph::generators::rmat::{rmat, RmatConfig, TABLE2_DISTRIBUTIONS};

/// The paper's scale axis.
pub const PAPER_SCALES: [u32; 8] = [17, 18, 19, 20, 21, 22, 23, 24];
/// The paper's edge-factor axis.
pub const PAPER_EDGE_FACTORS: [u32; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// Sweep scales: `GP_RMAT_SCALES` override, default `[10, 12, 14]`.
pub fn scales() -> Vec<u32> {
    parse_env("GP_RMAT_SCALES", &[10, 12, 14])
}

/// Sweep edge factors: `GP_RMAT_EFS` override, default `[1, 2, 4, 8, 16, 32]`.
pub fn edge_factors() -> Vec<u32> {
    parse_env("GP_RMAT_EFS", &[1, 2, 4, 8, 16, 32])
}

fn parse_env(key: &str, default: &[u32]) -> Vec<u32> {
    std::env::var(key)
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<u32>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

/// One point of the sweep grid.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Index into [`TABLE2_DISTRIBUTIONS`].
    pub dist: usize,
    pub scale: u32,
    pub edge_factor: u32,
}

impl SweepPoint {
    /// Human-readable distribution label (the subfigure captions).
    pub fn dist_label(&self) -> String {
        let (a, b, c, d) = TABLE2_DISTRIBUTIONS[self.dist];
        format!(
            "a={:.0}% b={:.0}% c={:.0}% d={:.0}%",
            a * 100.0,
            b * 100.0,
            c * 100.0,
            d * 100.0
        )
    }

    /// Generates the graph for this point (deterministic).
    pub fn graph(&self) -> Csr {
        let (a, b, c, d) = TABLE2_DISTRIBUTIONS[self.dist];
        rmat(
            RmatConfig::new(self.scale, self.edge_factor)
                .with_probabilities(a, b, c, d)
                .with_seed(0x42 + self.dist as u64),
        )
    }
}

/// The full sweep grid in (distribution, scale, edge-factor) order.
pub fn grid() -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for dist in 0..TABLE2_DISTRIBUTIONS.len() {
        for &scale in &scales() {
            for &edge_factor in &edge_factors() {
                points.push(SweepPoint {
                    dist,
                    scale,
                    edge_factor,
                });
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_all_distributions() {
        let g = grid();
        assert_eq!(g.len(), 3 * scales().len() * edge_factors().len());
        assert!(g.iter().any(|p| p.dist == 2));
    }

    #[test]
    fn sweep_point_generates_expected_size() {
        let p = SweepPoint {
            dist: 0,
            scale: 8,
            edge_factor: 4,
        };
        let g = p.graph();
        assert_eq!(g.num_vertices(), 256);
        assert!(g.num_edges() > 256);
    }

    #[test]
    fn dist_labels_match_table2() {
        let p = SweepPoint {
            dist: 2,
            scale: 8,
            edge_factor: 1,
        };
        assert!(p.dist_label().contains("a=57%"));
    }
}
