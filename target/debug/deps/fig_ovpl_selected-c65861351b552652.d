/root/repo/target/debug/deps/fig_ovpl_selected-c65861351b552652.d: crates/bench/src/bin/fig_ovpl_selected.rs

/root/repo/target/debug/deps/fig_ovpl_selected-c65861351b552652: crates/bench/src/bin/fig_ovpl_selected.rs

crates/bench/src/bin/fig_ovpl_selected.rs:
