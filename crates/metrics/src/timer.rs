//! Repeated-run wall-clock measurement (the paper's "all the variants are
//! run 25 times for each graph; the reported values ... are average of the
//! 25 runs").

use crate::stats::{summarize, Summary};
use std::time::Instant;

/// How a measurement is repeated.
#[derive(Debug, Clone, Copy)]
pub struct TimingConfig {
    /// Timed repetitions (paper: 25).
    pub runs: usize,
    /// Untimed warmup repetitions.
    pub warmup: usize,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig { runs: 25, warmup: 2 }
    }
}

impl TimingConfig {
    /// Fewer repetitions for quick passes (CI, smoke tests).
    pub fn quick() -> Self {
        TimingConfig { runs: 5, warmup: 1 }
    }
}

/// Times `f` per the config and summarizes seconds-per-run. The closure
/// receives the run index (warmups get `usize::MAX`); its result is dropped
/// via `std::hint::black_box` so the optimizer cannot elide work.
pub fn time_runs<R>(config: &TimingConfig, mut f: impl FnMut(usize) -> R) -> Summary {
    for _ in 0..config.warmup {
        std::hint::black_box(f(usize::MAX));
    }
    let mut samples = Vec::with_capacity(config.runs);
    for run in 0..config.runs {
        let start = Instant::now();
        std::hint::black_box(f(run));
        samples.push(start.elapsed().as_secs_f64());
    }
    summarize(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_expected_number_of_times() {
        let mut timed = 0;
        let mut warmups = 0;
        let cfg = TimingConfig { runs: 7, warmup: 3 };
        time_runs(&cfg, |run| {
            if run == usize::MAX {
                warmups += 1;
            } else {
                timed += 1;
            }
        });
        assert_eq!(timed, 7);
        assert_eq!(warmups, 3);
    }

    #[test]
    fn summary_has_positive_mean_for_real_work() {
        let cfg = TimingConfig::quick();
        let s = time_runs(&cfg, |_| {
            let v: Vec<u64> = (0..20_000).collect();
            v.iter().sum::<u64>()
        });
        assert!(s.mean > 0.0);
        assert_eq!(s.n, 5);
    }
}
