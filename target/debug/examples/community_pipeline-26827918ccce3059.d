/root/repo/target/debug/examples/community_pipeline-26827918ccce3059.d: examples/community_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libcommunity_pipeline-26827918ccce3059.rmeta: examples/community_pipeline.rs Cargo.toml

examples/community_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
