//! Shard-router and request-coalescing semantics: N identical concurrent
//! requests must cost exactly one kernel execution, and distinct graph
//! specs must land on the shard the consistent-hash ring assigns them.

use gp_serve::{GraphSpec, Json, Ring, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

fn server(cfg: ServeConfig) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..cfg
    })
    .expect("bind loopback")
}

fn roundtrip(server: &Server, line: &str) -> Json {
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    gp_serve::json::parse(response.trim()).expect("valid JSON response")
}

fn get_u64(v: &Json, key: &str) -> Option<u64> {
    v.get(key).and_then(Json::as_u64)
}

#[test]
fn identical_concurrent_requests_coalesce_to_one_execution() {
    let server = server(ServeConfig {
        workers: 1,
        ..Default::default()
    });

    // Occupy the single worker so the coalescing leader stays queued while
    // the followers arrive.
    let mut blocker = TcpStream::connect(server.local_addr()).unwrap();
    blocker
        .write_all(b"{\"kernel\":\"sleep\",\"ms\":400,\"id\":\"blocker\"}\n")
        .unwrap();
    blocker.flush().unwrap();
    std::thread::sleep(Duration::from_millis(80)); // worker picked it up

    // N identical deadline-free requests from N connections, concurrently.
    // The first admitted becomes the leader; the rest must join in-flight.
    const N: usize = 8;
    let line = r#"{"kernel":"labelprop","graph":"mesh:w=24,seed=9","seed":5}"#;
    let handles: Vec<_> = (0..N)
        .map(|_| {
            let addr = server.local_addr();
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                stream.write_all(line.as_bytes()).unwrap();
                stream.write_all(b"\n").unwrap();
                let mut reader = BufReader::new(stream);
                let mut response = String::new();
                reader.read_line(&mut response).unwrap();
                gp_serve::json::parse(response.trim()).expect("valid JSON response")
            })
        })
        .collect();
    let responses: Vec<Json> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Every response is a complete, identical answer…
    for v in &responses {
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
        assert_eq!(get_u64(v, "communities"), get_u64(&responses[0], "communities"));
        assert_eq!(get_u64(v, "iterations"), get_u64(&responses[0], "iterations"));
        assert_eq!(get_u64(v, "rounds"), get_u64(&responses[0], "rounds"));
    }
    // …but exactly one was the leader; the other N-1 were coalesced.
    let coalesced = responses
        .iter()
        .filter(|v| v.get("coalesced").and_then(Json::as_bool) == Some(true))
        .count();
    assert_eq!(coalesced, N - 1, "exactly one execution, N-1 joiners");

    // Drain the blocker, then check the counters agree.
    let mut reader = BufReader::new(blocker);
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();

    let probe = roundtrip(&server, r#"{"stats":true}"#);
    let stats = probe.get("stats").expect("stats body");
    assert_eq!(get_u64(stats, "served"), Some((N + 1) as u64), "{probe}");
    assert_eq!(get_u64(stats, "coalesced"), Some((N - 1) as u64), "{probe}");
    let rc = stats.get("result_cache").unwrap();
    assert_eq!(get_u64(rc, "misses"), Some(1), "one kernel execution: {probe}");
    assert_eq!(get_u64(rc, "hits"), Some(0), "no follower took the cache path: {probe}");
    server.shutdown();
}

#[test]
fn coalesced_followers_keep_their_own_ids() {
    let server = server(ServeConfig {
        workers: 1,
        ..Default::default()
    });
    let mut blocker = TcpStream::connect(server.local_addr()).unwrap();
    blocker
        .write_all(b"{\"kernel\":\"sleep\",\"ms\":300}\n")
        .unwrap();
    std::thread::sleep(Duration::from_millis(80));

    let handles: Vec<_> = (0..3)
        .map(|i| {
            let addr = server.local_addr();
            std::thread::spawn(move || {
                let line = format!(
                    r#"{{"kernel":"color","graph":"mesh:w=16,seed=2","id":"c{i}"}}"#
                );
                let mut stream = TcpStream::connect(addr).unwrap();
                stream.write_all(line.as_bytes()).unwrap();
                stream.write_all(b"\n").unwrap();
                let mut reader = BufReader::new(stream);
                let mut response = String::new();
                reader.read_line(&mut response).unwrap();
                let v = gp_serve::json::parse(response.trim()).unwrap();
                assert_eq!(
                    v.get("id").and_then(Json::as_str),
                    Some(format!("c{i}").as_str()),
                    "follower got someone else's correlation id: {v}"
                );
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut reader = BufReader::new(blocker);
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    server.shutdown();
}

#[test]
fn distinct_graphs_land_on_their_hashed_shard() {
    const SHARDS: usize = 4;
    let server = server(ServeConfig {
        workers: SHARDS,
        shards: SHARDS,
        ..Default::default()
    });
    let ring = Ring::new(SHARDS);
    let compacts = [
        "mesh:w=8,seed=1",
        "mesh:w=9,seed=2",
        "mesh:w=10,seed=3",
        "rmat:scale=8,ef=8,seed=1",
        "rmat:scale=9,ef=8,seed=2",
        "rmat:scale=10,ef=8,seed=7",
    ];
    // Expected per-shard graph-cache misses: one per distinct spec, on the
    // shard the ring assigns that spec's canonical key.
    let mut expected = [0u64; SHARDS];
    for compact in compacts {
        let key = GraphSpec::from_compact(compact).unwrap().canonical_key();
        expected[ring.shard_of(&key)] += 1;
    }
    assert!(
        expected.iter().filter(|&&c| c > 0).count() >= 2,
        "test premise: specs must spread over several shards ({expected:?})"
    );

    for compact in compacts {
        let v = roundtrip(
            &server,
            &format!(r#"{{"kernel":"color","graph":"{compact}"}}"#),
        );
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
    }

    let probe = roundtrip(&server, r#"{"stats":true}"#);
    let Some(Json::Arr(shards)) = probe.get("shards") else {
        panic!("stats probe must report per-shard stats: {probe}");
    };
    assert_eq!(shards.len(), SHARDS, "every shard reports: {probe}");
    for (i, shard) in shards.iter().enumerate() {
        assert_eq!(get_u64(shard, "shard"), Some(i as u64));
        let gc = shard.get("graph_cache").unwrap();
        assert_eq!(
            get_u64(gc, "misses"),
            Some(expected[i]),
            "shard {i} owns the wrong keys: {probe}"
        );
    }
    let stats = probe.get("stats").unwrap();
    assert_eq!(get_u64(stats, "served"), Some(compacts.len() as u64));
    server.shutdown();
}
