//! Wire-codec robustness: the event-loop server must tolerate request
//! bytes arriving in any chunking (partial reads), refuse oversized lines
//! without dropping the connection, keep pipelined requests on one
//! connection independent, and treat a v1 request and its v2 translation
//! as the same logical request.

use gp_serve::protocol::{parse_line, to_v2_line, Incoming};
use gp_serve::{Json, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

fn server(cfg: ServeConfig) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..cfg
    })
    .expect("bind loopback")
}

fn read_json(reader: &mut BufReader<TcpStream>) -> Json {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    assert!(!line.is_empty(), "connection closed before response");
    gp_serve::json::parse(line.trim()).expect("valid response JSON")
}

fn get_bool(v: &Json, key: &str) -> Option<bool> {
    v.get(key).and_then(Json::as_bool)
}

fn get_str<'a>(v: &'a Json, key: &str) -> Option<&'a str> {
    v.get(key).and_then(Json::as_str)
}

#[test]
fn request_split_at_every_byte_boundary_still_parses() {
    let server = server(ServeConfig {
        workers: 1,
        ..Default::default()
    });
    let line = b"{\"kernel\":\"sleep\",\"ms\":1,\"id\":\"sb\"}\n";
    for split in 1..line.len() {
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        stream.write_all(&line[..split]).unwrap();
        stream.flush().unwrap();
        // Give the event loop a chance to consume the fragment so the two
        // halves genuinely arrive as separate reads.
        std::thread::sleep(Duration::from_millis(2));
        stream.write_all(&line[split..]).unwrap();
        stream.flush().unwrap();
        let v = read_json(&mut BufReader::new(stream));
        assert_eq!(get_bool(&v, "ok"), Some(true), "split at {split}: {v}");
        assert_eq!(get_str(&v, "id"), Some("sb"), "split at {split}");
    }
    server.shutdown();
}

#[test]
fn oversized_line_is_refused_and_the_connection_survives() {
    let server = server(ServeConfig {
        workers: 1,
        ..Default::default()
    });
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Well past the 256 KiB line cap, then a newline, then a valid request.
    let garbage = vec![b'x'; 300 * 1024];
    stream.write_all(&garbage).unwrap();
    stream.write_all(b"\n").unwrap();
    stream
        .write_all(b"{\"kernel\":\"sleep\",\"ms\":1,\"id\":\"after\"}\n")
        .unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream);
    let refusal = read_json(&mut reader);
    assert_eq!(get_bool(&refusal, "ok"), Some(false), "{refusal}");
    assert_eq!(get_str(&refusal, "error"), Some("bad_request"), "{refusal}");
    let ok = read_json(&mut reader);
    assert_eq!(get_bool(&ok, "ok"), Some(true), "{ok}");
    assert_eq!(get_str(&ok, "id"), Some("after"), "{ok}");
    let stats = server.shutdown();
    assert_eq!(stats.get("errors").and_then(Json::as_u64), Some(1), "{stats}");
    assert_eq!(stats.get("served").and_then(Json::as_u64), Some(1), "{stats}");
}

#[test]
fn interleaved_pipelined_requests_each_get_their_answer() {
    let server = server(ServeConfig {
        workers: 2,
        ..Default::default()
    });
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // One write, many frames: slow kernels, fast probes, a parse error, and
    // a v2 request interleaved. Responses may arrive out of order (probes
    // and refusals answer inline, kernels via workers) — match by id/kind.
    stream
        .write_all(
            concat!(
                r#"{"kernel":"sleep","ms":40,"id":"slow1"}"#, "\n",
                r#"{"stats":true}"#, "\n",
                r#"{"kernel":"sleep","ms":40,"id":"slow2"}"#, "\n",
                r#"{"not":"a request"}"#, "\n",
                r#"{"v":2,"req":{"kernel":"sleep","ms":1,"id":"v2fast"}}"#, "\n",
            )
            .as_bytes(),
        )
        .unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream);
    let mut kernel_ids = Vec::new();
    let mut saw_stats = false;
    let mut saw_refusal = false;
    for _ in 0..5 {
        let v = read_json(&mut reader);
        if v.get("stats").is_some() {
            saw_stats = true;
        } else if get_str(&v, "error").is_some() {
            saw_refusal = true;
            assert_eq!(get_str(&v, "error"), Some("bad_request"), "{v}");
        } else {
            assert_eq!(get_bool(&v, "ok"), Some(true), "{v}");
            kernel_ids.push(get_str(&v, "id").unwrap().to_string());
        }
    }
    kernel_ids.sort();
    assert_eq!(kernel_ids, ["slow1", "slow2", "v2fast"]);
    assert!(saw_stats && saw_refusal);
    server.shutdown();
}

#[test]
fn v1_request_and_its_v2_translation_are_the_same_request() {
    // Library-level golden translation…
    let v1_line = r#"{"kernel":"louvain","graph":{"rmat":{"scale":10,"seed":7}},"variant":"mplm","seed":3,"id":"orig"}"#;
    let Incoming::Run(v1_req) = parse_line(v1_line).unwrap() else {
        panic!("expected run");
    };
    let v2_line = to_v2_line(&v1_req);
    let Incoming::Run(v2_req) = parse_line(&v2_line).unwrap() else {
        panic!("expected run");
    };
    assert_eq!(v1_req.cache_key(), v2_req.cache_key());
    assert_eq!(v1_req.kernel_spec(), v2_req.kernel_spec());

    // …and service-level: the v2 form must hit the cache entry the v1 form
    // populated, replaying the identical body.
    let server = server(ServeConfig {
        workers: 1,
        ..Default::default()
    });
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    stream.write_all(v1_line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let first = read_json(&mut reader);
    assert_eq!(get_bool(&first, "cached"), Some(false), "{first}");
    assert_eq!(first.get("v").and_then(Json::as_u64), Some(1));
    stream.write_all(v2_line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let second = read_json(&mut reader);
    assert_eq!(get_bool(&second, "cached"), Some(true), "{second}");
    assert_eq!(second.get("v").and_then(Json::as_u64), Some(2));
    for key in ["modularity", "rounds", "communities", "exec_ms"] {
        assert_eq!(
            first.get(key).and_then(Json::as_f64),
            second.get(key).and_then(Json::as_f64),
            "{key} must replay verbatim"
        );
    }
    server.shutdown();
}
