//! Figure (extension) — active-set sweeps vs full scans.
//!
//! The three kernel families converge through rounds in which fewer and
//! fewer vertices do anything; `sweep = full` still pays an `O(V)` scan per
//! round (the paper-faithful baseline), `sweep = active` walks a packed
//! worklist. Outputs are bit-identical (asserted here on the bench graph,
//! and exhaustively in `crates/core/tests/active_set.rs`); only the
//! enumeration cost differs. This binary measures that difference on an
//! R-MAT graph and shows the frontier decay that produces it.
//!
//! Knobs: `GP_RMAT_SCALE` (default 14; the PERFORMANCE.md table uses 18),
//! `GP_JSON_OUT=<path>` writes a machine-readable summary (the CI
//! `bench-smoke` job archives it as `BENCH_kernels.json`), `--check` exits
//! nonzero when the active sweep is >10% slower than full on any kernel
//! (the frontier machinery must never cost more than the scans it avoids).

use gp_bench::harness::{print_header, variance_gate, BenchContext, VarianceVerdict};
use gp_core::api::{run_kernel, Kernel, KernelSpec, SweepMode};
use gp_graph::generators::rmat::{rmat, RmatConfig};
use gp_metrics::report::{fmt_ratio, fmt_secs, Table};
use gp_metrics::telemetry::{NoopRecorder, TraceRecorder};
use gp_metrics::timer::time_runs;
use std::io::Write;

const KERNELS: [&str; 4] = ["color", "louvain-mplm", "louvain-ovpl", "labelprop"];

struct Row {
    kernel: &'static str,
    full: f64,
    active: f64,
    rounds: usize,
}

fn main() {
    let ctx = BenchContext::from_env();
    print_header("Active-set sweeps vs full scans", &ctx);
    let scale: u32 = std::env::var("GP_RMAT_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(14);
    let check = std::env::args().any(|a| a == "--check");
    let g = ctx.install(|| rmat(RmatConfig::new(scale, 8).with_seed(42)));
    if !ctx.csv {
        println!(
            "graph: rmat scale={scale} ef=8 ({} vertices, {} edges)\n",
            g.num_vertices(),
            g.num_edges()
        );
    }

    let mut table = Table::new(
        format!("Kernel wall time, full scans vs active-set worklists (rmat scale {scale})"),
        &["kernel", "full", "active", "speedup", "rounds"],
    );
    let mut rows = Vec::new();
    for kernel in KERNELS {
        let kernel_val: Kernel = kernel.parse().unwrap();
        let full_spec = KernelSpec::new(kernel_val).with_sweep(SweepMode::Full);
        let active_spec = KernelSpec::new(kernel_val).with_sweep(SweepMode::Active);

        // The equivalence the whole comparison rests on, re-checked on the
        // measured graph itself.
        let a = ctx.install(|| run_kernel(&g, &full_spec, &mut NoopRecorder));
        let b = ctx.install(|| run_kernel(&g, &active_spec, &mut NoopRecorder));
        assert_eq!(a, b, "{kernel}: sweep modes diverged on the bench graph");

        let t_full = ctx.install(|| {
            time_runs(&ctx.timing, |_| run_kernel(&g, &full_spec, &mut NoopRecorder))
        });
        let t_active = ctx.install(|| {
            time_runs(&ctx.timing, |_| run_kernel(&g, &active_spec, &mut NoopRecorder))
        });
        table.row(&[
            kernel.to_string(),
            fmt_secs(t_full.mean),
            fmt_secs(t_active.mean),
            fmt_ratio(t_full.mean / t_active.mean),
            b.rounds().to_string(),
        ]);
        rows.push(Row {
            kernel,
            full: t_full.mean,
            active: t_active.mean,
            rounds: b.rounds(),
        });
    }
    ctx.emit(&table);

    // Frontier decay: where the win comes from. Per-round active fraction
    // under the worklist sweep (identical under full — the modes share
    // activation semantics, see the equivalence suite).
    let mut decay = Table::new(
        "Frontier decay (active vertices per round, % of V)",
        &["kernel", "decay"],
    );
    for kernel in KERNELS {
        let spec = KernelSpec::new(kernel.parse::<Kernel>().unwrap());
        let mut rec = TraceRecorder::new(kernel);
        ctx.install(|| run_kernel(&g, &spec, &mut rec));
        let n = g.num_vertices() as f64;
        let fractions: Vec<String> = rec
            .into_trace()
            .rounds
            .iter()
            .filter(|r| r.level == 0) // first level only for multilevel runs
            .map(|r| format!("{:.1}", 100.0 * r.active as f64 / n))
            .collect();
        decay.row(&[kernel.to_string(), fractions.join(" → ")]);
    }
    if !ctx.csv {
        println!();
        ctx.emit(&decay);
    }

    if let Ok(path) = std::env::var("GP_JSON_OUT") {
        write_json(&path, scale, &g, &rows).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        if !ctx.csv {
            println!("\nJSON summary written to {path}");
        }
    }

    if check {
        let mut failed = false;
        for r in &rows {
            let ratio = r.active / r.full;
            if ratio > 1.10 {
                eprintln!(
                    "CHECK FAILED: {} active sweep is {:.1}% slower than full",
                    r.kernel,
                    100.0 * (ratio - 1.0)
                );
                failed = true;
            }
        }
        // Measurement hygiene: the ratio bar above is meaningless on a host
        // that can't repeat the same run within 2%.
        let spec = KernelSpec::new("labelprop".parse::<Kernel>().unwrap())
            .with_sweep(SweepMode::Active);
        match variance_gate(|| {
            ctx.install(|| {
                run_kernel(&g, &spec, &mut NoopRecorder);
            })
        }) {
            VarianceVerdict::Steady(s) => {
                println!("variance gate: σ/mean = {:.2}% over 3 runs", 100.0 * s);
            }
            VarianceVerdict::Noisy(s) => {
                eprintln!(
                    "CHECK FAILED: host too noisy — σ/mean = {:.2}% ≥ 2% over 3 runs",
                    100.0 * s
                );
                failed = true;
            }
            VarianceVerdict::SkippedLowCpu => {
                println!("variance gate SKIPPED: ≤ 1 CPU available");
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("\ncheck OK: active sweep within 10% of full on every kernel");
    }
}

/// Minimal hand-rolled JSON (no serde in the bench bins): one object per
/// kernel with mean wall times and the full/active ratio.
fn write_json(path: &str, scale: u32, g: &gp_graph::csr::Csr, rows: &[Row]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"figure\": \"active_set\",")?;
    writeln!(
        f,
        "  \"graph\": {{\"family\": \"rmat\", \"scale\": {scale}, \"edge_factor\": 8, \"vertices\": {}, \"edges\": {}}},",
        g.num_vertices(),
        g.num_edges()
    )?;
    writeln!(f, "  \"kernels\": [")?;
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            f,
            "    {{\"kernel\": \"{}\", \"full_secs\": {:.6}, \"active_secs\": {:.6}, \"speedup\": {:.4}, \"rounds\": {}}}{comma}",
            r.kernel,
            r.full,
            r.active,
            r.full / r.active,
            r.rounds
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}
