#!/bin/bash
# Regenerates every table and figure at the default (Bench) scale, capturing
# outputs under results/.
set -u
cd "$(dirname "$0")"
BINS="table1_graphs table2_rmat_params fig_microbench fig_coloring fig_plm_vs_mplm fig_modularity fig_louvain_speedup fig_ovpl_selected fig_energy fig_lp_speedup fig_contrast fig_extension_partition fig_memory_regime ablation_reduce_scatter ablation_ovpl ablation_ordering ablation_conflict_detection"
for bin in $BINS; do
  echo "=== $bin ==="
  cargo run -q --release -p gp-bench --bin "$bin" > "results/$bin.txt" 2>&1 || echo "FAILED: $bin"
done
cargo run -q --release -p gp-bench --bin fig_rmat_lp -- --axis ef > results/fig_rmat_lp_ef.txt 2>&1 || echo "FAILED rmat_lp ef"
cargo run -q --release -p gp-bench --bin fig_rmat_lp -- --axis nodes > results/fig_rmat_lp_nodes.txt 2>&1 || echo "FAILED rmat_lp nodes"
cargo run -q --release -p gp-bench --bin fig_rmat_louvain -- --axis ef > results/fig_rmat_louvain_ef.txt 2>&1 || echo "FAILED rmat_lv ef"
cargo run -q --release -p gp-bench --bin fig_rmat_louvain -- --axis nodes > results/fig_rmat_louvain_nodes.txt 2>&1 || echo "FAILED rmat_lv nodes"
echo "=== loadgen (service closed-loop) ==="
cargo run -q --release -p gp-bench --bin gp-loadgen -- --spawn --clients 8 --requests 1200 --scale 14 > results/loadgen_serve.txt 2>&1 || echo "FAILED: gp-loadgen"
echo ALL_DONE
