/root/repo/target/debug/deps/criterion-9b035c353d2079f9.d: .devstubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-9b035c353d2079f9.rlib: .devstubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-9b035c353d2079f9.rmeta: .devstubs/criterion/src/lib.rs

.devstubs/criterion/src/lib.rs:
