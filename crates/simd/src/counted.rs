//! [`Counted`] — a decorator backend that counts each operation.
//!
//! Wrap any [`Simd`] backend: `Counted::new(Emulated)` or
//! `Counted::new(avx512)`. Kernels are generic over `S: Simd`, so the same
//! monomorphized kernel body runs raw (timed) or counted (modeled) with no
//! source changes — the seam DESIGN.md §5 calls out.

use crate::backend::Simd;
use crate::counters::{record, OpClass};
use crate::vector::{Mask16, LANES};

/// A backend decorator recording every operation into the global
/// [`crate::counters`].
#[derive(Debug, Clone, Copy)]
pub struct Counted<S: Simd> {
    inner: S,
}

impl<S: Simd> Counted<S> {
    /// Wraps a backend.
    pub fn new(inner: S) -> Self {
        Counted { inner }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: Simd> Simd for Counted<S> {
    type I32 = S::I32;
    type F32 = S::F32;

    const NAME: &'static str = "counted";
    const IS_VECTOR: bool = S::IS_VECTOR;
    const IS_COUNTED: bool = true;

    #[inline(always)]
    fn splat_i32(&self, x: i32) -> Self::I32 {
        record(OpClass::VecAlu, 1);
        self.inner.splat_i32(x)
    }

    #[inline(always)]
    fn splat_f32(&self, x: f32) -> Self::F32 {
        record(OpClass::VecAlu, 1);
        self.inner.splat_f32(x)
    }

    #[inline(always)]
    fn to_array_i32(&self, v: Self::I32) -> [i32; LANES] {
        record(OpClass::VecStore, 1);
        self.inner.to_array_i32(v)
    }

    #[inline(always)]
    fn to_array_f32(&self, v: Self::F32) -> [f32; LANES] {
        record(OpClass::VecStore, 1);
        self.inner.to_array_f32(v)
    }

    #[inline(always)]
    fn from_array_i32(&self, a: [i32; LANES]) -> Self::I32 {
        record(OpClass::VecLoad, 1);
        self.inner.from_array_i32(a)
    }

    #[inline(always)]
    fn from_array_f32(&self, a: [f32; LANES]) -> Self::F32 {
        record(OpClass::VecLoad, 1);
        self.inner.from_array_f32(a)
    }

    #[inline(always)]
    fn load_i32(&self, src: &[i32]) -> Self::I32 {
        record(OpClass::VecLoad, 1);
        self.inner.load_i32(src)
    }

    #[inline(always)]
    fn load_f32(&self, src: &[f32]) -> Self::F32 {
        record(OpClass::VecLoad, 1);
        self.inner.load_f32(src)
    }

    #[inline(always)]
    fn store_i32(&self, dst: &mut [i32], v: Self::I32) {
        record(OpClass::VecStore, 1);
        self.inner.store_i32(dst, v)
    }

    #[inline(always)]
    fn store_f32(&self, dst: &mut [f32], v: Self::F32) {
        record(OpClass::VecStore, 1);
        self.inner.store_f32(dst, v)
    }

    #[inline(always)]
    fn load_tail_i32(&self, src: &[i32]) -> (Self::I32, Mask16) {
        record(OpClass::VecLoad, 1);
        record(OpClass::MaskOp, 1);
        self.inner.load_tail_i32(src)
    }

    #[inline(always)]
    fn load_tail_f32(&self, src: &[f32]) -> (Self::F32, Mask16) {
        record(OpClass::VecLoad, 1);
        record(OpClass::MaskOp, 1);
        self.inner.load_tail_f32(src)
    }

    #[inline(always)]
    unsafe fn gather_i32(
        &self,
        base: &[i32],
        idx: Self::I32,
        mask: Mask16,
        src: Self::I32,
    ) -> Self::I32 {
        record(OpClass::Gather, 1);
        unsafe { self.inner.gather_i32(base, idx, mask, src) }
    }

    #[inline(always)]
    unsafe fn gather_f32(
        &self,
        base: &[f32],
        idx: Self::I32,
        mask: Mask16,
        src: Self::F32,
    ) -> Self::F32 {
        record(OpClass::Gather, 1);
        unsafe { self.inner.gather_f32(base, idx, mask, src) }
    }

    #[inline(always)]
    unsafe fn scatter_i32(&self, base: &mut [i32], idx: Self::I32, v: Self::I32, mask: Mask16) {
        record(OpClass::Scatter, 1);
        unsafe { self.inner.scatter_i32(base, idx, v, mask) }
    }

    #[inline(always)]
    unsafe fn scatter_f32(&self, base: &mut [f32], idx: Self::I32, v: Self::F32, mask: Mask16) {
        record(OpClass::Scatter, 1);
        unsafe { self.inner.scatter_f32(base, idx, v, mask) }
    }

    #[inline(always)]
    fn conflict_i32(&self, v: Self::I32) -> Self::I32 {
        record(OpClass::Conflict, 1);
        self.inner.conflict_i32(v)
    }

    #[inline(always)]
    fn add_i32(&self, a: Self::I32, b: Self::I32) -> Self::I32 {
        record(OpClass::VecAlu, 1);
        self.inner.add_i32(a, b)
    }

    #[inline(always)]
    fn add_f32(&self, a: Self::F32, b: Self::F32) -> Self::F32 {
        record(OpClass::VecAlu, 1);
        self.inner.add_f32(a, b)
    }

    #[inline(always)]
    fn mask_add_f32(&self, src: Self::F32, mask: Mask16, a: Self::F32, b: Self::F32) -> Self::F32 {
        record(OpClass::VecAlu, 1);
        self.inner.mask_add_f32(src, mask, a, b)
    }

    #[inline(always)]
    fn sub_f32(&self, a: Self::F32, b: Self::F32) -> Self::F32 {
        record(OpClass::VecAlu, 1);
        self.inner.sub_f32(a, b)
    }

    #[inline(always)]
    fn mul_f32(&self, a: Self::F32, b: Self::F32) -> Self::F32 {
        record(OpClass::VecAlu, 1);
        self.inner.mul_f32(a, b)
    }

    #[inline(always)]
    fn shl_i32<const IMM: u32>(&self, a: Self::I32) -> Self::I32 {
        record(OpClass::VecAlu, 1);
        self.inner.shl_i32::<IMM>(a)
    }

    #[inline(always)]
    fn sllv_i32(&self, a: Self::I32, count: Self::I32) -> Self::I32 {
        record(OpClass::VecAlu, 1);
        self.inner.sllv_i32(a, count)
    }

    #[inline(always)]
    fn or_i32(&self, a: Self::I32, b: Self::I32) -> Self::I32 {
        record(OpClass::VecAlu, 1);
        self.inner.or_i32(a, b)
    }

    #[inline(always)]
    fn and_i32(&self, a: Self::I32, b: Self::I32) -> Self::I32 {
        record(OpClass::VecAlu, 1);
        self.inner.and_i32(a, b)
    }

    #[inline(always)]
    fn max_f32(&self, a: Self::F32, b: Self::F32) -> Self::F32 {
        record(OpClass::VecAlu, 1);
        self.inner.max_f32(a, b)
    }

    #[inline(always)]
    fn cmpeq_i32(&self, a: Self::I32, b: Self::I32) -> Mask16 {
        record(OpClass::VecCmp, 1);
        self.inner.cmpeq_i32(a, b)
    }

    #[inline(always)]
    fn cmpeq_f32(&self, a: Self::F32, b: Self::F32) -> Mask16 {
        record(OpClass::VecCmp, 1);
        self.inner.cmpeq_f32(a, b)
    }

    #[inline(always)]
    fn cmpgt_f32(&self, a: Self::F32, b: Self::F32) -> Mask16 {
        record(OpClass::VecCmp, 1);
        self.inner.cmpgt_f32(a, b)
    }

    #[inline(always)]
    fn cmplt_i32(&self, a: Self::I32, b: Self::I32) -> Mask16 {
        record(OpClass::VecCmp, 1);
        self.inner.cmplt_i32(a, b)
    }

    #[inline(always)]
    fn reduce_add_f32(&self, v: Self::F32) -> f32 {
        record(OpClass::Reduce, 1);
        self.inner.reduce_add_f32(v)
    }

    #[inline(always)]
    fn mask_reduce_add_f32(&self, mask: Mask16, v: Self::F32) -> f32 {
        record(OpClass::Reduce, 1);
        self.inner.mask_reduce_add_f32(mask, v)
    }

    #[inline(always)]
    fn reduce_max_f32(&self, v: Self::F32) -> f32 {
        record(OpClass::Reduce, 1);
        self.inner.reduce_max_f32(v)
    }

    #[inline(always)]
    fn compress_i32(&self, mask: Mask16, v: Self::I32) -> Self::I32 {
        record(OpClass::Compress, 1);
        self.inner.compress_i32(mask, v)
    }

    #[inline(always)]
    fn compress_f32(&self, mask: Mask16, v: Self::F32) -> Self::F32 {
        record(OpClass::Compress, 1);
        self.inner.compress_f32(mask, v)
    }

    #[inline(always)]
    fn blend_i32(&self, mask: Mask16, a: Self::I32, b: Self::I32) -> Self::I32 {
        record(OpClass::VecAlu, 1);
        self.inner.blend_i32(mask, a, b)
    }

    #[inline(always)]
    fn blend_f32(&self, mask: Mask16, a: Self::F32, b: Self::F32) -> Self::F32 {
        record(OpClass::VecAlu, 1);
        self.inner.blend_f32(mask, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Emulated;
    use crate::counters;

    #[test]
    fn counts_flow_to_global_counters() {
        let s = Counted::new(Emulated);
        let ((), counts) = counters::counted_run(|| {
            let a = s.splat_i32(1);
            let b = s.splat_i32(2);
            let c = s.add_i32(a, b);
            let _ = s.cmpeq_i32(c, b);
            let _ = s.conflict_i32(c);
        });
        assert_eq!(counts.get(OpClass::VecAlu), 3); // 2 splat + 1 add
        assert_eq!(counts.get(OpClass::VecCmp), 1);
        assert_eq!(counts.get(OpClass::Conflict), 1);
    }

    #[test]
    fn counted_results_equal_inner() {
        let raw = Emulated;
        let cnt = Counted::new(Emulated);
        let a = [3i32; LANES];
        assert_eq!(
            raw.to_array_i32(raw.conflict_i32(raw.from_array_i32(a))),
            cnt.to_array_i32(cnt.conflict_i32(cnt.from_array_i32(a)))
        );
    }

    #[test]
    fn gather_scatter_counted() {
        let s = Counted::new(Emulated);
        let base: Vec<f32> = (0..32).map(|x| x as f32).collect();
        let mut dst = vec![0f32; 32];
        let ((), counts) = counters::counted_run(|| {
            let idx = s.from_array_i32(std::array::from_fn(|i| i as i32));
            let v = unsafe { s.gather_f32(&base, idx, Mask16::ALL, s.splat_f32(0.0)) };
            unsafe { s.scatter_f32(&mut dst, idx, v, Mask16::ALL) };
        });
        assert_eq!(counts.get(OpClass::Gather), 1);
        assert_eq!(counts.get(OpClass::Scatter), 1);
        assert_eq!(dst[5], 5.0);
    }
}
