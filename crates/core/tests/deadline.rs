//! Cooperative deadline cancellation: every iterative kernel must stop at a
//! round boundary when its recorder's `should_stop` hook fires, returning a
//! structurally valid partial result with `converged: false`.

use gp_core::api::{run_kernel, Kernel, KernelOutput, KernelSpec};
use gp_core::coloring::ColoringResult;
use gp_core::labelprop::LabelPropResult;
use gp_core::louvain::{LouvainResult, Variant};
use gp_graph::csr::Csr;
use gp_graph::generators::{preferential_attachment, triangular_mesh};
use gp_metrics::telemetry::{DeadlineRecorder, NoopRecorder, TraceRecorder};
use std::time::Duration;

fn color_spec() -> KernelSpec {
    KernelSpec::new(Kernel::Coloring)
}

fn louvain_spec() -> KernelSpec {
    KernelSpec::new(Kernel::Louvain(Variant::Mplm))
}

fn lp_spec() -> KernelSpec {
    KernelSpec::new(Kernel::Labelprop)
}

fn coloring_run<R: Recorder>(g: &Csr, spec: KernelSpec, rec: &mut R) -> ColoringResult {
    match run_kernel(g, &spec, rec) {
        KernelOutput::Coloring(r) => r,
        _ => unreachable!(),
    }
}

fn louvain_run<R: Recorder>(g: &Csr, spec: KernelSpec, rec: &mut R) -> LouvainResult {
    match run_kernel(g, &spec, rec) {
        KernelOutput::Louvain(r) => r,
        _ => unreachable!(),
    }
}

fn lp_run<R: Recorder>(g: &Csr, spec: KernelSpec, rec: &mut R) -> LabelPropResult {
    match run_kernel(g, &spec, rec) {
        KernelOutput::Labelprop(r) => r,
        _ => unreachable!(),
    }
}

/// A recorder whose deadline is already in the past.
fn expired() -> DeadlineRecorder<NoopRecorder> {
    DeadlineRecorder::after(NoopRecorder, Duration::ZERO)
}

/// A recorder whose deadline is far in the future.
fn generous() -> DeadlineRecorder<NoopRecorder> {
    DeadlineRecorder::after(NoopRecorder, Duration::from_secs(3600))
}

#[test]
fn coloring_stops_before_first_round_on_expired_deadline() {
    let g = triangular_mesh(20, 20, 3);
    let rec = expired();
    let mut rec = rec;
    let r = coloring_run(&g, color_spec(), &mut rec);
    assert!(rec.fired());
    assert!(!r.info.converged);
    assert_eq!(r.rounds, 0);
    assert_eq!(r.colors.len(), g.num_vertices());
}

#[test]
fn coloring_with_generous_deadline_matches_undeadlined_run() {
    let g = preferential_attachment(300, 4, 11);
    let mut plain = NoopRecorder;
    let base = coloring_run(&g, color_spec().sequential(), &mut plain);
    let mut rec = generous();
    let timed = coloring_run(&g, color_spec().sequential(), &mut rec);
    assert!(!rec.fired());
    assert!(timed.info.converged);
    assert_eq!(base.colors, timed.colors);
    assert_eq!(base.rounds, timed.rounds);
}

#[test]
fn louvain_returns_partial_result_on_expired_deadline() {
    let g = triangular_mesh(24, 24, 5);
    let mut rec = expired();
    let r = louvain_run(&g, louvain_spec(), &mut rec);
    assert!(rec.fired());
    assert!(!r.info.converged);
    // One move phase ran to its first boundary; the assignment is still a
    // total function over the vertices.
    assert_eq!(r.communities.len(), g.num_vertices());
    assert_eq!(r.levels, 1);
    let full = louvain_run(&g, louvain_spec(), &mut NoopRecorder);
    assert!(full.levels >= r.levels);
}

#[test]
fn labelprop_returns_partial_result_on_expired_deadline() {
    let g = triangular_mesh(24, 24, 7);
    let mut rec = expired();
    let r = lp_run(&g, lp_spec(), &mut rec);
    assert!(rec.fired());
    assert!(!r.info.converged);
    assert_eq!(r.iterations, 1); // exactly one completed sweep
    assert_eq!(r.labels.len(), g.num_vertices());
}

// ---------------------------------------------------------------------------
// Mid-round (between-active-chunks) deadline polling.
//
// Regression guard for the bug where deadlines were only polled at *round
// boundaries*: one huge first sweep could overshoot its deadline by the full
// O(V + E) cost of the round. The chunked sweep executors must poll
// `should_stop` between `DEADLINE_CHUNK`-sized slices of a round whenever
// the recorder can fire (`CHECKS_DEADLINE`).
// ---------------------------------------------------------------------------

use gp_core::frontier::DEADLINE_CHUNK;
use gp_metrics::telemetry::{Recorder, RoundStats};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts `should_stop` polls; fires after `allow` polls have been granted.
/// Deterministic (no clocks), so the tests pin exact control flow.
struct PollCounter {
    polls: AtomicU64,
    allow: u64,
}

impl PollCounter {
    fn granting(allow: u64) -> Self {
        PollCounter {
            polls: AtomicU64::new(0),
            allow,
        }
    }

    fn polls(&self) -> u64 {
        self.polls.load(Ordering::Relaxed)
    }
}

impl Recorder for PollCounter {
    const ENABLED: bool = false;
    const CHECKS_DEADLINE: bool = true;

    fn record(&mut self, _stats: RoundStats) {}

    fn should_stop(&self) -> bool {
        self.polls.fetch_add(1, Ordering::Relaxed) >= self.allow
    }
}

/// A graph big enough that one sweep spans several deadline chunks.
fn big_graph() -> gp_graph::csr::Csr {
    let side = 128; // 16384 vertices = 4 deadline chunks
    assert!(side * side > 3 * DEADLINE_CHUNK);
    triangular_mesh(side, side, 13)
}

#[test]
fn labelprop_bails_mid_sweep_not_just_at_round_boundaries() {
    let g = big_graph();
    // Baseline: the undeadlined first sweep changes far more labels than
    // one chunk's worth — so a bail after chunk 1 is observable below.
    let full = lp_run(&g, lp_spec().sequential(), &mut NoopRecorder);
    assert!(
        full.updates[0] > DEADLINE_CHUNK as u64,
        "premise: full sweep 0 must update more than one chunk ({} <= {})",
        full.updates[0],
        DEADLINE_CHUNK
    );

    // An immediately-expired deadline: the first poll (between chunk 1 and
    // chunk 2 of sweep 0) fires. Only chunk 1 of the sweep may have run.
    let mut rec = PollCounter::granting(0);
    let r = lp_run(&g, lp_spec().sequential(), &mut rec);
    assert!(!r.info.converged);
    assert_eq!(r.iterations, 1); // the partial sweep is still reported
    assert_eq!(r.labels.len(), g.num_vertices());
    assert!(
        r.updates[0] <= DEADLINE_CHUNK as u64,
        "bail must happen after one chunk, saw {} updates",
        r.updates[0]
    );
}

#[test]
fn coloring_bails_mid_assign_on_expired_deadline() {
    let g = big_graph();
    // Grant the round-boundary poll at the loop head, then fire on the
    // first between-chunk poll inside the assign kernel.
    let mut rec = PollCounter::granting(1);
    let r = coloring_run(&g, color_spec().sequential(), &mut rec);
    assert!(!r.info.converged);
    assert_eq!(r.colors.len(), g.num_vertices());
    assert!(
        rec.polls() >= 2,
        "assign must poll between chunks (saw {} polls)",
        rec.polls()
    );
}

#[test]
fn deadline_polls_happen_between_chunks_every_round() {
    // A recorder that never fires still gets polled between chunks: over a
    // full run the poll count must exceed one per round — the signature of
    // mid-round polling (boundary-only polling gives ~1 poll per round).
    let g = big_graph();

    let mut rec = PollCounter::granting(u64::MAX);
    let r = lp_run(&g, lp_spec().sequential(), &mut rec);
    let chunks_round0 = (g.num_vertices() as u64).div_ceil(DEADLINE_CHUNK as u64);
    assert!(
        rec.polls() >= r.iterations as u64 + chunks_round0 - 1,
        "labelprop: {} polls for {} sweeps (chunked round 0 alone implies {})",
        rec.polls(),
        r.iterations,
        chunks_round0 - 1
    );

    let mut rec = PollCounter::granting(u64::MAX);
    let r = louvain_run(&g, louvain_spec().sequential(), &mut rec);
    assert!(!r.communities.is_empty());
    assert!(
        rec.polls() >= r.levels as u64 + chunks_round0 - 1,
        "louvain: {} polls for {} levels",
        rec.polls(),
        r.levels
    );

    let mut rec = PollCounter::granting(u64::MAX);
    let r = coloring_run(&g, color_spec().sequential(), &mut rec);
    assert!(
        rec.polls() >= r.rounds as u64 + chunks_round0 - 1,
        "coloring: {} polls for {} rounds",
        rec.polls(),
        r.rounds
    );
}

#[test]
fn run_kernel_honors_deadlines_for_every_kernel() {
    let g = big_graph();
    for kernel in ["color", "louvain-mplm", "louvain-ovpl", "labelprop"] {
        let spec = KernelSpec::new(kernel.parse::<Kernel>().unwrap()).sequential();
        let mut rec = PollCounter::granting(0);
        let out = run_kernel(&g, &spec, &mut rec);
        assert!(!out.converged(), "{kernel} must report non-convergence");
        assert!(rec.polls() > 0, "{kernel} never polled the deadline");
    }
}

#[test]
fn deadline_fires_while_chunks_are_in_flight_on_real_pool() {
    // The parallel sweep executor fans chunks out across pool workers; the
    // calling thread polls the deadline between its own chunks and raises a
    // shared stop flag that in-flight workers observe at their next chunk
    // boundary. An already-expired deadline must therefore cancel the run
    // mid-round even though other workers hold chunks at that moment —
    // while every structural invariant of the partial result still holds.
    let g = big_graph();
    let pool = gp_par::cached(8);
    for kernel in ["color", "louvain-mplm", "labelprop"] {
        // Default specs are parallel → the fan-out path on a real pool.
        let spec = KernelSpec::new(kernel.parse::<Kernel>().unwrap());
        let mut rec = DeadlineRecorder::after(NoopRecorder, Duration::ZERO);
        let out = pool.install(|| run_kernel(&g, &spec, &mut rec));
        assert!(rec.fired(), "{kernel}: expired deadline never fired");
        assert!(!out.converged(), "{kernel} must report non-convergence");
        match &out {
            KernelOutput::Coloring(r) => assert_eq!(r.colors.len(), g.num_vertices()),
            KernelOutput::Louvain(r) => assert_eq!(r.communities.len(), g.num_vertices()),
            KernelOutput::Labelprop(r) => assert_eq!(r.labels.len(), g.num_vertices()),
        }
    }
}

#[test]
fn deadline_recorder_still_collects_trace_rounds() {
    let g = triangular_mesh(16, 16, 9);
    let mut rec = DeadlineRecorder::after(TraceRecorder::new("louvain-deadline"), Duration::ZERO);
    let r = louvain_run(&g, louvain_spec(), &mut rec);
    assert!(!r.info.converged);
    let trace = rec.into_inner().into_trace();
    // The partial run still reports the rounds it completed.
    assert!(!trace.rounds.is_empty());
    assert_eq!(trace.kernel, "louvain-deadline");
}
