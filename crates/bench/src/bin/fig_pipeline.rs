//! Figure (extension) — pipelined vs sequential batch execution, with
//! busy/idle timelines proving the overlap.
//!
//! A mixed batch (R-MAT / Erdős–Rényi / Barabási–Albert substrates ×
//! coloring / label propagation / MPLM Louvain kernels, all
//! `parallel: false` so outputs are bit-comparable) runs twice per scale:
//! as a sequential per-item loop, and through
//! `gp_core::pipeline::PipelineExecutor` (window 2), which materializes
//! item N+1's graph while item N's kernel rounds run. A third, untimed
//! pipelined run records the `gp_metrics::interval` timeline the figure's
//! overlap numbers come from.
//!
//! Knobs: `GP_RMAT_SCALE` pins a single scale (default sweep 14/16/18,
//! `GP_QUICK=1` → 14 only), `GP_JSON_OUT=<path>` writes the summary CI
//! archives as `BENCH_pipeline.json`, `GP_TIMELINE_OUT=<path>` writes the
//! largest scale's span CSV. `--check` verifies, in order: σ/mean < 2%
//! over 3 sequential-batch runs (measurement hygiene, skipped on ≤1 CPU);
//! batch-path wrapper overhead < 3% (window-1 pipeline vs the direct
//! loop) and serve-path wrapper overhead < 3% (in-process server's
//! `exec_ms` vs direct `run_kernel`), both only when the variance gate
//! reports a steady host; and pipelined ≥ 1.15× sequential with overlap
//! fraction > 0, on ≥ 4 CPUs only (self-skipping below, where no such
//! speedup is physically available).

use gp_bench::harness::{print_header, variance_gate, BenchContext, VarianceVerdict};
use gp_core::api::{run_kernel, Kernel, KernelOutput, KernelSpec, Variant};
use gp_core::pipeline::{BatchItem, PipelineExecutor};
use gp_graph::csr::Csr;
use gp_graph::generators::ba::preferential_attachment;
use gp_graph::generators::er::erdos_renyi;
use gp_graph::generators::rmat::{rmat, RmatConfig};
use gp_graph::stats::DegreeHistogram;
use gp_metrics::interval::{IntervalRecorder, NoopIntervals, Timeline};
use gp_metrics::telemetry::NoopRecorder;
use std::io::BufRead;
use std::io::Write;
use std::time::Instant;

/// One batch item's recipe: label, spec, graph constructor (all
/// `parallel: false` — the figure compares bit-identical work). The
/// constructor is `Arc`ed so each of the figure's runs gets its own
/// `'static` handle on it.
struct Recipe {
    label: String,
    spec: KernelSpec,
    build: std::sync::Arc<dyn Fn() -> Csr + Send + Sync>,
}

/// The mixed batch at `scale`: every substrate family, every kernel.
fn batch_recipes(scale: u32) -> Vec<Recipe> {
    let n = 1usize << scale;
    let m = n * 4;
    let mk = |label: String,
              spec: KernelSpec,
              build: std::sync::Arc<dyn Fn() -> Csr + Send + Sync>| Recipe {
        label,
        spec: spec.sequential(),
        build,
    };
    vec![
        mk(
            format!("rmat-s{scale}/color"),
            KernelSpec::new(Kernel::Coloring),
            std::sync::Arc::new(move || rmat(RmatConfig::new(scale, 8).with_seed(101))),
        ),
        mk(
            format!("er-s{scale}/labelprop"),
            KernelSpec::new(Kernel::Labelprop).with_seed(7),
            std::sync::Arc::new(move || erdos_renyi(n, m, 102)),
        ),
        mk(
            format!("ba-s{scale}/color"),
            KernelSpec::new(Kernel::Coloring),
            std::sync::Arc::new(move || preferential_attachment(n, 8, 103)),
        ),
        mk(
            format!("rmat-s{scale}/louvain-mplm"),
            KernelSpec::new(Kernel::Louvain(Variant::Mplm)).with_seed(9),
            std::sync::Arc::new(move || rmat(RmatConfig::new(scale, 8).with_seed(104))),
        ),
        mk(
            format!("er-s{scale}/color"),
            KernelSpec::new(Kernel::Coloring),
            std::sync::Arc::new(move || erdos_renyi(n, m, 105)),
        ),
        mk(
            format!("ba-s{scale}/labelprop"),
            KernelSpec::new(Kernel::Labelprop).with_seed(3),
            std::sync::Arc::new(move || preferential_attachment(n, 8, 106)),
        ),
    ]
}

fn items_of(recipes: &[Recipe]) -> Vec<BatchItem> {
    recipes
        .iter()
        .map(|r| {
            let build = std::sync::Arc::clone(&r.build);
            BatchItem::new(r.label.clone(), r.spec, move || build())
        })
        .collect()
}

fn main() {
    let ctx = BenchContext::from_env();
    print_header("Pipelined vs sequential batch execution", &ctx);
    let quick = std::env::var("GP_QUICK").is_ok_and(|v| v == "1");
    let scales: Vec<u32> = match std::env::var("GP_RMAT_SCALE").ok().and_then(|v| v.parse().ok()) {
        Some(s) => vec![s],
        None if quick => vec![14],
        None => vec![14, 16, 18],
    };
    let check = std::env::args().any(|a| a == "--check");
    if std::env::args().any(|a| a == "--probe-overhead") {
        // Diagnostic: run the wrapper-overhead probes unconditionally
        // (the --check path only trusts them on a steady multi-CPU host)
        // and report raw numbers without gating.
        let recipes = batch_recipes(12);
        if let Some(o) = batch_overhead(&ctx, &recipes) {
            println!("batch-path overhead (ungated): {:.2}%", 100.0 * o);
        }
        match serve_overhead(12) {
            Ok(o) => println!("serve-path overhead (ungated): {:.2}%", 100.0 * o),
            Err(e) => {
                eprintln!("serve-path overhead unmeasurable: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let mut rows = Vec::new();
    let mut last_timeline: Option<Timeline> = None;
    for &scale in &scales {
        let recipes = batch_recipes(scale);

        // Sequential baseline: the per-item loop every current entrypoint
        // runs — build, census, kernel, next item.
        let started = Instant::now();
        let baseline: Vec<KernelOutput> = ctx.install(|| {
            recipes
                .iter()
                .map(|r| {
                    let g = (r.build)();
                    std::hint::black_box(DegreeHistogram::build(&g).max_degree);
                    run_kernel(&g, &r.spec, &mut NoopRecorder)
                })
                .collect()
        });
        let seq_secs = started.elapsed().as_secs_f64();

        // Pipelined run (timed, noop intervals — the zero-cost path).
        let started = Instant::now();
        let piped = ctx.install(|| PipelineExecutor::new(2).run(items_of(&recipes), &NoopIntervals));
        let pipe_secs = started.elapsed().as_secs_f64();
        for (i, (got, expected)) in piped.iter().zip(&baseline).enumerate() {
            assert_eq!(
                got.output().expect("uncancelled batch"),
                expected,
                "{}: pipelined output diverged from sequential baseline",
                recipes[i].label
            );
        }

        // Timeline run (untimed): the overlap evidence.
        let rec = IntervalRecorder::new();
        ctx.install(|| PipelineExecutor::new(2).run(items_of(&recipes), &rec));
        let tl = rec.into_timeline();
        let sum = tl.summary();

        if !ctx.csv {
            println!(
                "scale {scale}: sequential {seq_secs:.3}s, pipelined {pipe_secs:.3}s ({:.2}x), overlap {:.1}%",
                seq_secs / pipe_secs.max(1e-12),
                100.0 * sum.overlap_fraction
            );
            for st in &sum.stages {
                println!(
                    "  stage {:<10} busy {:>8.3}s ({:>5.1}% of wall)",
                    st.stage,
                    st.busy_secs,
                    100.0 * st.busy_fraction
                );
            }
        }
        rows.push(ScaleRow {
            scale,
            items: recipes.len(),
            seq_secs,
            pipe_secs,
            overlap_fraction: sum.overlap_fraction,
            stages: sum
                .stages
                .iter()
                .map(|s| (s.stage.to_string(), s.busy_secs, s.busy_fraction))
                .collect(),
        });
        last_timeline = Some(tl);
    }

    if let Ok(path) = std::env::var("GP_TIMELINE_OUT") {
        if let Some(tl) = &last_timeline {
            std::fs::write(&path, tl.to_csv()).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            if !ctx.csv {
                println!("timeline CSV written to {path}");
            }
        }
    }
    if let Ok(path) = std::env::var("GP_JSON_OUT") {
        write_json(&path, &rows).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        if !ctx.csv {
            println!("JSON summary written to {path}");
        }
    }

    if check {
        run_check(&ctx, &rows);
    }
}

struct ScaleRow {
    scale: u32,
    items: usize,
    seq_secs: f64,
    pipe_secs: f64,
    overlap_fraction: f64,
    stages: Vec<(String, f64, f64)>, // (stage, busy_secs, busy_fraction)
}

fn run_check(ctx: &BenchContext, rows: &[ScaleRow]) {
    if gp_par::sequential_mode() {
        println!("check SKIPPED: GP_PAR_SEQ=1 forces a sequential pool — no overlap to verify");
        return;
    }
    let mut failed = false;
    let scale = rows.first().map_or(14, |r| r.scale);
    let recipes = batch_recipes(scale.min(14));

    // 1. Measurement hygiene: the host must repeat the sequential batch
    //    within 2% before any timing-derived gate means anything.
    let steady = match variance_gate(|| {
        ctx.install(|| {
            for r in &recipes {
                let g = (r.build)();
                std::hint::black_box(run_kernel(&g, &r.spec, &mut NoopRecorder));
            }
        })
    }) {
        VarianceVerdict::Steady(s) => {
            println!("variance gate: σ/mean = {:.2}% over 3 runs", 100.0 * s);
            true
        }
        VarianceVerdict::Noisy(s) => {
            eprintln!(
                "CHECK FAILED: host too noisy — σ/mean = {:.2}% ≥ 2% over 3 runs",
                100.0 * s
            );
            failed = true;
            false
        }
        VarianceVerdict::SkippedLowCpu => {
            println!("variance gate SKIPPED: ≤ 1 CPU available");
            false
        }
    };

    // 2. Wrapper-overhead gates (only meaningful on a steady host).
    if steady {
        if let Some(overhead) = batch_overhead(ctx, &recipes) {
            if overhead < 0.03 {
                println!("batch-path overhead: {:.2}% < 3%", 100.0 * overhead);
            } else {
                eprintln!("CHECK FAILED: batch-path overhead {:.2}% ≥ 3%", 100.0 * overhead);
                failed = true;
            }
        }
        match serve_overhead(scale.min(12)) {
            Ok(overhead) => {
                if overhead < 0.03 {
                    println!("serve-path overhead: {:.2}% < 3%", 100.0 * overhead);
                } else {
                    eprintln!("CHECK FAILED: serve-path overhead {:.2}% ≥ 3%", 100.0 * overhead);
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("CHECK FAILED: serve-path overhead unmeasurable: {e}");
                failed = true;
            }
        }
    } else {
        println!("overhead gates SKIPPED: need a steady host (variance gate above)");
    }

    // 3. The overlap payoff, where the hardware can physically provide it.
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cpus < 4 {
        println!("speedup gate SKIPPED: {cpus} CPU(s) < 4 — pipelining needs spare workers");
    } else {
        let r = rows.last().expect("at least one scale ran");
        let speedup = r.seq_secs / r.pipe_secs.max(1e-12);
        if speedup < 1.15 {
            eprintln!(
                "CHECK FAILED: pipelined {speedup:.2}x sequential at scale {} (need ≥ 1.15x)",
                r.scale
            );
            failed = true;
        }
        if r.overlap_fraction <= 0.0 {
            eprintln!("CHECK FAILED: overlap fraction is zero — lanes never ran concurrently");
            failed = true;
        }
        if !failed {
            println!(
                "speedup gate: {speedup:.2}x ≥ 1.15x at scale {}, overlap {:.1}%",
                r.scale,
                100.0 * r.overlap_fraction
            );
        }
    }

    if failed {
        std::process::exit(1);
    }
    println!("\ncheck OK");
}

/// Median window-1 pipeline time over the direct loop, minus one —
/// the `gpart batch` path's wrapper cost. `None` is never returned today;
/// the Option leaves room for a self-skip if the measurement grows one.
fn batch_overhead(ctx: &BenchContext, recipes: &[Recipe]) -> Option<f64> {
    let reps = 5;
    let mut direct: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            ctx.install(|| {
                for r in recipes {
                    let g = (r.build)();
                    std::hint::black_box(DegreeHistogram::build(&g).max_degree);
                    std::hint::black_box(run_kernel(&g, &r.spec, &mut NoopRecorder));
                }
            });
            t.elapsed().as_secs_f64()
        })
        .collect();
    let mut piped: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            ctx.install(|| {
                std::hint::black_box(PipelineExecutor::new(1).run(items_of(recipes), &NoopIntervals))
            });
            t.elapsed().as_secs_f64()
        })
        .collect();
    direct.sort_by(f64::total_cmp);
    piped.sort_by(f64::total_cmp);
    Some(piped[reps / 2] / direct[reps / 2] - 1.0)
}

/// Serve-path wrapper cost: an in-process server's reported `exec_ms`
/// (which excludes queueing and transport — exactly the worker's execute
/// path) against a direct `run_kernel` on the same prebuilt graph and
/// spec. The graph cache is warmed first so both sides measure kernel +
/// wrapper, not generation.
fn serve_overhead(scale: u32) -> Result<f64, String> {
    use std::io::BufReader;
    use std::net::TcpStream;

    let server = gp_serve::Server::start(gp_serve::ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        shards: 1,
        ..Default::default()
    })
    .map_err(|e| format!("spawn server: {e}"))?;
    let addr = server.local_addr().to_string();
    let stream = TcpStream::connect(&addr).map_err(|e| format!("connect: {e}"))?;
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut stream = stream;
    let mut roundtrip = |line: String| -> Result<gp_serve::Json, String> {
        stream
            .write_all(line.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .map_err(|e| format!("write: {e}"))?;
        let mut response = String::new();
        reader.read_line(&mut response).map_err(|e| format!("read: {e}"))?;
        gp_serve::json::parse(response.trim()).map_err(|e| format!("parse response: {e:?}"))
    };

    let graph_key = format!("rmat:scale={scale},ef=8,seed=77");
    // Warm the shard's graph cache (this first exec_ms includes the build).
    roundtrip(format!(r#"{{"kernel":"labelprop","graph":"{graph_key}","seed":1}}"#))?;
    let g = rmat(RmatConfig::new(scale, 8).with_seed(77));
    let mut ratios = Vec::new();
    for seed in [2u64, 3, 4] {
        // Distinct kernel seeds dodge the result cache; the graph is warm.
        let body = roundtrip(format!(
            r#"{{"kernel":"labelprop","graph":"{graph_key}","seed":{seed}}}"#
        ))?;
        let exec_ms = body
            .get("exec_ms")
            .and_then(gp_serve::Json::as_f64)
            .ok_or("response missing exec_ms")?;
        // The request spec: protocol XORs the wire seed into the kernel
        // default; `parallel` stays at the service default (true).
        let spec = KernelSpec::new(Kernel::Labelprop).with_seed(seed ^ 0x1abe1);
        let t = Instant::now();
        std::hint::black_box(run_kernel(&g, &spec, &mut NoopRecorder));
        let direct = t.elapsed().as_secs_f64();
        ratios.push((exec_ms / 1000.0) / direct.max(1e-12) - 1.0);
    }
    server.shutdown();
    ratios.sort_by(f64::total_cmp);
    Ok(ratios[ratios.len() / 2])
}

/// Minimal hand-rolled JSON (no serde in the bench bins).
fn write_json(path: &str, rows: &[ScaleRow]) -> std::io::Result<()> {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"figure\": \"pipeline\",")?;
    writeln!(f, "  \"host_cpus\": {cpus},")?;
    writeln!(f, "  \"window\": 2,")?;
    writeln!(f, "  \"scales\": [")?;
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let stages: Vec<String> = r
            .stages
            .iter()
            .map(|(name, busy, frac)| {
                format!(
                    "{{\"stage\": \"{name}\", \"busy_secs\": {busy:.6}, \"busy_fraction\": {frac:.4}}}"
                )
            })
            .collect();
        writeln!(
            f,
            "    {{\"scale\": {}, \"items\": {}, \"sequential_secs\": {:.6}, \"pipelined_secs\": {:.6}, \"speedup\": {:.4}, \"overlap_fraction\": {:.4}, \"stages\": [{}]}}{comma}",
            r.scale,
            r.items,
            r.seq_secs,
            r.pipe_secs,
            r.seq_secs / r.pipe_secs.max(1e-12),
            r.overlap_fraction,
            stages.join(", ")
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}
