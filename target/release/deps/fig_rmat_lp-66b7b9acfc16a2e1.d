/root/repo/target/release/deps/fig_rmat_lp-66b7b9acfc16a2e1.d: crates/bench/src/bin/fig_rmat_lp.rs

/root/repo/target/release/deps/fig_rmat_lp-66b7b9acfc16a2e1: crates/bench/src/bin/fig_rmat_lp.rs

crates/bench/src/bin/fig_rmat_lp.rs:
