/root/repo/target/debug/deps/concurrency_stress-be6d17ae8723d591.d: crates/core/tests/concurrency_stress.rs

/root/repo/target/debug/deps/concurrency_stress-be6d17ae8723d591: crates/core/tests/concurrency_stress.rs

crates/core/tests/concurrency_stress.rs:
