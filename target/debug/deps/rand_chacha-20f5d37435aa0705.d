/root/repo/target/debug/deps/rand_chacha-20f5d37435aa0705.d: .devstubs/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-20f5d37435aa0705.rmeta: .devstubs/rand_chacha/src/lib.rs

.devstubs/rand_chacha/src/lib.rs:
