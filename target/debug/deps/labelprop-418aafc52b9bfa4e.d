/root/repo/target/debug/deps/labelprop-418aafc52b9bfa4e.d: crates/bench/benches/labelprop.rs Cargo.toml

/root/repo/target/debug/deps/liblabelprop-418aafc52b9bfa4e.rmeta: crates/bench/benches/labelprop.rs Cargo.toml

crates/bench/benches/labelprop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
