//! Offline stand-in for `rand_chacha` (API subset used by this workspace).
//!
//! Provides `ChaCha8Rng` with the rand 0.8 trait shapes plus `set_stream` /
//! `get_stream`. The implementation is a counter-mode mixer (SplitMix64-style
//! finalizers over `(key, stream, counter)`), not real ChaCha — deterministic
//! and portable, with independent output sequences per `(seed, stream)` pair,
//! which is the property the deterministic parallel generators rely on.

use rand::{RngCore, SeedableRng};

/// Counter-mode deterministic RNG with independently addressable streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// 256-bit key derived from the seed.
    key: [u64; 4],
    /// Stream identifier (`set_stream`); distinct streams are statistically
    /// independent sequences under the same key.
    stream: u64,
    /// Block counter; incremented once per `next_u64`.
    counter: u64,
}

#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd);
    z = (z ^ (z >> 33)).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    z ^ (z >> 33)
}

impl ChaCha8Rng {
    /// Selects the output stream and rewinds it to its start, so that
    /// `seed_from_u64(s)` + `set_stream(k)` always denotes the same sequence
    /// regardless of how much of any other stream was consumed.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.counter = 0;
    }

    /// Currently selected stream.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    /// Sets the word position within the current stream.
    pub fn set_word_pos(&mut self, pos: u128) {
        self.counter = pos as u64;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let c = self.counter;
        self.counter = self.counter.wrapping_add(1);
        // Two keyed finalizer rounds over (stream, counter); the key words
        // enter at different rounds so related keys do not cancel.
        let a = mix(c ^ self.key[0] ^ self.stream.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let b = mix(a ^ self.key[1].rotate_left(17) ^ self.key[2]);
        mix(b.wrapping_add(self.key[3]))
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u64; 4];
        for (i, word) in key.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(b);
        }
        ChaCha8Rng { key, stream: 0, counter: 0 }
    }
}

/// Same engine under the ChaCha12 name (unused rounds distinction).
pub type ChaCha12Rng = ChaCha8Rng;
/// Same engine under the ChaCha20 name (unused rounds distinction).
pub type ChaCha20Rng = ChaCha8Rng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = ChaCha8Rng::seed_from_u64(1234);
        let mut b = ChaCha8Rng::seed_from_u64(1234);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_are_independent_and_rewindable() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        a.set_stream(3);
        let first: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();

        // Consuming another stream then returning must reproduce the bytes.
        let mut b = ChaCha8Rng::seed_from_u64(7);
        b.set_stream(9);
        for _ in 0..100 {
            b.next_u64();
        }
        b.set_stream(3);
        let again: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(first, again);

        // Different stream, different bytes.
        let mut c = ChaCha8Rng::seed_from_u64(7);
        c.set_stream(4);
        let other: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_ne!(first, other);
    }

    #[test]
    fn low_bits_vary() {
        // Guard against a weak mixer: low bits of successive outputs must
        // not be constant or strictly alternating.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let bits: Vec<u64> = (0..64).map(|_| rng.next_u64() & 1).collect();
        let ones: u64 = bits.iter().sum();
        assert!((16..=48).contains(&ones), "low bit heavily biased: {ones}/64");
    }
}
