/root/repo/target/debug/deps/graph_partition_avx512-c6e4f628bbf8914b.d: src/lib.rs

/root/repo/target/debug/deps/libgraph_partition_avx512-c6e4f628bbf8914b.rlib: src/lib.rs

/root/repo/target/debug/deps/libgraph_partition_avx512-c6e4f628bbf8914b.rmeta: src/lib.rs

src/lib.rs:
