/root/repo/target/debug/deps/gp_core-8acaf0ad632b78c1.d: crates/core/src/lib.rs crates/core/src/coloring/mod.rs crates/core/src/coloring/greedy.rs crates/core/src/coloring/onpl.rs crates/core/src/coloring/verify.rs crates/core/src/contrast.rs crates/core/src/labelprop/mod.rs crates/core/src/labelprop/mplp.rs crates/core/src/labelprop/onlp.rs crates/core/src/louvain/mod.rs crates/core/src/louvain/coarsen.rs crates/core/src/louvain/driver.rs crates/core/src/louvain/modularity.rs crates/core/src/louvain/mplm.rs crates/core/src/louvain/onpl.rs crates/core/src/louvain/ovpl/mod.rs crates/core/src/louvain/ovpl/blocks.rs crates/core/src/louvain/ovpl/move_phase.rs crates/core/src/louvain/ovpl/preprocess.rs crates/core/src/louvain/plm.rs crates/core/src/neighborhood.rs crates/core/src/overlap.rs crates/core/src/partition/mod.rs crates/core/src/partition/initial.rs crates/core/src/partition/matching.rs crates/core/src/partition/metrics.rs crates/core/src/partition/refine.rs crates/core/src/quality.rs crates/core/src/reduce_scatter.rs crates/core/src/vector_affinity.rs

/root/repo/target/debug/deps/libgp_core-8acaf0ad632b78c1.rlib: crates/core/src/lib.rs crates/core/src/coloring/mod.rs crates/core/src/coloring/greedy.rs crates/core/src/coloring/onpl.rs crates/core/src/coloring/verify.rs crates/core/src/contrast.rs crates/core/src/labelprop/mod.rs crates/core/src/labelprop/mplp.rs crates/core/src/labelprop/onlp.rs crates/core/src/louvain/mod.rs crates/core/src/louvain/coarsen.rs crates/core/src/louvain/driver.rs crates/core/src/louvain/modularity.rs crates/core/src/louvain/mplm.rs crates/core/src/louvain/onpl.rs crates/core/src/louvain/ovpl/mod.rs crates/core/src/louvain/ovpl/blocks.rs crates/core/src/louvain/ovpl/move_phase.rs crates/core/src/louvain/ovpl/preprocess.rs crates/core/src/louvain/plm.rs crates/core/src/neighborhood.rs crates/core/src/overlap.rs crates/core/src/partition/mod.rs crates/core/src/partition/initial.rs crates/core/src/partition/matching.rs crates/core/src/partition/metrics.rs crates/core/src/partition/refine.rs crates/core/src/quality.rs crates/core/src/reduce_scatter.rs crates/core/src/vector_affinity.rs

/root/repo/target/debug/deps/libgp_core-8acaf0ad632b78c1.rmeta: crates/core/src/lib.rs crates/core/src/coloring/mod.rs crates/core/src/coloring/greedy.rs crates/core/src/coloring/onpl.rs crates/core/src/coloring/verify.rs crates/core/src/contrast.rs crates/core/src/labelprop/mod.rs crates/core/src/labelprop/mplp.rs crates/core/src/labelprop/onlp.rs crates/core/src/louvain/mod.rs crates/core/src/louvain/coarsen.rs crates/core/src/louvain/driver.rs crates/core/src/louvain/modularity.rs crates/core/src/louvain/mplm.rs crates/core/src/louvain/onpl.rs crates/core/src/louvain/ovpl/mod.rs crates/core/src/louvain/ovpl/blocks.rs crates/core/src/louvain/ovpl/move_phase.rs crates/core/src/louvain/ovpl/preprocess.rs crates/core/src/louvain/plm.rs crates/core/src/neighborhood.rs crates/core/src/overlap.rs crates/core/src/partition/mod.rs crates/core/src/partition/initial.rs crates/core/src/partition/matching.rs crates/core/src/partition/metrics.rs crates/core/src/partition/refine.rs crates/core/src/quality.rs crates/core/src/reduce_scatter.rs crates/core/src/vector_affinity.rs

crates/core/src/lib.rs:
crates/core/src/coloring/mod.rs:
crates/core/src/coloring/greedy.rs:
crates/core/src/coloring/onpl.rs:
crates/core/src/coloring/verify.rs:
crates/core/src/contrast.rs:
crates/core/src/labelprop/mod.rs:
crates/core/src/labelprop/mplp.rs:
crates/core/src/labelprop/onlp.rs:
crates/core/src/louvain/mod.rs:
crates/core/src/louvain/coarsen.rs:
crates/core/src/louvain/driver.rs:
crates/core/src/louvain/modularity.rs:
crates/core/src/louvain/mplm.rs:
crates/core/src/louvain/onpl.rs:
crates/core/src/louvain/ovpl/mod.rs:
crates/core/src/louvain/ovpl/blocks.rs:
crates/core/src/louvain/ovpl/move_phase.rs:
crates/core/src/louvain/ovpl/preprocess.rs:
crates/core/src/louvain/plm.rs:
crates/core/src/neighborhood.rs:
crates/core/src/overlap.rs:
crates/core/src/partition/mod.rs:
crates/core/src/partition/initial.rs:
crates/core/src/partition/matching.rs:
crates/core/src/partition/metrics.rs:
crates/core/src/partition/refine.rs:
crates/core/src/quality.rs:
crates/core/src/reduce_scatter.rs:
crates/core/src/vector_affinity.rs:
