//! Busy/idle interval recording for pipelined execution: the
//! [`crate::telemetry::PhaseProbe`] idea extended from *durations* to
//! *intervals*.
//!
//! A phase probe answers "how long did coarsening take"; it cannot answer
//! "was the pool busy while it ran". The pipelined batch executor
//! (`gp_core::pipeline`) overlaps the substrate stages of item N+1 with the
//! kernel rounds of item N, and the proof that the overlap happened is a
//! *timeline*: per-lane busy spans with stage labels, on one shared clock,
//! from which utilization and overlap fractions fall out.
//!
//! * [`IntervalSink`] — statically-dispatched span sink, mirroring
//!   [`crate::telemetry::Recorder`]: with [`NoopIntervals`]
//!   (`ENABLED = false`) every probe compiles away.
//! * [`IntervalRecorder`] — the enabled sink: thread-safe (lanes run on
//!   different threads and share it by reference), spans stamped relative
//!   to one origin instant.
//! * [`SpanProbe`] — the guard: `begin::<S>()` at stage entry,
//!   `finish(sink, lane, worker, stage, item)` at stage exit.
//! * [`Timeline`] — the merged result: CSV export, per-stage busy seconds,
//!   and the overlap fraction (share of wall time with ≥ 2 lanes busy).

use std::sync::Mutex;
use std::time::Instant;

/// One busy span: `lane`/`worker` identify who was busy, `stage` labels
/// what it was doing, `item` which batch item it was doing it for, and
/// `[start, end]` are seconds relative to the recorder's origin.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Lane label (`"substrate"`, `"kernel"`, ...).
    pub lane: &'static str,
    /// Worker index within the lane (0 for single-worker lanes).
    pub worker: usize,
    /// Stage label (`"build"`, `"coarsen"`, `"kernel"`, ...).
    pub stage: &'static str,
    /// Batch-item index the span worked on.
    pub item: usize,
    /// Span start, seconds since the timeline origin.
    pub start: f64,
    /// Span end, seconds since the timeline origin.
    pub end: f64,
}

impl Span {
    /// Busy seconds covered by the span.
    pub fn secs(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }
}

/// Statically-dispatched sink for busy spans.
///
/// Mirrors [`crate::telemetry::Recorder`]: executors are generic over
/// `S: IntervalSink`, and the [`NoopIntervals`] monomorphization contains no
/// probe code at all. Sinks take `&self` (not `&mut`) because pipeline lanes
/// on different threads share one sink.
pub trait IntervalSink: Sync {
    /// Whether probes should collect at all. `false` compiles them out.
    const ENABLED: bool;

    /// Receives one completed span (absolute instants; the sink owns the
    /// origin and converts to relative seconds).
    fn record_span(
        &self,
        lane: &'static str,
        worker: usize,
        stage: &'static str,
        item: usize,
        start: Instant,
        end: Instant,
    );
}

/// The default sink: does nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopIntervals;

impl IntervalSink for NoopIntervals {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record_span(
        &self,
        _lane: &'static str,
        _worker: usize,
        _stage: &'static str,
        _item: usize,
        _start: Instant,
        _end: Instant,
    ) {
    }
}

/// The enabled sink: collects spans from every lane onto one shared clock.
#[derive(Debug)]
pub struct IntervalRecorder {
    origin: Instant,
    spans: Mutex<Vec<Span>>,
}

impl Default for IntervalRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl IntervalRecorder {
    /// Fresh recorder; the origin (timeline zero) is now.
    pub fn new() -> Self {
        IntervalRecorder {
            origin: Instant::now(),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Snapshot of the timeline so far (spans sorted by start time).
    pub fn timeline(&self) -> Timeline {
        Timeline::from_spans(self.spans.lock().unwrap().clone())
    }

    /// Consumes the recorder into its timeline.
    pub fn into_timeline(self) -> Timeline {
        Timeline::from_spans(self.spans.into_inner().unwrap())
    }
}

impl IntervalSink for IntervalRecorder {
    const ENABLED: bool = true;

    fn record_span(
        &self,
        lane: &'static str,
        worker: usize,
        stage: &'static str,
        item: usize,
        start: Instant,
        end: Instant,
    ) {
        let rel = |t: Instant| t.saturating_duration_since(self.origin).as_secs_f64();
        self.spans.lock().unwrap().push(Span {
            lane,
            worker,
            stage,
            item,
            start: rel(start),
            end: rel(end),
        });
    }
}

/// Guard capturing a stage's entry instant; [`SpanProbe::finish`] stamps the
/// exit instant and hands the interval to the sink. With a disabled sink
/// both calls are empty inlineable functions — the zero-cost path the
/// serve tier rides.
#[derive(Debug)]
pub struct SpanProbe {
    start: Option<Instant>,
}

impl SpanProbe {
    /// Captures the stage-entry instant (only when `S::ENABLED`).
    #[inline(always)]
    pub fn begin<S: IntervalSink>() -> SpanProbe {
        SpanProbe {
            start: if S::ENABLED { Some(Instant::now()) } else { None },
        }
    }

    /// Completes the span and records it. A no-op when `S::ENABLED` is
    /// false.
    #[inline(always)]
    pub fn finish<S: IntervalSink>(
        self,
        sink: &S,
        lane: &'static str,
        worker: usize,
        stage: &'static str,
        item: usize,
    ) {
        if S::ENABLED {
            if let Some(start) = self.start {
                sink.record_span(lane, worker, stage, item, start, Instant::now());
            }
        }
    }
}

/// Per-stage slice of a [`TimelineSummary`].
#[derive(Debug, Clone, PartialEq)]
pub struct StageUtil {
    /// Stage label.
    pub stage: &'static str,
    /// Total busy seconds across all lanes.
    pub busy_secs: f64,
    /// `busy_secs / total_secs` — the pool-busy fraction this stage alone
    /// accounts for (can exceed 1.0 when several lanes run the stage
    /// concurrently).
    pub busy_fraction: f64,
}

/// Aggregate view of a [`Timeline`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineSummary {
    /// Wall span of the timeline (latest span end), seconds.
    pub total_secs: f64,
    /// Distinct `(lane, worker)` pairs that recorded spans.
    pub lanes: usize,
    /// Summed busy seconds across all spans.
    pub busy_secs: f64,
    /// `busy_secs / (lanes * total_secs)`: mean busy share per lane.
    pub busy_fraction: f64,
    /// Wall seconds during which ≥ 2 lanes were simultaneously busy.
    pub overlap_secs: f64,
    /// `overlap_secs / total_secs` — the overlap the pipeline achieved;
    /// strictly sequential execution scores 0.
    pub overlap_fraction: f64,
    /// Per-stage busy breakdown, in first-appearance order.
    pub stages: Vec<StageUtil>,
}

/// A merged, queryable set of busy spans on one shared clock.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    spans: Vec<Span>,
}

impl Timeline {
    /// Builds a timeline from raw spans (sorted by start, then end).
    pub fn from_spans(mut spans: Vec<Span>) -> Timeline {
        spans.sort_by(|a, b| {
            a.start
                .total_cmp(&b.start)
                .then(a.end.total_cmp(&b.end))
                .then(a.item.cmp(&b.item))
        });
        Timeline { spans }
    }

    /// The spans, sorted by start time.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Wall span covered (latest span end); 0 for an empty timeline.
    pub fn total_secs(&self) -> f64 {
        self.spans.iter().map(|s| s.end).fold(0.0, f64::max)
    }

    /// Summed busy seconds across all spans.
    pub fn busy_secs(&self) -> f64 {
        self.spans.iter().map(Span::secs).sum()
    }

    /// Wall seconds during which at least two spans were simultaneously
    /// active. Spans on one `(lane, worker)` never overlap each other (a
    /// lane is sequential), so activity count ≥ 2 means two *lanes* were
    /// busy — the overlap the pipeline exists to create.
    pub fn overlap_secs(&self) -> f64 {
        // Sweep the span boundaries: +1 at starts, -1 at ends, summing the
        // time where the active count is ≥ 2.
        let mut events: Vec<(f64, i32)> = Vec::with_capacity(self.spans.len() * 2);
        for s in &self.spans {
            if s.end > s.start {
                events.push((s.start, 1));
                events.push((s.end, -1));
            }
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let (mut active, mut prev, mut overlap) = (0i32, 0.0f64, 0.0f64);
        for (t, delta) in events {
            if active >= 2 {
                overlap += t - prev;
            }
            active += delta;
            prev = t;
        }
        overlap
    }

    /// `overlap_secs / total_secs`; 0 for an empty timeline.
    pub fn overlap_fraction(&self) -> f64 {
        let total = self.total_secs();
        if total > 0.0 {
            self.overlap_secs() / total
        } else {
            0.0
        }
    }

    /// Distinct `(lane, worker)` pairs present.
    pub fn lanes(&self) -> usize {
        let mut seen: Vec<(&'static str, usize)> = Vec::new();
        for s in &self.spans {
            if !seen.contains(&(s.lane, s.worker)) {
                seen.push((s.lane, s.worker));
            }
        }
        seen.len()
    }

    /// Aggregate summary: wall span, busy/overlap fractions, per-stage
    /// busy breakdown.
    pub fn summary(&self) -> TimelineSummary {
        let total_secs = self.total_secs();
        let lanes = self.lanes();
        let busy_secs = self.busy_secs();
        let overlap_secs = self.overlap_secs();
        let mut stages: Vec<StageUtil> = Vec::new();
        for s in &self.spans {
            match stages.iter_mut().find(|u| u.stage == s.stage) {
                Some(u) => u.busy_secs += s.secs(),
                None => stages.push(StageUtil {
                    stage: s.stage,
                    busy_secs: s.secs(),
                    busy_fraction: 0.0,
                }),
            }
        }
        if total_secs > 0.0 {
            for u in &mut stages {
                u.busy_fraction = u.busy_secs / total_secs;
            }
        }
        TimelineSummary {
            total_secs,
            lanes,
            busy_secs,
            busy_fraction: if lanes > 0 && total_secs > 0.0 {
                busy_secs / (lanes as f64 * total_secs)
            } else {
                0.0
            },
            overlap_secs,
            overlap_fraction: if total_secs > 0.0 {
                overlap_secs / total_secs
            } else {
                0.0
            },
            stages,
        }
    }

    /// CSV export: `lane,worker,stage,item,start_secs,end_secs`, one row
    /// per span, sorted by start time. The format `docs/PIPELINE.md`
    /// documents and the `fig_pipeline` artifact carries.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("lane,worker,stage,item,start_secs,end_secs\n");
        for s in &self.spans {
            out.push_str(&format!(
                "{},{},{},{},{:.6},{:.6}\n",
                s.lane, s.worker, s.stage, s.item, s.start, s.end
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(lane: &'static str, stage: &'static str, item: usize, start: f64, end: f64) -> Span {
        Span {
            lane,
            worker: 0,
            stage,
            item,
            start,
            end,
        }
    }

    #[test]
    fn noop_probe_captures_nothing() {
        let p = SpanProbe::begin::<NoopIntervals>();
        assert!(p.start.is_none());
        p.finish(&NoopIntervals, "substrate", 0, "build", 0);
    }

    #[test]
    fn recorder_collects_spans_relative_to_origin() {
        let rec = IntervalRecorder::new();
        let p = SpanProbe::begin::<IntervalRecorder>();
        std::hint::black_box((0..100).sum::<u64>());
        p.finish(&rec, "kernel", 0, "kernel", 3);
        let tl = rec.into_timeline();
        assert_eq!(tl.spans().len(), 1);
        let s = &tl.spans()[0];
        assert_eq!((s.lane, s.stage, s.item), ("kernel", "kernel", 3));
        assert!(s.start >= 0.0 && s.end >= s.start);
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let rec = IntervalRecorder::new();
        std::thread::scope(|scope| {
            for w in 0..4 {
                let rec = &rec;
                scope.spawn(move || {
                    let p = SpanProbe::begin::<IntervalRecorder>();
                    p.finish(rec, "substrate", w, "build", w);
                });
            }
        });
        assert_eq!(rec.timeline().spans().len(), 4);
        assert_eq!(rec.timeline().lanes(), 4);
    }

    #[test]
    fn overlap_detects_concurrent_lanes() {
        // kernel busy 0..10; substrate busy 4..8 → 4s of overlap.
        let tl = Timeline::from_spans(vec![
            span("kernel", "kernel", 0, 0.0, 10.0),
            span("substrate", "build", 1, 4.0, 8.0),
        ]);
        assert!((tl.overlap_secs() - 4.0).abs() < 1e-9);
        assert!((tl.overlap_fraction() - 0.4).abs() < 1e-9);
        assert!((tl.total_secs() - 10.0).abs() < 1e-9);
        assert!((tl.busy_secs() - 14.0).abs() < 1e-9);
    }

    #[test]
    fn sequential_spans_have_zero_overlap() {
        let tl = Timeline::from_spans(vec![
            span("kernel", "build", 0, 0.0, 2.0),
            span("kernel", "kernel", 0, 2.0, 5.0),
            span("kernel", "build", 1, 5.0, 7.0),
        ]);
        assert_eq!(tl.overlap_secs(), 0.0);
        assert_eq!(tl.overlap_fraction(), 0.0);
    }

    #[test]
    fn summary_aggregates_per_stage() {
        let tl = Timeline::from_spans(vec![
            span("substrate", "build", 0, 0.0, 2.0),
            span("substrate", "build", 1, 2.0, 6.0),
            span("kernel", "kernel", 0, 2.0, 10.0),
        ]);
        let sum = tl.summary();
        assert_eq!(sum.lanes, 2);
        assert_eq!(sum.stages.len(), 2);
        let build = sum.stages.iter().find(|s| s.stage == "build").unwrap();
        assert!((build.busy_secs - 6.0).abs() < 1e-9);
        assert!((build.busy_fraction - 0.6).abs() < 1e-9);
        // build 2..6 overlaps kernel 2..10 for 4s of the 10s wall.
        assert!((sum.overlap_fraction - 0.4).abs() < 1e-9);
        // 14 busy seconds across 2 lanes * 10s wall.
        assert!((sum.busy_fraction - 0.7).abs() < 1e-9);
    }

    #[test]
    fn csv_has_header_and_sorted_rows() {
        let tl = Timeline::from_spans(vec![
            span("kernel", "kernel", 1, 5.0, 6.0),
            span("substrate", "build", 0, 0.5, 2.0),
        ]);
        let csv = tl.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "lane,worker,stage,item,start_secs,end_secs");
        assert!(lines[1].starts_with("substrate,0,build,0,0.5"));
        assert!(lines[2].starts_with("kernel,0,kernel,1,5.0"));
    }

    #[test]
    fn empty_timeline_is_all_zero() {
        let tl = Timeline::default();
        assert_eq!(tl.total_secs(), 0.0);
        assert_eq!(tl.overlap_fraction(), 0.0);
        let sum = tl.summary();
        assert_eq!(sum.lanes, 0);
        assert_eq!(sum.busy_fraction, 0.0);
        assert!(sum.stages.is_empty());
    }
}
