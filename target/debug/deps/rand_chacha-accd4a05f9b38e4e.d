/root/repo/target/debug/deps/rand_chacha-accd4a05f9b38e4e.d: .devstubs/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-accd4a05f9b38e4e.rlib: .devstubs/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-accd4a05f9b38e4e.rmeta: .devstubs/rand_chacha/src/lib.rs

.devstubs/rand_chacha/src/lib.rs:
