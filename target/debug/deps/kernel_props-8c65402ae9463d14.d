/root/repo/target/debug/deps/kernel_props-8c65402ae9463d14.d: crates/core/tests/kernel_props.rs

/root/repo/target/debug/deps/kernel_props-8c65402ae9463d14: crates/core/tests/kernel_props.rs

crates/core/tests/kernel_props.rs:
