//! Boundary refinement: greedy gain moves under the balance constraint.
//!
//! For each boundary vertex, compute the edge weight toward every adjacent
//! part (the reduce-scatter aggregation again), and move the vertex to the
//! part with the largest gain over staying — if the move keeps the balance
//! constraint. Sweeps repeat until no move helps or the pass budget runs
//! out. This is the label-propagation-shaped relative of FM refinement that
//! multilevel partitioners use for k-way refinement, and it vectorizes with
//! exactly the paper's ONPL kernel.

use super::{parts_as_i32, PartitionConfig};
use crate::coloring::onpl::as_i32;
use crate::louvain::mplm::AffinityBuf;
use crate::reduce_scatter::Strategy;
use crate::vector_affinity::accumulate;
use gp_graph::csr::Csr;
use gp_simd::backend::Simd;

/// Shared sweep logic: `gain_of(u, buf)` returns the best target part and
/// the cut improvement.
fn sweep(
    g: &Csr,
    weights: &[f32],
    parts: &mut [u32],
    config: &PartitionConfig,
    mut best_target: impl FnMut(u32, &[u32], &mut AffinityBuf) -> Option<(u32, f32)>,
) -> usize {
    let k = config.k;
    let total: f32 = weights.iter().sum();
    let max_part = (1.0 + config.epsilon) * total / k as f32;
    let mut part_weight = vec![0.0f32; k];
    for (v, &p) in parts.iter().enumerate() {
        part_weight[p as usize] += weights[v];
    }
    let mut buf = AffinityBuf::new(k);
    let mut moves = 0usize;
    for u in 0..g.num_vertices() as u32 {
        if g.degree(u) == 0 {
            continue;
        }
        let from = parts[u as usize];
        let Some((to, gain)) = best_target(u, parts, &mut buf) else {
            continue;
        };
        if to == from || gain <= 0.0 {
            continue;
        }
        let wu = weights[u as usize];
        if part_weight[to as usize] + wu > max_part {
            continue; // would break balance
        }
        // Never empty a part entirely.
        if part_weight[from as usize] - wu <= 0.0 {
            continue;
        }
        part_weight[from as usize] -= wu;
        part_weight[to as usize] += wu;
        parts[u as usize] = to;
        moves += 1;
    }
    moves
}

/// Rebalancing pass: while any part exceeds the balance bound, move its
/// boundary vertices to the part they are most connected to among those
/// with spare capacity (falling back to the lightest part). Runs before the
/// gain sweeps so greedy refinement starts from a feasible point even when
/// the initial growing overshot a quota.
pub(crate) fn rebalance(g: &Csr, weights: &[f32], parts: &mut [u32], config: &PartitionConfig) {
    let k = config.k;
    let total: f32 = weights.iter().sum();
    let max_part = (1.0 + config.epsilon) * total / k as f32;
    let mut part_weight = vec![0.0f32; k];
    for (v, &p) in parts.iter().enumerate() {
        part_weight[p as usize] += weights[v];
    }
    let mut buf = AffinityBuf::new(k);
    for _ in 0..k {
        let Some(over) = (0..k).find(|&p| part_weight[p] > max_part) else {
            return;
        };
        // Move vertices out of `over`, best-connected target first.
        for u in 0..g.num_vertices() as u32 {
            if part_weight[over] <= max_part {
                break;
            }
            if parts[u as usize] as usize != over {
                continue;
            }
            for (v, w) in g.edges_of(u) {
                if v == u {
                    continue;
                }
                let p = parts[v as usize];
                if buf.aff[p as usize] == 0.0 {
                    buf.touched.push(p);
                }
                buf.aff[p as usize] += w;
            }
            let wu = weights[u as usize];
            let target = buf
                .touched
                .iter()
                .copied()
                .filter(|&p| p as usize != over && part_weight[p as usize] + wu <= max_part)
                .max_by(|&a, &b| {
                    buf.aff[a as usize]
                        .partial_cmp(&buf.aff[b as usize])
                        .unwrap()
                })
                .or_else(|| {
                    (0..k as u32)
                        .filter(|&p| p as usize != over && part_weight[p as usize] + wu <= max_part)
                        .min_by(|&a, &b| {
                            part_weight[a as usize]
                                .partial_cmp(&part_weight[b as usize])
                                .unwrap()
                        })
                });
            buf.reset();
            if let Some(to) = target {
                part_weight[over] -= wu;
                part_weight[to as usize] += wu;
                parts[u as usize] = to;
            }
        }
    }
}

/// Scalar refinement sweeps.
pub fn refine_scalar(g: &Csr, weights: &[f32], parts: &mut [u32], config: &PartitionConfig) {
    rebalance(g, weights, parts, config);
    for _ in 0..config.refine_passes {
        let moves = sweep(g, weights, parts, config, |u, parts, buf| {
            // Scalar aggregation of edge weight per adjacent part.
            for (v, w) in g.edges_of(u) {
                if v == u {
                    continue;
                }
                let p = parts[v as usize];
                if buf.aff[p as usize] == 0.0 {
                    buf.touched.push(p);
                }
                buf.aff[p as usize] += w;
            }
            let from = parts[u as usize];
            let internal = buf.aff[from as usize];
            let best = buf
                .touched
                .iter()
                .filter(|&&p| p != from)
                .map(|&p| (p, buf.aff[p as usize] - internal))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            buf.reset();
            best
        });
        if moves == 0 {
            break;
        }
    }
}

/// ONPL-vectorized refinement sweeps: gather the parts of 16 neighbors and
/// reduce-scatter their edge weights into the per-part accumulator.
pub fn refine<S: Simd>(
    s: &S,
    g: &Csr,
    weights: &[f32],
    parts: &mut [u32],
    config: &PartitionConfig,
) {
    rebalance(g, weights, parts, config);
    for _ in 0..config.refine_passes {
        let moves = sweep(g, weights, parts, config, |u, parts, buf| {
            accumulate(
                s,
                as_i32(g.neighbors(u)),
                g.weights_of(u),
                u,
                parts_as_i32(parts),
                Strategy::Adaptive,
                buf,
            );
            let from = parts[u as usize];
            let internal = buf.aff[from as usize];
            let best = buf
                .touched
                .iter()
                .filter(|&&p| p != from)
                .map(|&p| (p, buf.aff[p as usize] - internal))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            buf.reset();
            best
        });
        if moves == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::metrics::edge_cut;
    use super::*;
    use gp_graph::builder::from_pairs;
    use gp_graph::generators::{erdos_renyi, planted_partition};
    use gp_simd::backend::Emulated;

    fn bad_partition(n: usize, k: usize) -> Vec<u32> {
        // Stripes: adversarial for clustered graphs.
        (0..n as u32).map(|v| v % k as u32).collect()
    }

    #[test]
    fn refinement_reduces_cut() {
        let g = planted_partition(2, 32, 0.5, 0.02, 7);
        let weights = vec![1.0f32; 64];
        let mut parts = bad_partition(64, 2);
        let before = edge_cut(&g, &parts);
        refine_scalar(&g, &weights, &mut parts, &PartitionConfig::kway(2));
        let after = edge_cut(&g, &parts);
        assert!(after < before, "cut {before} -> {after}");
    }

    #[test]
    fn vectorized_refinement_matches_scalar() {
        let g = erdos_renyi(200, 800, 11);
        let weights = vec![1.0f32; 200];
        let cfg = PartitionConfig::kway(4);
        let mut a = bad_partition(200, 4);
        let mut b = a.clone();
        refine_scalar(&g, &weights, &mut a, &cfg);
        refine(&Emulated, &g, &weights, &mut b, &cfg);
        // Same greedy rule and sweep order; identical outcomes.
        assert_eq!(a, b);
    }

    #[test]
    fn refinement_respects_balance() {
        let g = planted_partition(2, 24, 0.6, 0.3, 5); // strong pull to merge
        let weights = vec![1.0f32; 48];
        let cfg = PartitionConfig {
            k: 2,
            epsilon: 0.05,
            ..Default::default()
        };
        let mut parts = bad_partition(48, 2);
        refine_scalar(&g, &weights, &mut parts, &cfg);
        let c0 = parts.iter().filter(|&&p| p == 0).count();
        let max_allowed = (1.05_f64 * 48.0 / 2.0).floor() as usize;
        assert!(c0 <= max_allowed && 48 - c0 <= max_allowed, "c0 = {c0}");
    }

    #[test]
    fn no_moves_on_already_optimal() {
        let g = from_pairs(4, [(0, 1), (2, 3)]);
        let weights = vec![1.0f32; 4];
        let mut parts = vec![0, 0, 1, 1];
        let before = parts.clone();
        refine_scalar(&g, &weights, &mut parts, &PartitionConfig::kway(2));
        assert_eq!(parts, before);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn native_refinement_matches_emulated() {
        if let Some(native) = gp_simd::backend::Avx512::new() {
            let g = erdos_renyi(300, 1500, 23);
            let weights = vec![1.0f32; 300];
            let cfg = PartitionConfig::kway(3);
            let mut a = bad_partition(300, 3);
            let mut b = a.clone();
            refine(&native, &g, &weights, &mut a, &cfg);
            refine(&Emulated, &g, &weights, &mut b, &cfg);
            assert_eq!(a, b);
        }
    }
}
