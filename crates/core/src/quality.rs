//! Community-quality metrics beyond modularity.
//!
//! Modularity (Figure 11b's metric) measures internal density; when ground
//! truth exists — planted partitions in tests, labeled benchmarks in the
//! wild — information-theoretic agreement scores are the standard
//! complement. This module provides Normalized Mutual Information and the
//! Adjusted Rand Index, used by the validation tests and examples to show
//! the vectorized detectors recover the same communities as the baselines.

use std::collections::HashMap;

/// Joint contingency counts between two assignments.
struct Contingency {
    /// `n[(a, b)]` = vertices with label `a` in `x` and `b` in `y`.
    joint: HashMap<(u32, u32), f64>,
    /// Marginal sizes of `x`'s communities.
    ax: HashMap<u32, f64>,
    /// Marginal sizes of `y`'s communities.
    by: HashMap<u32, f64>,
    n: f64,
}

impl Contingency {
    fn new(x: &[u32], y: &[u32]) -> Self {
        assert_eq!(x.len(), y.len(), "assignments must cover the same vertices");
        assert!(!x.is_empty(), "assignments must be non-empty");
        let mut joint: HashMap<(u32, u32), f64> = HashMap::new();
        let mut ax: HashMap<u32, f64> = HashMap::new();
        let mut by: HashMap<u32, f64> = HashMap::new();
        for (&a, &b) in x.iter().zip(y) {
            *joint.entry((a, b)).or_default() += 1.0;
            *ax.entry(a).or_default() += 1.0;
            *by.entry(b).or_default() += 1.0;
        }
        Contingency {
            joint,
            ax,
            by,
            n: x.len() as f64,
        }
    }
}

/// Normalized Mutual Information between two community assignments, in
/// `[0, 1]`: 1 iff the partitions are identical up to relabeling;
/// ~0 for independent assignments. Normalization: arithmetic mean of the
/// entropies (the NetworKit/scikit-learn default).
///
/// ```
/// use gp_core::quality::nmi;
///
/// assert_eq!(nmi(&[0, 0, 1, 1], &[5, 5, 9, 9]), 1.0); // relabeling ignored
/// assert!(nmi(&[0, 0, 1, 1], &[0, 1, 0, 1]) < 0.1);
/// ```
///
/// Degenerate case: if both partitions are single-community (zero entropy),
/// they are identical and NMI is defined as 1.
pub fn nmi(x: &[u32], y: &[u32]) -> f64 {
    let c = Contingency::new(x, y);
    let hx: f64 = -c
        .ax
        .values()
        .map(|&cnt| (cnt / c.n) * (cnt / c.n).ln())
        .sum::<f64>();
    let hy: f64 = -c
        .by
        .values()
        .map(|&cnt| (cnt / c.n) * (cnt / c.n).ln())
        .sum::<f64>();
    if hx == 0.0 && hy == 0.0 {
        return 1.0;
    }
    let mut mi = 0.0;
    for (&(a, b), &nab) in &c.joint {
        let pab = nab / c.n;
        let pa = c.ax[&a] / c.n;
        let pb = c.by[&b] / c.n;
        mi += pab * (pab / (pa * pb)).ln();
    }
    (2.0 * mi / (hx + hy)).clamp(0.0, 1.0)
}

/// Adjusted Rand Index between two assignments: 1 for identical partitions
/// (up to relabeling), ~0 expected for random ones, can go negative for
/// worse-than-chance agreement.
pub fn adjusted_rand_index(x: &[u32], y: &[u32]) -> f64 {
    let c = Contingency::new(x, y);
    let choose2 = |v: f64| v * (v - 1.0) / 2.0;
    let sum_joint: f64 = c.joint.values().map(|&v| choose2(v)).sum();
    let sum_a: f64 = c.ax.values().map(|&v| choose2(v)).sum();
    let sum_b: f64 = c.by.values().map(|&v| choose2(v)).sum();
    let total = choose2(c.n);
    let expected = sum_a * sum_b / total;
    let max = 0.5 * (sum_a + sum_b);
    if (max - expected).abs() < 1e-12 {
        return 1.0; // both partitions degenerate and equal
    }
    (sum_joint - expected) / (max - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let x = vec![0, 0, 1, 1, 2, 2];
        assert!((nmi(&x, &x) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&x, &x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relabeling_is_ignored() {
        let x = vec![0, 0, 1, 1, 2, 2];
        let y = vec![7, 7, 3, 3, 9, 9];
        assert!((nmi(&x, &y) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn refinement_scores_between_zero_and_one() {
        // y splits each community of x in half.
        let x = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let y = vec![0, 0, 2, 2, 1, 1, 3, 3];
        let s = nmi(&x, &y);
        assert!(s > 0.5 && s < 1.0, "nmi {s}");
        let a = adjusted_rand_index(&x, &y);
        assert!(a > 0.0 && a < 1.0, "ari {a}");
    }

    #[test]
    fn independent_partitions_score_low() {
        // x groups pairs, y alternates: joint is uniform.
        let x = vec![0, 0, 1, 1, 2, 2, 3, 3];
        let y = vec![0, 1, 0, 1, 0, 1, 0, 1];
        assert!(nmi(&x, &y) < 0.05);
        // ARI of anti-correlated partitions goes slightly negative
        // (worse-than-chance agreement is a feature of the adjustment).
        let ari = adjusted_rand_index(&x, &y);
        assert!(ari < 0.05 && ari > -0.5, "ari {ari}");
    }

    #[test]
    fn degenerate_single_community() {
        let x = vec![5, 5, 5];
        assert_eq!(nmi(&x, &x), 1.0);
        assert_eq!(adjusted_rand_index(&x, &x), 1.0);
    }

    #[test]
    #[should_panic(expected = "same vertices")]
    fn mismatched_lengths_panic() {
        nmi(&[0, 1], &[0]);
    }

    #[test]
    fn louvain_recovers_planted_partition_by_nmi() {
        use crate::louvain::driver::louvain_recorded;
        use crate::louvain::{LouvainConfig, Variant};
        use gp_graph::generators::{planted_partition, planted_partition_truth};
        use gp_metrics::telemetry::NoopRecorder;
        let g = planted_partition(4, 24, 0.7, 0.01, 5);
        let truth = planted_partition_truth(4, 24);
        let r = louvain_recorded(&g, &LouvainConfig::sequential(Variant::Mplm), &mut NoopRecorder);
        let score = nmi(&truth, &r.communities);
        assert!(score > 0.9, "NMI {score} too low for a well-separated instance");
    }

    #[test]
    fn vectorized_detectors_agree_with_scalar_by_nmi() {
        use crate::louvain::driver::louvain_recorded;
        use crate::louvain::{LouvainConfig, Variant};
        use crate::reduce_scatter::Strategy;
        use gp_graph::generators::planted_partition;
        use gp_metrics::telemetry::NoopRecorder;
        let g = planted_partition(5, 16, 0.7, 0.02, 11);
        let scalar = louvain_recorded(&g, &LouvainConfig::sequential(Variant::Mplm), &mut NoopRecorder)
            .communities;
        for variant in [Variant::Onpl(Strategy::Adaptive), Variant::Ovpl] {
            let vector =
                louvain_recorded(&g, &LouvainConfig::sequential(variant), &mut NoopRecorder)
                    .communities;
            let score = nmi(&scalar, &vector);
            assert!(score > 0.85, "{variant:?}: NMI vs scalar {score}");
        }
    }
}
