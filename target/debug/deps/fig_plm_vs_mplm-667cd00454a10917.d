/root/repo/target/debug/deps/fig_plm_vs_mplm-667cd00454a10917.d: crates/bench/src/bin/fig_plm_vs_mplm.rs Cargo.toml

/root/repo/target/debug/deps/libfig_plm_vs_mplm-667cd00454a10917.rmeta: crates/bench/src/bin/fig_plm_vs_mplm.rs Cargo.toml

crates/bench/src/bin/fig_plm_vs_mplm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
