/root/repo/target/debug/deps/fig_energy-8b29a27a9a122fe2.d: crates/bench/src/bin/fig_energy.rs Cargo.toml

/root/repo/target/debug/deps/libfig_energy-8b29a27a9a122fe2.rmeta: crates/bench/src/bin/fig_energy.rs Cargo.toml

crates/bench/src/bin/fig_energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
