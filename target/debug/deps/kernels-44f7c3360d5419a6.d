/root/repo/target/debug/deps/kernels-44f7c3360d5419a6.d: crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-44f7c3360d5419a6.rmeta: crates/bench/benches/kernels.rs Cargo.toml

crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
