/root/repo/target/debug/deps/ablation_ovpl-a4fb0a6be86b50b1.d: crates/bench/src/bin/ablation_ovpl.rs

/root/repo/target/debug/deps/ablation_ovpl-a4fb0a6be86b50b1: crates/bench/src/bin/ablation_ovpl.rs

crates/bench/src/bin/ablation_ovpl.rs:
