//! Adversarial graph generators.
//!
//! Every generator here exists because some execution universe is most
//! likely to diverge on exactly that shape:
//!
//! * **degree-0/1 spam** ([`pendant_spam`]) — isolated vertices have no
//!   neighbors to gather, pendants produce the shortest possible vector
//!   rows; both stress the degree-bucket boundaries and the active-set
//!   bookkeeping for vertices that can never be reactivated.
//! * **hub-and-spoke stars** ([`multi_star`]) — a hub is a singleton
//!   scheduling unit surrounded by ≤16-batch spokes; every bucket boundary
//!   fires at once, and speculative coloring must resolve the hub against
//!   all spokes in one round.
//! * **duplicate-heavy multigraphs** ([`duplicate_multigraph`]) — parallel
//!   adjacency entries make the reduce-scatter see the same community id in
//!   multiple lanes of one gather, the exact shape `vpconflictd` exists to
//!   detect.
//! * **near-2^16 community counts** ([`community_spam`]) — thousands of
//!   disjoint components drive community ids toward the 16-bit boundary,
//!   stressing any packed id arithmetic and the conflict-detection paths.
//! * **delta-edit sequences** ([`Churn`]) — deterministic churn scripts
//!   (duplicate adds, delete-then-readd, isolated-vertex churn) for the
//!   streaming path.
//!
//! The `arb_*` functions wrap the deterministic generators in proptest
//! strategies, so a conformance failure shrinks toward a minimal graph.
//! All randomness is a splitmix-style LCG on an explicit seed — generators
//! are pure functions of their arguments.

use gp_graph::builder::{from_pairs, DedupPolicy, GraphBuilder};
use gp_graph::csr::Csr;
use gp_graph::Edge;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// One delta-edit batch: `(additions, deletions)` ready for
/// `DeltaCsr::apply_edges`.
pub type EditBatch = (Vec<Edge>, Vec<(u32, u32)>);

/// A pre-computed sequence of edit batches (a churn script).
pub type EditScript = Vec<EditBatch>;

/// One LCG step (Knuth's MMIX constants — the same generator the existing
/// equivalence suites used before they moved here).
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Random pairs salted with degree-0 and degree-1 spam plus a planted hub:
/// vertices `1..n/4` hang off vertex 0 as pendants (when the dice say so),
/// high ids stay untouched (degree 0), and the last vertex connects to
/// every fourth vertex (a forced singleton scheduling unit). `extra_pairs`
/// random edges are layered on top.
pub fn pendant_spam(n: usize, extra_pairs: usize, seed: u64) -> Csr {
    let n = n.max(8);
    let mut s = seed | 1;
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(extra_pairs + n / 2);
    for _ in 0..extra_pairs {
        let u = (lcg(&mut s) % n as u64) as u32;
        let v = (lcg(&mut s) % n as u64) as u32;
        if u != v {
            pairs.push((u, v));
        }
    }
    let mut s2 = seed;
    for i in 1..(n / 4) as u32 {
        lcg(&mut s2);
        if s2.is_multiple_of(3) {
            pairs.push((0, i));
        }
    }
    let hub = (n - 1) as u32;
    for v in (0..hub).step_by(4) {
        pairs.push((hub, v));
    }
    from_pairs(n, pairs.into_iter().filter(|(u, v)| u != v))
}

/// `hubs` star centers, each with `spokes` leaves, no edges between stars:
/// every hub is a singleton scheduling unit, every spoke is a batch-bucket
/// vertex, and the components keep community counts high.
pub fn multi_star(hubs: usize, spokes: usize) -> Csr {
    let hubs = hubs.max(1);
    let n = hubs * (spokes + 1);
    let mut pairs = Vec::with_capacity(hubs * spokes);
    for h in 0..hubs {
        let center = (h * (spokes + 1)) as u32;
        for k in 1..=spokes as u32 {
            pairs.push((center, center + k));
        }
    }
    from_pairs(n, pairs)
}

/// A random graph where every edge is materialized `1..=max_copies` times
/// as *distinct parallel adjacency entries* (`DedupPolicy::KeepAll`). A
/// gather over such a row loads the same neighbor community into several
/// lanes at once — the conflict-detection paths must still count each copy.
pub fn duplicate_multigraph(n: usize, base_pairs: usize, max_copies: usize, seed: u64) -> Csr {
    let n = n.max(4);
    let mut s = seed | 1;
    let mut edges: Vec<Edge> = Vec::new();
    for _ in 0..base_pairs {
        let u = (lcg(&mut s) % n as u64) as u32;
        let v = (lcg(&mut s) % n as u64) as u32;
        if u == v {
            continue;
        }
        let copies = 1 + (lcg(&mut s) as usize) % max_copies.max(1);
        for _ in 0..copies {
            edges.push(Edge::unweighted(u, v));
        }
    }
    GraphBuilder::new(n)
        .dedup_policy(DedupPolicy::KeepAll)
        .add_edges(edges)
        .build()
}

/// `components` disjoint edges (vertex count `2 * components`): every pair
/// is its own community, so community ids climb toward `2^16` when asked
/// to — the shape that smokes out any 16-bit packing assumption in the
/// conflict-detection or community-id paths. Use `components` near 65_536
/// for the full boundary stress; the short corpus uses a scaled-down copy.
pub fn community_spam(components: usize) -> Csr {
    let n = components * 2;
    let pairs = (0..components).map(|c| ((2 * c) as u32, (2 * c + 1) as u32));
    from_pairs(n, pairs)
}

/// Deterministic churn driver over a live edge set: each [`Churn::step`]
/// deletes and inserts `max(1, frac · |E|)` edges, tracking presence so
/// additions are always new edges. Lifted from the incremental equivalence
/// suite so the streaming conformance path and the suite share one script
/// generator.
pub struct Churn {
    edges: Vec<(u32, u32)>,
    present: BTreeSet<(u32, u32)>,
    n: u32,
    state: u64,
}

impl Churn {
    /// A churn driver over `g`'s edge set, seeded deterministically.
    pub fn new(g: &Csr, seed: u64) -> Self {
        let mut edges = Vec::new();
        for u in 0..g.num_vertices() as u32 {
            for &v in g.neighbors(u) {
                if u <= v {
                    edges.push((u, v));
                }
            }
        }
        let present = edges.iter().copied().collect();
        Churn {
            edges,
            present,
            n: g.num_vertices() as u32,
            state: seed | 1,
        }
    }

    fn next(&mut self, m: u64) -> u64 {
        lcg(&mut self.state) % m.max(1)
    }

    /// One churn step: delete and add `max(1, frac · |E|)` edges each.
    /// Returns `(additions, deletions)` ready for `DeltaCsr::apply_edges`.
    pub fn step(&mut self, frac: f64) -> (Vec<Edge>, Vec<(u32, u32)>) {
        let k = ((self.edges.len() as f64 * frac) as usize).max(1);
        let mut dels = Vec::with_capacity(k);
        for _ in 0..k.min(self.edges.len()) {
            let i = self.next(self.edges.len() as u64) as usize;
            let e = self.edges.swap_remove(i);
            self.present.remove(&e);
            dels.push(e);
        }
        let mut adds = Vec::with_capacity(k);
        while adds.len() < k {
            let u = self.next(self.n as u64) as u32;
            let v = self.next(self.n as u64) as u32;
            let key = (u.min(v), u.max(v));
            if u == v || self.present.contains(&key) {
                continue;
            }
            self.present.insert(key);
            self.edges.push(key);
            adds.push(Edge::unweighted(u, v));
        }
        (adds, dels)
    }

    /// Pre-computes a whole delta-edit script: `steps` churn batches at
    /// `frac`, as `(additions, deletions)` pairs.
    pub fn script(mut self, steps: usize, frac: f64) -> EditScript {
        (0..steps).map(|_| self.step(frac)).collect()
    }
}

/// Random graphs salted with degree-0/1 spam and a planted hub — the
/// proptest wrapper over [`pendant_spam`]'s shape, shrinking toward small
/// vertex and edge counts. (The locality suite's former private copy.)
pub fn arb_spammy_graph() -> impl Strategy<Value = Csr> {
    (30usize..120, any::<u64>()).prop_flat_map(|(n, seed)| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..(2 * n)).prop_map(
            move |mut pairs| {
                pairs.retain(|(u, v)| u != v);
                let mut s = seed;
                for i in 1..(n / 4) as u32 {
                    lcg(&mut s);
                    if s % 3 == 0 {
                        pairs.push((0, i));
                    }
                }
                let hub = (n - 1) as u32;
                for v in (0..hub).step_by(4) {
                    pairs.push((hub, v));
                }
                from_pairs(n, pairs.into_iter().filter(|(u, v)| u != v))
            },
        )
    })
}

/// The whole adversarial family as one shrinking strategy: a shape
/// selector picks pendant spam, stars, duplicate multigraphs, or community
/// spam, and the size parameters shrink independently of the selector so a
/// failure minimizes within its family.
pub fn arb_adversarial() -> impl Strategy<Value = Csr> {
    (0u8..4, 2usize..40, 0usize..120, 1usize..5, any::<u64>()).prop_map(
        |(shape, small, pairs, copies, seed)| match shape {
            0 => pendant_spam(small * 4, pairs, seed),
            1 => multi_star(small / 8 + 1, small),
            2 => duplicate_multigraph(small * 2, pairs, copies, seed),
            _ => community_spam(small * 8),
        },
    )
}

/// A shrinking churn script against a pendant-spam base graph: the value is
/// `(graph, script)` ready to drive the streaming conformance path.
pub fn arb_churn_script() -> impl Strategy<Value = (Csr, EditScript)> {
    (16usize..64, 1usize..6, any::<u64>()).prop_map(|(n, steps, seed)| {
        let g = pendant_spam(n, n, seed);
        // Small batches: the incremental quality clause only covers
        // small-delta updates (see `docs/CONFORMANCE.md`).
        let script = Churn::new(&g, seed ^ 0xC0FFEE).script(steps, 0.03);
        (g, script)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let a = pendant_spam(64, 64, 7);
        let b = pendant_spam(64, 64, 7);
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_arcs(), b.num_arcs());
        let d1 = duplicate_multigraph(32, 50, 4, 9);
        let d2 = duplicate_multigraph(32, 50, 4, 9);
        assert_eq!(d1.num_arcs(), d2.num_arcs());
    }

    #[test]
    fn pendant_spam_has_spam_degrees() {
        let g = pendant_spam(100, 20, 3);
        let degrees: Vec<usize> = (0..g.num_vertices() as u32).map(|v| g.degree(v)).collect();
        assert!(degrees.contains(&0), "no isolated vertices");
        assert!(degrees.contains(&1), "no pendants");
        let hub = g.degree((g.num_vertices() - 1) as u32);
        assert!(hub >= 16, "hub degree {hub} too small to force a singleton unit");
    }

    #[test]
    fn multi_star_shape() {
        let g = multi_star(3, 17);
        assert_eq!(g.num_vertices(), 3 * 18);
        assert_eq!(g.degree(0), 17);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn duplicate_multigraph_keeps_parallel_entries() {
        let g = duplicate_multigraph(8, 40, 4, 11);
        // With 40 base pairs and up to 4 copies on 8 vertices, some row
        // must hold a parallel entry: arcs exceed what a simple graph on 8
        // vertices can carry (8 choose 2 = 28 edges = 56 arcs).
        assert!(g.num_arcs() > 56, "no parallel entries survived: {}", g.num_arcs());
    }

    #[test]
    fn community_spam_is_disjoint_pairs() {
        let g = community_spam(1000);
        assert_eq!(g.num_vertices(), 2000);
        assert!((0..2000u32).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn churn_scripts_replay_identically() {
        let g = pendant_spam(48, 48, 5);
        let s1 = Churn::new(&g, 42).script(4, 0.1);
        let s2 = Churn::new(&g, 42).script(4, 0.1);
        assert_eq!(s1.len(), s2.len());
        for ((a1, d1), (a2, d2)) in s1.iter().zip(&s2) {
            assert_eq!(d1, d2);
            assert_eq!(a1.len(), a2.len());
            assert!(a1.iter().zip(a2).all(|(x, y)| x.u == y.u && x.v == y.v));
        }
    }
}
