//! Active-set (frontier) round execution for the iterative kernels.
//!
//! All three kernel families converge over rounds in which fewer and fewer
//! vertices actually change: speculative coloring re-colors only conflicted
//! vertices (Algorithms 1–3), the Louvain move phase (Algorithm 4) and label
//! propagation (Algorithm 5) only profit from revisiting vertices whose
//! neighborhood changed last round. Re-sweeping *every* vertex *every* round
//! burns full `O(V + E)` passes to move a handful of vertices in the tail.
//!
//! This module provides the shared machinery:
//!
//! * [`SweepMode`] — the `full | active` knob every kernel config carries.
//!   Both modes share identical *activation semantics* (a vertex is
//!   processed in round `r` iff something activated it in round `r-1`), so
//!   results are **bit-identical**; they differ only in how the active set
//!   is *enumerated*: `full` scans all vertices and filters (paying the
//!   `O(V)` scan, the paper-faithful baseline), `active` iterates a packed,
//!   ascending `u32` worklist (so vectorized gathers stay 16-lane dense).
//! * [`Frontier`] — double-stamped activation tracking with a deterministic
//!   packed worklist, maintained identically under both modes.
//! * [`run_chunked`] — the sweep executor: splits a round into bounded
//!   chunks and polls [`Recorder::should_stop`] *between* chunks whenever
//!   the recorder can actually fire a deadline
//!   ([`Recorder::CHECKS_DEADLINE`]), so one huge first round cannot
//!   overshoot its deadline unbounded. Under plain recorders the chunking
//!   collapses to a single full-length chunk and compiles away.

use gp_metrics::telemetry::Recorder;
use rayon::prelude::*;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};

/// How a kernel enumerates the vertices it processes each round.
///
/// The two modes are bit-identical in output (the equivalence suite in
/// `crates/core/tests/active_set.rs` asserts this across every variant,
/// backend, and thread count); `full` exists as the A/B baseline for
/// benchmarking the active-set win and as the paper-faithful sweep shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SweepMode {
    /// Scan every vertex every round, skipping inactive ones in place.
    Full,
    /// Iterate a packed, ascending worklist of only the active vertices.
    #[default]
    Active,
}

impl SweepMode {
    /// Stable lowercase name (CLI flag value, serve JSON value, cache key).
    pub fn name(self) -> &'static str {
        match self {
            SweepMode::Full => "full",
            SweepMode::Active => "active",
        }
    }
}

impl std::fmt::Display for SweepMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for SweepMode {
    type Err = crate::error::SpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "full" => Ok(SweepMode::Full),
            "active" => Ok(SweepMode::Active),
            other => Err(crate::error::SpecError::UnknownSweep(other.to_string())),
        }
    }
}

/// Activation tracking for one kernel run.
///
/// A vertex is *active in round `r`* iff its `cur` stamp equals `r`. During
/// round `r`, [`Frontier::activate`] stamps vertices into the `next` array
/// (for round `r + 1`) through a swap-gate that also pushes each vertex at
/// most once into a lock-free slot buffer; [`Frontier::advance`] then swaps
/// the stamp arrays and sorts the slots into the packed ascending
/// [`Frontier::worklist`]. Because stamps only ever grow, stale entries from
/// earlier rounds can never collide with the current round's stamp and the
/// arrays are never cleared.
///
/// The maintenance is identical under both [`SweepMode`]s — activation
/// order does not influence the sorted worklist, and `full`-mode filtering
/// reads the same `cur` stamps the worklist was built from — which is what
/// makes the two enumeration strategies bit-identical.
#[derive(Debug)]
pub struct Frontier {
    round: u32,
    cur: Vec<AtomicU32>,
    next: Vec<AtomicU32>,
    slots: Vec<AtomicU32>,
    count: AtomicUsize,
    worklist: Vec<u32>,
}

impl Frontier {
    /// A frontier over `n` vertices with **all** vertices active in the
    /// first round (round 1) — every kernel's first sweep is a full sweep,
    /// matching the pre-frontier behavior exactly.
    pub fn all_active(n: usize) -> Self {
        Frontier {
            round: 1,
            cur: (0..n).map(|_| AtomicU32::new(1)).collect(),
            next: (0..n).map(|_| AtomicU32::new(0)).collect(),
            slots: (0..n).map(|_| AtomicU32::new(0)).collect(),
            count: AtomicUsize::new(0),
            worklist: (0..n as u32).collect(),
        }
    }

    /// A frontier over `n` vertices with only `seed` active in the first
    /// round — the incremental-kernel entry point (`seed` is the touched
    /// set plus whatever neighborhood closure the kernel family needs).
    /// `seed` must be sorted ascending and deduplicated with ids `< n`, so
    /// enumeration order matches what [`Frontier::advance`] would produce.
    pub fn seeded(n: usize, seed: &[u32]) -> Self {
        debug_assert!(seed.windows(2).all(|w| w[0] < w[1]), "seed must be sorted+deduped");
        debug_assert!(seed.last().is_none_or(|&v| (v as usize) < n));
        let cur: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        for &v in seed {
            cur[v as usize].store(1, Ordering::Relaxed);
        }
        Frontier {
            round: 1,
            cur,
            next: (0..n).map(|_| AtomicU32::new(0)).collect(),
            slots: (0..n).map(|_| AtomicU32::new(0)).collect(),
            count: AtomicUsize::new(0),
            worklist: seed.to_vec(),
        }
    }

    /// The current round number (starts at 1, incremented by
    /// [`Frontier::advance`]).
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Number of vertices active this round.
    pub fn len(&self) -> usize {
        self.worklist.len()
    }

    /// True when no vertex is active this round.
    pub fn is_empty(&self) -> bool {
        self.worklist.is_empty()
    }

    /// The packed, ascending worklist of vertices active this round.
    pub fn worklist(&self) -> &[u32] {
        &self.worklist
    }

    /// Whether `v` is active in the current round. `full`-sweep enumeration
    /// filters on this; it reads the snapshot taken at round start, so
    /// activations performed *during* the round never affect it.
    #[inline(always)]
    pub fn is_active(&self, v: u32) -> bool {
        self.cur[v as usize].load(Ordering::Relaxed) == self.round
    }

    /// Marks `v` active for the **next** round. Callable concurrently from
    /// a parallel sweep; each vertex is recorded at most once per round.
    #[inline]
    pub fn activate(&self, v: u32) {
        let stamp = self.round + 1;
        if self.next[v as usize].swap(stamp, Ordering::Relaxed) != stamp {
            let slot = self.count.fetch_add(1, Ordering::Relaxed);
            self.slots[slot].store(v, Ordering::Relaxed);
        }
    }

    /// Ends the round: swaps the stamp arrays and rebuilds the packed
    /// worklist (sorted ascending, so enumeration order matches the
    /// `full`-sweep scan order and is independent of activation order).
    pub fn advance(&mut self) {
        let cnt = *self.count.get_mut();
        self.worklist.clear();
        self.worklist
            .extend(self.slots[..cnt].iter().map(|s| s.load(Ordering::Relaxed)));
        self.worklist.sort_unstable();
        *self.count.get_mut() = 0;
        std::mem::swap(&mut self.cur, &mut self.next);
        self.round += 1;
    }

    /// Sum of `degree(v)` over the active set — the `active_edges`
    /// telemetry figure. Only called when a recorder is enabled.
    pub fn active_edge_count(&self, degree_of: impl Fn(u32) -> u64) -> u64 {
        self.worklist.iter().map(|&v| degree_of(v)).sum()
    }
}

/// Chunk length between cooperative deadline polls. Small enough that even
/// slow per-vertex kernels poll every few milliseconds, large enough that
/// the poll itself (an `Instant::now` comparison) is noise.
pub const DEADLINE_CHUNK: usize = 4096;

#[inline]
fn chunk_len<R: Recorder>(len: usize) -> usize {
    if R::CHECKS_DEADLINE {
        DEADLINE_CHUNK
    } else {
        len.max(1)
    }
}

/// Runs `process(buf, i)` for every `i in 0..len` (ascending within each
/// chunk), polling `rec.should_stop()` between chunks when the recorder can
/// fire deadlines. Returns `true` if the sweep bailed early — the caller
/// must then treat the round as incomplete (`converged: false`).
///
/// Three execution shapes, picked from `parallel` and the current
/// [`gp_par`] pool:
///
/// * `parallel == false` — a plain loop with one hoisted buffer, polling the
///   deadline between chunks. Byte-identical to the pre-pool behavior.
/// * `parallel == true` on an *inline* pool (1 thread, or `GP_PAR_SEQ=1`) —
///   per-chunk `for_each_init` through the rayon shim, which the inline
///   pool executes in submission order; chunk boundaries and deadline polls
///   stay sequential. This is the deterministic parallel shape.
/// * `parallel == true` on a real multi-thread pool — the chunks fan out
///   across the pool's workers through a shared atomic cursor. Every worker
///   (and the calling thread, which sweeps too) claims chunks until the
///   cursor runs dry or the shared `stop` flag is raised. Only the calling
///   thread polls `rec.should_stop()` — between each of *its* chunks — and
///   publishes the verdict through `stop`, which in-flight workers observe
///   at their next chunk boundary. So a deadline that fires while chunks
///   are in flight on other workers still stops the sweep within one chunk
///   per worker, without requiring `R: Sync`.
///
/// In all shapes the first chunk is always processed (progress guarantee),
/// and under a recorder with `CHECKS_DEADLINE = false` there is exactly one
/// chunk and no polling — identical codegen to the pre-chunking sweeps.
pub fn run_chunked<R, B>(
    len: usize,
    parallel: bool,
    rec: &R,
    make_buf: impl Fn() -> B + Send + Sync,
    process: impl Fn(&mut B, usize) + Send + Sync,
) -> bool
where
    R: Recorder,
    B: Send,
{
    let chunk = chunk_len::<R>(len);
    if parallel {
        let pool = gp_par::current();
        if !pool.is_inline() {
            return fan_out_chunks(len, chunk, &pool, rec, &make_buf, &process);
        }
    }
    let mut start = 0usize;
    let mut buf: Option<B> = None; // hoisted across chunks in the sequential path
    while start < len {
        if R::CHECKS_DEADLINE && start > 0 && rec.should_stop() {
            return true;
        }
        let end = (start + chunk).min(len);
        if parallel {
            (start..end)
                .into_par_iter()
                .for_each_init(&make_buf, |b, i| process(b, i));
        } else {
            let b = buf.get_or_insert_with(&make_buf);
            for i in start..end {
                process(b, i);
            }
        }
        start = end;
    }
    false
}

/// The real-pool arm of [`run_chunked`]: fans `len.div_ceil(chunk)` chunks
/// out across `pool`'s workers plus the calling thread via an atomic chunk
/// cursor. The caller is the only thread that touches `rec` (so `R` needs
/// no `Sync`); it polls between its own chunks and raises `stop` for the
/// others. Returns `true` if the sweep bailed before covering `0..len`.
fn fan_out_chunks<R, B>(
    len: usize,
    chunk: usize,
    pool: &gp_par::Pool,
    rec: &R,
    make_buf: &(impl Fn() -> B + Send + Sync),
    process: &(impl Fn(&mut B, usize) + Send + Sync),
) -> bool
where
    R: Recorder,
    B: Send,
{
    if len == 0 {
        return false;
    }
    let nchunks = len.div_ceil(chunk);
    let cursor = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let run_chunk = |buf: &mut B, c: usize| {
        let start = c * chunk;
        let end = (start + chunk).min(len);
        for i in start..end {
            process(buf, i);
        }
    };
    pool.scope(|s| {
        for _ in 0..pool.threads() {
            s.spawn(|| {
                let mut buf = make_buf();
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let c = cursor.fetch_add(1, Ordering::Relaxed);
                    if c >= nchunks {
                        break;
                    }
                    run_chunk(&mut buf, c);
                }
            });
        }
        // The calling thread sweeps too — and is the only one allowed to
        // touch `rec`. Its first claimed chunk always runs (progress
        // guarantee mirrors the sequential path); the poll happens before
        // every later claim.
        let mut buf: Option<B> = None;
        let mut claimed = 0usize;
        loop {
            if R::CHECKS_DEADLINE && claimed > 0 && rec.should_stop() {
                stop.store(true, Ordering::Relaxed);
                break;
            }
            if stop.load(Ordering::Relaxed) {
                break;
            }
            let c = cursor.fetch_add(1, Ordering::Relaxed);
            if c >= nchunks {
                break;
            }
            run_chunk(buf.get_or_insert_with(make_buf), c);
            claimed += 1;
        }
    });
    stop.load(Ordering::Relaxed)
}

/// Variant of [`run_chunked`] for kernels that consume worklist *slices*
/// (the coloring assign/detect kernels): calls `f` on consecutive subslices
/// of `items`, polling the deadline between them. Returns `true` if it
/// bailed before covering the whole slice.
///
/// The *outer* chunk loop is deliberately sequential: `f` is `FnMut` and
/// the call sites mutate captured state (e.g. `newconf.extend(detect(..))`
/// in the coloring driver). Worker fan-out happens one level down — the
/// assign/detect kernels invoked inside `f` run `par_iter` sweeps over each
/// subslice, which the rayon shim fans out across the current `gp_par`
/// pool. Deadline polls therefore stay single-threaded and exact.
pub fn slice_chunked<R: Recorder, T>(
    items: &[T],
    rec: &R,
    mut f: impl FnMut(&[T]),
) -> bool {
    let chunk = chunk_len::<R>(items.len());
    let mut start = 0usize;
    while start < items.len() {
        if R::CHECKS_DEADLINE && start > 0 && rec.should_stop() {
            return true;
        }
        let end = (start + chunk).min(items.len());
        f(&items[start..end]);
        start = end;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_metrics::telemetry::{DeadlineRecorder, NoopRecorder};
    use std::sync::atomic::AtomicU64;
    use std::time::{Duration, Instant};

    #[test]
    fn sweep_mode_roundtrips_strings() {
        for m in [SweepMode::Full, SweepMode::Active] {
            assert_eq!(m.name().parse::<SweepMode>().unwrap(), m);
            assert_eq!(format!("{m}"), m.name());
        }
        assert!("frontier".parse::<SweepMode>().is_err());
        assert_eq!(SweepMode::default(), SweepMode::Active);
    }

    #[test]
    fn frontier_starts_all_active() {
        let f = Frontier::all_active(5);
        assert_eq!(f.round(), 1);
        assert_eq!(f.worklist(), &[0, 1, 2, 3, 4]);
        assert!((0..5).all(|v| f.is_active(v)));
    }

    #[test]
    fn seeded_frontier_activates_only_the_seed() {
        let mut f = Frontier::seeded(6, &[1, 4]);
        assert_eq!(f.round(), 1);
        assert_eq!(f.worklist(), &[1, 4]);
        assert!(f.is_active(1) && f.is_active(4));
        assert!(!f.is_active(0) && !f.is_active(2) && !f.is_active(5));
        // Activation/advance behave exactly as from all_active.
        f.activate(0);
        f.advance();
        assert_eq!(f.worklist(), &[0]);
        let empty = Frontier::seeded(3, &[]);
        assert!(empty.is_empty());
    }

    #[test]
    fn activation_is_deduplicated_and_sorted() {
        let mut f = Frontier::all_active(6);
        f.activate(4);
        f.activate(1);
        f.activate(4); // duplicate — gate keeps one copy
        f.activate(3);
        f.advance();
        assert_eq!(f.round(), 2);
        assert_eq!(f.worklist(), &[1, 3, 4]);
        assert!(f.is_active(1) && f.is_active(3) && f.is_active(4));
        assert!(!f.is_active(0) && !f.is_active(2) && !f.is_active(5));
    }

    #[test]
    fn activation_during_round_does_not_change_current_round() {
        let f = Frontier::all_active(3);
        f.activate(2);
        // Still active in the *current* round snapshot…
        assert!(f.is_active(0) && f.is_active(1) && f.is_active(2));
    }

    #[test]
    fn frontier_drains_to_empty() {
        let mut f = Frontier::all_active(4);
        f.advance();
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
        assert!((0..4).all(|v| !f.is_active(v)));
    }

    #[test]
    fn stale_stamps_never_resurrect() {
        let mut f = Frontier::all_active(4);
        f.activate(2);
        f.advance(); // round 2: {2}
        f.advance(); // round 3: {}
        assert!(f.is_empty());
        f.activate(2);
        f.advance(); // round 4: {2}
        assert_eq!(f.worklist(), &[2]);
        assert!(!f.is_active(0));
    }

    #[test]
    fn active_edge_count_sums_degrees() {
        let mut f = Frontier::all_active(4);
        f.activate(0);
        f.activate(3);
        f.advance();
        assert_eq!(f.active_edge_count(|v| u64::from(v) + 1), 1 + 4);
    }

    #[test]
    fn run_chunked_visits_everything_in_order() {
        for parallel in [false, true] {
            let seen = (0..10_000).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
            let bailed = run_chunked(
                seen.len(),
                parallel,
                &NoopRecorder,
                || (),
                |_, i| {
                    seen[i].fetch_add(1, Ordering::Relaxed);
                },
            );
            assert!(!bailed);
            assert!(seen.iter().all(|s| s.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn run_chunked_bails_between_chunks_under_expired_deadline() {
        let rec = DeadlineRecorder::new(NoopRecorder, Instant::now() - Duration::from_millis(1));
        let visited = AtomicU64::new(0);
        let bailed = run_chunked(3 * DEADLINE_CHUNK, false, &rec, || (), |_, _| {
            visited.fetch_add(1, Ordering::Relaxed);
        });
        assert!(bailed);
        // The first chunk always runs (progress guarantee); later ones don't.
        assert_eq!(visited.load(Ordering::Relaxed), DEADLINE_CHUNK as u64);
        assert!(rec.fired());
    }

    #[test]
    fn run_chunked_without_deadline_is_one_chunk() {
        // A NoopRecorder never stops, so even a huge range completes.
        let visited = AtomicU64::new(0);
        let bailed = run_chunked(2 * DEADLINE_CHUNK, false, &NoopRecorder, || (), |_, _| {
            visited.fetch_add(1, Ordering::Relaxed);
        });
        assert!(!bailed);
        assert_eq!(visited.load(Ordering::Relaxed), 2 * DEADLINE_CHUNK as u64);
    }

    #[test]
    fn run_chunked_handles_empty() {
        assert!(!run_chunked(0, true, &NoopRecorder, || (), |_, _: usize| {}));
        gp_par::cached(4).install(|| {
            assert!(!run_chunked(0, true, &NoopRecorder, || (), |_, _: usize| {}));
        });
    }

    #[test]
    fn run_chunked_fans_out_and_visits_everything_on_real_pool() {
        if gp_par::sequential_mode() {
            return; // GP_PAR_SEQ=1 forces inline pools; nothing to fan out.
        }
        let pool = gp_par::cached(4);
        // Cover both the deadline-chunked shape and the single-chunk shape.
        let seen = (0..3 * DEADLINE_CHUNK + 17)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>();
        let rec = DeadlineRecorder::new(NoopRecorder, Instant::now() + Duration::from_secs(3600));
        let bailed = pool.install(|| {
            run_chunked(seen.len(), true, &rec, || (), |_, i| {
                seen[i].fetch_add(1, Ordering::Relaxed);
            })
        });
        assert!(!bailed);
        assert!(seen.iter().all(|s| s.load(Ordering::Relaxed) == 1));
        assert!(!rec.fired());

        let seen = (0..10_000).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        let bailed = pool.install(|| {
            run_chunked(seen.len(), true, &NoopRecorder, || (), |_, i| {
                seen[i].fetch_add(1, Ordering::Relaxed);
            })
        });
        assert!(!bailed);
        assert!(seen.iter().all(|s| s.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn run_chunked_bails_with_chunks_in_flight_on_real_pool() {
        if gp_par::sequential_mode() {
            return;
        }
        // Expired deadline: the caller's first claimed chunk still runs
        // (progress guarantee), workers may complete a bounded number of
        // chunks each before observing `stop`, and the sweep reports a bail
        // well before covering the whole range. Each chunk carries a small
        // sleep so in-flight workers cannot drain the whole cursor before
        // the caller finishes its first chunk and polls the deadline.
        let pool = gp_par::cached(4);
        let total = 256 * DEADLINE_CHUNK;
        let rec = DeadlineRecorder::new(NoopRecorder, Instant::now() - Duration::from_millis(1));
        let visited = AtomicU64::new(0);
        let bailed = pool.install(|| {
            run_chunked(total, true, &rec, || (), |_, i| {
                if i % DEADLINE_CHUNK == 0 {
                    std::thread::sleep(Duration::from_micros(50));
                }
                visited.fetch_add(1, Ordering::Relaxed);
            })
        });
        assert!(bailed);
        assert!(rec.fired());
        let v = visited.load(Ordering::Relaxed);
        // Progress guarantee: at least the caller's first chunk ran…
        assert!(v >= DEADLINE_CHUNK as u64, "visited only {v}");
        // …but in-flight workers stop within one chunk each, far short of
        // the full sweep.
        assert!(
            v < total as u64,
            "deadline bail should not have covered the full range"
        );
    }

    #[test]
    fn slice_chunked_covers_slice_and_bails_on_deadline() {
        let items: Vec<u32> = (0..(2 * DEADLINE_CHUNK as u32 + 7)).collect();
        let mut seen = Vec::new();
        assert!(!slice_chunked(&items, &NoopRecorder, |sub| seen.extend_from_slice(sub)));
        assert_eq!(seen, items);

        let rec = DeadlineRecorder::new(NoopRecorder, Instant::now() - Duration::from_millis(1));
        let mut seen = Vec::new();
        assert!(slice_chunked(&items, &rec, |sub| seen.extend_from_slice(sub)));
        assert_eq!(seen.len(), DEADLINE_CHUNK);
    }
}
