//! The unified kernel entrypoint: one function, every kernel × variant ×
//! backend × sweep combination.
//!
//! [`run_kernel`] replaces the eighteen per-kernel entry functions
//! (`color_graph*`, `label_propagation*`, `louvain*`, `run_move_phase*`)
//! that callers previously had to dispatch over by hand — the serve
//! worker, the CLI, and the benchmark bins each carried their own copy of
//! that match. Those functions are gone; callers describe the run with a
//! [`KernelSpec`] and let the library dispatch:
//!
//! ```
//! use gp_core::api::{run_kernel, Kernel, KernelSpec};
//! use gp_graph::generators::triangular_mesh;
//! use gp_metrics::telemetry::NoopRecorder;
//!
//! let g = triangular_mesh(8, 8, 3);
//! let spec = KernelSpec::new(Kernel::Coloring).sequential();
//! let out = run_kernel(&g, &spec, &mut NoopRecorder);
//! assert!(out.converged());
//! assert!(out.colors().is_some());
//! ```
//!
//! The string forms accepted by [`FromStr`] (and produced by `Display`) are
//! the single source of truth for the CLI flags, the serve JSON fields, and
//! the serve result-cache key — the three previously kept their own
//! hand-rolled parsers.

use crate::coloring::{ColoringConfig, ColoringResult};
pub use crate::error::{RunError, SpecError};
use crate::labelprop::{LabelPropConfig, LabelPropResult};
use crate::louvain::{LouvainConfig, LouvainResult};
pub use crate::frontier::SweepMode;
pub use crate::locality::{Blocking, Bucketing};
pub use crate::louvain::Variant;
pub use crate::reduce_scatter::Strategy;
use gp_graph::csr::Csr;
use gp_metrics::telemetry::{Recorder, RunInfo};
use gp_simd::backend::Emulated;
use gp_simd::counted::Counted;
use gp_simd::engine::Engine;
use std::fmt;
use std::str::FromStr;

/// Which kernel family to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// Speculative greedy coloring (paper §4).
    #[default]
    Coloring,
    /// Louvain move phases in the selected variant (paper §5).
    Louvain(Variant),
    /// Label propagation (paper §3.3 / Figure 15).
    Labelprop,
}

impl Kernel {
    /// Kernel-family label (`color` / `louvain` / `labelprop`) — the serve
    /// response's `kernel` field and the latency-histogram key.
    pub fn label(self) -> &'static str {
        match self {
            Kernel::Coloring => "color",
            Kernel::Louvain(_) => "louvain",
            Kernel::Labelprop => "labelprop",
        }
    }

    /// Variant-qualified label (`color`, `louvain-mplm`, …) — distinguishes
    /// cache entries and figures where the variant matters.
    pub fn cache_label(self) -> &'static str {
        match self {
            Kernel::Coloring => "color",
            Kernel::Louvain(v) => match v {
                Variant::Plm => "louvain-plm",
                Variant::Mplm => "louvain-mplm",
                Variant::Onpl(_) => "louvain-onpl",
                Variant::Ovpl => "louvain-ovpl",
            },
            Kernel::Labelprop => "labelprop",
        }
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.cache_label())
    }
}

impl FromStr for Kernel {
    type Err = SpecError;

    /// Accepts the family names (`color`/`coloring`, `louvain`,
    /// `labelprop`/`lp`) and the variant-qualified `louvain-<variant>`
    /// forms, so [`Kernel::cache_label`] round-trips.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "color" | "coloring" => Ok(Kernel::Coloring),
            "labelprop" | "lp" => Ok(Kernel::Labelprop),
            "louvain" => Ok(Kernel::Louvain(Variant::default())),
            other => match other.strip_prefix("louvain-") {
                Some(v) => Ok(Kernel::Louvain(v.parse()?)),
                None => Err(SpecError::UnknownKernel(other.to_string())),
            },
        }
    }
}

impl FromStr for Variant {
    type Err = SpecError;

    /// The CLI `--variant` / serve JSON `variant` values. `onpl` selects
    /// the adaptive reduce-scatter strategy (the paper's "either one of
    /// them, depending on circumstances"); a fixed strategy is reachable as
    /// `onpl-cd` / `onpl-iter` / `onpl-ivr`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "plm" => Ok(Variant::Plm),
            "mplm" => Ok(Variant::Mplm),
            "onpl" => Ok(Variant::Onpl(Strategy::Adaptive)),
            "onpl-cd" => Ok(Variant::Onpl(Strategy::ConflictDetect)),
            "onpl-iter" => Ok(Variant::Onpl(Strategy::ConflictIterative)),
            "onpl-ivr" => Ok(Variant::Onpl(Strategy::InVectorReduce)),
            "ovpl" => Ok(Variant::Ovpl),
            other => Err(SpecError::UnknownVariant(other.to_string())),
        }
    }
}

/// Which execution backend to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Best available: AVX-512 when the CPU has it, emulated otherwise.
    /// For coloring and label propagation an emulated host runs the scalar
    /// reference kernel (emulating lane-by-lane would only be slower).
    #[default]
    Auto,
    /// Force the scalar reference kernel (greedy coloring / MPLP). The
    /// Louvain scalar/vector split is the [`Variant`] itself — PLM and MPLM
    /// are scalar by construction — so `Scalar` does not override the
    /// variant there.
    Scalar,
    /// Pin the software-emulated 16-lane vector backend. With
    /// [`KernelSpec::counted`] the run goes through `Counted<Emulated>` so
    /// vector op counts land in `gp_simd::counters` (modeled runs).
    Emulated,
    /// Pin the AVX-512 backend. On hosts without AVX-512 this falls back to
    /// the emulated backend (outputs are bit-identical by the backend
    /// equivalence contract); the result's [`KernelOutput::backend`]
    /// reports what actually ran.
    Native,
}

impl Backend {
    /// Stable lowercase name (CLI flag value, serve JSON value, cache key).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Auto => "auto",
            Backend::Scalar => "scalar",
            Backend::Emulated => "emulated",
            Backend::Native => "native",
        }
    }

    /// The explicit pin matching the registry engine: [`Backend::Native`] on
    /// AVX-512 hosts, [`Backend::Emulated`] elsewhere. Benchmarks use this
    /// to say "the vectorized configuration" with an explicit backend.
    pub fn best_vector() -> Backend {
        if crate::backends::engine().is_native() {
            Backend::Native
        } else {
            Backend::Emulated
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Backend {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(Backend::Auto),
            "scalar" => Ok(Backend::Scalar),
            "emulated" => Ok(Backend::Emulated),
            "native" | "avx512" => Ok(Backend::Native),
            other => Err(SpecError::UnknownBackend(other.to_string())),
        }
    }
}

/// A complete, declarative description of one kernel run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelSpec {
    /// Kernel family (and Louvain variant).
    pub kernel: Kernel,
    /// Execution backend.
    pub backend: Backend,
    /// Sweep enumeration mode (`active` frontier worklists vs. `full`
    /// scans; bit-identical outputs — see `docs/KERNELS.md`).
    pub sweep: SweepMode,
    /// Thread-parallel execution (`false` = deterministic sequential).
    pub parallel: bool,
    /// Traversal seed; only label propagation consumes it (its sweeps need
    /// a randomized visit order).
    pub seed: u64,
    /// Record scalar/vector op counts into `gp_simd::counters` for modeled
    /// architecture comparisons.
    pub count_ops: bool,
    /// Cache-blocking policy for the locality layer (`off`, `auto`,
    /// `<n>kb`, or an explicit vertex count). Bit-identity with the
    /// unblocked sweep is guaranteed for every setting.
    pub block: Blocking,
    /// Degree-bucketing policy (`off` or `degree`).
    pub bucket: Bucketing,
}

impl Default for KernelSpec {
    fn default() -> Self {
        KernelSpec {
            kernel: Kernel::default(),
            backend: Backend::default(),
            sweep: SweepMode::default(),
            parallel: true,
            seed: 0x1abe1,
            count_ops: false,
            block: Blocking::default(),
            bucket: Bucketing::default(),
        }
    }
}

impl KernelSpec {
    /// Spec for `kernel` with default backend/sweep/parallelism.
    pub fn new(kernel: Kernel) -> Self {
        KernelSpec {
            kernel,
            ..Default::default()
        }
    }

    /// Selects the backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the sweep mode.
    pub fn with_sweep(mut self, sweep: SweepMode) -> Self {
        self.sweep = sweep;
        self
    }

    /// Sets the traversal seed (label propagation).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Deterministic sequential execution.
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Enables op counting for modeled runs.
    pub fn counted(mut self) -> Self {
        self.count_ops = true;
        self
    }

    /// Selects the cache-blocking policy.
    pub fn with_block(mut self, block: Blocking) -> Self {
        self.block = block;
        self
    }

    /// Selects the degree-bucketing policy.
    pub fn with_bucket(mut self, bucket: Bucketing) -> Self {
        self.bucket = bucket;
        self
    }

    /// The spec's contribution to a result-cache key:
    /// `kernel|backend|sweep|seed=N|block=B|bucket=M`. Every field that can
    /// change the output (or the telemetry shape) is present; two requests
    /// with equal tokens (on the same graph) produce byte-identical
    /// results. Blocking/bucketing never change kernel *outputs*, but they
    /// do change the telemetry shape (bin tallies, block counts), so they
    /// are part of the key.
    pub fn cache_token(&self) -> String {
        format!(
            "{}|{}|{}|seed={}|block={}|bucket={}",
            self.kernel.cache_label(),
            self.backend.name(),
            self.sweep.name(),
            self.seed,
            self.block,
            self.bucket
        )
    }
}

/// The result of [`run_kernel`]: the kernel-specific result wrapped with
/// uniform accessors for the fields every caller wants (backend, rounds,
/// convergence, wall time, community/color vectors).
#[derive(Debug, Clone, PartialEq)]
pub enum KernelOutput {
    /// A coloring run.
    Coloring(ColoringResult),
    /// A Louvain run.
    Louvain(LouvainResult),
    /// A label-propagation run.
    Labelprop(LabelPropResult),
}

impl KernelOutput {
    /// The uniform run envelope (backend, rounds, convergence, wall time,
    /// optional trace).
    pub fn info(&self) -> &RunInfo {
        match self {
            KernelOutput::Coloring(r) => &r.info,
            KernelOutput::Louvain(r) => &r.info,
            KernelOutput::Labelprop(r) => &r.info,
        }
    }

    /// Backend the run executed on.
    pub fn backend(&self) -> &'static str {
        self.info().backend
    }

    /// Rounds / sweeps / levels executed (kernel-defined: coloring rounds,
    /// Louvain coarsening levels, label-propagation sweeps).
    pub fn rounds(&self) -> usize {
        self.info().rounds
    }

    /// Whether the kernel reached its convergence criterion.
    pub fn converged(&self) -> bool {
        self.info().converged
    }

    /// Whole-run wall time in seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.info().elapsed_secs
    }

    /// Per-vertex community assignment (Louvain communities or
    /// label-propagation labels); `None` for coloring.
    pub fn communities(&self) -> Option<&[u32]> {
        match self {
            KernelOutput::Coloring(_) => None,
            KernelOutput::Louvain(r) => Some(&r.communities),
            KernelOutput::Labelprop(r) => Some(&r.labels),
        }
    }

    /// Per-vertex colors; `None` for the community kernels.
    pub fn colors(&self) -> Option<&[u32]> {
        match self {
            KernelOutput::Coloring(r) => Some(&r.colors),
            _ => None,
        }
    }

    /// The coloring result, if this was a coloring run.
    pub fn as_coloring(&self) -> Option<&ColoringResult> {
        match self {
            KernelOutput::Coloring(r) => Some(r),
            _ => None,
        }
    }

    /// The Louvain result, if this was a Louvain run.
    pub fn as_louvain(&self) -> Option<&LouvainResult> {
        match self {
            KernelOutput::Louvain(r) => Some(r),
            _ => None,
        }
    }

    /// The label-propagation result, if this was a label-propagation run.
    pub fn as_labelprop(&self) -> Option<&LabelPropResult> {
        match self {
            KernelOutput::Labelprop(r) => Some(r),
            _ => None,
        }
    }
}

/// Resolves an explicitly pinned vector backend ([`Backend::Emulated`] or
/// [`Backend::Native`]) to a concrete `Simd` value — wrapped in
/// [`Counted`] when op counting is requested, falling back to emulated when
/// AVX-512 is absent — and runs `$body` with `$s` bound to a reference.
macro_rules! with_vector_backend {
    ($backend:expr, $count_ops:expr, |$s:ident| $body:expr) => {{
        let native = match ($backend, crate::backends::engine()) {
            (Backend::Native, Engine::Native(n)) => Some(n),
            _ => None,
        };
        match (native, $count_ops) {
            (Some($s), false) => $body,
            (Some(n), true) => {
                let $s = Counted::new(n);
                $body
            }
            (None, false) => {
                let $s = Emulated;
                $body
            }
            (None, true) => {
                let $s = Counted::new(Emulated);
                $body
            }
        }
    }};
}

/// Warm-start payload for [`crate::incremental::run_kernel_incremental`]:
/// the previous output re-shaped into the matching kernel family's warm
/// config, dispatched alongside the spec by [`run_kernel_inner`].
#[derive(Debug, Clone)]
pub(crate) enum WarmStart {
    Color(crate::coloring::ColorWarm),
    Lp(crate::labelprop::LpWarm),
    Louvain(crate::louvain::LouvainWarm),
}

/// Runs the kernel described by `spec` on `g`, delivering per-round
/// telemetry (and deadline polls) to `rec`.
///
/// This is the single dispatch point over kernel × variant × backend ×
/// sweep. `Auto` picks the best engine the way the paper's measured
/// configurations do (vectorized assignment on AVX-512 hosts, the scalar
/// reference otherwise); `Emulated`/`Native` pin the vector backend
/// explicitly, and combined with [`KernelSpec::counted`] route through
/// `Counted<_>` so vector op counts reach `gp_simd::counters`.
pub fn run_kernel<R: Recorder>(g: &Csr, spec: &KernelSpec, rec: &mut R) -> KernelOutput {
    run_kernel_inner(g, spec, rec, None)
}

/// [`run_kernel`] with an optional warm start — the shared dispatch body,
/// also entered by the incremental path with `Some(warm)`. A warm payload
/// whose family does not match `spec.kernel` is ignored (cold run).
pub(crate) fn run_kernel_inner<R: Recorder>(
    g: &Csr,
    spec: &KernelSpec,
    rec: &mut R,
    warm: Option<WarmStart>,
) -> KernelOutput {
    match spec.kernel {
        Kernel::Coloring => {
            let cfg = ColoringConfig {
                parallel: spec.parallel,
                count_ops: spec.count_ops,
                sweep: spec.sweep,
                block: spec.block,
                bucket: spec.bucket,
                warm: match warm {
                    Some(WarmStart::Color(w)) => Some(w),
                    _ => None,
                },
                ..Default::default()
            };
            let r = match spec.backend {
                Backend::Scalar => crate::coloring::greedy::color_graph_scalar_recorded(g, &cfg, rec),
                Backend::Auto => match crate::backends::engine() {
                    Engine::Native(s) => crate::coloring::color_with(&s, g, &cfg, rec),
                    Engine::Emulated(_) => {
                        crate::coloring::greedy::color_graph_scalar_recorded(g, &cfg, rec)
                    }
                },
                Backend::Emulated | Backend::Native => {
                    with_vector_backend!(spec.backend, spec.count_ops, |s| {
                        crate::coloring::color_with(&s, g, &cfg, rec)
                    })
                }
            };
            KernelOutput::Coloring(r)
        }
        Kernel::Louvain(variant) => {
            let cfg = LouvainConfig {
                variant,
                parallel: spec.parallel,
                count_ops: spec.count_ops,
                sweep: spec.sweep,
                block: spec.block,
                bucket: spec.bucket,
                warm: match warm {
                    Some(WarmStart::Louvain(w)) => Some(w),
                    _ => None,
                },
                ..Default::default()
            };
            let r = match spec.backend {
                Backend::Auto | Backend::Scalar => {
                    crate::louvain::driver::louvain_recorded(g, &cfg, rec)
                }
                Backend::Emulated | Backend::Native => {
                    with_vector_backend!(spec.backend, spec.count_ops, |s| {
                        crate::louvain::driver::louvain_pinned_recorded(&s, g, &cfg, rec)
                    })
                }
            };
            KernelOutput::Louvain(r)
        }
        Kernel::Labelprop => {
            let cfg = LabelPropConfig {
                parallel: spec.parallel,
                count_ops: spec.count_ops,
                seed: spec.seed,
                sweep: spec.sweep,
                block: spec.block,
                bucket: spec.bucket,
                warm: match warm {
                    Some(WarmStart::Lp(w)) => Some(w),
                    _ => None,
                },
                ..Default::default()
            };
            let r = match spec.backend {
                Backend::Scalar => {
                    crate::labelprop::mplp::label_propagation_mplp_recorded(g, &cfg, rec)
                }
                Backend::Auto => match crate::backends::engine() {
                    Engine::Native(s) => {
                        crate::labelprop::onlp::label_propagation_onlp_recorded(&s, g, &cfg, rec)
                    }
                    Engine::Emulated(_) => {
                        crate::labelprop::mplp::label_propagation_mplp_recorded(g, &cfg, rec)
                    }
                },
                Backend::Emulated | Backend::Native => {
                    with_vector_backend!(spec.backend, spec.count_ops, |s| {
                        crate::labelprop::onlp::label_propagation_onlp_recorded(&s, g, &cfg, rec)
                    })
                }
            };
            KernelOutput::Labelprop(r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::verify_coloring;
    use gp_graph::generators::{planted_partition, triangular_mesh};
    use gp_metrics::telemetry::{NoopRecorder, TraceRecorder};
    use gp_simd::counters;

    #[test]
    fn kernel_strings_round_trip() {
        for k in [
            Kernel::Coloring,
            Kernel::Louvain(Variant::Plm),
            Kernel::Louvain(Variant::Mplm),
            Kernel::Louvain(Variant::Onpl(Strategy::Adaptive)),
            Kernel::Louvain(Variant::Ovpl),
            Kernel::Labelprop,
        ] {
            assert_eq!(k.cache_label().parse::<Kernel>().unwrap(), k);
            assert_eq!(k.to_string(), k.cache_label());
        }
        for b in [
            Backend::Auto,
            Backend::Scalar,
            Backend::Emulated,
            Backend::Native,
        ] {
            assert_eq!(b.name().parse::<Backend>().unwrap(), b);
        }
        for m in [SweepMode::Full, SweepMode::Active] {
            assert_eq!(m.name().parse::<SweepMode>().unwrap(), m);
        }
    }

    #[test]
    fn kernel_parse_aliases_and_errors() {
        assert_eq!("coloring".parse::<Kernel>().unwrap(), Kernel::Coloring);
        assert_eq!("lp".parse::<Kernel>().unwrap(), Kernel::Labelprop);
        assert_eq!(
            "louvain".parse::<Kernel>().unwrap(),
            Kernel::Louvain(Variant::Mplm)
        );
        assert_eq!(
            "onpl-ivr".parse::<Variant>().unwrap(),
            Variant::Onpl(Strategy::InVectorReduce)
        );
        assert_eq!("avx512".parse::<Backend>().unwrap(), Backend::Native);
        assert!("pagerank".parse::<Kernel>().is_err());
        assert!("louvain-x".parse::<Kernel>().is_err());
        assert!("gpu".parse::<Backend>().is_err());
        assert!("lazy".parse::<SweepMode>().is_err());
    }

    #[test]
    fn cache_token_distinguishes_every_axis() {
        let base = KernelSpec::new(Kernel::Louvain(Variant::Mplm));
        let mut tokens = vec![base.cache_token()];
        tokens.push(base.with_backend(Backend::Scalar).cache_token());
        tokens.push(base.with_backend(Backend::Emulated).cache_token());
        tokens.push(base.with_backend(Backend::Native).cache_token());
        tokens.push(base.with_sweep(SweepMode::Full).cache_token());
        tokens.push(base.with_seed(7).cache_token());
        tokens.push(base.with_block(Blocking::Off).cache_token());
        tokens.push(base.with_block(Blocking::Kb(256)).cache_token());
        tokens.push(base.with_block(Blocking::Vertices(4096)).cache_token());
        tokens.push(base.with_bucket(Bucketing::Off).cache_token());
        tokens.push(KernelSpec::new(Kernel::Louvain(Variant::Ovpl)).cache_token());
        let unique: std::collections::HashSet<_> = tokens.iter().collect();
        assert_eq!(unique.len(), tokens.len(), "{tokens:?}");
    }

    #[test]
    fn pinned_vector_coloring_matches_scalar() {
        // Sequential runs are deterministic and the backends implement the
        // same greedy rule, so every pin must give identical colors.
        let g = triangular_mesh(10, 10, 4);
        let scalar = run_kernel(
            &g,
            &KernelSpec::new(Kernel::Coloring)
                .sequential()
                .with_backend(Backend::Scalar),
            &mut NoopRecorder,
        );
        assert!(verify_coloring(&g, scalar.colors().unwrap()).is_ok());
        for backend in [Backend::Auto, Backend::Emulated, Backend::Native] {
            let out = run_kernel(
                &g,
                &KernelSpec::new(Kernel::Coloring)
                    .sequential()
                    .with_backend(backend),
                &mut NoopRecorder,
            );
            assert_eq!(
                out.colors().unwrap(),
                scalar.colors().unwrap(),
                "{}",
                backend.name()
            );
        }
    }

    #[test]
    fn louvain_all_variants_and_pins_agree() {
        let g = planted_partition(3, 12, 0.7, 0.05, 11);
        for variant in [
            Variant::Plm,
            Variant::Mplm,
            Variant::Onpl(Strategy::Adaptive),
            Variant::Ovpl,
        ] {
            let auto = run_kernel(
                &g,
                &KernelSpec::new(Kernel::Louvain(variant)).sequential(),
                &mut NoopRecorder,
            );
            let pinned = run_kernel(
                &g,
                &KernelSpec::new(Kernel::Louvain(variant))
                    .sequential()
                    .with_backend(Backend::Emulated),
                &mut NoopRecorder,
            );
            let a = auto.as_louvain().unwrap();
            let p = pinned.as_louvain().unwrap();
            assert_eq!(a.communities, p.communities, "{}", variant.name());
            assert_eq!(a.modularity, p.modularity);
            assert!(a.modularity > 0.0);
            assert_eq!(auto.communities().unwrap(), &a.communities[..]);
        }
    }

    #[test]
    fn labelprop_backend_pins_agree_with_dispatch() {
        let g = planted_partition(4, 10, 0.8, 0.02, 5);
        let run = |backend: Backend| {
            let spec = KernelSpec::new(Kernel::Labelprop)
                .sequential()
                .with_backend(backend)
                .with_seed(99);
            run_kernel(&g, &spec, &mut NoopRecorder)
        };
        let scalar = run(Backend::Scalar);
        let emulated = run(Backend::Emulated);
        let native = run(Backend::Native);
        // The two vector pins run the same 16-lane ONLP and must agree
        // bit-for-bit (Native falls back to Emulated without AVX-512).
        assert_eq!(
            emulated.as_labelprop().unwrap(),
            native.as_labelprop().unwrap()
        );
        // Auto dispatches to ONLP on native hosts and MPLP otherwise, and
        // must match that pin exactly. MPLP and ONLP themselves may break
        // label-weight ties differently, so no cross-algorithm equality.
        let auto = run(Backend::Auto);
        let expect = if crate::backends::engine().is_native() { &native } else { &scalar };
        assert_eq!(
            auto.as_labelprop().unwrap(),
            expect.as_labelprop().unwrap()
        );
        assert!(scalar.converged() && auto.converged());
    }

    #[test]
    fn counted_emulated_pin_records_vector_ops() {
        let g = triangular_mesh(8, 8, 2);
        // Bucketing off: the mesh is all low-degree, and the degree router
        // would send every vertex to the scalar bitmask kernel — this test
        // pins the *vector* kernel's op stream.
        let spec = KernelSpec::new(Kernel::Coloring)
            .sequential()
            .with_backend(Backend::Emulated)
            .with_block(Blocking::Off)
            .with_bucket(Bucketing::Off)
            .counted();
        let (out, counts) = counters::counted_run(|| run_kernel(&g, &spec, &mut NoopRecorder));
        assert!(out.converged());
        assert!(
            counts.total_vector() > 0,
            "counted emulated run recorded no vector ops: {counts:?}"
        );
    }

    #[test]
    fn run_kernel_feeds_the_recorder() {
        let g = triangular_mesh(8, 8, 3);
        let mut rec = TraceRecorder::new("api");
        let out = run_kernel(
            &g,
            &KernelSpec::new(Kernel::Labelprop).sequential(),
            &mut rec,
        );
        let trace = rec.into_trace();
        assert_eq!(trace.rounds.len(), out.rounds());
        assert!(trace.rounds[0].active > 0);
    }

    #[test]
    fn scalar_backend_reports_scalar() {
        let g = triangular_mesh(6, 6, 1);
        let out = run_kernel(
            &g,
            &KernelSpec::new(Kernel::Coloring)
                .sequential()
                .with_backend(Backend::Scalar),
            &mut NoopRecorder,
        );
        assert_eq!(out.backend(), "scalar");
    }

    #[test]
    fn native_pin_reports_what_actually_ran() {
        let g = triangular_mesh(6, 6, 1);
        let out = run_kernel(
            &g,
            &KernelSpec::new(Kernel::Coloring)
                .sequential()
                .with_backend(Backend::Native),
            &mut NoopRecorder,
        );
        // On AVX-512 hosts this is the native backend; elsewhere the pin
        // falls back and says so.
        assert!(
            out.backend() == "avx512" || out.backend() == "emulated",
            "{}",
            out.backend()
        );
        assert_eq!(
            Backend::best_vector(),
            if crate::backends::engine().is_native() {
                Backend::Native
            } else {
                Backend::Emulated
            }
        );
    }
}
