//! Figure (extension) — thread scaling of substrate passes and kernels on
//! the `gp-par` work-stealing pool.
//!
//! PR 5 replaced the sequential rayon stand-in with a real pool
//! (`crates/par`, bridged through `.devstubs/rayon`); this binary measures
//! what that buys: wall-clock at 1/2/4/8 worker threads for three substrate
//! passes (R-MAT generation, counting-sort CSR assembly, coarsening) and
//! three kernels (MPLM Louvain, MPLP label propagation, speculative
//! coloring) on an R-MAT graph. The substrate passes are output-invariant
//! across pool sizes (asserted here via content checksums); the speculative
//! kernels are valid-but-racy at ≥2 threads, so only their wall-clock is
//! compared.
//!
//! Knobs: `GP_RMAT_SCALE` (default 18, the checked-in `BENCH_scaling.json`
//! run; CI uses 14), `GP_JSON_OUT=<path>` writes a machine-readable summary
//! including `host_cpus`, `--check` verifies the 4-thread run is ≥1.3×
//! faster than 1-thread on at least two substrate passes — skipped with a
//! warning (exit 0) when the host has fewer than 4 CPUs, where no such
//! speedup is physically available — and applies the σ/mean < 2% variance
//! gate shared with the other figure checks (self-skipping on ≤1 CPU).
//!
//! Per-pass *busy fractions* (speedup/threads — the fraction of the pool
//! doing useful work) are reported alongside raw speedups so idle-tail
//! regressions are visible: a pass whose 4-thread busy fraction sits near
//! 0.25 is running serially no matter what its wall-clock says. The rmat
//! row also reports its RNG sample-block count, the hard upper bound on its
//! generation parallelism.

use gp_bench::harness::{print_header, variance_gate, BenchContext, VarianceVerdict};
use gp_core::api::{run_kernel, Kernel, KernelSpec};
use gp_core::louvain::coarsen::coarsen;
use gp_graph::builder::{DedupPolicy, GraphBuilder};
use gp_graph::generators::rmat::{rmat, sample_block_count, RmatConfig};
use gp_graph::par::with_threads;
use gp_graph::{csr::Csr, Edge};
use gp_metrics::report::{fmt_ratio, fmt_secs, Table};
use gp_metrics::telemetry::NoopRecorder;
use gp_metrics::timer::time_runs;
use std::io::Write;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// A measured pass: substrate passes must be pool-size-invariant
/// (checksummed), kernels only valid.
struct Row {
    name: &'static str,
    kind: &'static str, // "substrate" | "kernel"
    secs: Vec<f64>,     // parallel to THREADS
}

impl Row {
    fn speedup(&self, threads: usize) -> f64 {
        let i = THREADS.iter().position(|&t| t == threads).unwrap();
        self.secs[0] / self.secs[i]
    }

    /// Fraction of the pool doing useful work at this size: speedup divided
    /// by threads. 1.0 = perfectly parallel, 1/threads = fully serial.
    fn busy_fraction(&self, threads: usize) -> f64 {
        self.speedup(threads) / threads as f64
    }
}

/// Order- and pool-independent content checksum of a CSR (FNV over the raw
/// arrays — bit-identical outputs hash identically).
fn checksum(g: &Csr) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for &x in g.xadj() {
        eat(u64::from(x));
    }
    for &a in g.adj() {
        eat(u64::from(a));
    }
    for &w in g.weights() {
        eat(u64::from(w.to_bits()));
    }
    h
}

fn main() {
    let ctx = BenchContext::from_env();
    print_header("Thread scaling on the gp-par pool", &ctx);
    let scale: u32 = std::env::var("GP_RMAT_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(18);
    let check = std::env::args().any(|a| a == "--check");
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    let rmat_cfg = RmatConfig::new(scale, 8).with_seed(42);
    let sample_blocks = sample_block_count(&rmat_cfg);
    let g = rmat(rmat_cfg);
    if !ctx.csv {
        println!(
            "graph: rmat scale={scale} ef=8 ({} vertices, {} edges) | rmat sample blocks: \
             {sample_blocks} | host cpus: {host_cpus}{}\n",
            g.num_vertices(),
            g.num_edges(),
            if gp_par::sequential_mode() {
                " | GP_PAR_SEQ=1 (all pools inline)"
            } else {
                ""
            }
        );
    }

    // Inputs shared by all thread counts, prepared once outside the timers.
    let edges: Vec<Edge> = g
        .vertices()
        .flat_map(|u| {
            g.edges_of(u)
                .filter(move |&(v, _)| u <= v)
                .map(move |(v, w)| Edge::new(u, v, w))
        })
        .collect();
    let zeta = match run_kernel(
        &g,
        &KernelSpec::new("labelprop".parse::<Kernel>().unwrap()).sequential(),
        &mut NoopRecorder,
    ) {
        gp_core::api::KernelOutput::Labelprop(r) => r.labels,
        _ => unreachable!(),
    };

    let reference = checksum(&g);
    let mut rows: Vec<Row> = Vec::new();

    // --- Substrate passes: timed per thread count, checksummed against the
    // 1-thread output (thread-count invariance is part of the contract).
    type Pass<'a> = Box<dyn FnMut() -> u64 + Send + 'a>;
    let mut substrate: Vec<(&'static str, Pass<'_>)> = vec![
        (
            "rmat_gen",
            Box::new(|| checksum(&rmat(RmatConfig::new(scale, 8).with_seed(42)))),
        ),
        (
            "build_csr",
            Box::new(|| {
                checksum(
                    &GraphBuilder::new(g.num_vertices())
                        .dedup_policy(DedupPolicy::KeepMax)
                        .add_edges(edges.iter().copied())
                        .build(),
                )
            }),
        ),
        (
            "coarsen",
            Box::new(|| checksum(&coarsen(&g, &zeta).graph)),
        ),
    ];
    for (name, pass) in substrate.iter_mut() {
        let expect = with_threads(1, &mut *pass);
        if *name == "rmat_gen" {
            assert_eq!(expect, reference, "rmat_gen: 1-thread rerun diverged");
        }
        let mut secs = Vec::new();
        for &t in &THREADS {
            let sum = with_threads(t, &mut *pass);
            assert_eq!(sum, expect, "{name}: {t}-thread output != 1-thread output");
            let s = with_threads(t, || time_runs(&ctx.timing, |_| pass()));
            secs.push(s.mean);
        }
        rows.push(Row {
            name,
            kind: "substrate",
            secs,
        });
    }

    // --- Kernels: default specs are parallel; at ≥2 threads the
    // speculative races make outputs run-dependent, so only wall-clock is
    // recorded (validity is covered by the concurrency stress suite).
    for kernel in ["louvain-mplm", "labelprop", "color"] {
        let spec = KernelSpec::new(kernel.parse::<Kernel>().unwrap());
        let mut secs = Vec::new();
        for &t in &THREADS {
            let s = with_threads(t, || {
                time_runs(&ctx.timing, |_| run_kernel(&g, &spec, &mut NoopRecorder))
            });
            secs.push(s.mean);
        }
        rows.push(Row {
            name: match kernel {
                "louvain-mplm" => "mplm",
                "labelprop" => "mplp",
                _ => "coloring",
            },
            kind: "kernel",
            secs,
        });
    }

    let mut table = Table::new(
        format!("Wall time by pool size (rmat scale {scale}, host cpus {host_cpus})"),
        &["pass", "kind", "1t", "2t", "4t", "8t", "4t/1t", "8t/1t", "busy4t", "busy8t"],
    );
    for r in &rows {
        table.row(&[
            r.name.to_string(),
            r.kind.to_string(),
            fmt_secs(r.secs[0]),
            fmt_secs(r.secs[1]),
            fmt_secs(r.secs[2]),
            fmt_secs(r.secs[3]),
            fmt_ratio(r.speedup(4)),
            fmt_ratio(r.speedup(8)),
            format!("{:.2}", r.busy_fraction(4)),
            format!("{:.2}", r.busy_fraction(8)),
        ]);
    }
    ctx.emit(&table);

    if let Ok(path) = std::env::var("GP_JSON_OUT") {
        write_json(&path, scale, host_cpus, sample_blocks, &g, &rows).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        if !ctx.csv {
            println!("\nJSON summary written to {path}");
        }
    }

    if check {
        // Measurement hygiene first, same σ/mean < 2% bar as the other
        // figure checks (self-skips on ≤1 CPU).
        let mut failed = false;
        match variance_gate(|| {
            std::hint::black_box(rmat(RmatConfig::new(scale.min(14), 8).with_seed(42)));
        }) {
            VarianceVerdict::Steady(s) => {
                println!("\nvariance gate: σ/mean = {:.2}% over 3 runs", 100.0 * s);
            }
            VarianceVerdict::Noisy(s) => {
                eprintln!(
                    "CHECK FAILED: host too noisy — σ/mean = {:.2}% ≥ 2% over 3 runs",
                    100.0 * s
                );
                failed = true;
            }
            VarianceVerdict::SkippedLowCpu => {
                println!("\nvariance gate SKIPPED: ≤ 1 CPU available");
            }
        }
        if host_cpus < 4 {
            println!(
                "\ncheck SKIPPED: host has {host_cpus} cpu(s); a 4-thread speedup gate \
                 needs >= 4 (oversubscribed pools cannot beat wall-clock)"
            );
            if failed {
                std::process::exit(1);
            }
            return;
        }
        if gp_par::sequential_mode() {
            println!("\ncheck SKIPPED: GP_PAR_SEQ=1 forces inline pools");
            if failed {
                std::process::exit(1);
            }
            return;
        }
        let passing: Vec<&Row> = rows
            .iter()
            .filter(|r| r.kind == "substrate" && r.speedup(4) >= 1.3)
            .collect();
        if passing.len() < 2 {
            eprintln!(
                "CHECK FAILED: only {}/3 substrate passes reached 1.3x at 4 threads",
                passing.len()
            );
            for r in rows.iter().filter(|r| r.kind == "substrate") {
                eprintln!("  {}: {:.2}x", r.name, r.speedup(4));
            }
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "\ncheck OK: {}/3 substrate passes >= 1.3x at 4 threads",
            passing.len()
        );
    }
}

/// Minimal hand-rolled JSON (no serde in the bench bins).
fn write_json(
    path: &str,
    scale: u32,
    host_cpus: usize,
    sample_blocks: usize,
    g: &Csr,
    rows: &[Row],
) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"figure\": \"scaling\",")?;
    writeln!(f, "  \"host_cpus\": {host_cpus},")?;
    writeln!(f, "  \"threads\": [1, 2, 4, 8],")?;
    writeln!(
        f,
        "  \"graph\": {{\"family\": \"rmat\", \"scale\": {scale}, \"edge_factor\": 8, \"vertices\": {}, \"edges\": {}, \"rmat_sample_blocks\": {sample_blocks}}},",
        g.num_vertices(),
        g.num_edges()
    )?;
    writeln!(f, "  \"passes\": [")?;
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let secs: Vec<String> = r.secs.iter().map(|s| format!("{s:.6}")).collect();
        writeln!(
            f,
            "    {{\"name\": \"{}\", \"kind\": \"{}\", \"secs\": [{}], \"speedup_4t\": {:.4}, \"speedup_8t\": {:.4}, \"busy_fraction_4t\": {:.4}, \"busy_fraction_8t\": {:.4}}}{comma}",
            r.name,
            r.kind,
            secs.join(", "),
            r.speedup(4),
            r.speedup(8),
            r.busy_fraction(4),
            r.busy_fraction(8)
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}
