//! The newline-delimited JSON request/response protocol.
//!
//! One JSON object per line in each direction. Requests:
//!
//! ```json
//! {"kernel":"louvain","graph":{"rmat":{"scale":14,"edge_factor":8,"seed":1}},
//!  "variant":"mplm","backend":"auto","seed":7,"deadline_ms":250,"id":"req-1"}
//! {"kernel":"sleep","ms":50}
//! {"stats":true}
//! ```
//!
//! Responses always carry `"ok"`; successful runs add the [`gp_metrics::RunInfo`]
//! envelope fields (`backend`, `rounds`, `converged`) plus `timed_out`,
//! `cached`, and kernel-specific outputs. Refusals use
//! `{"ok":false,"error":"queue_full","code":503}` — `queue_full` and
//! `shutting_down` are backpressure (retryable), `bad_request` is not.

use crate::json::{self, Json, ObjBuilder};
use crate::spec::GraphSpec;
use gp_core::louvain::Variant;
use gp_core::reduce_scatter::Strategy;

/// Which kernel a request runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// Speculative greedy coloring (Algorithms 1–3).
    Color,
    /// Louvain (Algorithm 4) with an explicit variant.
    Louvain(Variant),
    /// Label propagation (Algorithm 5).
    Labelprop,
    /// Diagnostic kernel: hold a worker for `ms` milliseconds. Used by the
    /// load generator and CI to force `queue_full` / timeout conditions
    /// deterministically; never cached.
    Sleep {
        /// How long to occupy the worker.
        ms: u64,
    },
}

impl Kernel {
    /// Short label, also the latency-histogram key
    /// (see [`crate::stats::KERNEL_NAMES`]).
    pub fn label(&self) -> &'static str {
        match self {
            Kernel::Color => "color",
            Kernel::Louvain(_) => "louvain",
            Kernel::Labelprop => "labelprop",
            Kernel::Sleep { .. } => "sleep",
        }
    }

    /// Cache-key fragment: label plus variant where one exists.
    pub fn cache_label(&self) -> String {
        match self {
            Kernel::Louvain(v) => format!("louvain-{}", v.name().to_ascii_lowercase()),
            other => other.label().to_string(),
        }
    }
}

/// Requested execution backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Best available engine (AVX-512 when the host has it).
    Auto,
    /// Force the scalar reference path.
    Scalar,
}

impl Backend {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Auto => "auto",
            Backend::Scalar => "scalar",
        }
    }
}

/// A parsed run request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Kernel to execute.
    pub kernel: Kernel,
    /// Graph to run on (absent for `sleep`).
    pub spec: Option<GraphSpec>,
    /// Backend selection.
    pub backend: Backend,
    /// Kernel seed (label propagation's traversal shuffle; ignored by
    /// kernels without run-time randomness but always part of the result
    /// cache key).
    pub seed: u64,
    /// Per-request deadline in milliseconds (`None` → server default).
    pub deadline_ms: Option<u64>,
    /// Opaque client correlation id, echoed in the response.
    pub id: Option<String>,
}

impl Request {
    /// Result-cache key: `(graph spec, kernel+variant, backend, seed)`.
    /// `sleep` requests are never cached.
    pub fn cache_key(&self) -> Option<String> {
        match (&self.kernel, &self.spec) {
            (Kernel::Sleep { .. }, _) | (_, None) => None,
            (kernel, Some(spec)) => Some(format!(
                "{}|{}|{}|seed={}",
                spec.canonical_key(),
                kernel.cache_label(),
                self.backend.name(),
                self.seed
            )),
        }
    }
}

/// One decoded request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Incoming {
    /// A kernel run.
    Run(Request),
    /// A `{"stats":true}` probe.
    Stats,
}

/// Parses one request line.
pub fn parse_line(line: &str) -> Result<Incoming, String> {
    let v = json::parse(line.trim()).map_err(|e| format!("invalid JSON: {e}"))?;
    if v.get("stats").and_then(Json::as_bool) == Some(true) {
        return Ok(Incoming::Stats);
    }
    let kernel_name = v
        .get("kernel")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing `kernel` field".to_string())?;
    let id = v.get("id").and_then(Json::as_str).map(str::to_string);
    let deadline_ms = match v.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(d) => Some(
            d.as_u64()
                .ok_or_else(|| "`deadline_ms` must be a non-negative integer".to_string())?,
        ),
    };
    let seed = match v.get("seed") {
        None | Some(Json::Null) => 0,
        Some(s) => s
            .as_u64()
            .ok_or_else(|| "`seed` must be a non-negative integer".to_string())?,
    };
    let backend = match v.get("backend").and_then(Json::as_str) {
        None | Some("auto") => Backend::Auto,
        Some("scalar") => Backend::Scalar,
        Some(other) => return Err(format!("unknown backend `{other}` (auto|scalar)")),
    };

    if kernel_name == "sleep" {
        let ms = v
            .get("ms")
            .and_then(Json::as_u64)
            .ok_or_else(|| "`sleep` needs integer `ms`".to_string())?;
        return Ok(Incoming::Run(Request {
            kernel: Kernel::Sleep { ms },
            spec: None,
            backend,
            seed,
            deadline_ms,
            id,
        }));
    }

    let kernel = match kernel_name {
        "color" | "coloring" => Kernel::Color,
        "louvain" => {
            let variant = match v.get("variant").and_then(Json::as_str) {
                None | Some("mplm") => Variant::Mplm,
                Some("plm") => Variant::Plm,
                Some("onpl") => Variant::Onpl(Strategy::Adaptive),
                Some("ovpl") => Variant::Ovpl,
                Some(other) => {
                    return Err(format!("unknown variant `{other}` (plm|mplm|onpl|ovpl)"))
                }
            };
            Kernel::Louvain(variant)
        }
        "labelprop" => Kernel::Labelprop,
        other => {
            return Err(format!(
                "unknown kernel `{other}` (color|louvain|labelprop|sleep)"
            ))
        }
    };
    let spec_json = v
        .get("graph")
        .ok_or_else(|| format!("kernel `{kernel_name}` needs a `graph` spec"))?;
    let spec = GraphSpec::from_json(spec_json)?;
    Ok(Incoming::Run(Request {
        kernel,
        spec: Some(spec),
        backend,
        seed,
        deadline_ms,
        id,
    }))
}

/// Refusal kinds with their (HTTP-flavored) status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Refusal {
    /// Admission queue at capacity — retry later.
    QueueFull,
    /// Server is draining for shutdown — retry elsewhere.
    ShuttingDown,
    /// Malformed or unsatisfiable request — don't retry.
    BadRequest,
}

impl Refusal {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            Refusal::QueueFull => "queue_full",
            Refusal::ShuttingDown => "shutting_down",
            Refusal::BadRequest => "bad_request",
        }
    }

    /// Status code.
    pub fn code(self) -> u32 {
        match self {
            Refusal::QueueFull | Refusal::ShuttingDown => 503,
            Refusal::BadRequest => 400,
        }
    }
}

/// Renders a refusal response line (without trailing newline).
pub fn refusal_line(kind: Refusal, detail: &str, id: Option<&str>) -> String {
    let mut obj = ObjBuilder::new()
        .bool("ok", false)
        .str("error", kind.name())
        .num("code", kind.code() as f64);
    if !detail.is_empty() {
        obj = obj.str("detail", detail);
    }
    if let Some(id) = id {
        obj = obj.str("id", id);
    }
    obj.build().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_louvain_request() {
        let line = r#"{"kernel":"louvain","graph":{"rmat":{"scale":12,"seed":3}},"variant":"ovpl","backend":"scalar","seed":9,"deadline_ms":100,"id":"a1"}"#;
        let Incoming::Run(req) = parse_line(line).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(req.kernel, Kernel::Louvain(Variant::Ovpl));
        assert_eq!(req.backend, Backend::Scalar);
        assert_eq!(req.seed, 9);
        assert_eq!(req.deadline_ms, Some(100));
        assert_eq!(req.id.as_deref(), Some("a1"));
        assert_eq!(
            req.cache_key().unwrap(),
            "rmat:scale=12,ef=8,seed=3|louvain-ovpl|scalar|seed=9"
        );
    }

    #[test]
    fn parses_stats_and_sleep() {
        assert_eq!(parse_line(r#"{"stats":true}"#).unwrap(), Incoming::Stats);
        let Incoming::Run(req) = parse_line(r#"{"kernel":"sleep","ms":25}"#).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(req.kernel, Kernel::Sleep { ms: 25 });
        assert!(req.cache_key().is_none());
    }

    #[test]
    fn defaults_are_applied() {
        let Incoming::Run(req) =
            parse_line(r#"{"kernel":"color","graph":"mesh:w=10,seed=2"}"#).unwrap()
        else {
            panic!("expected run");
        };
        assert_eq!(req.kernel, Kernel::Color);
        assert_eq!(req.backend, Backend::Auto);
        assert_eq!(req.seed, 0);
        assert_eq!(req.deadline_ms, None);
        assert!(req.id.is_none());
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_line("not json").is_err());
        assert!(parse_line(r#"{"graph":"mesh:w=4"}"#).is_err()); // no kernel
        assert!(parse_line(r#"{"kernel":"color"}"#).is_err()); // no graph
        assert!(parse_line(r#"{"kernel":"warp","graph":"mesh:w=4"}"#).is_err());
        assert!(parse_line(r#"{"kernel":"louvain","graph":"mesh:w=4","variant":"x"}"#).is_err());
        assert!(parse_line(r#"{"kernel":"color","graph":"mesh:w=4","deadline_ms":-5}"#).is_err());
        assert!(parse_line(r#"{"kernel":"sleep"}"#).is_err()); // no ms
        assert!(parse_line(r#"{"kernel":"color","graph":"mesh:w=4","backend":"gpu"}"#).is_err());
    }

    #[test]
    fn refusal_lines_carry_code_and_id() {
        let line = refusal_line(Refusal::QueueFull, "", Some("r7"));
        let v = crate::json::parse(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("error").and_then(Json::as_str), Some("queue_full"));
        assert_eq!(v.get("code").and_then(Json::as_u64), Some(503));
        assert_eq!(v.get("id").and_then(Json::as_str), Some("r7"));
        assert_eq!(Refusal::BadRequest.code(), 400);
    }

    #[test]
    fn cache_key_distinguishes_kernel_backend_and_seed() {
        let base = r#"{"kernel":"labelprop","graph":"mesh:w=8,seed=1"}"#;
        let Incoming::Run(a) = parse_line(base).unwrap() else { panic!() };
        let Incoming::Run(b) =
            parse_line(r#"{"kernel":"labelprop","graph":"mesh:w=8,seed=1","seed":5}"#).unwrap()
        else {
            panic!()
        };
        assert_ne!(a.cache_key(), b.cache_key());
    }
}
