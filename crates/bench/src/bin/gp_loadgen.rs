//! `gp-loadgen` — closed- and open-loop load generator for the `gp-serve`
//! partition service.
//!
//! ```text
//! gp-loadgen [--spawn] [--addr host:port] [--clients n] [--requests n]
//!            [--scale s] [--deadline-every n] [--workers n] [--shards n]
//!            [--queue-depth n] [--burst n]
//!            [--open-loop rate|Nx] [--duration secs] [--churn frac]
//!            [--block off|auto|<n>kb|<n>] [--bucket off|degree]
//! ```
//!
//! **Closed loop** (the default): `--clients` clients each wait for a
//! response before sending the next request, retrying on `queue_full`
//! backpressure, then a synchronized burst of `sleep` requests sized to
//! exceed `workers + queue_depth` demonstrates shedding. Each wire attempt
//! (including retries) counts once on both sides, so the server's
//! `received` counter reconciles exactly against the client's attempt
//! count — retried requests are no longer double-booked as extra logical
//! requests.
//!
//! **Open loop** (`--open-loop`): requests arrive on a fixed Poisson
//! schedule regardless of how fast responses come back, which is the only
//! honest way to measure tail latency and shed rate under overload. The
//! rate is either absolute (`--open-loop 250`) or a multiple of the
//! server's calibrated sustainable throughput (`--open-loop 2x`). Sheds
//! are terminal — an open-loop client never retries, because the shed
//! *is* the measurement. The run reports offered vs achieved rate,
//! p50/p99/p999 latency, and the shed rate.
//!
//! **Churn** (`--churn frac`, closed loop only): the given fraction of the
//! mix becomes v2 `update` frames against a shared session graph
//! (materialized by one plain run before the mix starts), interleaved with
//! the ordinary partition traffic. Latency is reported per class — plain
//! runs and updates separately, each with p50/p99/p999 — and the final
//! reconciliation extends to the streaming counters: the server's
//! `updates` / `edges_added` / `edges_deleted` must equal the client-side
//! count of ok update responses and the sums of their `applied_add` /
//! `applied_del` fields.
//!
//! With `--spawn` (the default when no `--addr` is given) the server runs
//! in-process on an ephemeral port, and the final `{"stats":true}` probe is
//! *reconciled* against the client-side counts — received/served/shed/
//! rejected/timed-out/coalesced and result-cache hits must all agree
//! exactly in both modes, and any drift or malformed response exits
//! nonzero.

use gp_metrics::{Histogram, HistogramSnapshot};
use gp_serve::{Json, ServeConfig, Server};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

const USAGE: &str = "\
gp-loadgen — closed- and open-loop load generator for the gp-serve service

USAGE:
  gp-loadgen [--spawn] [--addr host:port] [--clients n] [--requests n]
             [--scale s] [--deadline-every n] [--workers n] [--shards n]
             [--queue-depth n] [--burst n] [--open-loop rate|Nx]
             [--duration secs]

  --spawn            run an in-process server on an ephemeral port (default
                     when --addr is absent); enables strict stats
                     reconciliation
  --addr host:port   target an already-running `gpart serve`
  --clients n        concurrent connections                 [default 8]
  --requests n       closed-loop: total requests in the mix [default 1200]
  --scale s          RMAT scale for the mix                 [default 14]
  --deadline-every n every n-th request gets deadline_ms=1  [default 16]
  --workers n        spawned server's worker threads        [default 2]
  --shards n         spawned server's keyspace shards       [default 1]
  --queue-depth n    spawned server's admission queue       [default 4]
  --burst n          sleep-burst size (0 = auto for --spawn, skip otherwise)
  --open-loop r      open-loop mode: Poisson arrivals at rate r req/s, or
                     `Nx` (e.g. 2x) times the calibrated sustainable rate;
                     sheds are terminal, never retried
  --duration secs    open-loop measurement window           [default 5]
  --churn frac       closed-loop only: this fraction of the mix are v2
                     update frames against a shared session graph, with
                     per-class latency and streaming-counter reconciliation
  --block v          locality cache-blocking knob on every v2 request
                     (off|auto|<n>kb|<n>; omitted when not given)
  --bucket v         locality degree-bucketing knob on every v2 request
                     (off|degree; omitted when not given)
";

/// Client-side tallies, merged across all client threads.
///
/// `sent` counts *wire attempts* — every line written, including
/// closed-loop retries after a shed — so it pairs exactly with the
/// server's `received`. Every response is classified into exactly one of
/// `ok` / `shed` / `rejected` / `protocol_errors`, so
/// `sent == ok + shed + rejected + protocol_errors` whenever every write
/// got a response.
#[derive(Default)]
struct Tally {
    sent: AtomicU64,
    ok: AtomicU64,
    cached: AtomicU64,
    coalesced: AtomicU64,
    timed_out: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    protocol_errors: AtomicU64,
    /// Ok responses that carried `applied_add` — i.e. served update frames.
    updates: AtomicU64,
    /// Sums of the `applied_add` / `applied_del` fields across those
    /// responses; must equal the server's `edges_added` / `edges_deleted`.
    edges_added: AtomicU64,
    edges_deleted: AtomicU64,
}

impl Tally {
    fn get(&self, c: &AtomicU64) -> u64 {
        c.load(Ordering::SeqCst)
    }
}

/// Open-loop arrival rate: absolute, or a multiple of calibrated capacity.
enum Rate {
    PerSec(f64),
    Multiple(f64),
}

struct Options {
    spawn: bool,
    addr: Option<String>,
    clients: usize,
    requests: u64,
    scale: u32,
    deadline_every: u64,
    workers: usize,
    shards: usize,
    queue_depth: usize,
    burst: Option<usize>,
    open_loop: Option<Rate>,
    duration: f64,
    /// Fraction of the closed-loop mix sent as v2 `update` frames.
    churn: Option<f64>,
    /// Pre-rendered `"block":"…","bucket":"…",` fragment for every v2
    /// request line; empty when neither knob was given (the server then
    /// applies the library defaults, which the v1 codec test pins).
    locality: String,
}

fn parse_rate(v: &str) -> Result<Rate, String> {
    if let Some(prefix) = v.strip_suffix('x') {
        let factor: f64 = prefix
            .parse()
            .map_err(|e| format!("bad --open-loop multiple `{v}`: {e}"))?;
        if factor <= 0.0 {
            return Err(format!("--open-loop multiple must be positive, got `{v}`"));
        }
        Ok(Rate::Multiple(factor))
    } else {
        let rate: f64 = v
            .parse()
            .map_err(|e| format!("bad --open-loop rate `{v}`: {e}"))?;
        if rate <= 0.0 {
            return Err(format!("--open-loop rate must be positive, got `{v}`"));
        }
        Ok(Rate::PerSec(rate))
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        spawn: false,
        addr: None,
        clients: 8,
        requests: 1200,
        scale: 14,
        deadline_every: 16,
        workers: 2,
        shards: 1,
        queue_depth: 4,
        burst: None,
        open_loop: None,
        duration: 5.0,
        churn: None,
        locality: String::new(),
    };
    let mut block: Option<String> = None;
    let mut bucket: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse()
                .map_err(|e| format!("bad {name} value: {e}"))
        };
        match a.as_str() {
            "--spawn" => opts.spawn = true,
            "--addr" => opts.addr = Some(it.next().ok_or("--addr needs a value")?),
            "--clients" => opts.clients = num("--clients")?.max(1) as usize,
            "--requests" => opts.requests = num("--requests")?,
            "--scale" => opts.scale = num("--scale")? as u32,
            "--deadline-every" => opts.deadline_every = num("--deadline-every")?.max(1),
            "--workers" => opts.workers = num("--workers")?.max(1) as usize,
            "--shards" => opts.shards = num("--shards")?.max(1) as usize,
            "--queue-depth" => opts.queue_depth = num("--queue-depth")? as usize,
            "--burst" => opts.burst = Some(num("--burst")? as usize),
            "--open-loop" => {
                let v = it.next().ok_or("--open-loop needs a value")?;
                opts.open_loop = Some(parse_rate(&v)?);
            }
            "--churn" => {
                let v = it.next().ok_or("--churn needs a value")?;
                let frac: f64 = v.parse().map_err(|e| format!("bad --churn value: {e}"))?;
                if !(frac > 0.0 && frac <= 1.0) {
                    return Err(format!("--churn must be in (0, 1], got `{v}`"));
                }
                opts.churn = Some(frac);
            }
            "--duration" => {
                let v = it.next().ok_or("--duration needs a value")?;
                opts.duration = v
                    .parse::<f64>()
                    .map_err(|e| format!("bad --duration value: {e}"))?
                    .max(0.1);
            }
            "--block" => {
                let v = it.next().ok_or("--block needs a value")?;
                // Validate with the same parser the server uses so a typo
                // fails here, not as a rejected request mid-run.
                v.parse::<gp_core::api::Blocking>()?;
                block = Some(v);
            }
            "--bucket" => {
                let v = it.next().ok_or("--bucket needs a value")?;
                v.parse::<gp_core::api::Bucketing>()?;
                bucket = Some(v);
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }
    if opts.addr.is_none() {
        opts.spawn = true;
    }
    if opts.churn.is_some() && opts.open_loop.is_some() {
        return Err("--churn is closed-loop only (drop --open-loop)".to_string());
    }
    if let Some(b) = block {
        opts.locality.push_str(&format!("\"block\":\"{b}\","));
    }
    if let Some(b) = bucket {
        opts.locality.push_str(&format!("\"bucket\":\"{b}\","));
    }
    Ok(opts)
}

/// One request line of the deterministic mix, by global request index.
fn mix_line(i: u64, scale: u32, deadline_every: u64) -> String {
    if i % deadline_every == deadline_every - 1 {
        // A guaranteed result-cache miss (unique seed) with a 1 ms deadline:
        // scale-14 Louvain cannot finish that fast, so this exercises the
        // cooperative-cancellation path and returns `timed_out:true`.
        return format!(
            "{{\"kernel\":\"louvain\",\"graph\":{{\"rmat\":{{\"scale\":{scale},\"seed\":3}}}},\
             \"seed\":{},\"deadline_ms\":1,\"id\":\"dl-{i}\"}}",
            100_000 + i
        );
    }
    let kernel = match i % 3 {
        0 => "color",
        1 => "louvain",
        _ => "labelprop",
    };
    // Rotate over a handful of seeds so the result cache sees repeats.
    format!(
        "{{\"kernel\":\"{kernel}\",\"graph\":{{\"rmat\":{{\"scale\":{scale},\"seed\":3}}}},\
         \"seed\":{},\"id\":\"m-{i}\"}}",
        i % 4
    )
}

/// The canonical spec of the shared session graph that every `update`
/// frame of the churn mix mutates. Seed 9 keeps it disjoint from the mix
/// and calibration graphs, so plain-run result-cache reconciliation is
/// unaffected by the moving epoch.
fn session_graph(scale: u32) -> String {
    format!("rmat:scale={scale},ef=8,seed=9")
}

/// One request line of the churn mix: every `inv`-th request is a v2
/// `update` frame (one random insertion + one random deletion — deleting
/// an absent edge is a documented no-op, so the stream needs no
/// bookkeeping); everything else is the ordinary v1 mix, deadline slots
/// included. Returns the line and whether it is an update frame.
fn churn_line(i: u64, scale: u32, inv: u64, deadline_every: u64) -> (String, bool) {
    if !i.is_multiple_of(inv) {
        return (mix_line(i, scale, deadline_every), false);
    }
    let n = 1u64 << scale;
    let mut x = i
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(0x2545_f491_4f6c_dd1d);
    let mut next = |m: u64| {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x % m
    };
    let (au, av, du, dv) = (next(n), next(n), next(n), next(n));
    let av = if av == au { (av + 1) % n } else { av };
    let dv = if dv == du { (dv + 1) % n } else { dv };
    (
        format!(
            "{{\"v\":2,\"req\":{{\"kernel\":\"color\",\"graph\":\"{}\",\
             \"update\":{{\"add\":[[{au},{av}]],\"del\":[[{du},{dv}]]}},\"id\":\"u-{i}\"}}}}",
            session_graph(scale)
        ),
        true,
    )
}

/// One protocol-v2 open-loop request line. The graph seed rotates over four
/// distinct specs so traffic spreads across shards, and the request seed is
/// unique so every admitted request costs a real kernel execution (no
/// result-cache hits, no coalescing — the measurement wants real work).
fn open_line(i: u64, scale: u32, locality: &str) -> String {
    format!(
        "{{\"v\":2,\"req\":{{\"kernel\":\"labelprop\",\
         \"graph\":\"rmat:scale={scale},ef=8,seed={}\",\
         {locality}\"seed\":{},\"id\":\"o-{i}\"}}}}",
        i % 4,
        500_000 + i
    )
}

/// Sends one line, reads one line. `Err` means transport failure.
fn roundtrip(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    line: &str,
) -> Result<String, String> {
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .map_err(|e| format!("write: {e}"))?;
    let mut response = String::new();
    match reader.read_line(&mut response) {
        Ok(0) => Err("connection closed".to_string()),
        Ok(_) => Ok(response),
        Err(e) => Err(format!("read: {e}")),
    }
}

fn connect(addr: &str) -> Result<(TcpStream, BufReader<TcpStream>), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    Ok((stream, reader))
}

/// What one response line was, from the client's point of view.
#[derive(PartialEq)]
enum Class {
    /// A successful result — retry loop done.
    Done,
    /// `queue_full` backpressure — retryable (closed loop only).
    Shed,
    /// `shutting_down` — give up on this request.
    Rejected,
    /// Anything else — a protocol bug.
    Error,
}

/// Classifies one response line into the tally; records latency on success.
fn account(response: &str, latency: Duration, tally: &Tally, hist: &Histogram) -> Class {
    let Ok(v) = gp_serve::json::parse(response.trim()) else {
        tally.protocol_errors.fetch_add(1, Ordering::SeqCst);
        eprintln!("unparseable response: {}", response.trim());
        return Class::Error;
    };
    match v.get("ok").and_then(Json::as_bool) {
        Some(true) => {
            tally.ok.fetch_add(1, Ordering::SeqCst);
            hist.record(latency);
            // Served update frames echo what the batch actually changed;
            // summing the echoes reconciles exactly against the server's
            // streaming counters (duplicate adds / absent dels are no-ops
            // on both sides).
            if let Some(added) = v.get("applied_add").and_then(Json::as_u64) {
                tally.updates.fetch_add(1, Ordering::SeqCst);
                tally.edges_added.fetch_add(added, Ordering::SeqCst);
                let deleted = v.get("applied_del").and_then(Json::as_u64).unwrap_or(0);
                tally.edges_deleted.fetch_add(deleted, Ordering::SeqCst);
            }
            if v.get("cached").and_then(Json::as_bool) == Some(true) {
                tally.cached.fetch_add(1, Ordering::SeqCst);
            }
            if v.get("coalesced").and_then(Json::as_bool) == Some(true) {
                tally.coalesced.fetch_add(1, Ordering::SeqCst);
            }
            if v.get("timed_out").and_then(Json::as_bool) == Some(true) {
                tally.timed_out.fetch_add(1, Ordering::SeqCst);
            }
            Class::Done
        }
        Some(false) => match v.get("error").and_then(Json::as_str) {
            Some("queue_full") => {
                tally.shed.fetch_add(1, Ordering::SeqCst);
                Class::Shed
            }
            Some("shutting_down") => {
                tally.rejected.fetch_add(1, Ordering::SeqCst);
                Class::Rejected
            }
            other => {
                tally.protocol_errors.fetch_add(1, Ordering::SeqCst);
                eprintln!("unexpected refusal {other:?}: {}", response.trim());
                Class::Error
            }
        },
        None => {
            tally.protocol_errors.fetch_add(1, Ordering::SeqCst);
            eprintln!("response without `ok`: {}", response.trim());
            Class::Error
        }
    }
}

/// The main closed-loop phase: `clients` threads pull global indices off a
/// shared counter until `requests` have been sent. Returns per-class
/// latency snapshots: plain runs and update frames separately (the update
/// one is empty without `--churn`).
fn run_mix(
    addr: &str,
    opts: &Options,
    tally: &Arc<Tally>,
) -> Result<(HistogramSnapshot, HistogramSnapshot), String> {
    let next = Arc::new(AtomicU64::new(0));
    let failures = Arc::new(AtomicUsize::new(0));
    // `--churn f` sends every round(1/f)-th request as an update frame.
    let churn_inv = opts.churn.map(|f| ((1.0 / f).round() as u64).max(1));
    let mut handles = Vec::new();
    for c in 0..opts.clients {
        let addr = addr.to_string();
        let next = Arc::clone(&next);
        let tally = Arc::clone(tally);
        let failures = Arc::clone(&failures);
        let (requests, scale, deadline_every) = (opts.requests, opts.scale, opts.deadline_every);
        handles.push(
            std::thread::Builder::new()
                .name(format!("loadgen-{c}"))
                .spawn(move || {
                    let run_hist = Histogram::new();
                    let update_hist = Histogram::new();
                    let Ok((mut stream, mut reader)) = connect(&addr) else {
                        failures.fetch_add(1, Ordering::SeqCst);
                        return (run_hist.snapshot(), update_hist.snapshot());
                    };
                    'requests: loop {
                        let i = next.fetch_add(1, Ordering::SeqCst);
                        if i >= requests {
                            break;
                        }
                        let (line, is_update) = match churn_inv {
                            Some(inv) => churn_line(i, scale, inv, deadline_every),
                            None => (mix_line(i, scale, deadline_every), false),
                        };
                        let hist = if is_update { &update_hist } else { &run_hist };
                        // Closed-loop with retry-on-shed: `queue_full` is
                        // backpressure, so back off (capped exponential) and
                        // resend until the request lands or the server
                        // starts draining. Every wire attempt counts once
                        // as `sent` and its response once as ok/shed/…, so
                        // client and server tallies stay in exact agreement
                        // even when a request takes several attempts.
                        let mut backoff = Duration::from_millis(1);
                        loop {
                            tally.sent.fetch_add(1, Ordering::SeqCst);
                            let started = Instant::now();
                            match roundtrip(&mut stream, &mut reader, &line) {
                                Ok(response) => {
                                    match account(&response, started.elapsed(), &tally, hist) {
                                        Class::Shed => {
                                            std::thread::sleep(backoff);
                                            backoff = (backoff * 2).min(Duration::from_millis(64));
                                        }
                                        Class::Done | Class::Rejected | Class::Error => break,
                                    }
                                }
                                Err(e) => {
                                    eprintln!("client {c}: {e}");
                                    failures.fetch_add(1, Ordering::SeqCst);
                                    break 'requests;
                                }
                            }
                        }
                    }
                    (run_hist.snapshot(), update_hist.snapshot())
                })
                .map_err(|e| e.to_string())?,
        );
    }
    let mut merged: Option<(HistogramSnapshot, HistogramSnapshot)> = None;
    for h in handles {
        let (runs, updates) = h.join().map_err(|_| "client thread panicked".to_string())?;
        match &mut merged {
            Some((m_runs, m_updates)) => {
                m_runs.merge(&runs);
                m_updates.merge(&updates);
            }
            None => merged = Some((runs, updates)),
        }
    }
    if failures.load(Ordering::SeqCst) > 0 {
        return Err(format!(
            "{} client(s) hit transport failures",
            failures.load(Ordering::SeqCst)
        ));
    }
    merged.ok_or_else(|| "no clients ran".to_string())
}

/// Materializes the churn mix's session graph with one plain v2 run, so
/// the first update frame never races an unmaterialized graph. Flows
/// through the normal tally (the latency stays out of the mix histograms,
/// like the burst).
fn materialize_session(addr: &str, scale: u32, tally: &Tally) -> Result<(), String> {
    let (mut stream, mut reader) = connect(addr)?;
    let line = format!(
        "{{\"v\":2,\"req\":{{\"kernel\":\"color\",\"graph\":\"{}\",\"id\":\"mat-0\"}}}}",
        session_graph(scale)
    );
    tally.sent.fetch_add(1, Ordering::SeqCst);
    let started = Instant::now();
    let response = roundtrip(&mut stream, &mut reader, &line)?;
    let hist = Histogram::new();
    if account(&response, started.elapsed(), tally, &hist) != Class::Done {
        return Err(format!("session materialization failed: {}", response.trim()));
    }
    Ok(())
}

/// The shed burst: `burst` connections release a long `sleep` each at the
/// same instant. With capacity `workers + queue_depth`, everything beyond
/// that must come back as `queue_full`.
fn run_burst(addr: &str, burst: usize, tally: &Arc<Tally>) -> Result<(), String> {
    let barrier = Arc::new(Barrier::new(burst));
    let mut handles = Vec::new();
    for b in 0..burst {
        let addr = addr.to_string();
        let barrier = Arc::clone(&barrier);
        let tally = Arc::clone(tally);
        handles.push(
            std::thread::Builder::new()
                .name(format!("burst-{b}"))
                .spawn(move || -> Result<(), String> {
                    let (mut stream, mut reader) = connect(&addr)?;
                    let line = format!("{{\"kernel\":\"sleep\",\"ms\":120,\"id\":\"b-{b}\"}}");
                    barrier.wait();
                    tally.sent.fetch_add(1, Ordering::SeqCst);
                    let started = Instant::now();
                    let hist = Histogram::new(); // burst latencies stay out of the mix histogram
                    let response = roundtrip(&mut stream, &mut reader, &line)?;
                    account(&response, started.elapsed(), &tally, &hist);
                    Ok(())
                })
                .map_err(|e| e.to_string())?,
        );
    }
    for h in handles {
        h.join().map_err(|_| "burst thread panicked".to_string())??;
    }
    Ok(())
}

/// Deterministic xorshift64 PRNG — good enough for inter-arrival jitter,
/// and keeps the run reproducible.
struct XorShift64(u64);

impl XorShift64 {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform in (0, 1] — never zero, so `ln` is always finite.
    fn next_unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }
}

/// One open-loop connection: the scheduler writes through `writer`, a
/// dedicated reader thread resolves responses against `pending` (id → send
/// instant) to measure latency without any lock-step coupling.
struct OpenConn {
    writer: Mutex<TcpStream>,
    pending: Mutex<HashMap<String, Instant>>,
}

/// Measures the mean service time of a scale-`scale` labelprop request by
/// sending a few sequentially (the first warms the graph cache and is
/// excluded). Calibration requests flow through the normal tally so the
/// final reconciliation still balances.
fn calibrate(addr: &str, scale: u32, locality: &str, tally: &Tally) -> Result<f64, String> {
    let (mut stream, mut reader) = connect(addr)?;
    let hist = Histogram::new();
    let mut total = Duration::ZERO;
    let mut measured = 0u32;
    for i in 0..6u64 {
        let line = format!(
            "{{\"v\":2,\"req\":{{\"kernel\":\"labelprop\",\
             \"graph\":\"rmat:scale={scale},ef=8,seed={}\",\
             {locality}\"seed\":{},\"id\":\"cal-{i}\"}}}}",
            i % 4,
            900_000 + i
        );
        tally.sent.fetch_add(1, Ordering::SeqCst);
        let started = Instant::now();
        let response = roundtrip(&mut stream, &mut reader, &line)?;
        let latency = started.elapsed();
        if account(&response, latency, tally, &hist) != Class::Done {
            return Err(format!("calibration request failed: {}", response.trim()));
        }
        if i > 0 {
            total += latency;
            measured += 1;
        }
    }
    Ok((total / measured).as_secs_f64())
}

/// The open-loop phase: a Poisson scheduler fires requests at `rate` req/s
/// round-robin across `clients` connections for `duration` seconds, reader
/// threads account responses as they arrive, then outstanding requests are
/// drained. Returns the latency snapshot, the offered rate actually
/// achieved by the scheduler, and the wall-clock measurement window.
fn run_open(
    addr: &str,
    opts: &Options,
    rate: f64,
    tally: &Arc<Tally>,
) -> Result<(HistogramSnapshot, f64, f64), String> {
    let hist = Arc::new(Histogram::new());
    let done = Arc::new(AtomicBool::new(false));
    let failures = Arc::new(AtomicUsize::new(0));
    let mut conns = Vec::new();
    let mut readers = Vec::new();
    for c in 0..opts.clients {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let _ = stream.set_nodelay(true);
        let read_half = stream.try_clone().map_err(|e| e.to_string())?;
        let conn = Arc::new(OpenConn {
            writer: Mutex::new(stream),
            pending: Mutex::new(HashMap::new()),
        });
        conns.push(Arc::clone(&conn));
        let tally = Arc::clone(tally);
        let hist = Arc::clone(&hist);
        let done = Arc::clone(&done);
        let failures = Arc::clone(&failures);
        readers.push(
            std::thread::Builder::new()
                .name(format!("open-reader-{c}"))
                .spawn(move || {
                    let mut reader = BufReader::new(read_half);
                    let mut response = String::new();
                    loop {
                        response.clear();
                        match reader.read_line(&mut response) {
                            Ok(0) => break, // stream shut down after the drain
                            Ok(_) => {}
                            Err(_) if done.load(Ordering::SeqCst) => break,
                            Err(e) => {
                                eprintln!("open-reader-{c}: read: {e}");
                                failures.fetch_add(1, Ordering::SeqCst);
                                break;
                            }
                        }
                        // Latency runs from the instant the scheduler
                        // stamped this id, not from any read-side clock.
                        let sent_at = gp_serve::json::parse(response.trim())
                            .ok()
                            .and_then(|v| v.get("id").and_then(Json::as_str).map(String::from))
                            .and_then(|id| conn.pending.lock().unwrap().remove(&id));
                        let Some(sent_at) = sent_at else {
                            tally.protocol_errors.fetch_add(1, Ordering::SeqCst);
                            eprintln!("unmatched response: {}", response.trim());
                            continue;
                        };
                        account(&response, sent_at.elapsed(), &tally, &hist);
                    }
                })
                .map_err(|e| e.to_string())?,
        );
    }

    // Poisson scheduler: exponential inter-arrival gaps at the offered
    // rate. If the process falls behind schedule it sends immediately —
    // open-loop arrivals never wait for the server.
    let duration = Duration::from_secs_f64(opts.duration);
    let mut rng = XorShift64(0x9e37_79b9_7f4a_7c15);
    let started = Instant::now();
    let mut next = Duration::ZERO;
    let mut i = 0u64;
    while next < duration {
        let now = started.elapsed();
        if next > now {
            std::thread::sleep(next - now);
        }
        let conn = &conns[(i % conns.len() as u64) as usize];
        let line = open_line(i, opts.scale, &opts.locality);
        conn.pending
            .lock()
            .unwrap()
            .insert(format!("o-{i}"), Instant::now());
        tally.sent.fetch_add(1, Ordering::SeqCst);
        {
            let mut w = conn.writer.lock().unwrap();
            w.write_all(line.as_bytes())
                .and_then(|()| w.write_all(b"\n"))
                .map_err(|e| format!("open-loop write: {e}"))?;
        }
        i += 1;
        next += Duration::from_secs_f64(-rng.next_unit().ln() / rate);
    }
    let offered_secs = started.elapsed().as_secs_f64();
    let offered_rate = i as f64 / offered_secs;

    // Drain: every in-flight id must resolve (served, shed, or rejected).
    // Bounded by queue capacity × service time, so 30 s is generous.
    let drain_deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let outstanding: usize = conns.iter().map(|c| c.pending.lock().unwrap().len()).sum();
        if outstanding == 0 {
            break;
        }
        if Instant::now() > drain_deadline {
            return Err(format!("{outstanding} responses never arrived"));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    done.store(true, Ordering::SeqCst);
    for conn in &conns {
        let _ = conn.writer.lock().unwrap().shutdown(Shutdown::Both);
    }
    for r in readers {
        r.join().map_err(|_| "reader thread panicked".to_string())?;
    }
    if failures.load(Ordering::SeqCst) > 0 {
        return Err(format!(
            "{} reader(s) hit transport failures",
            failures.load(Ordering::SeqCst)
        ));
    }
    Ok((hist.snapshot(), offered_rate, started.elapsed().as_secs_f64()))
}

/// Pulls the server's `{"stats":true}` snapshot.
fn fetch_stats(addr: &str) -> Result<Json, String> {
    let (mut stream, mut reader) = connect(addr)?;
    let response = roundtrip(&mut stream, &mut reader, r#"{"stats":true}"#)?;
    gp_serve::json::parse(response.trim()).map_err(|e| format!("stats response: {e}"))
}

fn stat_of(stats: &Json, key: &str) -> u64 {
    stats
        .get("stats")
        .and_then(|s| s.get(key))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

fn cache_stat_of(stats: &Json, cache: &str, key: &str) -> u64 {
    stats
        .get("stats")
        .and_then(|s| s.get(cache))
        .and_then(|c| c.get(key))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// Compares server counters with client-side observations, exactly. Only
/// meaningful for `--spawn`, where this process is the server's sole
/// client. Loadgen never sends a malformed line, so the server's `errors`
/// plane must stay at zero; every cached / coalesced response is flagged on
/// the wire, so those reconcile one-for-one too.
fn reconcile(stats: &Json, tally: &Tally) -> Result<(), String> {
    let pairs = [
        ("received", stat_of(stats, "received"), tally.get(&tally.sent)),
        ("served", stat_of(stats, "served"), tally.get(&tally.ok)),
        ("shed", stat_of(stats, "shed"), tally.get(&tally.shed)),
        (
            "timed_out",
            stat_of(stats, "timed_out"),
            tally.get(&tally.timed_out),
        ),
        (
            "rejected",
            stat_of(stats, "rejected"),
            tally.get(&tally.rejected),
        ),
        (
            "coalesced",
            stat_of(stats, "coalesced"),
            tally.get(&tally.coalesced),
        ),
        ("errors", stat_of(stats, "errors"), 0),
        (
            "result_cache.hits",
            cache_stat_of(stats, "result_cache", "hits"),
            tally.get(&tally.cached),
        ),
        // Streaming counters (all zero without --churn): served updates,
        // and the exact sums of applied mutations echoed on the wire.
        ("updates", stat_of(stats, "updates"), tally.get(&tally.updates)),
        (
            "edges_added",
            stat_of(stats, "edges_added"),
            tally.get(&tally.edges_added),
        ),
        (
            "edges_deleted",
            stat_of(stats, "edges_deleted"),
            tally.get(&tally.edges_deleted),
        ),
    ];
    let mut drift = Vec::new();
    for (key, server_side, client_side) in pairs {
        if server_side != client_side {
            drift.push(format!("{key}: server={server_side} client={client_side}"));
        }
    }
    if drift.is_empty() {
        Ok(())
    } else {
        Err(format!("stats drift — {}", drift.join(", ")))
    }
}

fn print_summary(hist: &HistogramSnapshot, tally: &Tally, stats: &Json) {
    println!(
        "latency ms: p50 {:.2}  p99 {:.2}  p999 {:.2}  mean {:.2}",
        hist.quantile_us(0.50) / 1000.0,
        hist.quantile_us(0.99) / 1000.0,
        hist.quantile_us(0.999) / 1000.0,
        hist.mean_us() / 1000.0
    );
    println!(
        "client counts: sent {} ok {} cached {} coalesced {} timed_out {} shed {} rejected {} \
         protocol_errors {}",
        tally.get(&tally.sent),
        tally.get(&tally.ok),
        tally.get(&tally.cached),
        tally.get(&tally.coalesced),
        tally.get(&tally.timed_out),
        tally.get(&tally.shed),
        tally.get(&tally.rejected),
        tally.get(&tally.protocol_errors),
    );
    println!(
        "server stats: received {} served {} shed {} timed_out {} coalesced {} graph_hits {} \
         result_hits {}",
        stat_of(stats, "received"),
        stat_of(stats, "served"),
        stat_of(stats, "shed"),
        stat_of(stats, "timed_out"),
        stat_of(stats, "coalesced"),
        cache_stat_of(stats, "graph_cache", "hits"),
        cache_stat_of(stats, "result_cache", "hits"),
    );
}

/// Checks shared by both modes: zero protocol errors, the client-side
/// accounting identity, the per-shard stats plane, and (for spawned
/// servers) exact reconciliation.
fn check_common(opts: &Options, stats: &Json, tally: &Tally, problems: &mut Vec<String>) {
    if tally.get(&tally.protocol_errors) > 0 {
        problems.push(format!(
            "{} protocol errors",
            tally.get(&tally.protocol_errors)
        ));
    }
    let responses = tally.get(&tally.ok)
        + tally.get(&tally.shed)
        + tally.get(&tally.rejected)
        + tally.get(&tally.protocol_errors);
    if tally.get(&tally.sent) != responses {
        problems.push(format!(
            "client identity broken: sent {} != ok+shed+rejected+errors {}",
            tally.get(&tally.sent),
            responses
        ));
    }
    if opts.spawn {
        if let Err(e) = reconcile(stats, tally) {
            problems.push(e);
        }
        match stats.get("shards") {
            Some(Json::Arr(shards)) if shards.len() == opts.shards => {}
            Some(Json::Arr(shards)) => problems.push(format!(
                "stats probe reports {} shard(s), expected {}",
                shards.len(),
                opts.shards
            )),
            _ => problems.push("stats probe has no per-shard breakdown".to_string()),
        }
    }
}

fn run() -> Result<(), String> {
    let opts = parse_args()?;
    let server = if opts.spawn {
        Some(
            Server::start(ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: opts.workers,
                shards: opts.shards,
                queue_depth: opts.queue_depth,
                ..Default::default()
            })
            .map_err(|e| format!("spawn server: {e}"))?,
        )
    } else {
        None
    };
    let addr = match (&server, &opts.addr) {
        (Some(s), _) => s.local_addr().to_string(),
        (None, Some(a)) => a.clone(),
        (None, None) => unreachable!("parse_args forces spawn without --addr"),
    };
    println!(
        "target {addr} ({}), {} clients, rmat scale {}, {} shard(s)",
        if opts.spawn { "spawned in-process" } else { "external" },
        opts.clients,
        opts.scale,
        opts.shards,
    );

    let tally = Arc::new(Tally::default());
    let mut problems = Vec::new();

    if let Some(rate_spec) = &opts.open_loop {
        // ---- open loop ----
        // `--workers` below the shard count is silently topped up by the
        // server (every shard gets at least one worker), so capacity
        // estimates use the effective count.
        let effective_workers = opts.workers.max(opts.shards);
        let (rate, factor) = match rate_spec {
            Rate::PerSec(r) => (*r, None),
            Rate::Multiple(f) => {
                let mean_secs = calibrate(&addr, opts.scale, &opts.locality, &tally)?;
                let sustainable = effective_workers as f64 / mean_secs.max(1e-9);
                println!(
                    "calibrated: mean service {:.2} ms, sustainable ≈ {:.0} req/s, \
                     offering {:.1}x = {:.0} req/s",
                    mean_secs * 1000.0,
                    sustainable,
                    f,
                    f * sustainable
                );
                (f * sustainable, Some(*f))
            }
        };
        let (hist, offered, window_secs) = run_open(&addr, &opts, rate, &tally)?;
        let stats = fetch_stats(&addr)?;

        println!();
        println!(
            "open loop: offered {offered:.0} req/s (target {rate:.0}) for {:.1}s — achieved \
             {:.0} req/s, shed rate {:.1}%",
            opts.duration,
            tally.get(&tally.ok) as f64 / window_secs.max(1e-9),
            100.0 * tally.get(&tally.shed) as f64 / tally.get(&tally.sent).max(1) as f64,
        );
        print_summary(&hist, &tally, &stats);

        if factor.is_some_and(|f| f >= 2.0) && tally.get(&tally.shed) == 0 {
            problems.push("overload run produced no queue_full sheds".to_string());
        }
        check_common(&opts, &stats, &tally, &mut problems);
    } else {
        // ---- closed loop ----
        if opts.churn.is_some() {
            materialize_session(&addr, opts.scale, &tally)?;
        }
        let started = Instant::now();
        let (hist, update_hist) = run_mix(&addr, &opts, &tally)?;
        let mix_secs = started.elapsed().as_secs_f64();

        // Size the burst to overflow known capacity; skip entirely for
        // external servers unless the operator passed an explicit --burst.
        let burst = opts
            .burst
            .unwrap_or(if opts.spawn { opts.workers + opts.queue_depth + 6 } else { 0 });
        if burst > 0 {
            run_burst(&addr, burst, &tally)?;
        }

        let stats = fetch_stats(&addr)?;

        println!();
        println!(
            "mix: {} logical requests, {} wire attempts in {:.2}s — {:.0} ok/s",
            opts.requests,
            tally.get(&tally.sent),
            mix_secs,
            tally.get(&tally.ok) as f64 / mix_secs.max(1e-9)
        );
        if opts.churn.is_some() {
            println!(
                "latency ms (update): p50 {:.2}  p99 {:.2}  p999 {:.2}  mean {:.2}  \
                 ({} served, +{} -{} edges)",
                update_hist.quantile_us(0.50) / 1000.0,
                update_hist.quantile_us(0.99) / 1000.0,
                update_hist.quantile_us(0.999) / 1000.0,
                update_hist.mean_us() / 1000.0,
                tally.get(&tally.updates),
                tally.get(&tally.edges_added),
                tally.get(&tally.edges_deleted),
            );
        }
        print_summary(&hist, &tally, &stats);

        if opts.spawn {
            if tally.get(&tally.timed_out) == 0 {
                problems.push("no timed_out responses observed".to_string());
            }
            if burst > 0 && tally.get(&tally.shed) == 0 {
                problems.push("burst produced no queue_full sheds".to_string());
            }
            if opts.churn.is_some() && tally.get(&tally.updates) == 0 {
                problems.push("churn mix produced no served update frames".to_string());
            }
        }
        check_common(&opts, &stats, &tally, &mut problems);
    }

    if let Some(server) = server {
        server.shutdown();
    }
    if problems.is_empty() {
        println!("loadgen OK");
        Ok(())
    } else {
        Err(problems.join("; "))
    }
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gp-loadgen: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}
