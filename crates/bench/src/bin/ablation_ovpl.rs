//! Ablation — OVPL preprocessing choices.
//!
//! Quantifies the design decisions DESIGN.md calls out: (a) sorting color
//! groups by non-increasing degree (the paper's load-balancing step) vs.
//! leaving them unsorted, via lane utilization and move-phase time; and
//! (b) the preprocessing cost itself relative to one move phase.

use gp_bench::harness::{print_header, BenchContext};
use gp_core::api::{run_kernel, Backend, Kernel, KernelSpec};
use gp_core::louvain::ovpl::{build_layout, move_phase_ovpl};
use gp_core::louvain::{LouvainConfig, MoveState, Variant};
use gp_graph::suite::{build_suite, GraphClass};
use gp_metrics::report::{fmt_ratio, fmt_secs, Table};
use gp_metrics::telemetry::NoopRecorder;
use gp_metrics::timer::time_runs;
use gp_simd::engine::Engine;

/// The scalar speculative coloring that feeds OVPL's layout construction.
fn scalar_coloring(g: &gp_graph::csr::Csr) -> Vec<u32> {
    let spec = KernelSpec::new(Kernel::Coloring).with_backend(Backend::Scalar);
    run_kernel(g, &spec, &mut NoopRecorder)
        .colors()
        .expect("coloring output")
        .to_vec()
}

fn main() {
    let ctx = BenchContext::from_env();
    print_header("Ablation: OVPL preprocessing", &ctx);
    let mut table = Table::new(
        "OVPL degree-sorting ablation",
        &[
            "graph",
            "class",
            "util sorted",
            "util unsorted",
            "move sorted",
            "move unsorted",
            "sorted gain",
            "preproc wall",
        ],
    );
    for (entry, g) in build_suite(ctx.scale) {
        // The sweep is slow on the road networks at full scale; keep the
        // ablation to the classes where OVPL is the recommended variant
        // plus one contrast class.
        if !matches!(
            entry.class,
            GraphClass::Mesh | GraphClass::Matrix | GraphClass::Social
        ) {
            continue;
        }
        let colors = scalar_coloring(&g);
        let sorted = build_layout(&g, &colors, true);
        let unsorted = build_layout(&g, &colors, false);
        let config = LouvainConfig {
            variant: Variant::Ovpl,
            ..Default::default()
        };
        let preproc = time_runs(&ctx.timing, |_| {
            let colors = scalar_coloring(&g);
            build_layout(&g, &colors, true)
        });

        let (t_sorted, t_unsorted) = match gp_core::backends::engine() {
            Engine::Native(s) => (
                time_runs(&ctx.timing, |_| {
                    let state = MoveState::singleton(&g);
                    move_phase_ovpl(&s, &sorted, &state, &config)
                }),
                time_runs(&ctx.timing, |_| {
                    let state = MoveState::singleton(&g);
                    move_phase_ovpl(&s, &unsorted, &state, &config)
                }),
            ),
            Engine::Emulated(s) => (
                time_runs(&ctx.timing, |_| {
                    let state = MoveState::singleton(&g);
                    move_phase_ovpl(&s, &sorted, &state, &config)
                }),
                time_runs(&ctx.timing, |_| {
                    let state = MoveState::singleton(&g);
                    move_phase_ovpl(&s, &unsorted, &state, &config)
                }),
            ),
        };
        table.row(&[
            entry.name.to_string(),
            format!("{:?}", entry.class),
            format!("{:.3}", sorted.lane_utilization()),
            format!("{:.3}", unsorted.lane_utilization()),
            fmt_secs(t_sorted.mean),
            fmt_secs(t_unsorted.mean),
            fmt_ratio(t_unsorted.mean / t_sorted.mean),
            fmt_secs(preproc.mean),
        ]);
    }
    ctx.emit(&table);
    if !ctx.csv {
        println!("\nexpected: sorting raises lane utilization and never hurts the move phase");
    }
}
