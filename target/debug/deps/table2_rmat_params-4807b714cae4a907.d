/root/repo/target/debug/deps/table2_rmat_params-4807b714cae4a907.d: crates/bench/src/bin/table2_rmat_params.rs

/root/repo/target/debug/deps/table2_rmat_params-4807b714cae4a907: crates/bench/src/bin/table2_rmat_params.rs

crates/bench/src/bin/table2_rmat_params.rs:
